// Claim S4 (survey Section 4.3, Eq. 30-33): the choice of neighborhood
// aggregator matters. KGCN is run with each of the four aggregators on
// the same attribute-clustered world.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/presets.h"
#include "graph/aggregators.h"
#include "unified/kgcn.h"

int main() {
  using namespace kgrec;  // NOLINT: bench-local convenience
  WorldConfig config = GetPreset("movielens-100k").config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 12.0;
  bench::Workbench wb = bench::MakeWorkbench(config);

  std::printf("== S4: KGCN aggregator ablation (Eq. 30-33) ==\n\n");
  std::printf("%-16s %8s %9s %9s %9s\n", "Aggregator", "AUC", "NDCG@10",
              "Recall@10", "train_s");
  for (int i = 0; i < 56; ++i) std::putchar('-');
  std::putchar('\n');
  const std::vector<AggregatorKind> kinds = {
      AggregatorKind::kSum, AggregatorKind::kConcat, AggregatorKind::kNeighbor,
      AggregatorKind::kBiInteraction};
  std::vector<std::string> rows = bench::RunRowsParallel(
      kinds.size(), [&](size_t i) -> std::string {
        KgcnConfig kgcn_config;
        kgcn_config.aggregator = kinds[i];
        KgcnRecommender model(kgcn_config);
        bench::RunResult result =
            bench::RunModel(model, wb, /*seed=*/17, /*eval_threads=*/1);
        char line[96];
        std::snprintf(line, sizeof(line), "%-16s %8.3f %9.3f %9.3f %9.2f",
                      AggregatorKindName(kinds[i]).c_str(), result.ctr.auc,
                      result.topk.ndcg, result.topk.recall,
                      result.train_seconds);
        return line;
      });
  for (const std::string& row : rows) std::printf("%s\n", row.c_str());
  std::printf(
      "\nExpected shape: sum/concat/bi-interaction cluster together with\n"
      "bi-interaction at or near the top; neighbor (which discards the\n"
      "item's own embedding, Eq. 32) trails.\n");
  return 0;
}
