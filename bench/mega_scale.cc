// Million-scale world build + peak-RSS trajectory bench and CI gate.
//
//   ./mega_scale          full tier: MegaPreset() (10^6 users, 2x10^5
//                         items, 10^7 facts) streamed into the compacted
//                         substrate, KG finalize + triple release, MF
//                         fit, brute-force + IVF + SQ8 index build and
//                         queries. Gates on the documented peak-RSS
//                         budget for the tier, on the SQ8 top-K being
//                         bitwise the float32 top-K at catalog scale,
//                         and on the SQ8 scan bytes being <= 0.30x the
//                         float factor matrix (the 4x-smaller-factors
//                         claim, measured not asserted). The SQ8-vs-
//                         float throughput ratio is recorded as
//                         informational (this container is one core).
//   ./mega_scale --smoke  CI gate (tier1): MegaLitePreset(); asserts
//                         (a) the streamed drop-names world is
//                             structurally identical to the
//                             materializing named reference path
//                             (triples, interactions, CSR adjacency),
//                         (b) MF Fit / ScoreItems / index top-K on the
//                             compacted substrate are bitwise equal to
//                             the reference path — including the
//                             ScanPrecision::kSq8 index, whose top-K
//                             must match the float32 index bitwise,
//                         (c) peak RSS stays within the smoke budget.
//
// Every stage appends a row (wall seconds, current/peak RSS, logical
// substrate bytes) to BENCH_mega.json — the memory trajectory the
// compaction work is judged by. Compare runs with tools/bench_diff.py.
// Exits non-zero on any gate failure.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "cf/mf.h"
#include "core/mem_stats.h"
#include "data/mega.h"
#include "retrieval/factors.h"
#include "retrieval/index.h"

namespace {

using Clock = std::chrono::steady_clock;
using kgrec::EntityId;
using kgrec::InteractionDataset;
using kgrec::KnowledgeGraph;
using kgrec::MegaWorld;
using kgrec::MegaWorldConfig;
using kgrec::MemoryVisitor;
using kgrec::MfConfig;
using kgrec::MfRecommender;
using kgrec::RecContext;
using kgrec::retrieval::BruteForceIndex;
using kgrec::retrieval::IvfConfig;
using kgrec::retrieval::IvfIndex;
using kgrec::retrieval::ScanPrecision;
using kgrec::retrieval::ScanSpec;

ScanSpec Sq8Spec() {
  ScanSpec spec;
  spec.precision = ScanPrecision::kSq8;
  return spec;
}

/// SQ8 scan working-set bytes must stay at or under 0.30x the float
/// factor matrix: codes are exactly 0.25x, and the grid vectors plus
/// rounding headroom must not eat the win. A hard gate — if the
/// quantized layout ever grows past this, the bench fails.
constexpr double kSq8BytesRatioBudget = 0.30;

// Peak-RSS budgets (bytes). These are deliberate regression tripwires,
// not aspirations: the measured peak of the compacted substrate plus
// generous headroom for allocator noise and toolchain drift. Raising
// one is a reviewed decision — see DESIGN.md "Memory model" for the
// measured baselines behind each number (full tier: ~629 MiB peak,
// reached during the MF fit; smoke: ~6 MiB).
constexpr size_t kMiB = size_t{1} << 20;
constexpr size_t kPeakRssBudgetFull = size_t{1024} * kMiB;
constexpr size_t kPeakRssBudgetSmoke = size_t{64} * kMiB;

constexpr size_t kTopK = 10;

/// One row of the memory trajectory.
struct StageRow {
  std::string stage;
  double seconds = 0.0;
  size_t current_rss = 0;
  size_t peak_rss = 0;
  size_t logical_bytes = 0;  // substrate logical bytes after the stage
};

/// Logical bytes of the data substrate (KG + interaction log + indices).
size_t SubstrateBytes(const KnowledgeGraph& kg,
                      const InteractionDataset& interactions) {
  MemoryVisitor visitor;
  kg.MemoryUse(visitor);
  interactions.MemoryUse(visitor);
  return visitor.total();
}

class Trajectory {
 public:
  /// Runs `body`, then records wall time and the RSS trajectory point.
  template <typename Body>
  void Stage(const std::string& name, size_t logical_bytes, Body&& body) {
    const auto start = Clock::now();
    body();
    const auto end = Clock::now();
    StageRow row;
    row.stage = name;
    row.seconds = std::chrono::duration<double>(end - start).count();
    row.current_rss = kgrec::CurrentRssBytes();
    row.peak_rss = kgrec::PeakRssBytes();
    row.logical_bytes = logical_bytes;
    rows_.push_back(row);
    std::printf("%-24s %8.2fs  rss %7.1f MiB  peak %7.1f MiB  logical %7.1f MiB\n",
                name.c_str(), row.seconds,
                static_cast<double>(row.current_rss) / kMiB,
                static_cast<double>(row.peak_rss) / kMiB,
                static_cast<double>(row.logical_bytes) / kMiB);
  }

  std::vector<std::string> JsonRows() const {
    std::vector<std::string> out;
    for (const StageRow& r : rows_) {
      out.push_back(kgrec::bench::JsonWriter()
                        .Field("stage", r.stage)
                        .Field("seconds", r.seconds)
                        .Field("current_rss_bytes", r.current_rss)
                        .Field("peak_rss_bytes", r.peak_rss)
                        .Field("logical_bytes", r.logical_bytes)
                        .str());
    }
    return out;
  }

 private:
  std::vector<StageRow> rows_;
};

bool BitwiseEqual(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// Structural equality of two worlds: entity/relation counts, the raw
/// triple list, the interaction log, and every CSR adjacency row. Both
/// graphs must already be finalized.
bool SameWorld(const MegaWorld& a, const MegaWorld& b) {
  if (a.kg.num_entities() != b.kg.num_entities() ||
      a.kg.num_relations() != b.kg.num_relations() ||
      a.kg.num_triples() != b.kg.num_triples()) {
    std::fprintf(stderr, "FAIL world: KG shape differs\n");
    return false;
  }
  if (!(a.kg.triples() == b.kg.triples())) {
    std::fprintf(stderr, "FAIL world: triple lists differ\n");
    return false;
  }
  const auto& xa = a.interactions.interactions();
  const auto& xb = b.interactions.interactions();
  if (xa.size() != xb.size()) {
    std::fprintf(stderr, "FAIL world: interaction counts differ\n");
    return false;
  }
  for (size_t i = 0; i < xa.size(); ++i) {
    if (xa[i].user != xb[i].user || xa[i].item != xb[i].item) {
      std::fprintf(stderr, "FAIL world: interaction %zu differs\n", i);
      return false;
    }
  }
  for (size_t e = 0; e < a.kg.num_entities(); ++e) {
    const EntityId id = static_cast<EntityId>(e);
    const size_t degree = a.kg.OutDegree(id);
    if (degree != b.kg.OutDegree(id) ||
        (degree > 0 &&
         std::memcmp(a.kg.OutEdges(id), b.kg.OutEdges(id),
                     degree * sizeof(kgrec::Edge)) != 0)) {
      std::fprintf(stderr, "FAIL world: CSR row %zu differs\n", e);
      return false;
    }
  }
  return true;
}

MfConfig SmokeMfConfig() {
  MfConfig config;
  config.dim = 16;
  config.epochs = 5;
  // No weight decay, for the same reason as the full tier (see RunFull):
  // Adagrad's dense decay collapses cold embeddings toward zero, and the
  // retrieval gates should run over a healthy factor table.
  config.l2 = 0.0f;
  return config;
}

/// Fits MF on one world and returns the trained model.
MfRecommender FitMf(const MegaWorld& world, const MfConfig& config) {
  MfRecommender model(config);
  RecContext context;
  context.train = &world.interactions;
  context.item_kg = &world.kg;
  context.seed = 17;
  model.Fit(context);
  return model;
}

/// The compacted-vs-reference bitwise gate (smoke mode): same factors,
/// same per-user scores, same exact and approximate top-K — and the SQ8
/// index's top-K bitwise equal to the float32 index's (*sq8_ok).
bool SameModel(const MfRecommender& a, const MfRecommender& b,
               int32_t num_users, int32_t num_items, bool* sq8_ok) {
  const kgrec::retrieval::ItemFactors fa = a.ExportItemFactors();
  const kgrec::retrieval::ItemFactors fb = b.ExportItemFactors();
  if (!BitwiseEqual({fa.items.data(), fa.items.size()},
                    {fb.items.data(), fb.items.size()})) {
    std::fprintf(stderr, "FAIL model: item factors diverge\n");
    return false;
  }
  std::vector<int32_t> all_items(num_items);
  for (int32_t j = 0; j < num_items; ++j) all_items[j] = j;
  const int32_t user_step = std::max(1, num_users / 64);
  BruteForceIndex index_a(a.ExportItemFactors());
  BruteForceIndex index_b(b.ExportItemFactors());
  BruteForceIndex sq8_a(a.ExportItemFactors(), Sq8Spec());
  IvfConfig ivf_config;
  IvfIndex ivf_a(a.ExportItemFactors(), ivf_config);
  IvfIndex ivf_b(b.ExportItemFactors(), ivf_config);
  *sq8_ok = true;
  std::vector<float> qa(a.factor_dim()), qb(b.factor_dim());
  for (int32_t u = 0; u < num_users; u += user_step) {
    if (!BitwiseEqual(a.ScoreItems(u, all_items),
                      b.ScoreItems(u, all_items))) {
      std::fprintf(stderr, "FAIL model: ScoreItems(%d) diverges\n", u);
      return false;
    }
    a.FillUserQuery(u, qa);
    b.FillUserQuery(u, qb);
    if (!BitwiseEqual(qa, qb)) {
      std::fprintf(stderr, "FAIL model: user query %d diverges\n", u);
      return false;
    }
    const auto top_a = index_a.Query(qa, kTopK);
    const auto top_b = index_b.Query(qb, kTopK);
    const auto ivf_top_a = ivf_a.Query(qa, kTopK);
    const auto ivf_top_b = ivf_b.Query(qb, kTopK);
    const auto same = [](const std::vector<std::pair<int32_t, float>>& x,
                         const std::vector<std::pair<int32_t, float>>& y) {
      if (x.size() != y.size()) return false;
      for (size_t i = 0; i < x.size(); ++i) {
        if (x[i].first != y[i].first ||
            std::memcmp(&x[i].second, &y[i].second, sizeof(float)) != 0) {
          return false;
        }
      }
      return true;
    };
    if (!same(top_a, top_b) || !same(ivf_top_a, ivf_top_b)) {
      std::fprintf(stderr, "FAIL model: top-%zu for user %d diverges\n",
                   kTopK, u);
      return false;
    }
    if (!same(sq8_a.Query(qa, kTopK), top_a)) {
      std::fprintf(stderr,
                   "FAIL model: SQ8 top-%zu for user %d is not bitwise "
                   "the float32 top-%zu\n",
                   kTopK, u, kTopK);
      *sq8_ok = false;
      return false;
    }
  }
  return true;
}

int RunSmoke() {
  Trajectory traj;
  MegaWorld streamed;
  MegaWorld reference;
  traj.Stage("generate_streamed", 0, [&] {
    streamed = kgrec::GenerateMegaWorld(kgrec::MegaLitePreset());
  });
  traj.Stage("generate_reference", 0, [&] {
    MegaWorldConfig named = kgrec::MegaLitePreset();
    named.drop_names = false;  // fully uncompacted: named + materialized
    reference = kgrec::GenerateMegaWorldReference(named);
  });
  bool world_ok = false;
  traj.Stage("finalize_compare",
             SubstrateBytes(streamed.kg, streamed.interactions), [&] {
               streamed.kg.Finalize();
               reference.kg.Finalize();
               world_ok = SameWorld(streamed, reference);
             });
  bool model_ok = false;
  bool sq8_ok = false;
  traj.Stage("mf_fit_compare",
             SubstrateBytes(streamed.kg, streamed.interactions), [&] {
               const MfRecommender a = FitMf(streamed, SmokeMfConfig());
               const MfRecommender b = FitMf(reference, SmokeMfConfig());
               model_ok = SameModel(a, b, streamed.config.num_users,
                                    streamed.config.num_items, &sq8_ok);
             });

  const size_t peak = kgrec::PeakRssBytes();
  const bool rss_ok = peak <= kPeakRssBudgetSmoke;
  if (!rss_ok) {
    std::fprintf(stderr, "FAIL peak RSS %.1f MiB > budget %.1f MiB\n",
                 static_cast<double>(peak) / kMiB,
                 static_cast<double>(kPeakRssBudgetSmoke) / kMiB);
  }
  const bool ok = world_ok && model_ok && sq8_ok && rss_ok;
  const std::string json =
      kgrec::bench::JsonWriter()
          .Field("bench", "mega_scale")
          .Field("mode", "smoke")
          .Field("world_bitwise", world_ok)
          .Field("model_bitwise", model_ok)
          .Field("sq8_bitwise", sq8_ok)
          .Field("peak_rss_bytes", peak)
          .Field("rss_budget_bytes", kPeakRssBudgetSmoke)
          .Field("pass", ok)
          .Raw("stages", kgrec::bench::JsonWriter::Array(traj.JsonRows()))
          .str();
  kgrec::bench::JsonWriter::WriteFile("BENCH_mega.json", json);
  std::printf("\n%s\n",
              ok ? "PASS: streamed world bitwise-matches reference, "
                   "RSS within budget"
                 : "FAIL: see messages above");
  return ok ? 0 : 1;
}

int RunFull() {
  Trajectory traj;
  MegaWorld world;
  traj.Stage("generate_streamed", 0, [&] {
    world = kgrec::GenerateMegaWorld(kgrec::MegaPreset());
  });
  traj.Stage("kg_finalize", SubstrateBytes(world.kg, world.interactions),
             [&] { world.kg.Finalize(); });
  traj.Stage("kg_release_triples",
             SubstrateBytes(world.kg, world.interactions),
             [&] { world.kg.ReleaseTriples(); });
  MfConfig mf_config;
  mf_config.dim = 16;
  mf_config.epochs = 2;
  // The dense Adagrad step walks every parameter (19.2M floats here) per
  // batch; at the default batch_size=256 that is ~78k full-table sweeps
  // — hours on one core. Large batches amortize the dense step to a
  // tractable count without changing what the stage measures (the
  // substrate's memory trajectory, not MF quality).
  mf_config.batch_size = 1 << 16;
  // No weight decay: Adagrad's dense decay term shrinks every
  // *untouched* embedding by ~lr per step (the decay gradient is
  // self-normalized by its own accumulator), and at this scale most of
  // the 200k items are cold in any given batch — two epochs collapse
  // the table from init 0.1 down to 1e-17..1e-5, a 12-decade spread
  // that makes the retrieval stage an accidental degenerate-input
  // stress test instead of a perf measurement over a healthy
  // embedding table.
  mf_config.l2 = 0.0f;
  MfRecommender model(mf_config);
  traj.Stage("mf_fit", SubstrateBytes(world.kg, world.interactions), [&] {
    RecContext context;
    context.train = &world.interactions;
    context.item_kg = &world.kg;
    context.seed = 17;
    model.Fit(context);
  });
  std::unique_ptr<BruteForceIndex> brute;
  traj.Stage("brute_index_build",
             SubstrateBytes(world.kg, world.interactions), [&] {
               brute = std::make_unique<BruteForceIndex>(
                   model.ExportItemFactors());
             });
  std::unique_ptr<IvfIndex> ivf;
  traj.Stage("ivf_index_build",
             SubstrateBytes(world.kg, world.interactions), [&] {
               ivf = std::make_unique<IvfIndex>(model.ExportItemFactors(),
                                                IvfConfig{});
             });
  std::unique_ptr<BruteForceIndex> sq8;
  traj.Stage("sq8_index_build",
             SubstrateBytes(world.kg, world.interactions), [&] {
               sq8 = std::make_unique<BruteForceIndex>(
                   model.ExportItemFactors(), Sq8Spec());
             });

  // The 4x-smaller-factors claim, measured at catalog scale: bytes the
  // SQ8 scan keeps resident (codes + grid) vs the float factor matrix.
  const size_t factor_bytes =
      brute->num_items() * brute->dim() * sizeof(float);
  const size_t sq8_bytes =
      sq8->quantized()->code_bytes() + sq8->quantized()->grid_bytes();
  const double sq8_bytes_ratio =
      factor_bytes > 0
          ? static_cast<double>(sq8_bytes) / static_cast<double>(factor_bytes)
          : 0.0;
  const bool sq8_bytes_ok = sq8_bytes_ratio <= kSq8BytesRatioBudget;
  if (!sq8_bytes_ok) {
    std::fprintf(stderr,
                 "FAIL sq8 bytes ratio %.3f > budget %.2f "
                 "(%zu sq8 bytes vs %zu float bytes)\n",
                 sq8_bytes_ratio, kSq8BytesRatioBudget, sq8_bytes,
                 factor_bytes);
  }

  constexpr int32_t kQueryUsers = 512;
  double brute_qps = 0.0, ivf_qps = 0.0, sq8_qps = 0.0;
  bool sq8_bitwise = true;
  traj.Stage("queries", SubstrateBytes(world.kg, world.interactions), [&] {
    std::vector<float> query(model.factor_dim());
    const int32_t step =
        std::max(1, world.config.num_users / kQueryUsers);
    auto time_index = [&](const kgrec::retrieval::ItemIndex& index) {
      const auto start = Clock::now();
      size_t queries = 0;
      for (int32_t u = 0; u < world.config.num_users; u += step) {
        model.FillUserQuery(u, query);
        index.Query(query, kTopK);
        ++queries;
      }
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      return seconds > 0.0 ? queries / seconds : 0.0;
    };
    brute_qps = time_index(*brute);
    ivf_qps = time_index(*ivf);
    sq8_qps = time_index(*sq8);
    // Bitwise gate at catalog scale: sampled users, full top-K compare.
    const int32_t check_step =
        std::max(1, world.config.num_users / 64);
    for (int32_t u = 0; u < world.config.num_users; u += check_step) {
      model.FillUserQuery(u, query);
      const auto exact = brute->Query(query, kTopK);
      const auto approx = sq8->Query(query, kTopK);
      if (exact.size() != approx.size() ||
          std::memcmp(exact.data(), approx.data(),
                      exact.size() * sizeof(exact[0])) != 0) {
        std::fprintf(stderr,
                     "FAIL sq8 top-%zu for user %d is not bitwise the "
                     "float32 top-%zu\n",
                     kTopK, u, kTopK);
        sq8_bitwise = false;
        break;
      }
    }
  });

  // Per-structure logical-byte breakdown for the JSON artifact.
  MemoryVisitor visitor;
  world.kg.MemoryUse(visitor);
  world.interactions.MemoryUse(visitor);
  std::vector<std::string> structure_rows;
  for (const auto& [name, bytes] : visitor.entries()) {
    structure_rows.push_back(kgrec::bench::JsonWriter()
                                 .Field("structure", name)
                                 .Field("bytes", bytes)
                                 .str());
  }

  const size_t peak = kgrec::PeakRssBytes();
  const bool rss_ok = peak <= kPeakRssBudgetFull;
  if (!rss_ok) {
    std::fprintf(stderr, "FAIL peak RSS %.1f MiB > budget %.1f MiB\n",
                 static_cast<double>(peak) / kMiB,
                 static_cast<double>(kPeakRssBudgetFull) / kMiB);
  }
  // sq8_speedup is informational: at dim 16 the float scan is still
  // cache-resident here, so the two run at parity and the 4x byte
  // shrink is a capacity win, not a latency one. The bytes ratio and
  // the bitwise equality are the hard gates.
  const double sq8_speedup = brute_qps > 0.0 ? sq8_qps / brute_qps : 0.0;
  const bool ok = rss_ok && sq8_bytes_ok && sq8_bitwise;
  const std::string json =
      kgrec::bench::JsonWriter()
          .Field("bench", "mega_scale")
          .Field("mode", "full")
          .Field("num_users", static_cast<size_t>(world.config.num_users))
          .Field("num_items", static_cast<size_t>(world.config.num_items))
          .Field("num_facts", world.kg.num_triples())
          .Field("num_interactions",
                 world.interactions.num_interactions())
          .Field("brute_qps", brute_qps)
          .Field("ivf_qps", ivf_qps)
          .Field("sq8_brute_qps", sq8_qps)
          .Field("sq8_speedup", sq8_speedup)
          .Field("sq8_bitwise", sq8_bitwise)
          .Field("factor_bytes", factor_bytes)
          .Field("sq8_code_bytes", sq8->quantized()->code_bytes())
          .Field("sq8_grid_bytes", sq8->quantized()->grid_bytes())
          .Field("sq8_bytes_ratio", sq8_bytes_ratio)
          .Field("sq8_bytes_ratio_budget", kSq8BytesRatioBudget)
          .Field("peak_rss_bytes", peak)
          .Field("rss_budget_bytes", kPeakRssBudgetFull)
          .Field("pass", ok)
          .Raw("stages", kgrec::bench::JsonWriter::Array(traj.JsonRows()))
          .Raw("structures",
               kgrec::bench::JsonWriter::Array(structure_rows))
          .str();
  kgrec::bench::JsonWriter::WriteFile("BENCH_mega.json", json);
  std::printf("\nbrute %.0f q/s  ivf %.0f q/s  sq8 %.0f q/s "
              "(%.2fx brute, %.3fx bytes)\n%s\n",
              brute_qps, ivf_qps, sq8_qps, sq8_speedup, sq8_bytes_ratio,
              ok ? "PASS: RSS within budget, SQ8 bitwise and within the "
                   "bytes budget"
                 : "FAIL: see messages above");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return smoke ? RunSmoke() : RunFull();
}
