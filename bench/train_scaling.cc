// Threaded-training scaling harness: times serial (num_threads = 1)
// versus threaded Fit for each family that opted into deterministic
// multi-threaded training — the sharded KGE trainer, a KGE-backed
// recommender (CFKG), the parallel ripple-set build (RippleNet), the
// per-entity attention refresh (KGAT) and the per-user path-context
// precompute (KPRN) — and verifies the determinism contract: every
// thread count >= 1 must produce **bitwise identical** parameters /
// scores, because shard layouts, per-unit counter-forked RNG streams
// (Rng::Fork) and gradient reductions are functions of the configuration
// alone. Exits non-zero on any divergence.
//
// On a 1-core container the speedup column is informational only; the
// bitwise column is the contract.
//
// `--smoke` shrinks the world and epoch counts for the tier-1 ctest leg.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/serialize.h"
#include "core/thread_pool.h"
#include "data/presets.h"
#include "embed/cfkg.h"
#include "kge/kge_model.h"
#include "kge/kge_trainer.h"
#include "path/kprn.h"
#include "unified/kgat.h"
#include "unified/ripplenet.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One timed training run: wall time plus a float fingerprint (trained
/// parameters or a score grid) that must be bitwise-stable across thread
/// counts.
struct Timed {
  double seconds = 0.0;
  std::vector<float> fingerprint;
};

/// A family row: `run(threads)` trains from scratch at the given thread
/// count and fingerprints the result.
struct Family {
  std::string name;
  std::function<Timed(size_t threads)> run;
};

std::vector<float> ScoreGrid(const kgrec::Recommender& model,
                             const kgrec::bench::Workbench& bench) {
  std::vector<float> out;
  const auto num_users =
      static_cast<int32_t>(bench.split.train.num_users());
  const auto num_items =
      static_cast<int32_t>(bench.split.train.num_items());
  for (int32_t u = 0; u < num_users; u += 13) {
    for (int32_t i = 0; i < num_items; i += 17) {
      out.push_back(model.Score(u, i));
    }
  }
  return out;
}

template <typename Model, typename Config>
Timed TimeRecommender(Config config, const kgrec::bench::Workbench& bench) {
  Model model(config);
  Timed result;
  const auto t0 = Clock::now();
  model.Fit(bench.Context(17));
  const auto t1 = Clock::now();
  result.seconds = Seconds(t0, t1);
  result.fingerprint = ScoreGrid(model, bench);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  kgrec::WorldConfig world_config =
      kgrec::GetPreset("movielens-100k").config;
  world_config.num_users = smoke ? 40 : 300;
  world_config.num_items = smoke ? 60 : 400;
  world_config.avg_interactions_per_user = smoke ? 8.0 : 12.0;
  const kgrec::bench::Workbench bench =
      kgrec::bench::MakeWorkbench(world_config);

  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  std::vector<Family> families;

  families.push_back(
      {"kge-transe", [&](size_t threads) {
         kgrec::Rng rng(21);
         const kgrec::KnowledgeGraph& kg = bench.world.item_kg;
         auto model = kgrec::MakeKgeModel("transe", kg.num_entities(),
                                          kg.num_relations(), 16, rng);
         kgrec::KgeTrainConfig config;
         config.epochs = smoke ? 3 : 10;
         config.batch_size = 128;
         config.num_threads = threads;
         Timed result;
         const auto t0 = Clock::now();
         kgrec::TrainKge(*model, kg, config);
         result.seconds = Seconds(t0, Clock::now());
         for (const kgrec::NamedTensor& t :
              kgrec::SnapshotParams(model->Params())) {
           result.fingerprint.insert(result.fingerprint.end(),
                                     t.data.begin(), t.data.end());
         }
         return result;
       }});

  families.push_back({"CFKG", [&](size_t threads) {
                        kgrec::CfkgConfig config;
                        config.epochs = smoke ? 3 : 10;
                        config.num_threads = threads;
                        return TimeRecommender<kgrec::CfkgRecommender>(
                            config, bench);
                      }});

  families.push_back({"RippleNet", [&](size_t threads) {
                        kgrec::RippleNetConfig config;
                        config.epochs = smoke ? 2 : 6;
                        config.hop_size = 16;
                        config.num_threads = threads;
                        return TimeRecommender<kgrec::RippleNetRecommender>(
                            config, bench);
                      }});

  families.push_back({"KGAT", [&](size_t threads) {
                        kgrec::KgatConfig config;
                        config.epochs = smoke ? 2 : 5;
                        config.num_threads = threads;
                        return TimeRecommender<kgrec::KgatRecommender>(
                            config, bench);
                      }});

  families.push_back({"KPRN", [&](size_t threads) {
                        kgrec::KprnConfig config;
                        config.epochs = smoke ? 1 : 2;
                        config.num_threads = threads;
                        return TimeRecommender<kgrec::KprnRecommender>(
                            config, bench);
                      }});

  std::printf(
      "== threaded training scaling (hardware threads: %zu%s) ==\n\n",
      kgrec::ThreadPool::HardwareThreads(), smoke ? ", smoke" : "");
  std::printf("%12s %8s %10s %9s %10s\n", "family", "threads", "fit_s",
              "speedup", "bitwise");

  bool all_bitwise = true;
  std::vector<std::string> json_rows;
  for (const Family& family : families) {
    double serial_seconds = 0.0;
    std::vector<float> reference;
    for (size_t threads : thread_counts) {
      const Timed run = family.run(threads);
      bool bitwise = true;
      if (threads == 1) {
        serial_seconds = run.seconds;
        reference = run.fingerprint;
      } else {
        bitwise = run.fingerprint == reference;
        all_bitwise = all_bitwise && bitwise;
      }
      std::printf("%12s %8zu %10.3f %8.2fx %10s\n", family.name.c_str(),
                  threads, run.seconds, serial_seconds / run.seconds,
                  bitwise ? "yes" : "NO — BUG");
      json_rows.push_back(kgrec::bench::JsonWriter()
                              .Field("family", family.name)
                              .Field("threads", threads)
                              .Field("fit_seconds", run.seconds)
                              .Field("speedup",
                                     serial_seconds / run.seconds)
                              .Field("bitwise", bitwise)
                              .str());
    }
  }

  std::printf(
      "\nContract: the bitwise column must read 'yes' on every row; the\n"
      "speedup column tracks the machine's core count (~1.0x on 1 core).\n");
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_train_scaling.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "train_scaling")
          .Field("mode", smoke ? "smoke" : "full")
          .Field("bitwise", all_bitwise)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", all_bitwise)
          .Raw("rows", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  return all_bitwise ? 0 : 1;
}
