// Parallel-evaluation scaling harness: times EvaluateCtr / EvaluateTopK
// at 1/2/4/8 threads on the table3_method_matrix world and verifies the
// determinism contract — every thread count must produce **bitwise
// identical** metrics, because negatives come from per-user counter-based
// RNG streams (Rng::Fork) and reductions run in a fixed order.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/registry.h"
#include "core/thread_pool.h"
#include "data/presets.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool SameTopK(const kgrec::TopKMetrics& a, const kgrec::TopKMetrics& b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

bool SameCtr(const kgrec::CtrMetrics& a, const kgrec::CtrMetrics& b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

}  // namespace

int main() {
  // The same world profile as table3_method_matrix, scaled up so the
  // evaluation loop (not model training) dominates the timings.
  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  config.num_users = 600;
  config.num_items = 800;
  config.avg_interactions_per_user = 12.0;
  kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);

  auto model = kgrec::MakeRecommender("KGCN");
  model->Fit(bench.Context(17));

  std::printf("== parallel evaluation scaling (hardware threads: %zu) ==\n\n",
              kgrec::ThreadPool::HardwareThreads());
  std::printf("%8s %10s %10s %12s %10s\n", "threads", "ctr_s", "topk_s",
              "topk_speedup", "bitwise");

  kgrec::CtrMetrics ctr_ref;
  kgrec::TopKMetrics topk_ref;
  double topk_serial = 0.0;
  bool all_bitwise = true;
  std::vector<std::string> json_rows;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    kgrec::EvalOptions options;
    options.num_threads = threads;
    options.num_negatives = 200;
    options.k = 10;

    const auto t0 = Clock::now();
    kgrec::CtrMetrics ctr =
        EvaluateCtr(*model, bench.split.train, bench.split.test, options);
    const auto t1 = Clock::now();
    kgrec::TopKMetrics topk =
        EvaluateTopK(*model, bench.split.train, bench.split.test, options);
    const auto t2 = Clock::now();

    const double topk_s = Seconds(t1, t2);
    bool bitwise = true;
    if (threads == 1) {
      ctr_ref = ctr;
      topk_ref = topk;
      topk_serial = topk_s;
    } else {
      bitwise = SameCtr(ctr, ctr_ref) && SameTopK(topk, topk_ref);
    }
    std::printf("%8zu %10.3f %10.3f %11.2fx %10s\n", threads,
                Seconds(t0, t1), topk_s, topk_serial / topk_s,
                bitwise ? "yes" : "NO — BUG");
    all_bitwise = all_bitwise && bitwise;
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("threads", threads)
                            .Field("ctr_seconds", Seconds(t0, t1))
                            .Field("topk_seconds", topk_s)
                            .Field("topk_speedup", topk_serial / topk_s)
                            .Field("bitwise", bitwise)
                            .str());
  }
  std::printf(
      "\nContract: the bitwise column must read 'yes' on every row; the\n"
      "speedup column tracks the machine's core count (1.0x on 1 core).\n");
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_eval_scaling.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "eval_scaling")
          .Field("hardware_threads", kgrec::ThreadPool::HardwareThreads())
          .Field("bitwise", all_bitwise)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", all_bitwise)
          .Raw("rows", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  return all_bitwise ? 0 : 1;
}
