// Online-updates harness (DESIGN.md §13): the freshness-vs-staleness
// frontier. A synthetic world is streamed as timestamped events; models
// are fitted on the base snapshot and then compared three ways at a
// temporal cutoff:
//
//   stale    fit at t = 0, only *growth* events applied (tables sized to
//            the post-cut world, nothing folded) — what serving looks
//            like when nobody retrains;
//   updated  fit at t = 0, Recommender::Update() folds every checkpoint
//            batch — the online path this harness exists to price;
//   refit    Fit() from scratch on the world at the cutoff — the
//            freshness ceiling, at full training cost.
//
// Evaluation is a leave-out over the *streamed* users (the population
// the stale model has never seen): for every user that arrives before
// the cutoff with enough history, the tail of their pre-cut
// interactions is withheld from the feed — no comparator ever trains on
// it — and becomes their test positives. The metric is CTR AUC: it is
// rank-based with tie-group averaging, so a model that scores an
// unknown user constantly earns an honest 0.5 rather than gaming a
// top-K candidate order. The gap refit - stale is the staleness drift
// and (updated - stale) / drift is how much of it the online path
// recovers. The full run gates the MF and KGE families on recovery
// >= 0.5 at <= 10% of refit cost, and emits BENCH_online.json.
//
//   ./online_updates          full frontier (every updatable model)
//   ./online_updates --smoke  bitwise gates only, for CI:
//                             - replayed prefixes == from-scratch builds
//                               (StreamEquals) at several timestamps;
//                             - fit -> update and save -> load -> update
//                               serve bitwise-identical scores for every
//                               updatable model;
//                             - updated-model metrics are bitwise across
//                               eval thread counts;
//                             - a non-updatable model refuses with
//                               kUnimplemented.
//
// Exits non-zero if any gate fails.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/event_stream.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

kgrec::EventStreamConfig MakeStreamConfig(bool smoke) {
  kgrec::WorldConfig world;
  world.name = "online";
  world.item_relations = {
      {.name = "genre", .num_values = 8, .links_per_item = 2},
      {.name = "studio", .num_values = 6, .links_per_item = 1},
  };
  if (smoke) {
    world.num_users = 30;
    world.num_items = 24;
    world.avg_interactions_per_user = 6.0;
  } else {
    world.num_users = 600;
    world.num_items = 300;
    world.avg_interactions_per_user = 16.0;
    world.item_relations.push_back(
        {.name = "era", .num_values = 5, .links_per_item = 1});
  }
  kgrec::EventStreamConfig config;
  config.world = world;
  config.base_user_fraction = smoke ? 0.7 : 0.6;
  config.held_out_values_per_relation = 2;
  config.stream_seed = 17;
  return config;
}

kgrec::RecContext MakeContext(const kgrec::InteractionDataset& train,
                              const kgrec::KnowledgeGraph& kg,
                              const kgrec::UserItemGraph& uig) {
  kgrec::RecContext ctx;
  ctx.train = &train;
  ctx.item_kg = &kg;
  ctx.user_item_graph = &uig;
  ctx.seed = 17;
  return ctx;
}

/// The growth-only view of a batch: kNewUser / kNewEntity events keep
/// their timestamps, everything foldable is dropped. Applying this keeps
/// a stale model's tables sized to the post-batch world without teaching
/// it anything — the "nobody retrains" comparator.
std::vector<kgrec::Event> GrowthOnly(const kgrec::EventBatch& batch) {
  std::vector<kgrec::Event> growth;
  for (const kgrec::Event& e : batch.events) {
    if (e.kind == kgrec::EventKind::kNewUser ||
        e.kind == kgrec::EventKind::kNewEntity) {
      growth.push_back(e);
    }
  }
  return growth;
}

/// Bitwise score comparison over a spread of users (old and new) and a
/// duplicate-bearing candidate list.
bool ScoresBitwise(const kgrec::Recommender& a, const kgrec::Recommender& b,
                   int32_t num_users, int32_t num_items, std::string* why) {
  std::vector<int32_t> candidates;
  for (int32_t i = 0; i < num_items; i += 3) candidates.push_back(i);
  candidates.push_back(candidates.front());
  for (int32_t user = 0; user < num_users; user += num_users / 7 + 1) {
    const std::vector<float> sa = a.ScoreItems(user, candidates);
    const std::vector<float> sb = b.ScoreItems(user, candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (std::memcmp(&sa[i], &sb[i], sizeof(float)) != 0) {
        *why = "user " + std::to_string(user) + " item " +
               std::to_string(candidates[i]);
        return false;
      }
    }
  }
  return true;
}

bool MetricsBitwise(const kgrec::TopKMetrics& a,
                    const kgrec::TopKMetrics& b) {
  return std::memcmp(&a.precision, &b.precision, sizeof(double)) == 0 &&
         std::memcmp(&a.recall, &b.recall, sizeof(double)) == 0 &&
         std::memcmp(&a.hit_rate, &b.hit_rate, sizeof(double)) == 0 &&
         std::memcmp(&a.ndcg, &b.ndcg, sizeof(double)) == 0 &&
         std::memcmp(&a.mrr, &b.mrr, sizeof(double)) == 0 &&
         a.num_users == b.num_users;
}

/// --smoke: the determinism gates (see file header).
int RunSmoke() {
  const kgrec::EventStream stream(MakeStreamConfig(/*smoke=*/true));
  const size_t n = stream.size();
  std::printf("== online updates (smoke: %zu events) ==\n\n", n);

  bool all_ok = true;
  std::vector<std::string> json_rows;

  // Gate 1: a replayed prefix is the from-scratch world, at every probed
  // timestamp, applied incrementally batch by batch.
  {
    kgrec::InteractionDataset replayed = stream.BaseInteractions();
    kgrec::KnowledgeGraph replayed_kg = stream.BaseItemKg();
    size_t prev = 0;
    bool replay_ok = true;
    for (size_t t : {size_t{0}, n / 3, 2 * n / 3, n}) {
      stream.ApplyBatch(stream.Batch(prev, t), &replayed, &replayed_kg);
      prev = t;
      const kgrec::StreamSnapshot snap =
          stream.MaterializeAt(static_cast<int64_t>(t));
      std::string why;
      if (!kgrec::StreamEquals(replayed, replayed_kg, snap.interactions,
                               snap.item_kg, &why)) {
        std::printf("replay@%zu  FAIL: %s\n", t, why.c_str());
        replay_ok = false;
      } else {
        std::printf("replay@%-4zu bitwise\n", t);
      }
    }
    all_ok = all_ok && replay_ok;
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("gate", "replay_equals_materialized")
                            .Field("pass", replay_ok)
                            .str());
  }

  // Base structures stay pristine (they are the restore context for
  // save -> load -> update); the live set absorbs the whole stream in
  // two batches.
  const kgrec::InteractionDataset base_train = stream.BaseInteractions();
  const kgrec::KnowledgeGraph base_kg = stream.BaseItemKg();
  const kgrec::UserItemGraph base_uig = stream.BaseUserItemGraph();
  const kgrec::RecContext base_ctx = MakeContext(base_train, base_kg, base_uig);

  kgrec::InteractionDataset live_train = base_train;
  kgrec::KnowledgeGraph live_kg = base_kg;
  kgrec::UserItemGraph live_uig = base_uig;
  const kgrec::RecContext live_ctx = MakeContext(live_train, live_kg, live_uig);

  // Gate 2: per updatable model, fit -> update must serve bitwise the
  // same scores as fit -> save -> load -> update. The two halves of the
  // stream arrive as separate batches so batch-partition independence is
  // exercised too.
  const std::string ckpt =
      "/tmp/kgrec_online_" + std::to_string(static_cast<long>(getpid())) +
      ".kgrc";
  std::vector<std::unique_ptr<kgrec::Recommender>> updated_models;
  std::vector<std::unique_ptr<kgrec::Recommender>> restored_models;
  for (const std::string& name : kgrec::UpdatableMethodNames()) {
    std::unique_ptr<kgrec::Recommender> fitted = kgrec::MakeRecommender(name);
    fitted->Fit(base_ctx);
    kgrec::Status status = fitted->Save(ckpt);
    std::unique_ptr<kgrec::Recommender> restored;
    if (status.ok()) status = kgrec::LoadModel(base_ctx, ckpt, &restored);
    if (!status.ok()) {
      std::printf("%-14s FAIL: %s\n", name.c_str(), status.ToString().c_str());
      all_ok = false;
      continue;
    }
    updated_models.push_back(std::move(fitted));
    restored_models.push_back(std::move(restored));
  }
  std::remove(ckpt.c_str());
  for (const size_t t : {n / 2, n}) {
    const kgrec::EventBatch batch = stream.Batch(t == n / 2 ? 0 : n / 2, t);
    stream.ApplyBatch(batch, &live_train, &live_kg);
    stream.ApplyBatchToUserItemGraph(batch, &live_uig);
    for (size_t i = 0; i < updated_models.size(); ++i) {
      kgrec::Status status = updated_models[i]->Update(live_ctx, batch);
      if (status.ok()) status = restored_models[i]->Update(live_ctx, batch);
      if (!status.ok()) {
        std::printf("%-14s FAIL: update: %s\n",
                    updated_models[i]->name().c_str(),
                    status.ToString().c_str());
        all_ok = false;
      }
    }
  }
  for (size_t i = 0; i < updated_models.size(); ++i) {
    const std::string name = updated_models[i]->name();
    std::string why;
    const bool ok =
        ScoresBitwise(*updated_models[i], *restored_models[i],
                      stream.total_num_users(), stream.num_items(), &why);
    std::printf("%-14s %s%s\n", name.c_str(),
                ok ? "update bitwise across checkpoint roundtrip"
                   : "FAIL: update diverges after save/load at ",
                ok ? "" : why.c_str());
    all_ok = all_ok && ok;
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("gate", "update_roundtrip_bitwise")
                            .Field("model", name)
                            .Field("pass", ok)
                            .str());
  }

  // Gate 3: metrics of an updated model are bitwise across eval thread
  // counts (the eval contract must survive the update path: grown tables,
  // refreshed ripple rows). Probe with the first updatable model.
  if (!updated_models.empty()) {
    kgrec::InteractionDataset probe_test(live_train.num_users(),
                                         live_train.num_items());
    const auto& events = stream.events();
    for (size_t i = 3 * n / 4; i < n; ++i) {
      if (events[i].kind == kgrec::EventKind::kNewInteraction) {
        probe_test.Add(events[i].user, events[i].item);
      }
    }
    bool threads_ok = true;
    kgrec::EvalOptions options;
    options.seed = kgrec::Rng(102).NextUint64();
    options.num_threads = 1;
    const kgrec::TopKMetrics serial =
        EvaluateTopK(*updated_models[0], live_train, probe_test, options);
    for (const size_t threads : {size_t{2}, size_t{8}}) {
      options.num_threads = threads;
      if (!MetricsBitwise(serial, EvaluateTopK(*updated_models[0], live_train,
                                               probe_test, options))) {
        std::printf("FAIL: metrics diverge at %zu eval threads\n", threads);
        threads_ok = false;
      }
    }
    if (threads_ok) std::printf("%-14s metrics bitwise at 1/2/8 eval threads\n",
                                updated_models[0]->name().c_str());
    all_ok = all_ok && threads_ok;
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("gate", "eval_threads_bitwise")
                            .Field("pass", threads_ok)
                            .str());
  }

  // Gate 4: a model without an online path refuses with kUnimplemented.
  bool refusal_ok = false;
  for (const std::string& name : kgrec::ImplementedMethodNames()) {
    if (kgrec::SupportsUpdate(name)) continue;
    std::unique_ptr<kgrec::Recommender> model = kgrec::MakeRecommender(name);
    const kgrec::Status status =
        model->Update(live_ctx, stream.Batch(0, n));
    refusal_ok = status.code() == kgrec::StatusCode::kUnimplemented;
    std::printf("%-14s %s\n", name.c_str(),
                refusal_ok ? "refuses update (kUnimplemented)"
                           : "FAIL: wrong refusal status");
    break;
  }
  all_ok = all_ok && refusal_ok;
  json_rows.push_back(kgrec::bench::JsonWriter()
                          .Field("gate", "non_updatable_refuses")
                          .Field("pass", refusal_ok)
                          .str());

  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_online.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "online_updates")
          .Field("mode", "smoke")
          .Field("num_events", n)
          .Field("pass", all_ok)
          .Raw("gates", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  std::printf("\n%s\n", all_ok ? "ALL GATES PASS" : "GATE FAILURE");
  return all_ok ? 0 : 1;
}

struct FrontierRow {
  std::string model;
  double stale_auc = 0.0;
  double updated_auc = 0.0;
  double refit_auc = 0.0;
  double update_seconds = 0.0;
  double refit_seconds = 0.0;
  bool update_ok = true;
};

/// Full mode: the frontier (see file header).
int RunFull() {
  const kgrec::EventStream stream(MakeStreamConfig(/*smoke=*/false));
  const size_t n = stream.size();
  const size_t cut = 7 * n / 10;      // temporal cutoff: the "now"
  const size_t kCheckpoints = 4;      // batches streamed up to the cut
  const auto& events = stream.events();

  // The leave-out: for every streamed user arriving before the cut with
  // at least 4 pre-cut interactions, withhold the last quarter (>= 1)
  // from the feed as their test positives. Withheld events are simply
  // never applied or folded, so no comparator trains on them.
  std::vector<char> withheld(n, 0);
  {
    std::vector<std::vector<size_t>> per_user(
        static_cast<size_t>(stream.total_num_users()));
    for (size_t i = 0; i < cut; ++i) {
      if (events[i].kind == kgrec::EventKind::kNewInteraction &&
          events[i].user >= stream.base_num_users()) {
        per_user[events[i].user].push_back(i);
      }
    }
    for (const std::vector<size_t>& history : per_user) {
      if (history.size() < 4) continue;
      for (size_t k = history.size() - history.size() / 4;
           k < history.size(); ++k) {
        withheld[history[k]] = 1;
      }
    }
  }

  kgrec::InteractionDataset live_train = stream.BaseInteractions();
  kgrec::KnowledgeGraph live_kg = stream.BaseItemKg();
  kgrec::UserItemGraph live_uig = stream.BaseUserItemGraph();
  const kgrec::RecContext live_ctx = MakeContext(live_train, live_kg, live_uig);

  std::printf(
      "== online updates (full: %zu events, cut at %zu, %zu checkpoints) "
      "==\n\n",
      n, cut, kCheckpoints);

  // Phase 1: fit the "updated" models on the base snapshot; clone each
  // into its "stale" twin through the checkpoint roundtrip (identical
  // starting state, by the checkpoint_roundtrip contract).
  const std::vector<std::string> names = kgrec::UpdatableMethodNames();
  std::vector<std::unique_ptr<kgrec::Recommender>> updated, stale;
  std::vector<FrontierRow> rows(names.size());
  const std::string ckpt =
      "/tmp/kgrec_online_" + std::to_string(static_cast<long>(getpid())) +
      ".kgrc";
  for (size_t i = 0; i < names.size(); ++i) {
    rows[i].model = names[i];
    std::unique_ptr<kgrec::Recommender> model =
        kgrec::MakeRecommender(names[i]);
    model->Fit(live_ctx);
    kgrec::Status status = model->Save(ckpt);
    std::unique_ptr<kgrec::Recommender> twin;
    if (status.ok()) status = kgrec::LoadModel(live_ctx, ckpt, &twin);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: clone failed: %s\n", names[i].c_str(),
                   status.ToString().c_str());
      rows[i].update_ok = false;
    }
    updated.push_back(std::move(model));
    stale.push_back(std::move(twin));
  }
  std::remove(ckpt.c_str());

  // Phase 2: stream the prefix in checkpoint batches, leave-out events
  // removed. The world mutates once per checkpoint; every model then
  // folds the same fed batch — full for "updated" (timed), growth-only
  // for "stale".
  size_t prev = 0;
  for (size_t c = 1; c <= kCheckpoints; ++c) {
    const size_t t = cut * c / kCheckpoints;
    std::vector<kgrec::Event> fed;
    for (size_t i = prev; i < t; ++i) {
      if (!withheld[i]) fed.push_back(events[i]);
    }
    prev = t;
    const kgrec::EventBatch batch{fed};
    stream.ApplyBatch(batch, &live_train, &live_kg);
    stream.ApplyBatchToUserItemGraph(batch, &live_uig);
    const std::vector<kgrec::Event> growth = GrowthOnly(batch);
    const kgrec::EventBatch growth_batch{growth};
    for (size_t i = 0; i < names.size(); ++i) {
      if (!rows[i].update_ok) continue;
      const auto t0 = Clock::now();
      kgrec::Status status = updated[i]->Update(live_ctx, batch);
      rows[i].update_seconds += Seconds(t0, Clock::now());
      if (status.ok()) status = stale[i]->Update(live_ctx, growth_batch);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: update failed: %s\n", names[i].c_str(),
                     status.ToString().c_str());
        rows[i].update_ok = false;
      }
    }
  }

  // The withheld leave-out tail is the test set; every test user exists
  // in every comparator (they all arrived before the cut).
  kgrec::InteractionDataset test(live_train.num_users(),
                                 live_train.num_items());
  for (size_t i = 0; i < cut; ++i) {
    if (withheld[i]) test.Add(events[i].user, events[i].item);
  }

  // Phase 3: refit from scratch on the cut world (timed), then evaluate
  // all three comparators on the withheld tail.
  kgrec::EvalOptions options;
  options.seed = kgrec::Rng(101).NextUint64();
  options.num_threads = 4;  // metrics are thread-count invariant
  std::printf("%-14s %8s %8s %8s %9s %8s %8s %7s\n", "model", "stale",
              "updated", "refit", "recovery", "upd_s", "refit_s", "cost");
  kgrec::bench::PrintRule(78);
  std::vector<std::string> json_rows;
  bool mf_family_ok = false, kge_family_ok = false, all_ok = true;
  for (size_t i = 0; i < names.size(); ++i) {
    FrontierRow& row = rows[i];
    if (!row.update_ok) {
      all_ok = false;
      std::printf("%-14s FAIL (update path)\n", names[i].c_str());
      continue;
    }
    std::unique_ptr<kgrec::Recommender> refit =
        kgrec::MakeRecommender(names[i]);
    const auto t0 = Clock::now();
    refit->Fit(live_ctx);
    row.refit_seconds = Seconds(t0, Clock::now());
    row.stale_auc = EvaluateCtr(*stale[i], live_train, test, options).auc;
    row.updated_auc = EvaluateCtr(*updated[i], live_train, test, options).auc;
    row.refit_auc = EvaluateCtr(*refit, live_train, test, options).auc;

    const double drift = row.refit_auc - row.stale_auc;
    const double gain = row.updated_auc - row.stale_auc;
    const double recovery = drift > 1e-12 ? gain / drift : 1.0;
    const double cost =
        row.refit_seconds > 0.0 ? row.update_seconds / row.refit_seconds : 0.0;
    // Negligible drift (< half an AUC point) means there was nothing to
    // recover; otherwise the online path must close >= half the gap.
    const bool recovered = drift < 0.005 || gain >= 0.5 * drift;
    const bool cheap = cost <= 0.10;
    if (names[i] == "MF" || names[i] == "BPR-MF") {
      mf_family_ok = mf_family_ok || (recovered && cheap);
    }
    if (names[i] == "CKE" || names[i] == "CFKG" || names[i] == "ECFKG") {
      kge_family_ok = kge_family_ok || (recovered && cheap);
    }
    std::printf("%-14s %8.4f %8.4f %8.4f %8.0f%% %8.3f %8.3f %6.1f%%\n",
                names[i].c_str(), row.stale_auc, row.updated_auc,
                row.refit_auc, recovery * 100.0, row.update_seconds,
                row.refit_seconds, cost * 100.0);
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("model", names[i])
                            .Field("stale_auc", row.stale_auc)
                            .Field("updated_auc", row.updated_auc)
                            .Field("refit_auc", row.refit_auc)
                            .Field("recovery", recovery)
                            .Field("update_seconds", row.update_seconds)
                            .Field("refit_seconds", row.refit_seconds)
                            .Field("cost_ratio", cost)
                            .str());
  }
  kgrec::bench::PrintRule(78);
  all_ok = all_ok && mf_family_ok && kge_family_ok;
  std::printf(
      "\nGate: in the MF family and in the KGE family, at least one model\n"
      "must recover >= 50%% of the staleness drift (refit - stale AUC) at\n"
      "<= 10%% of refit cost.  MF family: %s   KGE family: %s\n",
      mf_family_ok ? "PASS" : "FAIL", kge_family_ok ? "PASS" : "FAIL");
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_online.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "online_updates")
          .Field("mode", "full")
          .Field("num_events", n)
          .Field("cut", cut)
          .Field("checkpoints", kCheckpoints)
          .Field("test_interactions", test.num_interactions())
          .Field("mf_family_pass", mf_family_ok)
          .Field("kge_family_pass", kge_family_ok)
          .Field("pass", all_ok)
          .Raw("rows", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return smoke ? RunSmoke() : RunFull();
}
