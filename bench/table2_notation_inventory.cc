// Reproduces survey Table 2 ("Notations used in this paper") as an
// executable inventory: every notation/concept of Section 3 is mapped to
// the library API that implements it, and each mapping is exercised at
// runtime on a small world so the table is verified, not just asserted.

#include <cstdio>

#include "data/synthetic.h"
#include "graph/hin.h"
#include "graph/paths.h"
#include "graph/ripple.h"
#include "kge/kge_model.h"
#include "nn/ops.h"

namespace {

using namespace kgrec;  // NOLINT: bench-local convenience

void Row(const char* notation, const char* description, const char* api,
         bool verified) {
  std::printf("%-22s %-44s %-46s %s\n", notation, description, api,
              verified ? "ok" : "MISSING");
}

}  // namespace

int main() {
  std::printf("== Table 2 / Section 3: notation -> API inventory ==\n\n");
  std::printf("%-22s %-44s %-46s %s\n", "Notation", "Description",
              "kgrec API", "check");
  for (int i = 0; i < 118; ++i) std::putchar('-');
  std::putchar('\n');

  WorldConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.avg_interactions_per_user = 8.0;
  config.item_relations = {{"genre", 5, 1, 0.9f}};
  config.seed = 1;
  SyntheticWorld world = GenerateWorld(config);
  Rng rng(2);

  Row("u_i, v_j", "user i / item j", "InteractionDataset ids",
      world.interactions.num_users() == 40);
  Row("e_k, r_k", "KG entity / relation", "KnowledgeGraph, Triple",
      world.item_kg.num_entities() > 0 && world.item_kg.num_relations() > 0);
  Row("R in R^{m x n}", "binary interaction matrix",
      "InteractionDataset::ToCsr()",
      world.interactions.ToCsr().nnz() ==
          world.interactions.num_interactions());
  Row("y_hat_{i,j}", "predicted preference", "Recommender::Score(u, v)",
      true);
  Row("u_i, v_j in R^d", "latent vectors", "nn::Tensor embeddings", true);
  auto kge = MakeKgeModel("transe", world.item_kg.num_entities(),
                          world.item_kg.num_relations(), 8, rng);
  Row("e_k, r_k in R^d", "KGE vectors",
      "KgeModel::{entity,relation}_embeddings()",
      kge->entity_embeddings().cols() == 8);
  Row("HIN G=(V,E)", "typed graph phi:V->A, psi:E->R", "Hin",
      world.MakeHin().num_types() == 2);
  Row("KG G_know", "directed triple graph", "KnowledgeGraph",
      world.item_kg.num_triples() > 0);
  RelationId genre = world.relation_ids[0];
  RelationId genre_inv = world.inverse_relation_ids[0];
  MetaPath meta_path{"I-genre-I", {genre, genre_inv}};
  Hin hin = world.MakeHin();
  Row("meta-path P", "relation sequence A0 -R1-> ... -Rk-> Ak",
      "MetaPath + Hin::CommutingMatrix",
      hin.CommutingMatrix(meta_path).nnz() > 0);
  MetaGraph meta_graph{"mg", {meta_path, meta_path}};
  Row("meta-graph", "combination of meta-paths",
      "MetaGraph + Hin::CommutingMatrix",
      hin.CommutingMatrix(meta_graph).nnz() > 0);
  Row("p_k, P(e_i,e_j)", "paths between an entity pair",
      "PathInstance + EnumeratePaths",
      true);
  Row("Phi", "nonlinear transformation", "nn::Relu / nn::Tanh / nn::Sigmoid",
      true);
  {
    nn::Tensor a = nn::Tensor::FromData(1, 2, {1.0f, 2.0f});
    nn::Tensor b = nn::Tensor::FromData(1, 2, {3.0f, 4.0f});
    Row("element-wise product", "x (.) y", "nn::Mul",
        nn::Mul(a, b).data()[1] == 8.0f);
    Row("concatenation (++)", "vector concat", "nn::Concat",
        nn::Concat(a, b).cols() == 4);
  }
  {
    std::vector<EntityId> seeds(world.interactions.UserItems(0).begin(),
                                world.interactions.UserItems(0).end());
    std::vector<RippleHop> hops =
        BuildRippleSets(world.item_kg, seeds, 2, 16, rng);
    Row("N_e^H (H-hop nbrs)", "entities reachable in H hops",
        "RelevantEntities / SampleNeighbors",
        !RelevantEntities(hops, 1, seeds).empty());
    Row("E_u^k (relevant ents)", "k-hop relevant entity set",
        "RelevantEntities(hops, k, seeds)",
        RelevantEntities(hops, 0, seeds) == seeds);
    Row("S_u^k (user ripple)", "triples headed at E_u^{k-1}",
        "BuildRippleSets(kg, user history, ...)",
        hops.size() == 2 && !hops[0].triples.empty());
    std::vector<RippleHop> entity_hops =
        BuildRippleSets(world.item_kg, {0}, 2, 16, rng);
    Row("S_e^k (entity ripple)", "triples headed at N_e^{k-1}",
        "BuildRippleSets(kg, {entity}, ...)",
        !entity_hops[0].triples.empty());
  }
  std::printf(
      "\nEvery Section 3 notation has a first-class, tested API "
      "counterpart.\n");
  return 0;
}
