// Reproduces survey Table 4 ("datasets for different application
// scenarios and corresponding papers"): for each scenario we generate the
// dataset's synthetic stand-in and run the representative methods that
// Table 4 cites for that dataset, printing per-scenario results.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/registry.h"
#include "data/presets.h"

namespace {

/// Representative (implemented) methods per dataset, following the
/// citation lists of Table 4.
std::vector<std::string> MethodsFor(const std::string& dataset) {
  if (dataset == "MovieLens-100K") return {"BPR-MF", "HeteRec", "Hete-MF"};
  if (dataset == "MovieLens-1M") return {"BPR-MF", "CKE", "KTUP", "MKR"};
  if (dataset == "DoubanMovie") return {"BPR-MF", "HeteRec-p"};
  if (dataset == "Book-Crossing") return {"BPR-MF", "RippleNet", "MKR"};
  if (dataset == "Amazon-Book") return {"BPR-MF", "KGAT"};
  if (dataset == "DBbook2014") return {"BPR-MF", "KTUP"};
  if (dataset == "Last.FM") return {"BPR-MF", "KGCN", "KGAT", "MKR"};
  if (dataset == "Yelp challenge") return {"BPR-MF", "FMG", "HeteRec"};
  if (dataset == "Bing-News") return {"BPR-MF", "DKN", "RippleNet"};
  if (dataset == "Amazon Product data") return {"BPR-MF", "CFKG", "RuleRec"};
  if (dataset == "Alibaba Taobao") return {"BPR-MF", "FMG"};
  if (dataset == "Dianping-Food") return {"BPR-MF", "KGCN-LS"};
  if (dataset == "Weibo") return {"BPR-MF", "CFKG"};
  if (dataset == "DBLP") return {"BPR-MF", "Hete-MF"};
  if (dataset == "MeetUp") return {"BPR-MF", "Hete-MF"};
  return {"BPR-MF"};
}

}  // namespace

int main() {
  std::printf(
      "== Table 4: application scenarios x datasets x representative "
      "methods ==\n"
      "Each dataset is a synthetic stand-in with the original's scale/"
      "density/KG profile.\n\n");
  std::printf("%-16s %-16s %7s %7s %8s | %-10s %6s %7s %7s\n", "Scenario",
              "Dataset", "users", "items", "density", "Method", "AUC",
              "NDCG@10", "train_s");
  for (int i = 0; i < 100; ++i) std::putchar('-');
  std::putchar('\n');
  for (const kgrec::ScenarioPreset& preset : kgrec::AllPresets()) {
    kgrec::bench::Workbench bench =
        kgrec::bench::MakeWorkbench(preset.config);
    bool first = true;
    for (const std::string& method : MethodsFor(preset.dataset)) {
      auto model = kgrec::MakeRecommender(method);
      if (model == nullptr) continue;
      kgrec::bench::RunResult result = kgrec::bench::RunModel(*model, bench);
      if (first) {
        std::printf("%-16s %-16s %7d %7d %7.2f%% | %-10s %6.3f %7.3f %7.2f\n",
                    preset.scenario.c_str(), preset.dataset.c_str(),
                    preset.config.num_users, preset.config.num_items,
                    100.0 * bench.split.train.Density(), method.c_str(),
                    result.ctr.auc, result.topk.ndcg, result.train_seconds);
        first = false;
      } else {
        std::printf("%-16s %-16s %7s %7s %8s | %-10s %6.3f %7.3f %7.2f\n",
                    "", "", "", "", "", method.c_str(), result.ctr.auc,
                    result.topk.ndcg, result.train_seconds);
      }
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape: on the sparse scenarios (Book-Crossing, "
      "Amazon-Book,\nDBbook2014, Bing-News, Yelp) the KG-based method "
      "clearly beats BPR-MF;\non the dense scenarios (MovieLens, Weibo) "
      "plain CF is already strong and\nKG methods are competitive — "
      "exactly the survey's sparsity motivation.\n");
  return 0;
}
