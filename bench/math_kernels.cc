// Kernel-layer microbenchmark: times every dispatched kernel in
// math/kernels.h against its scalar reference (kernels::ref), and checks
// the layer's core contract — dispatched and reference outputs must be
// **bitwise identical** (fixed-block accumulation makes which path ran
// unobservable in the results).
//
//   ./math_kernels          full sweep with timings and speedups
//   ./math_kernels --smoke  reduced repetitions, for CI; exits non-zero
//                           on any bitwise divergence
//
// Acceptance floor for the SIMD build (see DESIGN.md): Dot at n=64 and
// MatMul at 64x64x64 should run at >= 2x the scalar reference. The smoke
// run only gates on the bitwise columns — CI machines are too noisy to
// gate on a speed ratio.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "math/kernels.h"
#include "math/rng.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<float> RandomVec(size_t n, kgrec::Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return v;
}

/// Keeps results observable so the timed loops cannot be hoisted away.
volatile float g_sink = 0.0f;

/// Runs `body` (one "operation") repeatedly until the timed window is at
/// least `min_seconds` (after one untimed warm-up call) and returns the
/// mean seconds per operation.
double TimeOp(const std::function<void()>& body, double min_seconds) {
  body();  // warm-up
  double elapsed = 0.0;
  size_t ops = 0;
  size_t batch = 1;
  while (elapsed < min_seconds) {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < batch; ++i) body();
    const auto t1 = Clock::now();
    elapsed += Seconds(t0, t1);
    ops += batch;
    if (batch < (size_t{1} << 20)) batch *= 2;
  }
  return elapsed / static_cast<double>(ops);
}

struct Row {
  std::string name;
  double dispatched_s = 0.0;
  double ref_s = 0.0;
  bool bitwise = true;
};

void PrintRow(const Row& row) {
  std::printf("%-24s %12.1f %12.1f %8.2fx %9s\n", row.name.c_str(),
              row.dispatched_s * 1e9, row.ref_s * 1e9,
              row.ref_s / row.dispatched_s,
              row.bitwise ? "yes" : "NO — BUG");
}

bool BitwiseEqual(const float* a, const float* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const double min_seconds = smoke ? 0.01 : 0.2;

  kgrec::Rng rng(29);
  std::printf("== math/kernels dispatched (%s) vs scalar reference ==\n\n",
              kgrec::kernels::Mode());
  std::printf("%-24s %12s %12s %8s %9s\n", "kernel", "disp_ns", "ref_ns",
              "speedup", "bitwise");
  kgrec::bench::PrintRule(70);

  std::vector<Row> rows;

  {  // Dot, n = 64: the ScoreItems / RowwiseDot workhorse size.
    const size_t n = 64;
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    Row row{"Dot n=64"};
    const float disp = kgrec::kernels::Dot(a.data(), b.data(), n);
    const float ref = kgrec::kernels::ref::Dot(a.data(), b.data(), n);
    row.bitwise = BitwiseEqual(&disp, &ref, 1);
    row.dispatched_s = TimeOp(
        [&] { g_sink = kgrec::kernels::Dot(a.data(), b.data(), n); },
        min_seconds);
    row.ref_s = TimeOp(
        [&] { g_sink = kgrec::kernels::ref::Dot(a.data(), b.data(), n); },
        min_seconds);
    rows.push_back(row);
    PrintRow(row);
  }

  {  // DotBatch: 256 scattered candidate rows, n = 64.
    const size_t n = 64, count = 256;
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> table = RandomVec(n * count, rng);
    std::vector<const float*> ptrs(count);
    for (size_t q = 0; q < count; ++q) ptrs[q] = table.data() + q * n;
    std::vector<float> out(count), out_ref(count);
    Row row{"DotBatch 256xn=64"};
    kgrec::kernels::DotBatch(a.data(), ptrs.data(), count, n, out.data());
    kgrec::kernels::ref::DotBatch(a.data(), ptrs.data(), count, n,
                                  out_ref.data());
    row.bitwise = BitwiseEqual(out.data(), out_ref.data(), count);
    row.dispatched_s = TimeOp(
        [&] {
          kgrec::kernels::DotBatch(a.data(), ptrs.data(), count, n,
                                   out.data());
        },
        min_seconds);
    row.ref_s = TimeOp(
        [&] {
          kgrec::kernels::ref::DotBatch(a.data(), ptrs.data(), count, n,
                                        out_ref.data());
        },
        min_seconds);
    rows.push_back(row);
    PrintRow(row);
  }

  {  // MatMul 64x64x64: the nn forward/backward workhorse.
    const size_t m = 64, k = 64, n = 64;
    const std::vector<float> a = RandomVec(m * k, rng);
    const std::vector<float> b = RandomVec(k * n, rng);
    std::vector<float> c(m * n), c_ref(m * n);
    Row row{"MatMul 64x64x64"};
    kgrec::kernels::MatMul(a.data(), b.data(), c.data(), m, k, n);
    kgrec::kernels::ref::MatMul(a.data(), b.data(), c_ref.data(), m, k, n);
    row.bitwise = BitwiseEqual(c.data(), c_ref.data(), m * n);
    row.dispatched_s = TimeOp(
        [&] { kgrec::kernels::MatMul(a.data(), b.data(), c.data(), m, k, n); },
        min_seconds);
    row.ref_s = TimeOp(
        [&] {
          kgrec::kernels::ref::MatMul(a.data(), b.data(), c_ref.data(), m, k,
                                      n);
        },
        min_seconds);
    rows.push_back(row);
    PrintRow(row);
  }

  {  // MatMulTransposeB 64x64x64 (the MatMul-backward dA form).
    const size_t m = 64, k = 64, n = 64;
    const std::vector<float> a = RandomVec(m * k, rng);
    const std::vector<float> b = RandomVec(n * k, rng);
    std::vector<float> c(m * n), c_ref(m * n);
    Row row{"MatMulTransposeB 64^3"};
    kgrec::kernels::MatMulTransposeB(a.data(), b.data(), c.data(), m, k, n);
    kgrec::kernels::ref::MatMulTransposeB(a.data(), b.data(), c_ref.data(), m,
                                          k, n);
    row.bitwise = BitwiseEqual(c.data(), c_ref.data(), m * n);
    row.dispatched_s = TimeOp(
        [&] {
          kgrec::kernels::MatMulTransposeB(a.data(), b.data(), c.data(), m, k,
                                           n);
        },
        min_seconds);
    row.ref_s = TimeOp(
        [&] {
          kgrec::kernels::ref::MatMulTransposeB(a.data(), b.data(),
                                                c_ref.data(), m, k, n);
        },
        min_seconds);
    rows.push_back(row);
    PrintRow(row);
  }

  {  // Fused CosineSimilarity, n = 256 (PathSim / clustering size).
    const size_t n = 256;
    const std::vector<float> a = RandomVec(n, rng);
    const std::vector<float> b = RandomVec(n, rng);
    Row row{"CosineSimilarity n=256"};
    const float disp = kgrec::kernels::CosineSimilarity(a.data(), b.data(), n);
    const float ref =
        kgrec::kernels::ref::CosineSimilarity(a.data(), b.data(), n);
    row.bitwise = BitwiseEqual(&disp, &ref, 1);
    row.dispatched_s = TimeOp(
        [&] {
          g_sink = kgrec::kernels::CosineSimilarity(a.data(), b.data(), n);
        },
        min_seconds);
    row.ref_s = TimeOp(
        [&] {
          g_sink =
              kgrec::kernels::ref::CosineSimilarity(a.data(), b.data(), n);
        },
        min_seconds);
    rows.push_back(row);
    PrintRow(row);
  }

  {  // SoftmaxRows 64x64 (attention normalization shape).
    const size_t r = 64, c = 64;
    const std::vector<float> x = RandomVec(r * c, rng);
    std::vector<float> y(r * c), y_ref(r * c);
    Row row{"SoftmaxRows 64x64"};
    kgrec::kernels::SoftmaxRows(x.data(), y.data(), r, c);
    kgrec::kernels::ref::SoftmaxRows(x.data(), y_ref.data(), r, c);
    row.bitwise = BitwiseEqual(y.data(), y_ref.data(), r * c);
    row.dispatched_s = TimeOp(
        [&] { kgrec::kernels::SoftmaxRows(x.data(), y.data(), r, c); },
        min_seconds);
    row.ref_s = TimeOp(
        [&] { kgrec::kernels::ref::SoftmaxRows(x.data(), y_ref.data(), r, c); },
        min_seconds);
    rows.push_back(row);
    PrintRow(row);
  }

  kgrec::bench::PrintRule(70);
  bool all_bitwise = true;
  std::vector<std::string> json_rows;
  for (const Row& row : rows) {
    all_bitwise = all_bitwise && row.bitwise;
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("kernel", row.name)
                            .Field("dispatched_ns", row.dispatched_s * 1e9)
                            .Field("reference_ns", row.ref_s * 1e9)
                            .Field("speedup", row.ref_s / row.dispatched_s)
                            .Field("bitwise", row.bitwise)
                            .str());
  }
  std::printf(
      "\nContract: every bitwise column must read 'yes' — the dispatched\n"
      "kernels and the scalar reference perform the identical IEEE op\n"
      "sequence per output (the fixed-block accumulation contract), so\n"
      "KGREC_SIMD=auto and KGREC_SIMD=off builds produce identical models.\n");
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_math_kernels.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "math_kernels")
          .Field("mode", smoke ? "smoke" : "full")
          .Field("simd_mode", kgrec::kernels::Mode())
          .Field("bitwise", all_bitwise)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", all_bitwise)
          .Raw("rows", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  if (!all_bitwise) return 1;
  return 0;
}
