#ifndef KGREC_BENCH_BENCH_UTIL_H_
#define KGREC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/thread_pool.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

namespace kgrec::bench {

/// A prepared experiment world: split + both graph views.
struct Workbench {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  RecContext Context(uint64_t seed = 17) const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = seed;
    return ctx;
  }
};

inline Workbench MakeWorkbench(const WorldConfig& config,
                               double test_fraction = 0.2,
                               uint64_t split_seed = 5) {
  Workbench w;
  w.world = GenerateWorld(config);
  Rng rng(split_seed);
  w.split = RatioSplit(w.world.interactions, test_fraction, rng);
  w.ui_graph = BuildUserItemGraph(w.world, w.split.train);
  return w;
}

/// Result of one model run.
struct RunResult {
  CtrMetrics ctr;
  TopKMetrics topk;
  double train_seconds = 0.0;
};

/// Trains the model and evaluates it with `eval_threads` workers. The
/// metrics are bitwise independent of `eval_threads` (EvalOptions'
/// determinism contract), so benches are free to pick any thread count —
/// a sweep that is itself parallel passes 1 to avoid nested pools.
inline RunResult RunModel(Recommender& model, const Workbench& bench,
                          uint64_t seed = 17,
                          size_t eval_threads = ThreadPool::HardwareThreads()) {
  const auto start = std::chrono::steady_clock::now();
  model.Fit(bench.Context(seed));
  const auto end = std::chrono::steady_clock::now();
  RunResult result;
  result.train_seconds =
      std::chrono::duration<double>(end - start).count();
  EvalOptions ctr_options;
  ctr_options.num_threads = eval_threads;
  ctr_options.seed = Rng(101).NextUint64();
  result.ctr = EvaluateCtr(model, bench.split.train, bench.split.test,
                           ctr_options);
  EvalOptions topk_options;
  topk_options.num_threads = eval_threads;
  topk_options.k = 10;
  topk_options.num_negatives = 50;
  topk_options.seed = Rng(102).NextUint64();
  result.topk = EvaluateTopK(model, bench.split.train, bench.split.test,
                             topk_options);
  return result;
}

/// Runs `body(i)` for i in [0, n) across the hardware threads and returns
/// each row's preformatted output in index order, so sweeps over models /
/// configs parallelize while the printed table stays deterministic.
/// Bodies should evaluate with eval_threads = 1: the sweep itself already
/// saturates the machine.
inline std::vector<std::string> RunRowsParallel(
    size_t n, const std::function<std::string(size_t)>& body) {
  std::vector<std::string> rows(n);
  const Status status =
      ParallelFor(n, ThreadPool::HardwareThreads(),
                  [&](size_t begin, size_t end) -> Status {
                    for (size_t i = begin; i < end; ++i) rows[i] = body(i);
                    return Status::OK();
                  });
  if (!status.ok()) {
    std::fprintf(stderr, "bench sweep failed: %s\n",
                 status.ToString().c_str());
  }
  return rows;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Minimal JSON emitter for the machine-readable bench artifacts
/// (BENCH_*.json): flat objects and arrays built as strings, no external
/// dependency. Numbers print with enough digits to round-trip a double;
/// strings are escaped per RFC 8259.
class JsonWriter {
 public:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  JsonWriter& Field(const std::string& name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return Raw(name, buf);
  }
  JsonWriter& Field(const std::string& name, size_t value) {
    return Raw(name, std::to_string(value));
  }
  JsonWriter& Field(const std::string& name, int value) {
    return Raw(name, std::to_string(value));
  }
  JsonWriter& Field(const std::string& name, bool value) {
    return Raw(name, value ? "true" : "false");
  }
  JsonWriter& Field(const std::string& name, const std::string& value) {
    return Raw(name, "\"" + Escape(value) + "\"");
  }
  JsonWriter& Field(const std::string& name, const char* value) {
    return Field(name, std::string(value));
  }
  /// Nested object/array: `json` is already-serialized JSON.
  JsonWriter& Raw(const std::string& name, const std::string& json) {
    if (!fields_.empty()) fields_ += ",";
    fields_ += "\"" + Escape(name) + "\":" + json;
    return *this;
  }

  /// This object as a JSON value.
  std::string str() const { return "{" + fields_ + "}"; }

  /// Serializes a list of already-serialized values.
  static std::string Array(const std::vector<std::string>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += values[i];
    }
    return out + "]";
  }

  /// Writes `json` to `path` (with a trailing newline); returns false and
  /// prints to stderr on I/O failure.
  static bool WriteFile(const std::string& path, const std::string& json) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const bool ok = std::fputs(json.c_str(), f) >= 0 && std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
    return ok;
  }

 private:
  std::string fields_;
};

}  // namespace kgrec::bench

#endif  // KGREC_BENCH_BENCH_UTIL_H_
