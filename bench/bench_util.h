#ifndef KGREC_BENCH_BENCH_UTIL_H_
#define KGREC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/recommender.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

namespace kgrec::bench {

/// A prepared experiment world: split + both graph views.
struct Workbench {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  RecContext Context(uint64_t seed = 17) const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = seed;
    return ctx;
  }
};

inline Workbench MakeWorkbench(const WorldConfig& config,
                               double test_fraction = 0.2,
                               uint64_t split_seed = 5) {
  Workbench w;
  w.world = GenerateWorld(config);
  Rng rng(split_seed);
  w.split = RatioSplit(w.world.interactions, test_fraction, rng);
  w.ui_graph = BuildUserItemGraph(w.world, w.split.train);
  return w;
}

/// Result of one model run.
struct RunResult {
  CtrMetrics ctr;
  TopKMetrics topk;
  double train_seconds = 0.0;
};

inline RunResult RunModel(Recommender& model, const Workbench& bench,
                          uint64_t seed = 17) {
  const auto start = std::chrono::steady_clock::now();
  model.Fit(bench.Context(seed));
  const auto end = std::chrono::steady_clock::now();
  RunResult result;
  result.train_seconds =
      std::chrono::duration<double>(end - start).count();
  Rng ctr_rng(101);
  result.ctr =
      EvaluateCtr(model, bench.split.train, bench.split.test, ctr_rng);
  Rng topk_rng(102);
  result.topk = EvaluateTopK(model, bench.split.train, bench.split.test,
                             /*k=*/10, /*num_negatives=*/50, topk_rng);
  return result;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace kgrec::bench

#endif  // KGREC_BENCH_BENCH_UTIL_H_
