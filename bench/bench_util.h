#ifndef KGREC_BENCH_BENCH_UTIL_H_
#define KGREC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "core/thread_pool.h"
#include "data/synthetic.h"
#include "eval/protocol.h"

namespace kgrec::bench {

/// A prepared experiment world: split + both graph views.
struct Workbench {
  SyntheticWorld world;
  DataSplit split;
  UserItemGraph ui_graph;

  RecContext Context(uint64_t seed = 17) const {
    RecContext ctx;
    ctx.train = &split.train;
    ctx.item_kg = &world.item_kg;
    ctx.user_item_graph = &ui_graph;
    ctx.seed = seed;
    return ctx;
  }
};

inline Workbench MakeWorkbench(const WorldConfig& config,
                               double test_fraction = 0.2,
                               uint64_t split_seed = 5) {
  Workbench w;
  w.world = GenerateWorld(config);
  Rng rng(split_seed);
  w.split = RatioSplit(w.world.interactions, test_fraction, rng);
  w.ui_graph = BuildUserItemGraph(w.world, w.split.train);
  return w;
}

/// Result of one model run.
struct RunResult {
  CtrMetrics ctr;
  TopKMetrics topk;
  double train_seconds = 0.0;
};

/// Trains the model and evaluates it with `eval_threads` workers. The
/// metrics are bitwise independent of `eval_threads` (EvalOptions'
/// determinism contract), so benches are free to pick any thread count —
/// a sweep that is itself parallel passes 1 to avoid nested pools.
inline RunResult RunModel(Recommender& model, const Workbench& bench,
                          uint64_t seed = 17,
                          size_t eval_threads = ThreadPool::HardwareThreads()) {
  const auto start = std::chrono::steady_clock::now();
  model.Fit(bench.Context(seed));
  const auto end = std::chrono::steady_clock::now();
  RunResult result;
  result.train_seconds =
      std::chrono::duration<double>(end - start).count();
  EvalOptions ctr_options;
  ctr_options.num_threads = eval_threads;
  ctr_options.seed = Rng(101).NextUint64();
  result.ctr = EvaluateCtr(model, bench.split.train, bench.split.test,
                           ctr_options);
  EvalOptions topk_options;
  topk_options.num_threads = eval_threads;
  topk_options.k = 10;
  topk_options.num_negatives = 50;
  topk_options.seed = Rng(102).NextUint64();
  result.topk = EvaluateTopK(model, bench.split.train, bench.split.test,
                             topk_options);
  return result;
}

/// Runs `body(i)` for i in [0, n) across the hardware threads and returns
/// each row's preformatted output in index order, so sweeps over models /
/// configs parallelize while the printed table stays deterministic.
/// Bodies should evaluate with eval_threads = 1: the sweep itself already
/// saturates the machine.
inline std::vector<std::string> RunRowsParallel(
    size_t n, const std::function<std::string(size_t)>& body) {
  std::vector<std::string> rows(n);
  const Status status =
      ParallelFor(n, ThreadPool::HardwareThreads(),
                  [&](size_t begin, size_t end) -> Status {
                    for (size_t i = begin; i < end; ++i) rows[i] = body(i);
                    return Status::OK();
                  });
  if (!status.ok()) {
    std::fprintf(stderr, "bench sweep failed: %s\n",
                 status.ToString().c_str());
  }
  return rows;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace kgrec::bench

#endif  // KGREC_BENCH_BENCH_UTIL_H_
