// Extension (survey Section 6, "Cross-Domain Recommendation"): the
// survey highlights PPGN-style cross-domain transfer — putting users and
// items of several domains in one graph so that the dense source domain
// helps the sparse target domain. We simulate two domains sharing users
// (the dense "books" half and a sparse "movies" half of one catalogue)
// and compare target-domain quality when training on the target alone vs
// training on the joint user-item graph.

#include <cstdio>

#include "bench/bench_util.h"
#include "cf/mf.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "unified/kgat.h"

namespace {

using namespace kgrec;  // NOLINT: bench-local convenience

}  // namespace

int main() {
  // One world; items [0, 400) are the dense source domain, items
  // [400, 600) the sparse target domain (their train interactions are
  // subsampled to 15%).
  WorldConfig config;
  config.num_users = 250;
  config.num_items = 600;
  config.avg_interactions_per_user = 24.0;
  config.item_relations = {{"category", 20, 2, 0.9f},
                           {"creator", 60, 1, 0.8f}};
  config.seed = 321;
  SyntheticWorld world = GenerateWorld(config);
  const int32_t domain_split = 400;

  Rng rng(4);
  InteractionDataset joint_train(config.num_users, config.num_items);
  InteractionDataset target_train(config.num_users, config.num_items);
  InteractionDataset target_test(config.num_users, config.num_items);
  size_t source = 0;
  for (const Interaction& x : world.interactions.interactions()) {
    if (x.item < domain_split) {
      joint_train.Add(x.user, x.item);  // dense source domain, all kept
      ++source;
    } else if (rng.Bernoulli(0.15)) {
      joint_train.Add(x.user, x.item);  // sparse target-domain train
      target_train.Add(x.user, x.item);
    } else {
      target_test.Add(x.user, x.item);  // target-domain evaluation
    }
  }
  std::printf(
      "== Section 6 extension: cross-domain transfer ==\n"
      "source domain: %zu interactions (items 0-399)\n"
      "target domain: %zu train / %zu test interactions (items 400-599)\n\n",
      source, target_train.num_interactions(),
      target_test.num_interactions());

  // Pairwise AUC on target-domain items only.
  auto target_auc = [&](Recommender& model) {
    Rng pair_rng(11);
    std::vector<float> scores;
    std::vector<int> labels;
    for (const Interaction& x : target_test.interactions()) {
      int32_t neg = -1;
      for (int tries = 0; tries < 100 && neg < 0; ++tries) {
        const int32_t candidate = domain_split + static_cast<int32_t>(
            pair_rng.UniformInt(config.num_items - domain_split));
        if (!world.interactions.Contains(x.user, candidate)) neg = candidate;
      }
      if (neg < 0) continue;
      scores.push_back(model.Score(x.user, x.item));
      labels.push_back(1);
      scores.push_back(model.Score(x.user, neg));
      labels.push_back(0);
    }
    return Auc(scores, labels);
  };

  std::printf("%-10s %18s %18s %10s\n", "Method", "target-only AUC",
              "joint-graph AUC", "transfer");
  for (int i = 0; i < 62; ++i) std::putchar('-');
  std::putchar('\n');

  auto run_pair = [&](auto make_model) {
    UserItemGraph target_graph = BuildUserItemGraph(world, target_train);
    RecContext target_ctx;
    target_ctx.train = &target_train;
    target_ctx.item_kg = &world.item_kg;
    target_ctx.user_item_graph = &target_graph;
    target_ctx.seed = 17;
    auto single = make_model();
    single->Fit(target_ctx);
    const double single_auc = target_auc(*single);

    UserItemGraph joint_graph = BuildUserItemGraph(world, joint_train);
    RecContext joint_ctx;
    joint_ctx.train = &joint_train;
    joint_ctx.item_kg = &world.item_kg;
    joint_ctx.user_item_graph = &joint_graph;
    joint_ctx.seed = 17;
    auto joint = make_model();
    joint->Fit(joint_ctx);
    const double joint_auc = target_auc(*joint);
    std::printf("%-10s %18.3f %18.3f %+9.3f\n", single->name().c_str(),
                single_auc, joint_auc, joint_auc - single_auc);
    std::fflush(stdout);
  };

  run_pair([] { return std::make_unique<BprMfRecommender>(); });
  run_pair([] { return std::make_unique<KgatRecommender>(); });
  std::printf(
      "\nExpected shape: the joint user-item graph lifts target-domain\n"
      "quality for both models (shared users transfer preferences; the\n"
      "graph model additionally transfers through shared KG attributes) —\n"
      "the PPGN observation the survey cites.\n");
  return 0;
}
