// Serving-layer load generator: Fit → Save → ServeHandle::Open → Router,
// then open-loop traffic from several concurrent clients per model
// family, with one hot swap (to a reload of the same checkpoint) in the
// middle of the run. Reports achieved QPS and p50/p99 response latency,
// and — the contract this bench exists to gate — verifies every routed
// response is **bitwise identical** to a direct ScoreItems call on the
// fitted model, whichever generation served it.
//
//   ./serve_throughput          full sweep (open-loop paced traffic)
//   ./serve_throughput --smoke  tiny world, unpaced burst, for CI
//
// Open-loop means arrival times come from a precomputed schedule and
// never wait for completions, so queueing delay shows up in the latency
// percentiles instead of being hidden by client back-pressure. The smoke
// mode asserts only correctness and accounting (never timing), so it
// cannot go flaky on a loaded single-core CI machine.
//
// Exits non-zero on any save/load/serve failure, lost response, or score
// divergence.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/presets.h"
#include "math/rng.h"
#include "serve/router.h"
#include "serve/serve_handle.h"

namespace {

using Clock = std::chrono::steady_clock;
using kgrec::serve::Router;
using kgrec::serve::RouterConfig;
using kgrec::serve::RouterStats;
using kgrec::serve::ScoreResponse;
using kgrec::serve::ServeHandle;

struct LoadResult {
  size_t requests = 0;
  size_t delivered = 0;
  size_t rejected = 0;
  double wall_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double swap_ms = 0.0;
  bool bitwise = true;
  std::string error;
};

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

/// Drives one model family end to end. `paced` selects genuine open-loop
/// arrivals (full mode) vs an unpaced burst (smoke mode).
LoadResult DriveFamily(const std::string& name,
                       const kgrec::bench::Workbench& bench, bool paced,
                       size_t num_clients, size_t requests_per_client,
                       size_t candidates_per_request, double target_qps) {
  LoadResult result;
  const kgrec::RecContext ctx = bench.Context(17);
  const int32_t num_users = ctx.train->num_users();
  const int32_t num_items = ctx.train->num_items();

  std::unique_ptr<kgrec::Recommender> fitted = kgrec::MakeRecommender(name);
  if (fitted == nullptr) {
    result.error = "no factory";
    return result;
  }
  fitted->Fit(ctx);

  const std::string path = "/tmp/kgrec_serve_" + std::to_string(getpid()) +
                           ".kgrc";
  const kgrec::Status saved = fitted->Save(path);
  if (!saved.ok()) {
    result.error = "save: " + saved.ToString();
    return result;
  }
  std::shared_ptr<const ServeHandle> handle;
  const kgrec::Status opened = ServeHandle::Open(ctx, path, 1, &handle);
  if (!opened.ok()) {
    result.error = "open: " + opened.ToString();
    std::remove(path.c_str());
    return result;
  }

  // Request patterns: a deterministic rotation of candidate windows, so
  // expected scores are precomputable per (user, pattern).
  std::vector<std::vector<int32_t>> patterns;
  for (size_t p = 0; p < 4; ++p) {
    std::vector<int32_t> items;
    for (size_t i = 0; i < candidates_per_request; ++i) {
      items.push_back(static_cast<int32_t>((p * 7 + i * 3) %
                                           static_cast<size_t>(num_items)));
    }
    patterns.push_back(std::move(items));
  }

  RouterConfig config;
  config.num_threads = kgrec::ThreadPool::HardwareThreads();
  config.max_queue = num_clients * requests_per_client;  // never reject
  Router router(config, handle);

  struct Issued {
    int32_t user;
    size_t pattern;
    std::future<ScoreResponse> future;
  };
  std::vector<std::vector<Issued>> issued(num_clients);
  const auto start = Clock::now();
  const std::chrono::nanoseconds interval(
      target_qps > 0.0 ? static_cast<int64_t>(
                             1e9 * static_cast<double>(num_clients) /
                             target_qps)
                       : 0);

  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t t = 0; t < num_clients; ++t) {
    clients.emplace_back([&, t] {
      issued[t].reserve(requests_per_client);
      for (size_t r = 0; r < requests_per_client; ++r) {
        if (paced) {
          // Open loop: arrival r of client t fires at its scheduled
          // time whether or not earlier requests completed.
          std::this_thread::sleep_until(start + interval * (r + 1));
        }
        Issued record;
        record.user =
            static_cast<int32_t>((t * 13 + r * 5) %
                                 static_cast<size_t>(num_users));
        record.pattern = (t + r) % patterns.size();
        record.future =
            router.Submit({record.user, patterns[record.pattern]});
        issued[t].push_back(std::move(record));
      }
    });
  }

  // Mid-run hot swap: reload the same checkpoint as generation 2 while
  // the clients keep submitting. Served scores are identical across the
  // two generations (PR 5's bitwise restore contract), so the bitwise
  // check below holds through the swap.
  const auto swap_start = Clock::now();
  const kgrec::Status swapped = router.SwapFromCheckpoint(ctx, path);
  result.swap_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - swap_start)
          .count();
  if (!swapped.ok()) {
    result.error = "swap: " + swapped.ToString();
  }

  for (std::thread& client : clients) client.join();

  // Expected scores (computed after the traffic so the bench never
  // reads them concurrently with anything).
  std::vector<std::vector<std::vector<float>>> expected(
      static_cast<size_t>(num_users));
  for (int32_t user = 0; user < num_users; ++user) {
    for (const auto& pattern : patterns) {
      expected[static_cast<size_t>(user)].push_back(
          fitted->ScoreItems(user, pattern));
    }
  }

  std::vector<double> latencies_us;
  uint64_t last_completed_ns = 0;
  uint64_t first_submitted_ns = ~0ull;
  for (size_t t = 0; t < num_clients; ++t) {
    for (Issued& record : issued[t]) {
      ++result.requests;
      if (!record.future.valid()) {
        result.error = "invalid future (lost response)";
        result.bitwise = false;
        continue;
      }
      ScoreResponse response = record.future.get();
      if (!response.status.ok()) {
        ++result.rejected;
        result.error = "response: " + response.status.ToString();
        result.bitwise = false;
        continue;
      }
      ++result.delivered;
      latencies_us.push_back(
          static_cast<double>(response.completed_ns -
                              response.submitted_ns) /
          1e3);
      last_completed_ns = std::max(last_completed_ns, response.completed_ns);
      first_submitted_ns =
          std::min(first_submitted_ns, response.submitted_ns);
      const std::vector<float>& want =
          expected[static_cast<size_t>(record.user)][record.pattern];
      if (response.scores.size() != want.size() ||
          std::memcmp(response.scores.data(), want.data(),
                      want.size() * sizeof(float)) != 0) {
        result.bitwise = false;
        result.error = "score divergence at user " +
                       std::to_string(record.user) + " (generation " +
                       std::to_string(response.generation) + ")";
      }
    }
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = Percentile(latencies_us, 0.50);
  result.p99_us = Percentile(latencies_us, 0.99);
  result.wall_s =
      last_completed_ns > first_submitted_ns
          ? static_cast<double>(last_completed_ns - first_submitted_ns) / 1e9
          : 0.0;
  std::remove(path.c_str());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  size_t num_clients = 4;
  size_t requests_per_client = smoke ? 40 : 200;
  size_t candidates = smoke ? 8 : 32;
  const double target_qps = smoke ? 0.0 : 2000.0;  // 0 = unpaced burst
  if (smoke) {
    config.num_users = 30;
    config.num_items = 40;
    config.avg_interactions_per_user = 8.0;
  } else {
    config.num_users = 150;
    config.num_items = 200;
    config.avg_interactions_per_user = 10.0;
  }
  kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);

  const std::vector<std::string> families{"MF", "CKE", "KGCN", "KPRN",
                                          "RippleNet"};

  std::printf(
      "== serve throughput (%s world: %d users, %d items; %zu clients x "
      "%zu reqs x %zu candidates, %s) ==\n\n",
      smoke ? "smoke" : "full", config.num_users, config.num_items,
      num_clients, requests_per_client, candidates,
      smoke ? "unpaced" : "open-loop");
  std::printf("%-12s %9s %9s %11s %11s %9s %9s\n", "model", "served",
              "qps", "p50_us", "p99_us", "swap_ms", "bitwise");
  kgrec::bench::PrintRule(76);

  bool all_ok = true;
  std::vector<std::string> json_rows;
  for (const std::string& name : families) {
    const LoadResult row =
        DriveFamily(name, bench, !smoke, num_clients, requests_per_client,
                    candidates, target_qps);
    const bool ok = row.error.empty() && row.bitwise &&
                    row.delivered == row.requests;
    const double qps =
        row.wall_s > 0.0 ? static_cast<double>(row.delivered) / row.wall_s
                         : 0.0;
    if (ok) {
      std::printf("%-12s %9zu %9.0f %11.1f %11.1f %9.2f %9s\n", name.c_str(),
                  row.delivered, qps, row.p50_us, row.p99_us, row.swap_ms,
                  "yes");
    } else {
      std::printf("%-12s %9zu %9s %11s %11s %9s  FAIL: %s\n", name.c_str(),
                  row.delivered, "-", "-", "-", "-", row.error.c_str());
      all_ok = false;
    }
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("model", name)
                            .Field("delivered", row.delivered)
                            .Field("qps", qps)
                            .Field("p50_us", row.p50_us)
                            .Field("p99_us", row.p99_us)
                            .Field("swap_ms", row.swap_ms)
                            .Field("bitwise", row.bitwise)
                            .Field("error", row.error)
                            .str());
  }
  kgrec::bench::PrintRule(76);
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_serve.json", kgrec::bench::JsonWriter()
                              .Field("bench", "serve_throughput")
                              .Field("mode", smoke ? "smoke" : "full")
                              .Field("peak_rss_bytes",
                                     kgrec::PeakRssBytes())
                              .Field("pass", all_ok)
                              .Raw("rows", kgrec::bench::JsonWriter::Array(
                                               json_rows))
                              .str());
  std::printf(
      "\nContract: every routed response — across per-user coalescing and a\n"
      "mid-traffic hot swap — is bitwise what a direct ScoreItems call on\n"
      "the fitted model returns, and every admitted request is delivered\n"
      "exactly once. Latency percentiles are informational (1-core CI\n"
      "machines); the bitwise and accounting columns are the gate.\n");
  return all_ok ? 0 : 1;
}
