// Batched-inference throughput harness: times ScoreItems() against the
// equivalent per-item Score() loop at 200 candidates per user, model by
// model, and verifies the equivalence contract — both paths must produce
// **bitwise identical** scores (so the eval protocols may route through
// either). The speedup is algorithmic (per-user state hoisted out of the
// candidate loop), not thread-count-dependent: everything here runs on a
// single core.
//
//   ./batch_scoring          full sweep (all models with a batched path)
//   ./batch_scoring --smoke  tiny world + 3 models, for CI

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/presets.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct RowResult {
  double loop_s = 0.0;
  double batched_s = 0.0;
  bool bitwise = true;
};

// Scores `candidates_per_user` candidates for each probe user via the
// per-item Score() loop and via one ScoreItems() call, timing both and
// checking bitwise agreement.
RowResult TimeModel(const kgrec::Recommender& model, int32_t num_users,
                    int32_t num_items, size_t candidates_per_user,
                    size_t probe_users) {
  std::vector<int32_t> candidates(candidates_per_user);
  for (size_t i = 0; i < candidates_per_user; ++i) {
    candidates[i] = static_cast<int32_t>(i % num_items);
  }
  RowResult row;
  std::vector<float> loop_scores(candidates_per_user);
  // Each path repeats the probe sweep until it has run for at least
  // kMinSeconds (after one warm-up sweep), so sub-millisecond models
  // (KGAT's dot products) get timings above clock noise. Reported
  // seconds are per sweep.
  constexpr double kMinSeconds = 0.05;
  {
    double elapsed = 0.0;
    size_t sweeps = 0;
    bool warm = false;
    while (elapsed < kMinSeconds || !warm) {
      const auto t0 = Clock::now();
      for (size_t p = 0; p < probe_users; ++p) {
        const int32_t user = static_cast<int32_t>(p % num_users);
        for (size_t i = 0; i < candidates_per_user; ++i) {
          loop_scores[i] = model.Score(user, candidates[i]);
        }
      }
      const auto t1 = Clock::now();
      if (!warm) {
        warm = true;  // first sweep warms caches, untimed
        continue;
      }
      elapsed += Seconds(t0, t1);
      ++sweeps;
    }
    row.loop_s = elapsed / sweeps;
  }
  {
    double elapsed = 0.0;
    size_t sweeps = 0;
    bool warm = false;
    while (elapsed < kMinSeconds || !warm) {
      const auto t0 = Clock::now();
      for (size_t p = 0; p < probe_users; ++p) {
        const int32_t user = static_cast<int32_t>(p % num_users);
        const std::vector<float> batched = model.ScoreItems(user, candidates);
        if (p + 1 == probe_users) {
          // The loop path left the last probe user's scores behind.
          for (size_t i = 0; i < candidates_per_user; ++i) {
            if (std::memcmp(&batched[i], &loop_scores[i], sizeof(float)) !=
                0) {
              row.bitwise = false;
            }
          }
        }
      }
      const auto t1 = Clock::now();
      if (!warm) {
        warm = true;
        continue;
      }
      elapsed += Seconds(t0, t1);
      ++sweeps;
    }
    row.batched_s = elapsed / sweeps;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  if (smoke) {
    config.num_users = 30;
    config.num_items = 40;
    config.avg_interactions_per_user = 8.0;
  } else {
    config.num_users = 200;
    config.num_items = 300;
    config.avg_interactions_per_user = 10.0;
  }
  kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);

  // The models with a batched ScoreItems override (the registry default
  // loops over Score, which would bench 1.0x by construction).
  std::vector<std::string> names{"RippleNet", "KGCN", "KGAT"};
  if (!smoke) {
    names.insert(names.end(), {"RippleNet-agg", "AKUPM", "KGCN-LS", "KNI",
                               "MCRec", "KPRN", "RKGE", "PGPR"});
  }

  const size_t candidates_per_user = 200;
  const size_t probe_users = smoke ? 4 : 30;

  std::printf(
      "== batched vs per-item scoring (single core, %zu candidates/user, "
      "%zu users) ==\n\n",
      candidates_per_user, probe_users);
  std::printf("%-14s %12s %12s %9s %9s\n", "model", "loop_s", "batched_s",
              "speedup", "bitwise");
  kgrec::bench::PrintRule(60);

  bool all_bitwise = true;
  std::vector<std::string> json_rows;
  for (const std::string& name : names) {
    std::unique_ptr<kgrec::Recommender> model = kgrec::MakeRecommender(name);
    if (model == nullptr) {
      std::printf("%-14s (no factory)\n", name.c_str());
      continue;
    }
    model->Fit(bench.Context(17));
    const RowResult row =
        TimeModel(*model, config.num_users, config.num_items,
                  candidates_per_user, probe_users);
    all_bitwise = all_bitwise && row.bitwise;
    std::printf("%-14s %12.4f %12.4f %8.2fx %9s\n", name.c_str(), row.loop_s,
                row.batched_s, row.loop_s / row.batched_s,
                row.bitwise ? "yes" : "NO — BUG");
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("model", name)
                            .Field("loop_seconds", row.loop_s)
                            .Field("batched_seconds", row.batched_s)
                            .Field("speedup", row.loop_s / row.batched_s)
                            .Field("bitwise", row.bitwise)
                            .str());
  }
  kgrec::bench::PrintRule(60);
  std::printf(
      "\nContract: the bitwise column must read 'yes' on every row —\n"
      "ScoreItems(u, items)[i] == Score(u, items[i]) exactly. The speedup\n"
      "is algorithmic (per-user ripple/receptive-field/path state hoisted\n"
      "out of the candidate loop) and holds on a single core.\n");
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_batch_scoring.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "batch_scoring")
          .Field("mode", smoke ? "smoke" : "full")
          .Field("candidates_per_user", candidates_per_user)
          .Field("bitwise", all_bitwise)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", all_bitwise)
          .Raw("rows", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  return all_bitwise ? 0 : 1;
}
