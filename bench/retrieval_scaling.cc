// Retrieval-layer scaling bench and CI gate.
//
//   ./retrieval_scaling          full sweep: catalog size × probe count,
//                                recall@10 vs speedup over the exact scan
//   ./retrieval_scaling --smoke  CI gate (tier1): tiny sweep, asserts
//                                (a) BruteForceIndex top-K is bitwise
//                                    ScoreAll + TopKScored for every
//                                    factorizable registry model,
//                                (b) IvfIndex recall@10 >= 0.95 at the
//                                    default probe setting,
//                                (c) probes == clusters is bitwise the
//                                    brute-force result.
//
// Two parts. Part 1 fits every factorizable model on a small world and
// checks its exact index against the exhaustive reference — the
// export-contract gate (DESIGN §10). Part 2 sweeps synthetic Gaussian
// embeddings (retrieval cost depends only on catalog geometry, not on
// how the factors were trained) and reports exact-scan vs IVF QPS,
// latency percentiles and measured recall.
//
// Emits machine-readable BENCH_retrieval.json next to the binary.
// Exits non-zero on any gate failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/presets.h"
#include "math/rng.h"
#include "math/topk.h"
#include "retrieval/factors.h"
#include "retrieval/index.h"

namespace {

using Clock = std::chrono::steady_clock;
using kgrec::retrieval::BruteForceIndex;
using kgrec::retrieval::ItemFactors;
using kgrec::retrieval::IvfConfig;
using kgrec::retrieval::IvfIndex;
using kgrec::retrieval::ScoreKernel;

constexpr size_t kK = 10;

bool SameRanking(const std::vector<std::pair<int32_t, float>>& a,
                 const std::vector<std::pair<int32_t, float>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise: NaN == NaN must pass, +0 vs -0 must fail.
    if (a[i].first != b[i].first ||
        std::memcmp(&a[i].second, &b[i].second, sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

double RecallAt(const std::vector<std::pair<int32_t, float>>& exact,
                const std::vector<std::pair<int32_t, float>>& approx) {
  if (exact.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& [item, score] : approx) {
    for (const auto& [ref_item, ref_score] : exact) {
      if (item == ref_item) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

struct QueryTiming {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Runs every query through `index` and times each Query() call.
QueryTiming TimeQueries(const kgrec::retrieval::ItemIndex& index,
                        const kgrec::Matrix& queries, size_t k,
                        std::vector<std::vector<std::pair<int32_t, float>>>*
                            results) {
  results->clear();
  results->reserve(queries.rows());
  std::vector<double> lat_us;
  lat_us.reserve(queries.rows());
  const auto start = Clock::now();
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto t0 = Clock::now();
    results->push_back(index.Query(
        std::span<const float>(queries.Row(q), queries.cols()), k));
    const auto t1 = Clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  QueryTiming timing;
  timing.qps = wall > 0 ? static_cast<double>(queries.rows()) / wall : 0.0;
  std::sort(lat_us.begin(), lat_us.end());
  timing.p50_us = Percentile(lat_us, 0.50);
  timing.p99_us = Percentile(lat_us, 0.99);
  return timing;
}

/// Part 1: for each factorizable registry model, fit on the shared world
/// and require BruteForceIndex::Query == ScoreAll + TopKScored bitwise.
bool RunModelGate(const kgrec::bench::Workbench& bench,
                  std::vector<std::string>* json_rows) {
  const kgrec::RecContext ctx = bench.Context(17);
  const int32_t num_items = ctx.train->num_items();
  const int32_t num_users = ctx.train->num_users();
  bool all_ok = true;

  std::printf("%-10s %-14s %-8s %10s\n", "model", "kernel", "bitwise",
              "scan QPS");
  kgrec::bench::PrintRule(46);
  for (const std::string& name : kgrec::FactorizableMethodNames()) {
    std::unique_ptr<kgrec::Recommender> model = kgrec::MakeRecommender(name);
    model->Fit(ctx);
    const kgrec::DotProductFactors* factors = kgrec::AsFactorizable(*model);
    BruteForceIndex index(factors->ExportItemFactors());

    bool bitwise = index.num_items() == static_cast<size_t>(num_items);
    const int32_t probe_users = std::min<int32_t>(num_users, 32);
    std::vector<float> query(factors->factor_dim());
    const auto start = Clock::now();
    for (int32_t user = 0; user < probe_users; ++user) {
      const std::vector<float> scores = model->ScoreAll(user, num_items);
      const auto reference = kgrec::TopKScored(scores, kK);
      factors->FillUserQuery(user, query);
      const auto got = index.Query(query, kK);
      if (!SameRanking(reference, got)) {
        bitwise = false;
        std::fprintf(stderr,
                     "FAIL %s user %d: exact index != ScoreAll+TopKScored\n",
                     name.c_str(), user);
        break;
      }
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double qps =
        wall > 0 ? static_cast<double>(probe_users) / wall : 0.0;
    const char* kernel =
        kgrec::retrieval::ScoreKernelName(factors->factor_kernel());
    std::printf("%-10s %-14s %-8s %10.0f\n", name.c_str(), kernel,
                bitwise ? "yes" : "NO", qps);
    all_ok = all_ok && bitwise;

    json_rows->push_back(kgrec::bench::JsonWriter()
                             .Field("model", name)
                             .Field("kernel", kernel)
                             .Field("bitwise", bitwise)
                             .str());
  }
  return all_ok;
}

struct SweepGate {
  bool ok = true;
  double default_probe_recall = 1.0;
};

/// Part 2: synthetic-embedding sweep, catalog size × probe count.
SweepGate RunSweep(const std::vector<size_t>& catalog_sizes,
                   size_t num_queries, bool smoke,
                   std::vector<std::string>* json_rows) {
  constexpr size_t kDim = 32;
  SweepGate gate;

  std::printf("\n%-9s %-9s %-8s %-7s %10s %9s %9s %9s\n", "catalog",
              "clusters", "probes", "recall", "QPS", "p50 us", "p99 us",
              "speedup");
  kgrec::bench::PrintRule(78);
  for (size_t n : catalog_sizes) {
    kgrec::Rng rng(kgrec::Rng(99).Fork(n).NextUint64());
    // Trained item embeddings cluster (the synthetic worlds build items
    // from latent attribute clusters; real catalogs from genres/brands),
    // so the sweep geometry is a Gaussian mixture, not i.i.d. noise —
    // i.i.d. Gaussian is the adversarial no-structure case where *no*
    // cluster-pruned index can work.
    const size_t gen_clusters = std::max<size_t>(8, n / 40);
    kgrec::Matrix centers(gen_clusters, kDim);
    for (size_t i = 0; i < centers.size(); ++i) {
      centers.data()[i] = static_cast<float>(rng.Normal());
    }
    ItemFactors factors;
    factors.kernel = ScoreKernel::kDot;
    factors.items = kgrec::Matrix(n, kDim);
    for (size_t i = 0; i < n; ++i) {
      const float* center = centers.Row(rng.UniformInt(gen_clusters));
      float* row = factors.items.Row(i);
      for (size_t c = 0; c < kDim; ++c) {
        row[c] = center[c] + 0.15f * static_cast<float>(rng.Normal());
      }
    }
    kgrec::Matrix queries(num_queries, kDim);
    for (size_t i = 0; i < queries.size(); ++i) {
      queries.data()[i] = static_cast<float>(rng.Normal());
    }

    ItemFactors exact_copy;
    exact_copy.kernel = factors.kernel;
    exact_copy.items = factors.items;
    BruteForceIndex exact(std::move(exact_copy));
    std::vector<std::vector<std::pair<int32_t, float>>> exact_results;
    const QueryTiming exact_timing =
        TimeQueries(exact, queries, kK, &exact_results);
    std::printf("%-9zu %-9s %-8s %-7s %10.0f %9.1f %9.1f %9s\n", n, "-",
                "exact", "1.000", exact_timing.qps, exact_timing.p50_us,
                exact_timing.p99_us, "1.0x");
    json_rows->push_back(kgrec::bench::JsonWriter()
                             .Field("catalog", n)
                             .Field("index", "brute-force")
                             .Field("recall_at_10", 1.0)
                             .Field("qps", exact_timing.qps)
                             .Field("p50_us", exact_timing.p50_us)
                             .Field("p99_us", exact_timing.p99_us)
                             .Field("bitwise", true)
                             .str());

    IvfConfig base;  // num_clusters = 0 -> ceil(sqrt(n))
    IvfIndex probe_of_default(
        [&] {
          ItemFactors copy;
          copy.kernel = factors.kernel;
          copy.items = factors.items;
          return copy;
        }(),
        base);
    const size_t num_clusters = probe_of_default.num_clusters();

    std::vector<size_t> probe_counts =
        smoke ? std::vector<size_t>{2, base.num_probes, num_clusters}
              : std::vector<size_t>{1, 2, 4, base.num_probes, 16,
                                    num_clusters};
    for (size_t probes : probe_counts) {
      if (probes > num_clusters) continue;
      IvfConfig config = base;
      config.num_probes = probes;
      ItemFactors copy;
      copy.kernel = factors.kernel;
      copy.items = factors.items;
      IvfIndex ivf(std::move(copy), config);

      std::vector<std::vector<std::pair<int32_t, float>>> ivf_results;
      const QueryTiming timing = TimeQueries(ivf, queries, kK, &ivf_results);
      double recall = 0.0;
      bool bitwise = true;
      for (size_t q = 0; q < exact_results.size(); ++q) {
        recall += RecallAt(exact_results[q], ivf_results[q]);
        bitwise = bitwise && SameRanking(exact_results[q], ivf_results[q]);
      }
      recall /= exact_results.empty()
                    ? 1.0
                    : static_cast<double>(exact_results.size());

      if (probes == base.num_probes) {
        gate.default_probe_recall =
            std::min(gate.default_probe_recall, recall);
      }
      if (probes == num_clusters && !bitwise) {
        std::fprintf(stderr,
                     "FAIL catalog %zu: probes==clusters is not bitwise "
                     "the brute-force result\n",
                     n);
        gate.ok = false;
      }

      const double speedup =
          exact_timing.qps > 0 ? timing.qps / exact_timing.qps : 0.0;
      std::printf("%-9zu %-9zu %-8zu %-7.3f %10.0f %9.1f %9.1f %8.1fx\n", n,
                  num_clusters, probes, recall, timing.qps, timing.p50_us,
                  timing.p99_us, speedup);
      json_rows->push_back(kgrec::bench::JsonWriter()
                               .Field("catalog", n)
                               .Field("index", "ivf")
                               .Field("clusters", num_clusters)
                               .Field("probes", probes)
                               .Field("recall_at_10", recall)
                               .Field("qps", timing.qps)
                               .Field("p50_us", timing.p50_us)
                               .Field("p99_us", timing.p99_us)
                               .Field("bitwise", bitwise)
                               .str());
    }
  }
  return gate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Part 1: export-contract gate over the factorizable zoo.
  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  if (smoke) {
    config.num_users = 80;
    config.num_items = 150;
    config.avg_interactions_per_user = 12.0;
  }
  const kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);
  std::vector<std::string> model_rows;
  const bool models_ok = RunModelGate(bench, &model_rows);

  // Part 2: catalog × probes sweep on synthetic embeddings.
  const std::vector<size_t> catalog_sizes =
      smoke ? std::vector<size_t>{2000}
            : std::vector<size_t>{10000, 50000, 200000};
  std::vector<std::string> sweep_rows;
  const SweepGate gate =
      RunSweep(catalog_sizes, smoke ? 50 : 200, smoke, &sweep_rows);

  const bool recall_ok = gate.default_probe_recall >= 0.95;
  if (!recall_ok) {
    std::fprintf(stderr,
                 "FAIL recall@10 at default probes = %.3f < 0.95\n",
                 gate.default_probe_recall);
  }

  const bool ok = models_ok && gate.ok && recall_ok;
  const std::string json =
      kgrec::bench::JsonWriter()
          .Field("bench", "retrieval_scaling")
          .Field("mode", smoke ? "smoke" : "full")
          .Field("k", kK)
          .Field("exact_bitwise", models_ok)
          .Field("default_probe_recall_at_10", gate.default_probe_recall)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", ok)
          .Raw("models", kgrec::bench::JsonWriter::Array(model_rows))
          .Raw("sweep", kgrec::bench::JsonWriter::Array(sweep_rows))
          .str();
  kgrec::bench::JsonWriter::WriteFile("BENCH_retrieval.json", json);

  std::printf("\n%s\n", ok ? "PASS: exact index bitwise, recall gate met"
                           : "FAIL: see messages above");
  return ok ? 0 : 1;
}
