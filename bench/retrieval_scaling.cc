// Retrieval-layer scaling bench and CI gate.
//
//   ./retrieval_scaling          full sweep: catalog size × probe count,
//                                recall@10 vs speedup over the exact scan
//   ./retrieval_scaling --smoke  CI gate (tier1): tiny sweep, asserts
//                                (a) BruteForceIndex top-K is bitwise
//                                    ScoreAll + TopKScored for every
//                                    factorizable registry model,
//                                (b) IvfIndex recall@10 >= 0.95 at the
//                                    default probe setting,
//                                (c) probes == clusters is bitwise the
//                                    brute-force result,
//                                (d) the SQ8 quantized scan + exact
//                                    re-rank is bitwise the float32 scan
//                                    for every factorizable model AND
//                                    the dispatched int8 kernels agree
//                                    with the scalar reference on every
//                                    candidate-pool score (DESIGN §12).
//
// Two parts. Part 1 fits every factorizable model on a small world and
// checks its exact index against the exhaustive reference — the
// export-contract gate (DESIGN §10) — then repeats the comparison with a
// ScanPrecision::kSq8 index and cross-checks the integer scan scores
// against kernels::ref. Part 2 sweeps synthetic Gaussian embeddings
// (retrieval cost depends only on catalog geometry, not on how the
// factors were trained) and reports exact-scan vs SQ8-scan vs IVF QPS,
// latency percentiles, measured recall, and the SQ8 pool's
// recall-before-rerank (how often the quantized scan alone already finds
// the true top-10 — the margin the re-rank consumes).
//
// Emits machine-readable BENCH_retrieval.json next to the binary.
// Exits non-zero on any gate failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/presets.h"
#include "math/kernels.h"
#include "math/rng.h"
#include "math/topk.h"
#include "retrieval/factors.h"
#include "retrieval/index.h"
#include "retrieval/quantize.h"

namespace {

using Clock = std::chrono::steady_clock;
using kgrec::retrieval::BruteForceIndex;
using kgrec::retrieval::ItemFactors;
using kgrec::retrieval::IvfConfig;
using kgrec::retrieval::IvfIndex;
using kgrec::retrieval::QuantizedItemFactors;
using kgrec::retrieval::ScanPrecision;
using kgrec::retrieval::ScanSpec;
using kgrec::retrieval::ScoreKernel;
using kgrec::retrieval::Sq8Query;

constexpr size_t kK = 10;

ScanSpec Sq8Spec() {
  ScanSpec spec;
  spec.precision = ScanPrecision::kSq8;
  return spec;  // default rerank_factor / rerank_slack — what serving uses
}

/// Integer scan scores of every item in `quantized` for `query`, via
/// either the dispatched kernels (simd == true) or the scalar reference.
/// Bitwise equality of the two is the cross-build guarantee: integer
/// accumulation has no fold-order sensitivity, so scalar, SSE2 and AVX2
/// builds must produce identical candidate pools. kDot combines the
/// hi/lo weight passes in int64 exactly like the index scan does.
void IntegerScanScores(const QuantizedItemFactors& quantized,
                       const Sq8Query& q8, bool simd,
                       std::vector<int64_t>* out) {
  const size_t n = quantized.num_items();
  std::vector<const uint8_t*> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = quantized.Codes(i);
  out->resize(n);
  std::vector<int32_t> pass(n);
  if (quantized.kernel() == ScoreKernel::kDot) {
    // Same fused dual-accumulator kernel the serve-path scan uses
    // (retrieval::FlushSq8), so the bitwise gate covers it directly.
    std::vector<int32_t> pass_lo(n);
    if (simd) {
      kgrec::kernels::DotDualBatchI8(q8.weights.data(), q8.weights_lo.data(),
                                     rows.data(), n, quantized.dim(),
                                     pass.data(), pass_lo.data());
    } else {
      kgrec::kernels::ref::DotDualBatchI8(q8.weights.data(),
                                          q8.weights_lo.data(), rows.data(), n,
                                          quantized.dim(), pass.data(),
                                          pass_lo.data());
    }
    for (size_t i = 0; i < n; ++i) {
      (*out)[i] =
          128 * static_cast<int64_t>(pass[i]) + static_cast<int64_t>(pass_lo[i]);
    }
    return;
  }
  if (simd) {
    kgrec::kernels::SquaredDistanceBatchI8(q8.codes.data(), rows.data(), n,
                                           quantized.dim(), pass.data());
  } else {
    kgrec::kernels::ref::SquaredDistanceBatchI8(q8.codes.data(), rows.data(),
                                                n, quantized.dim(),
                                                pass.data());
  }
  for (size_t i = 0; i < n; ++i) (*out)[i] = pass[i];
}

bool SameRanking(const std::vector<std::pair<int32_t, float>>& a,
                 const std::vector<std::pair<int32_t, float>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise: NaN == NaN must pass, +0 vs -0 must fail.
    if (a[i].first != b[i].first ||
        std::memcmp(&a[i].second, &b[i].second, sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

double RecallAt(const std::vector<std::pair<int32_t, float>>& exact,
                const std::vector<std::pair<int32_t, float>>& approx) {
  if (exact.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& [item, score] : approx) {
    for (const auto& [ref_item, ref_score] : exact) {
      if (item == ref_item) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

double Percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

struct QueryTiming {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Runs every query through `index` and times each Query() call.
QueryTiming TimeQueries(const kgrec::retrieval::ItemIndex& index,
                        const kgrec::Matrix& queries, size_t k,
                        std::vector<std::vector<std::pair<int32_t, float>>>*
                            results) {
  results->clear();
  results->reserve(queries.rows());
  std::vector<double> lat_us;
  lat_us.reserve(queries.rows());
  const auto start = Clock::now();
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto t0 = Clock::now();
    results->push_back(index.Query(
        std::span<const float>(queries.Row(q), queries.cols()), k));
    const auto t1 = Clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  QueryTiming timing;
  timing.qps = wall > 0 ? static_cast<double>(queries.rows()) / wall : 0.0;
  std::sort(lat_us.begin(), lat_us.end());
  timing.p50_us = Percentile(lat_us, 0.50);
  timing.p99_us = Percentile(lat_us, 0.99);
  return timing;
}

/// Part 1: for each factorizable registry model, fit on the shared world
/// and require (a) BruteForceIndex::Query == ScoreAll + TopKScored
/// bitwise, (b) the SQ8 index == the float32 index bitwise, and (c) the
/// dispatched integer kernels == the scalar reference on every scan
/// score. Sets *sq8_ok to (b) && (c) across all models.
bool RunModelGate(const kgrec::bench::Workbench& bench, bool* sq8_ok,
                  std::vector<std::string>* json_rows) {
  const kgrec::RecContext ctx = bench.Context(17);
  const int32_t num_items = ctx.train->num_items();
  const int32_t num_users = ctx.train->num_users();
  bool all_ok = true;
  *sq8_ok = true;

  std::printf("%-10s %-14s %-8s %-8s %-8s %10s\n", "model", "kernel",
              "bitwise", "sq8", "int8=ref", "scan QPS");
  kgrec::bench::PrintRule(64);
  for (const std::string& name : kgrec::FactorizableMethodNames()) {
    std::unique_ptr<kgrec::Recommender> model = kgrec::MakeRecommender(name);
    model->Fit(ctx);
    const kgrec::DotProductFactors* factors = kgrec::AsFactorizable(*model);
    BruteForceIndex index(factors->ExportItemFactors());
    BruteForceIndex sq8_index(factors->ExportItemFactors(), Sq8Spec());
    const QuantizedItemFactors* quantized = sq8_index.quantized();

    bool bitwise = index.num_items() == static_cast<size_t>(num_items);
    bool sq8_bitwise = true;
    bool int8_matches_ref = true;
    const int32_t probe_users = std::min<int32_t>(num_users, 32);
    std::vector<float> query(factors->factor_dim());
    Sq8Query q8;
    std::vector<int64_t> dispatched_scores;
    std::vector<int64_t> ref_scores;
    const auto start = Clock::now();
    for (int32_t user = 0; user < probe_users; ++user) {
      const std::vector<float> scores = model->ScoreAll(user, num_items);
      const auto reference = kgrec::TopKScored(scores, kK);
      factors->FillUserQuery(user, query);
      const auto got = index.Query(query, kK);
      if (!SameRanking(reference, got)) {
        bitwise = false;
        std::fprintf(stderr,
                     "FAIL %s user %d: exact index != ScoreAll+TopKScored\n",
                     name.c_str(), user);
        break;
      }
      if (!SameRanking(got, sq8_index.Query(query, kK))) {
        sq8_bitwise = false;
        std::fprintf(stderr,
                     "FAIL %s user %d: SQ8 index != float32 index\n",
                     name.c_str(), user);
        break;
      }
      quantized->PrepareQuery(query, &q8);
      IntegerScanScores(*quantized, q8, /*simd=*/true, &dispatched_scores);
      IntegerScanScores(*quantized, q8, /*simd=*/false, &ref_scores);
      if (dispatched_scores != ref_scores) {
        int8_matches_ref = false;
        std::fprintf(stderr,
                     "FAIL %s user %d: dispatched int8 kernels != scalar "
                     "reference\n",
                     name.c_str(), user);
        break;
      }
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double qps =
        wall > 0 ? static_cast<double>(probe_users) / wall : 0.0;
    const char* kernel =
        kgrec::retrieval::ScoreKernelName(factors->factor_kernel());
    std::printf("%-10s %-14s %-8s %-8s %-8s %10.0f\n", name.c_str(), kernel,
                bitwise ? "yes" : "NO", sq8_bitwise ? "yes" : "NO",
                int8_matches_ref ? "yes" : "NO", qps);
    all_ok = all_ok && bitwise;
    *sq8_ok = *sq8_ok && sq8_bitwise && int8_matches_ref;

    const size_t factor_bytes =
        index.num_items() * index.dim() * sizeof(float);
    json_rows->push_back(kgrec::bench::JsonWriter()
                             .Field("model", name)
                             .Field("kernel", kernel)
                             .Field("bitwise", bitwise)
                             .Field("sq8_bitwise", sq8_bitwise)
                             .Field("int8_kernels_bitwise", int8_matches_ref)
                             .Field("factor_bytes", factor_bytes)
                             .Field("sq8_code_bytes", quantized->code_bytes())
                             .Field("candidate_pool", Sq8Spec().PoolSize(kK))
                             .str());
  }
  return all_ok;
}

struct SweepGate {
  bool ok = true;
  double default_probe_recall = 1.0;
};

/// Part 2: synthetic-embedding sweep, catalog size × probe count.
SweepGate RunSweep(const std::vector<size_t>& catalog_sizes,
                   size_t num_queries, bool smoke,
                   std::vector<std::string>* json_rows) {
  constexpr size_t kDim = 32;
  SweepGate gate;

  std::printf("\n%-9s %-9s %-8s %-7s %10s %9s %9s %9s\n", "catalog",
              "clusters", "probes", "recall", "QPS", "p50 us", "p99 us",
              "speedup");
  kgrec::bench::PrintRule(78);
  for (size_t n : catalog_sizes) {
    kgrec::Rng rng(kgrec::Rng(99).Fork(n).NextUint64());
    // Trained item embeddings cluster (the synthetic worlds build items
    // from latent attribute clusters; real catalogs from genres/brands),
    // so the sweep geometry is a Gaussian mixture, not i.i.d. noise —
    // i.i.d. Gaussian is the adversarial no-structure case where *no*
    // cluster-pruned index can work.
    const size_t gen_clusters = std::max<size_t>(8, n / 40);
    kgrec::Matrix centers(gen_clusters, kDim);
    for (size_t i = 0; i < centers.size(); ++i) {
      centers.data()[i] = static_cast<float>(rng.Normal());
    }
    ItemFactors factors;
    factors.kernel = ScoreKernel::kDot;
    factors.items = kgrec::Matrix(n, kDim);
    for (size_t i = 0; i < n; ++i) {
      const float* center = centers.Row(rng.UniformInt(gen_clusters));
      float* row = factors.items.Row(i);
      for (size_t c = 0; c < kDim; ++c) {
        row[c] = center[c] + 0.15f * static_cast<float>(rng.Normal());
      }
    }
    kgrec::Matrix queries(num_queries, kDim);
    for (size_t i = 0; i < queries.size(); ++i) {
      queries.data()[i] = static_cast<float>(rng.Normal());
    }

    ItemFactors exact_copy;
    exact_copy.kernel = factors.kernel;
    exact_copy.items = factors.items;
    BruteForceIndex exact(std::move(exact_copy));
    std::vector<std::vector<std::pair<int32_t, float>>> exact_results;
    const QueryTiming exact_timing =
        TimeQueries(exact, queries, kK, &exact_results);
    std::printf("%-9zu %-9s %-8s %-7s %10.0f %9.1f %9.1f %9s\n", n, "-",
                "exact", "1.000", exact_timing.qps, exact_timing.p50_us,
                exact_timing.p99_us, "1.0x");
    json_rows->push_back(kgrec::bench::JsonWriter()
                             .Field("catalog", n)
                             .Field("index", "brute-force")
                             .Field("recall_at_10", 1.0)
                             .Field("qps", exact_timing.qps)
                             .Field("p50_us", exact_timing.p50_us)
                             .Field("p99_us", exact_timing.p99_us)
                             .Field("bitwise", true)
                             .str());

    // SQ8 leg: quantized scan + exact re-rank over the same catalog. The
    // final ranking must be bitwise the float scan's (gate); the recall
    // the pool has *before* the re-rank is reported so the over-fetch
    // margin is visible, not assumed.
    {
      ItemFactors sq8_copy;
      sq8_copy.kernel = factors.kernel;
      sq8_copy.items = factors.items;
      BruteForceIndex sq8(std::move(sq8_copy), Sq8Spec());
      const QuantizedItemFactors* quantized = sq8.quantized();
      std::vector<std::vector<std::pair<int32_t, float>>> sq8_results;
      const QueryTiming sq8_timing =
          TimeQueries(sq8, queries, kK, &sq8_results);

      const size_t pool_size = Sq8Spec().PoolSize(kK);
      bool sq8_bitwise = true;
      double pre_recall = 0.0;
      Sq8Query q8;
      std::vector<int64_t> iscores;
      kgrec::BoundedTopK pool(pool_size);
      for (size_t q = 0; q < exact_results.size(); ++q) {
        sq8_bitwise = sq8_bitwise &&
                      SameRanking(exact_results[q], sq8_results[q]);
        quantized->PrepareQuery(
            std::span<const float>(queries.Row(q), queries.cols()), &q8);
        IntegerScanScores(*quantized, q8, /*simd=*/true, &iscores);
        pool.Reset(pool_size);
        for (size_t i = 0; i < iscores.size(); ++i) {
          pool.Push(static_cast<int32_t>(i),
                    quantized->ApproxScore(q8, iscores[i]));
        }
        pre_recall += RecallAt(exact_results[q], pool.TakeSorted());
      }
      pre_recall /= exact_results.empty()
                        ? 1.0
                        : static_cast<double>(exact_results.size());
      if (!sq8_bitwise) {
        std::fprintf(stderr,
                     "FAIL catalog %zu: SQ8 scan + re-rank is not bitwise "
                     "the float32 scan\n",
                     n);
        gate.ok = false;
      }

      const double speedup =
          exact_timing.qps > 0 ? sq8_timing.qps / exact_timing.qps : 0.0;
      std::printf("%-9zu %-9s %-8s %-7.3f %10.0f %9.1f %9.1f %8.1fx\n", n,
                  "-", "sq8", pre_recall, sq8_timing.qps, sq8_timing.p50_us,
                  sq8_timing.p99_us, speedup);
      json_rows->push_back(
          kgrec::bench::JsonWriter()
              .Field("catalog", n)
              .Field("index", "brute-sq8")
              .Field("recall_at_10", sq8_bitwise ? 1.0 : 0.0)
              .Field("recall_before_rerank", pre_recall)
              .Field("candidate_pool", pool_size)
              .Field("factor_bytes", n * kDim * sizeof(float))
              .Field("sq8_code_bytes", quantized->code_bytes())
              .Field("qps", sq8_timing.qps)
              .Field("p50_us", sq8_timing.p50_us)
              .Field("p99_us", sq8_timing.p99_us)
              .Field("bitwise", sq8_bitwise)
              .str());
    }

    IvfConfig base;  // num_clusters = 0 -> ceil(sqrt(n))
    IvfIndex probe_of_default(
        [&] {
          ItemFactors copy;
          copy.kernel = factors.kernel;
          copy.items = factors.items;
          return copy;
        }(),
        base);
    const size_t num_clusters = probe_of_default.num_clusters();

    std::vector<size_t> probe_counts =
        smoke ? std::vector<size_t>{2, base.num_probes, num_clusters}
              : std::vector<size_t>{1, 2, 4, base.num_probes, 16,
                                    num_clusters};
    for (size_t probes : probe_counts) {
      if (probes > num_clusters) continue;
      IvfConfig config = base;
      config.num_probes = probes;
      ItemFactors copy;
      copy.kernel = factors.kernel;
      copy.items = factors.items;
      IvfIndex ivf(std::move(copy), config);

      std::vector<std::vector<std::pair<int32_t, float>>> ivf_results;
      const QueryTiming timing = TimeQueries(ivf, queries, kK, &ivf_results);
      double recall = 0.0;
      bool bitwise = true;
      for (size_t q = 0; q < exact_results.size(); ++q) {
        recall += RecallAt(exact_results[q], ivf_results[q]);
        bitwise = bitwise && SameRanking(exact_results[q], ivf_results[q]);
      }
      recall /= exact_results.empty()
                    ? 1.0
                    : static_cast<double>(exact_results.size());

      if (probes == base.num_probes) {
        gate.default_probe_recall =
            std::min(gate.default_probe_recall, recall);
      }
      if (probes == num_clusters && !bitwise) {
        std::fprintf(stderr,
                     "FAIL catalog %zu: probes==clusters is not bitwise "
                     "the brute-force result\n",
                     n);
        gate.ok = false;
      }

      const double speedup =
          exact_timing.qps > 0 ? timing.qps / exact_timing.qps : 0.0;
      std::printf("%-9zu %-9zu %-8zu %-7.3f %10.0f %9.1f %9.1f %8.1fx\n", n,
                  num_clusters, probes, recall, timing.qps, timing.p50_us,
                  timing.p99_us, speedup);
      json_rows->push_back(kgrec::bench::JsonWriter()
                               .Field("catalog", n)
                               .Field("index", "ivf")
                               .Field("clusters", num_clusters)
                               .Field("probes", probes)
                               .Field("recall_at_10", recall)
                               .Field("qps", timing.qps)
                               .Field("p50_us", timing.p50_us)
                               .Field("p99_us", timing.p99_us)
                               .Field("bitwise", bitwise)
                               .str());
    }
  }
  return gate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Part 1: export-contract gate over the factorizable zoo.
  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  if (smoke) {
    config.num_users = 80;
    config.num_items = 150;
    config.avg_interactions_per_user = 12.0;
  }
  const kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);
  std::vector<std::string> model_rows;
  bool sq8_models_ok = true;
  const bool models_ok = RunModelGate(bench, &sq8_models_ok, &model_rows);

  // Part 2: catalog × probes sweep on synthetic embeddings.
  const std::vector<size_t> catalog_sizes =
      smoke ? std::vector<size_t>{2000}
            : std::vector<size_t>{10000, 50000, 200000};
  std::vector<std::string> sweep_rows;
  const SweepGate gate =
      RunSweep(catalog_sizes, smoke ? 50 : 200, smoke, &sweep_rows);

  const bool recall_ok = gate.default_probe_recall >= 0.95;
  if (!recall_ok) {
    std::fprintf(stderr,
                 "FAIL recall@10 at default probes = %.3f < 0.95\n",
                 gate.default_probe_recall);
  }

  const bool ok = models_ok && sq8_models_ok && gate.ok && recall_ok;
  const std::string json =
      kgrec::bench::JsonWriter()
          .Field("bench", "retrieval_scaling")
          .Field("mode", smoke ? "smoke" : "full")
          .Field("k", kK)
          .Field("exact_bitwise", models_ok)
          .Field("sq8_exact_bitwise", sq8_models_ok)
          .Field("default_probe_recall_at_10", gate.default_probe_recall)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", ok)
          .Raw("models", kgrec::bench::JsonWriter::Array(model_rows))
          .Raw("sweep", kgrec::bench::JsonWriter::Array(sweep_rows))
          .str();
  kgrec::bench::JsonWriter::WriteFile("BENCH_retrieval.json", json);

  std::printf("\n%s\n",
              ok ? "PASS: exact + SQ8 indexes bitwise, recall gate met"
                 : "FAIL: see messages above");
  return ok ? 0 : 1;
}
