// Claim S5: propagation depth H helps then saturates/degrades.
// RippleNet's ripple hops and KGCN's receptive-field depth are swept.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/presets.h"
#include "unified/kgcn.h"
#include "unified/ripplenet.h"

int main() {
  using namespace kgrec;  // NOLINT: bench-local convenience
  WorldConfig config = GetPreset("movielens-100k").config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 12.0;
  bench::Workbench wb = bench::MakeWorkbench(config);

  std::printf("== S5: propagation depth sweep ==\n\n");
  std::printf("%-12s %4s %8s %9s %9s\n", "Model", "H", "AUC", "NDCG@10",
              "train_s");
  for (int i = 0; i < 48; ++i) std::putchar('-');
  std::putchar('\n');
  // The six sweep points are independent: run them across the hardware
  // threads, print in sweep order (identical metrics to a serial run).
  const std::vector<size_t> depths = {1, 2, 3, 1, 2, 3};
  std::vector<std::string> rows = bench::RunRowsParallel(
      depths.size(), [&](size_t i) -> std::string {
        char line[96];
        if (i < 3) {
          RippleNetConfig ripple_config;
          ripple_config.num_hops = depths[i];
          ripple_config.epochs = 8;
          RippleNetRecommender ripple(ripple_config);
          bench::RunResult r =
              bench::RunModel(ripple, wb, /*seed=*/17, /*eval_threads=*/1);
          std::snprintf(line, sizeof(line), "%-12s %4zu %8.3f %9.3f %9.2f",
                        "RippleNet", depths[i], r.ctr.auc, r.topk.ndcg,
                        r.train_seconds);
        } else {
          KgcnConfig kgcn_config;
          kgcn_config.num_layers = depths[i];
          KgcnRecommender kgcn(kgcn_config);
          bench::RunResult r =
              bench::RunModel(kgcn, wb, /*seed=*/17, /*eval_threads=*/1);
          std::snprintf(line, sizeof(line), "%-12s %4zu %8.3f %9.3f %9.2f",
                        "KGCN", depths[i], r.ctr.auc, r.topk.ndcg,
                        r.train_seconds);
        }
        return line;
      });
  for (const std::string& row : rows) std::printf("%s\n", row.c_str());
  std::printf(
      "\nExpected shape: H=2 at or near the top; H=1 misses multi-hop\n"
      "relations, H=3 mixes in noise from distant entities (the survey's\n"
      "discussion of RippleNet/KGCN depth).\n");
  return 0;
}
