// Claims S1 + S3 (survey Section 1 / 2.2): KG side information
// alleviates data sparsity and cold start.
//   Part A: density sweep — the KG-aware models' advantage over BPR-MF
//           grows as the interaction matrix gets sparser.
//   Part B: cold-start items — items with zero training interactions are
//           recommendable only through the KG.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cf/mf.h"
#include "embed/cke.h"
#include "eval/metrics.h"
#include "eval/protocol.h"
#include "unified/kgcn.h"
#include "unified/ripplenet.h"

namespace {

using namespace kgrec;  // NOLINT: bench-local convenience

WorldConfig BaseConfig(double interactions_per_user, uint64_t seed) {
  WorldConfig config;
  config.name = "sparsity";
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = interactions_per_user;
  config.interaction_noise = 0.6;
  config.item_relations = {
      {"genre", 12, 2, 0.95f}, {"director", 40, 1, 0.8f},
      {"actor", 60, 2, 0.7f}};
  config.seed = seed;
  return config;
}

}  // namespace

int main() {
  std::printf("== S1: density sweep (AUC; KG advantage should grow as R "
              "gets sparser) ==\n\n");
  std::printf("%8s %9s | %8s %8s %8s %8s | %s\n", "ints/usr", "density",
              "BPR-MF", "CKE", "KGCN", "Ripple", "best-KG minus BPR-MF");
  for (int i = 0; i < 92; ++i) std::putchar('-');
  std::putchar('\n');
  // Each density point is an independent world: sweep them across the
  // hardware threads and print in density order.
  const std::vector<double> densities = {4.0, 8.0, 16.0, 32.0};
  std::vector<std::string> rows = bench::RunRowsParallel(
      densities.size(), [&](size_t i) -> std::string {
        const double per_user = densities[i];
        bench::Workbench wb =
            bench::MakeWorkbench(BaseConfig(per_user, 900 + per_user));
        double auc[4] = {0, 0, 0, 0};
        BprMfRecommender bpr_model;
        auc[0] = bench::RunModel(bpr_model, wb, 17, 1).ctr.auc;
        CkeRecommender cke;
        auc[1] = bench::RunModel(cke, wb, 17, 1).ctr.auc;
        KgcnRecommender kgcn;
        auc[2] = bench::RunModel(kgcn, wb, 17, 1).ctr.auc;
        RippleNetConfig ripple_config;
        ripple_config.epochs = 8;
        RippleNetRecommender ripple(ripple_config);
        auc[3] = bench::RunModel(ripple, wb, 17, 1).ctr.auc;
        const double best_kg = std::max(auc[1], std::max(auc[2], auc[3]));
        char line[112];
        std::snprintf(line, sizeof(line),
                      "%8.0f %8.2f%% | %8.3f %8.3f %8.3f %8.3f | %+.3f",
                      per_user, 100.0 * wb.split.train.Density(), auc[0],
                      auc[1], auc[2], auc[3], best_kg - auc[0]);
        return line;
      });
  for (const std::string& row : rows) std::printf("%s\n", row.c_str());

  std::printf("\n== S3: cold-start items (20%% of items unseen in training) "
              "==\n\n");
  SyntheticWorld world = GenerateWorld(BaseConfig(16.0, 1234));
  Rng rng(6);
  DataSplit cold = ColdItemSplit(world.interactions, 0.2, rng);
  UserItemGraph graph = BuildUserItemGraph(world, cold.train);
  RecContext ctx;
  ctx.train = &cold.train;
  ctx.item_kg = &world.item_kg;
  ctx.user_item_graph = &graph;
  ctx.seed = 17;
  // Cold-vs-cold protocol: each cold test positive is ranked against a
  // cold item the user never touched, so popularity effects cancel and
  // only the KG can discriminate (BPR-MF has no trained signal at all).
  std::vector<int32_t> cold_items = cold.test.ItemsWithInteractions();
  std::printf("%-10s %8s   (cold-vs-cold pairwise AUC)\n", "Method", "AUC");
  for (int i = 0; i < 44; ++i) std::putchar('-');
  std::putchar('\n');
  auto run_cold = [&](Recommender& model) {
    model.Fit(ctx);
    Rng pair_rng(7);
    std::vector<float> scores;
    std::vector<int> labels;
    for (const Interaction& x : cold.test.interactions()) {
      int32_t neg = -1;
      for (int tries = 0; tries < 100; ++tries) {
        const int32_t candidate =
            cold_items[pair_rng.UniformInt(cold_items.size())];
        if (!cold.test.Contains(x.user, candidate) &&
            !cold.train.Contains(x.user, candidate)) {
          neg = candidate;
          break;
        }
      }
      if (neg < 0) continue;
      scores.push_back(model.Score(x.user, x.item));
      labels.push_back(1);
      scores.push_back(model.Score(x.user, neg));
      labels.push_back(0);
    }
    std::printf("%-10s %8.3f\n", model.name().c_str(), Auc(scores, labels));
    std::fflush(stdout);
  };
  BprMfRecommender bpr_cold;
  run_cold(bpr_cold);
  CkeRecommender cke_cold;
  run_cold(cke_cold);
  KgcnRecommender kgcn_cold;
  run_cold(kgcn_cold);
  RippleNetConfig rc;
  rc.epochs = 8;
  RippleNetRecommender ripple_cold(rc);
  run_cold(ripple_cold);
  std::printf(
      "\nExpected shape: BPR-MF is near AUC 0.5 on cold items (their\n"
      "factors are untrained); KG-aware models stay clearly above 0.5 by\n"
      "scoring through the item's KG attributes. (BPR-MF ~ 0.5 here.)\n");
  return 0;
}
