// Checkpoint/restore harness: Fit → Save → LoadModel → score, model by
// model across the whole zoo, and verify the serve-path contract — the
// restored model's ScoreItems() must be **bitwise identical** to the
// fitted model's. Derived state (ripple sets, path contexts, sampled
// neighborhoods, beam caches) is recomputed on load rather than stored,
// so any drift in those rebuild paths shows up here as a float mismatch.
// Also reports checkpoint size and save/load wall time per model.
//
//   ./checkpoint_roundtrip          full sweep (all 38 models)
//   ./checkpoint_roundtrip --smoke  tiny world, same full zoo, for CI
//
// Exits non-zero if any model fails to save, fails to load, or diverges.

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/mem_stats.h"
#include "core/recommender.h"
#include "core/registry.h"
#include "data/presets.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

long FileSize(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : -1;
}

struct RowResult {
  long bytes = -1;
  double save_s = 0.0;
  double load_s = 0.0;
  bool ok = false;
  std::string error;
};

RowResult Roundtrip(kgrec::Recommender& fitted, const kgrec::RecContext& ctx,
                    const std::string& path, int32_t num_users,
                    int32_t num_items) {
  RowResult row;
  const auto t0 = Clock::now();
  const kgrec::Status saved = fitted.Save(path);
  const auto t1 = Clock::now();
  if (!saved.ok()) {
    row.error = "save: " + saved.ToString();
    return row;
  }
  row.save_s = Seconds(t0, t1);
  row.bytes = FileSize(path);

  std::unique_ptr<kgrec::Recommender> restored;
  const auto t2 = Clock::now();
  const kgrec::Status loaded = kgrec::LoadModel(ctx, path, &restored);
  const auto t3 = Clock::now();
  if (!loaded.ok()) {
    row.error = "load: " + loaded.ToString();
    return row;
  }
  row.load_s = Seconds(t2, t3);

  // Probe a spread of users against a duplicate-bearing candidate list;
  // bitwise comparison, not a tolerance.
  std::vector<int32_t> candidates;
  for (int32_t i = 0; i < num_items; i += 3) candidates.push_back(i);
  candidates.push_back(candidates.front());
  for (int32_t user = 0; user < num_users; user += num_users / 4 + 1) {
    const std::vector<float> before = fitted.ScoreItems(user, candidates);
    const std::vector<float> after = restored->ScoreItems(user, candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (std::memcmp(&before[i], &after[i], sizeof(float)) != 0) {
        row.error = "score divergence at user " + std::to_string(user) +
                    " item " + std::to_string(candidates[i]);
        return row;
      }
    }
  }
  row.ok = true;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  if (smoke) {
    config.num_users = 30;
    config.num_items = 40;
    config.avg_interactions_per_user = 8.0;
  } else {
    config.num_users = 150;
    config.num_items = 200;
    config.avg_interactions_per_user = 10.0;
  }
  kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);

  const std::string dir =
      "/tmp/kgrec_ckpt_" + std::to_string(static_cast<long>(getpid()));
  if (mkdir(dir.c_str(), 0755) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::printf(
      "== checkpoint roundtrip (%s world: %d users, %d items) ==\n\n",
      smoke ? "smoke" : "full", config.num_users, config.num_items);
  std::printf("%-16s %10s %10s %10s %12s\n", "model", "bytes", "save_s",
              "load_s", "roundtrip");
  kgrec::bench::PrintRule(64);

  bool all_ok = true;
  std::vector<std::string> json_rows;
  for (const std::string& name : kgrec::ImplementedMethodNames()) {
    std::unique_ptr<kgrec::Recommender> model = kgrec::MakeRecommender(name);
    if (model == nullptr) {
      std::printf("%-16s (no factory)\n", name.c_str());
      all_ok = false;
      continue;
    }
    model->Fit(bench.Context(17));
    std::string file = name;
    for (char& c : file) {
      if (c == '-' || c == ' ') c = '_';
    }
    const std::string path = dir + "/" + file + ".kgrc";
    const RowResult row = Roundtrip(*model, bench.Context(17), path,
                                    config.num_users, config.num_items);
    if (row.ok) {
      std::printf("%-16s %10ld %10.4f %10.4f %12s\n", name.c_str(), row.bytes,
                  row.save_s, row.load_s, "bitwise");
    } else {
      std::printf("%-16s %10s %10s %10s  FAIL: %s\n", name.c_str(), "-", "-",
                  "-", row.error.c_str());
      all_ok = false;
    }
    json_rows.push_back(kgrec::bench::JsonWriter()
                            .Field("model", name)
                            .Field("checkpoint_bytes",
                                   static_cast<size_t>(
                                       row.bytes > 0 ? row.bytes : 0))
                            .Field("save_seconds", row.save_s)
                            .Field("load_seconds", row.load_s)
                            .Field("bitwise", row.ok)
                            .str());
    std::remove(path.c_str());
  }
  rmdir(dir.c_str());
  kgrec::bench::PrintRule(64);
  std::printf(
      "\nContract: every row must read 'bitwise' — a restored model serves\n"
      "exactly the scores the fitted model did. Checkpoints store learned\n"
      "parameters only; derived state is recomputed on load from the same\n"
      "data and seed, which is what this harness locks down.\n");
  kgrec::bench::JsonWriter::WriteFile(
      "BENCH_checkpoint_roundtrip.json",
      kgrec::bench::JsonWriter()
          .Field("bench", "checkpoint_roundtrip")
          .Field("mode", smoke ? "smoke" : "full")
          .Field("bitwise", all_ok)
          .Field("peak_rss_bytes", kgrec::PeakRssBytes())
          .Field("pass", all_ok)
          .Raw("rows", kgrec::bench::JsonWriter::Array(json_rows))
          .str());
  return all_ok ? 0 : 1;
}
