// Micro-benchmarks of the substrates every model stands on: autodiff
// ops, graph sampling, PathSim and NMF. Run in Release mode.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "graph/pathsim.h"
#include "graph/ripple.h"
#include "math/nmf.h"
#include "math/rng.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "path/metapaths.h"

namespace {

using namespace kgrec;  // NOLINT: bench-local convenience

SyntheticWorld& BenchWorld() {
  static SyntheticWorld* world = [] {
    WorldConfig config;
    config.num_users = 300;
    config.num_items = 500;
    config.avg_interactions_per_user = 20.0;
    config.item_relations = {{"genre", 12, 2, 0.9f}, {"brand", 40, 1, 0.7f}};
    config.seed = 7;
    return new SyntheticWorld(GenerateWorld(config));
  }();
  return *world;
}

void BM_NnMatMulForwardBackward(benchmark::State& state) {
  const size_t n = state.range(0);
  Rng rng(1);
  nn::Tensor a = nn::XavierUniform(n, n, rng);
  nn::Tensor b = nn::XavierUniform(n, n, rng);
  for (auto _ : state) {
    nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
    a.ZeroGrad();
    b.ZeroGrad();
    nn::Backward(loss);
    benchmark::DoNotOptimize(a.grad()[0]);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_NnMatMulForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_NnEmbeddingGatherTrainStep(benchmark::State& state) {
  Rng rng(2);
  nn::Tensor table = nn::XavierUniform(5000, 16, rng);
  std::vector<int32_t> indices(256);
  for (auto& i : indices) i = static_cast<int32_t>(rng.UniformInt(5000));
  for (auto _ : state) {
    table.ZeroGrad();
    nn::Tensor loss = nn::Mean(nn::Square(nn::Gather(table, indices)));
    nn::Backward(loss);
    benchmark::DoNotOptimize(table.grad()[0]);
  }
  state.SetItemsProcessed(state.iterations() * indices.size());
}
BENCHMARK(BM_NnEmbeddingGatherTrainStep);

void BM_GraphNeighborSampling(benchmark::State& state) {
  SyntheticWorld& world = BenchWorld();
  Rng rng(3);
  for (auto _ : state) {
    const EntityId e = static_cast<EntityId>(
        rng.UniformInt(world.item_kg.num_entities()));
    benchmark::DoNotOptimize(world.item_kg.SampleNeighbors(e, 8, rng));
  }
}
BENCHMARK(BM_GraphNeighborSampling);

void BM_GraphRippleSets(benchmark::State& state) {
  SyntheticWorld& world = BenchWorld();
  Rng rng(4);
  std::vector<EntityId> seeds;
  for (int32_t i : world.interactions.UserItems(0)) seeds.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildRippleSets(world.item_kg, seeds, 2, 32, rng));
  }
}
BENCHMARK(BM_GraphRippleSets);

void BM_PathSimAllRelations(benchmark::State& state) {
  SyntheticWorld& world = BenchWorld();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ItemMetaPathSimilarities(
        world.item_kg, world.config.num_items, 10));
  }
}
BENCHMARK(BM_PathSimAllRelations);

void BM_NmfFactorization(benchmark::State& state) {
  SyntheticWorld& world = BenchWorld();
  CsrMatrix r = world.interactions.ToCsr();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Nmf(r, 8, 10, rng));
  }
}
BENCHMARK(BM_NmfFactorization);

}  // namespace

BENCHMARK_MAIN();
