// Future-direction "Multi-task Learning" (survey Section 6, Eq. 9):
// sweep the lambda balancing L_rec and L_KG in KTUP and MKR. The survey
// argues joint training helps; the sweep shows an interior optimum.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/presets.h"
#include "embed/ktup.h"
#include "embed/mkr.h"

int main() {
  using namespace kgrec;  // NOLINT: bench-local convenience
  WorldConfig config = GetPreset("movielens-100k").config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 5.0;  // sparse: the KG task must carry weight
  bench::Workbench wb = bench::MakeWorkbench(config);

  std::printf("== S8: multi-task weight lambda sweep (Eq. 9) ==\n\n");
  std::printf("%-8s | %8s %9s | %8s %9s\n", "lambda", "KTUP-AUC",
              "NDCG@10", "MKR-AUC", "NDCG@10");
  for (int i = 0; i < 52; ++i) std::putchar('-');
  std::putchar('\n');
  const std::vector<float> lambdas = {0.0f, 0.1f, 0.5f, 1.0f, 2.0f};
  std::vector<std::string> rows = bench::RunRowsParallel(
      lambdas.size(), [&](size_t i) -> std::string {
        const float lambda = lambdas[i];
        KtupConfig ktup_config;
        ktup_config.kg_weight = lambda;
        KtupRecommender ktup(ktup_config);
        bench::RunResult kr =
            bench::RunModel(ktup, wb, /*seed=*/17, /*eval_threads=*/1);
        MkrConfig mkr_config;
        mkr_config.kg_weight = lambda;
        MkrRecommender mkr(mkr_config);
        bench::RunResult mr =
            bench::RunModel(mkr, wb, /*seed=*/17, /*eval_threads=*/1);
        char line[96];
        std::snprintf(line, sizeof(line), "%-8.1f | %8.3f %9.3f | %8.3f %9.3f",
                      lambda, kr.ctr.auc, kr.topk.ndcg, mr.ctr.auc,
                      mr.topk.ndcg);
        return line;
      });
  for (const std::string& row : rows) std::printf("%s\n", row.c_str());
  std::printf(
      "\nExpected shape: lambda = 0 (no KG task) underperforms moderate\n"
      "lambda; very large lambda drowns the recommendation signal — an\n"
      "interior optimum, as the multi-task papers report.\n");
  return 0;
}
