// Future-direction "Knowledge Graph Embedding Method" (survey Section 6):
// compare the translation-distance and semantic-matching KGE backends
// both on raw link prediction and as the backend inside CFKG.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/presets.h"
#include "embed/cfkg.h"
#include "kge/kge_trainer.h"

int main() {
  using namespace kgrec;  // NOLINT: bench-local convenience
  WorldConfig config = GetPreset("movielens-100k").config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 12.0;
  bench::Workbench wb = bench::MakeWorkbench(config);

  std::printf("== S7: KGE backend comparison (Section 6 direction) ==\n\n");
  std::printf("%-10s | %8s %9s | %8s %9s %9s\n", "Backend", "LP-MRR",
              "LP-H@10", "CFKG-AUC", "NDCG@10", "train_s");
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');
  const std::vector<std::string> backends = KgeModelNames();
  std::vector<std::string> rows = bench::RunRowsParallel(
      backends.size(), [&](size_t i) -> std::string {
        const std::string& backend = backends[i];
        // Raw link prediction on the user-item KG.
        Rng rng(31);
        auto kge = MakeKgeModel(backend, wb.ui_graph.kg.num_entities(),
                                wb.ui_graph.kg.num_relations(), 16, rng);
        KgeTrainConfig kge_config;
        kge_config.epochs = 15;
        TrainKge(*kge, wb.ui_graph.kg, kge_config);
        Rng lp_rng(32);
        LinkPredictionMetrics lp =
            EvaluateLinkPrediction(*kge, wb.ui_graph.kg, 200, 50, lp_rng);
        // The same backend inside CFKG.
        CfkgConfig cfkg_config;
        cfkg_config.kge = backend;
        CfkgRecommender cfkg(cfkg_config);
        bench::RunResult r =
            bench::RunModel(cfkg, wb, /*seed=*/17, /*eval_threads=*/1);
        char line[112];
        std::snprintf(line, sizeof(line),
                      "%-10s | %8.3f %9.3f | %8.3f %9.3f %9.2f",
                      backend.c_str(), lp.mrr, lp.hits_at_10, r.ctr.auc,
                      r.topk.ndcg, r.train_seconds);
        return line;
      });
  for (const std::string& row : rows) std::printf("%s\n", row.c_str());
  std::printf(
      "\nExpected shape: all backends are serviceable; the richer\n"
      "projections (TransR/TransD) win on link prediction of the\n"
      "multi-relational graph while simple TransE/DistMult remain\n"
      "competitive inside the recommender — the survey's point that no\n"
      "single KGE choice dominates across conditions.\n");
  return 0;
}
