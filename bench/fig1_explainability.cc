// Reproduces survey Figure 1 ("An illustration of KG-based
// recommendation"): a movie KG containing Bob, the movies he watched,
// actors, directors and genres. We embed the figure's named subgraph in a
// larger synthetic movie world, train explainable recommenders (KPRN,
// PGPR, RuleRec) plus the model-agnostic Explainer, and print Bob's
// recommendations together with the reasoning paths — the figure's
// "Avatar is the same genre as Interstellar, which was watched by Bob".

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "explain/explainer.h"
#include "math/topk.h"
#include "path/kprn.h"
#include "path/pgpr.h"
#include "path/rulerec.h"

namespace {

using namespace kgrec;  // NOLINT: bench-local convenience

/// Named movies of Figure 1 (index, genre, director, lead actor).
struct NamedMovie {
  const char* title;
  int genre;
  int director;
  int actor;
};

// genre 0 = Sci-Fi, 1 = Drama; director 0 = James Cameron, 1 = C. Nolan,
// 2 = E. Zwick; actor 0 = L. DiCaprio, 1 = S. Worthington.
const NamedMovie kNamedMovies[] = {
    {"Avatar", 0, 0, 1},         {"Interstellar", 0, 1, 2},
    {"Inception", 0, 1, 0},      {"Titanic", 1, 0, 0},
    {"Blood Diamond", 1, 2, 0},  {"The Revenant", 1, 2, 0},
};
constexpr int kNumNamed = 6;
const char* kGenres[] = {"Sci-Fi", "Drama", "Comedy", "Action"};
const char* kDirectors[] = {"James Cameron", "Christopher Nolan",
                            "Edward Zwick", "Director_3", "Director_4",
                            "Director_5"};
const char* kActors[] = {"Leonardo DiCaprio", "Sam Worthington",
                         "Anne Hathaway", "Actor_3", "Actor_4", "Actor_5",
                         "Actor_6", "Actor_7"};

/// Builds a movie world whose first entities are the Figure 1 subgraph,
/// padded with synthetic movies/users so the models have data to learn
/// from. Returns a SyntheticWorld so the standard graph builders apply.
SyntheticWorld BuildFigure1World() {
  const int num_items = 40;
  const int num_users = 80;
  Rng rng(2026);

  SyntheticWorld world;
  world.config.name = "figure1-movies";
  world.config.num_users = num_users;
  world.config.num_items = num_items;
  world.config.item_relations = {{"genre", 4, 1, 1.0f},
                                 {"directed_by", 6, 1, 1.0f},
                                 {"starring", 8, 1, 1.0f}};

  // --- Item KG with real names ----------------------------------------
  std::vector<int> genre_of(num_items), director_of(num_items),
      actor_of(num_items);
  world.type_names = {"item", "genre", "directed_by", "starring"};
  for (int j = 0; j < num_items; ++j) {
    const std::string title = j < kNumNamed
                                  ? kNamedMovies[j].title
                                  : "Movie_" + std::to_string(j);
    world.item_kg.AddEntity(title);
    world.entity_types.push_back(0);
    if (j < kNumNamed) {
      genre_of[j] = kNamedMovies[j].genre;
      director_of[j] = kNamedMovies[j].director;
      actor_of[j] = kNamedMovies[j].actor;
    } else {
      genre_of[j] = static_cast<int>(rng.UniformInt(4));
      director_of[j] = static_cast<int>(rng.UniformInt(6));
      actor_of[j] = static_cast<int>(rng.UniformInt(8));
    }
  }
  const RelationId genre_rel = world.item_kg.AddRelation("genre");
  const RelationId director_rel = world.item_kg.AddRelation("directed_by");
  const RelationId actor_rel = world.item_kg.AddRelation("starring");
  world.relation_ids = {genre_rel, director_rel, actor_rel};
  std::vector<EntityId> genres, directors, actors;
  for (const char* g : kGenres) {
    genres.push_back(world.item_kg.AddEntity(g));
    world.entity_types.push_back(1);
  }
  for (const char* d : kDirectors) {
    directors.push_back(world.item_kg.AddEntity(d));
    world.entity_types.push_back(2);
  }
  for (const char* a : kActors) {
    actors.push_back(world.item_kg.AddEntity(a));
    world.entity_types.push_back(3);
  }
  for (int j = 0; j < num_items; ++j) {
    (void)world.item_kg.AddTriple(j, genre_rel, genres[genre_of[j]]);
    (void)world.item_kg.AddTriple(j, director_rel,
                                  directors[director_of[j]]);
    (void)world.item_kg.AddTriple(j, actor_rel, actors[actor_of[j]]);
  }
  world.item_kg.AddInverseRelations();
  world.item_kg.Finalize();

  // --- Interactions: users prefer one or two genres --------------------
  // User 0 is Bob with the figure's history; Avatar and Blood Diamond
  // stay unwatched so they can be recommended.
  world.interactions = InteractionDataset(num_users, num_items);
  world.interactions.Add(0, 1);  // Interstellar
  world.interactions.Add(0, 2);  // Inception
  world.interactions.Add(0, 3);  // Titanic
  for (int u = 1; u < num_users; ++u) {
    const int favorite = static_cast<int>(rng.UniformInt(4));
    const int second = static_cast<int>(rng.UniformInt(4));
    size_t added = 0;
    for (int tries = 0; tries < 200 && added < 8; ++tries) {
      const int j = static_cast<int>(rng.UniformInt(num_items));
      const bool liked = genre_of[j] == favorite ||
                         (genre_of[j] == second && rng.Bernoulli(0.5)) ||
                         rng.Bernoulli(0.1);
      if (liked && !world.interactions.Contains(u, j)) {
        world.interactions.Add(u, j);
        ++added;
      }
    }
  }
  return world;
}

}  // namespace

int main() {
  std::printf(
      "== Figure 1: explainable KG-based movie recommendation for Bob ==\n"
      "Bob watched: Interstellar, Inception, Titanic.\n\n");
  SyntheticWorld world = BuildFigure1World();
  // Train on everything Bob's world knows (no holdout: the figure is a
  // qualitative illustration).
  UserItemGraph graph = BuildUserItemGraph(world, world.interactions);
  RecContext ctx;
  ctx.train = &world.interactions;
  ctx.item_kg = &world.item_kg;
  ctx.user_item_graph = &graph;
  ctx.seed = 11;

  // --- KPRN: path-scored recommendations -------------------------------
  KprnConfig kprn_config;
  kprn_config.epochs = 5;
  KprnRecommender kprn(kprn_config);
  kprn.Fit(ctx);
  std::vector<float> scores(world.config.num_items);
  for (int j = 0; j < world.config.num_items; ++j) {
    scores[j] = world.interactions.Contains(0, j) ? -1e9f : kprn.Score(0, j);
  }
  std::printf("[KPRN] top-3 for Bob, with the model's best path:\n");
  for (int32_t j : TopKIndices(scores, 3)) {
    std::printf("  %-14s score=%.3f\n", world.item_kg.entity_name(j).c_str(),
                scores[j]);
    const std::string path = kprn.ExplainBestPath(0, j);
    std::printf("    path: %s\n", path.empty() ? "(no path)" : path.c_str());
  }

  // --- Model-agnostic explainer (Figure 1's narrative) ------------------
  Explainer explainer(graph, world.interactions);
  std::printf("\n[Explainer] reasons for the top recommendation:\n");
  const int32_t top = TopKIndices(scores, 1)[0];
  for (const Explanation& e : explainer.Explain(0, top)) {
    std::printf("  because %s\n", e.text.c_str());
  }

  // --- RuleRec: learned explainable rules ------------------------------
  RuleRecRecommender rulerec;
  rulerec.Fit(ctx);
  std::printf("\n[RuleRec] learned rule weights:\n");
  for (const auto& [rule, weight] : rulerec.Rules()) {
    std::printf("  %-28s %+6.3f\n", rule.c_str(), weight);
  }
  std::printf("  explanation for (Bob, %s): %s\n",
              world.item_kg.entity_name(top).c_str(),
              rulerec.Explain(0, top).c_str());

  // --- PGPR: reasoning paths from reinforcement learning ---------------
  PgprConfig pgpr_config;
  PgprRecommender pgpr(pgpr_config);
  pgpr.Fit(ctx);
  std::printf("\n[PGPR] beam-reached recommendations with paths:\n");
  int printed = 0;
  std::vector<float> pgpr_scores(world.config.num_items);
  for (int j = 0; j < world.config.num_items; ++j) {
    pgpr_scores[j] =
        world.interactions.Contains(0, j) ? -1e9f : pgpr.Score(0, j);
  }
  for (int32_t j : TopKIndices(pgpr_scores, 10)) {
    const std::string path = pgpr.ExplainPath(0, j);
    if (path.empty()) continue;
    std::printf("  %-14s via %s\n", world.item_kg.entity_name(j).c_str(),
                path.c_str());
    if (++printed == 3) break;
  }
  if (printed == 0) {
    std::printf("  (beam reached no new items for Bob)\n");
  }
  return 0;
}
