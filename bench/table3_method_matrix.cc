// Reproduces survey Table 3 ("Table of collected papers") with measured
// columns added: every implemented method is trained on a common
// MovieLens-like synthetic world and its AUC / NDCG@10 / Recall@10 and
// training time are printed next to the paper's venue/year/usage-type/
// technique matrix. Catalogued-but-not-implemented rows are printed too,
// so the table is complete with respect to the survey.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/registry.h"
#include "data/presets.h"

namespace {

using kgrec::AllMethods;
using kgrec::MakeRecommender;
using kgrec::MethodInfo;
using kgrec::UsageTypeName;

const char* Flag(bool on) { return on ? "x" : "."; }

}  // namespace

int main() {
  // A common, deliberately compact world so all ~25 models train in
  // seconds: MovieLens-100K profile at reduced scale.
  kgrec::WorldConfig config = kgrec::GetPreset("movielens-100k").config;
  config.num_users = 200;
  config.num_items = 300;
  config.avg_interactions_per_user = 10.0;  // the sparse regime the survey motivates
  kgrec::bench::Workbench bench = kgrec::bench::MakeWorkbench(config);

  std::printf(
      "== Table 3: collected papers x technique matrix, with measured "
      "quality ==\n");
  std::printf(
      "world: %d users x %d items, %zu train / %zu test interactions, "
      "density %.2f%%\n\n",
      config.num_users, config.num_items,
      bench.split.train.num_interactions(),
      bench.split.test.num_interactions(),
      100.0 * bench.split.train.Density());
  std::printf("%-14s %-12s %5s %-5s | %3s %3s %3s %3s %3s %3s %3s %3s | "
              "%6s %7s %8s %7s\n",
              "Method", "Venue", "Year", "Usage", "CNN", "RNN", "Att", "GNN",
              "GAN", "RL", "AE", "MF", "AUC", "NDCG@10", "Rec@10",
              "train_s");
  for (int i = 0; i < 118; ++i) std::putchar('-');
  std::putchar('\n');

  // Train + evaluate every method across the hardware threads; rows are
  // collected per index and printed in Table 3 order, and the metrics are
  // identical to a serial sweep (per-user RNG streams, fixed seeds).
  const std::vector<MethodInfo> methods = AllMethods();
  std::vector<std::string> rows = kgrec::bench::RunRowsParallel(
      methods.size(), [&](size_t i) -> std::string {
        const MethodInfo& info = methods[i];
        char line[160];
        if (!info.implemented) {
          std::snprintf(line, sizeof(line),
                        "%6s %7s %8s %7s   (catalogued; not implemented)", "-",
                        "-", "-", "-");
          return line;
        }
        auto model = MakeRecommender(info.name);
        kgrec::bench::RunResult result =
            kgrec::bench::RunModel(*model, bench, /*seed=*/17,
                                   /*eval_threads=*/1);
        std::snprintf(line, sizeof(line), "%6.3f %7.3f %8.3f %7.2f",
                      result.ctr.auc, result.topk.ndcg, result.topk.recall,
                      result.train_seconds);
        return line;
      });
  for (size_t i = 0; i < methods.size(); ++i) {
    const MethodInfo& info = methods[i];
    std::printf("%-14s %-12s %5d %-5s | %3s %3s %3s %3s %3s %3s %3s %3s | "
                "%s\n",
                info.name.c_str(), info.venue.c_str(), info.year,
                UsageTypeName(info.usage), Flag(info.uses_cnn),
                Flag(info.uses_rnn), Flag(info.uses_attention),
                Flag(info.uses_gnn), Flag(info.uses_gan), Flag(info.uses_rl),
                Flag(info.uses_autoencoder), Flag(info.uses_mf),
                rows[i].c_str());
  }
  std::printf(
      "\nExpected shape (survey Sections 4.1-4.4): KG-aware methods beat\n"
      "the non-KG baselines, and unified methods sit at or near the top.\n");
  return 0;
}
