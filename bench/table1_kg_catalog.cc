// Reproduces survey Table 1 ("A collection of commonly used knowledge
// graphs"): for every catalogued KG we build a synthetic stand-in at
// reduced scale with the same domain composition, and print the paper's
// reported statistics next to the generated graph's measured statistics.

#include <cstdio>
#include <string>
#include <vector>

#include "graph/knowledge_graph.h"
#include "math/rng.h"

namespace {

using kgrec::EntityId;
using kgrec::KnowledgeGraph;
using kgrec::RelationId;
using kgrec::Rng;

struct KgSpec {
  const char* name;
  const char* domain_type;
  const char* main_source;
  /// Paper-reported scale where the survey gives one.
  const char* reported;
  /// Synthetic entity count (orders of magnitude below the original).
  size_t entities;
  /// Facts per entity on average.
  double fact_ratio;
  /// Fraction of facts in the dominant domain (Freebase: ~77% media).
  double dominant_share;
};

const std::vector<KgSpec>& Specs() {
  static const std::vector<KgSpec> kSpecs = {
      {"YAGO", "Cross-Domain", "Wikipedia", "5M+ facts", 2500, 2.0, 0.40},
      {"Freebase", "Cross-Domain", "Wikipedia, NNDB, FMD, MusicBrainz",
       "50M ent / 3B facts", 5000, 6.0, 0.77},
      {"DBpedia", "Cross-Domain", "Wikipedia", "updated yearly", 4000, 3.0,
       0.50},
      {"Satori", "Cross-Domain", "Web Data", "300M ent / 800M facts", 3000,
       2.7, 0.45},
      {"CN-DBPedia", "Cross-Domain", "Baidu/Hudong Baike, zh-Wikipedia",
       "16M ent / 220M facts", 1600, 13.0, 0.50},
      {"NELL", "Cross-Domain", "Web Data", "-", 1200, 2.0, 0.40},
      {"Wikidata", "Cross-Domain", "Wikipedia, Freebase", "-", 4500, 4.0,
       0.45},
      {"Google's Knowledge Graph", "Cross-Domain", "Web data", "-", 3500,
       5.0, 0.50},
      {"Facebook's Entities Graph", "Cross-Domain", "Wikipedia, Facebook",
       "-", 2000, 3.0, 0.60},
      {"Bio2RDF", "Biological Domain", "Bioinformatics databases", "-",
       1500, 4.0, 1.00},
      {"KnowLife", "Biomedical Domain", "Scientific literature", "-", 1000,
       3.0, 1.00},
  };
  return kSpecs;
}

struct Measured {
  size_t entities = 0;
  size_t relations = 0;
  size_t facts = 0;
  double dominant_share = 0.0;
};

/// Builds a synthetic cross-domain KG with the requested composition and
/// measures it back.
Measured BuildAndMeasure(const KgSpec& spec, Rng& rng) {
  KnowledgeGraph kg;
  const std::vector<std::string> domains{"media", "people", "places",
                                         "science"};
  std::vector<std::vector<EntityId>> by_domain(domains.size());
  std::vector<size_t> domain_of;
  for (size_t e = 0; e < spec.entities; ++e) {
    const size_t domain = rng.Uniform() < spec.dominant_share
                              ? 0
                              : 1 + rng.UniformInt(domains.size() - 1);
    const EntityId id =
        kg.AddEntity(domains[domain] + "_" + std::to_string(e));
    by_domain[domain].push_back(id);
    domain_of.push_back(domain);
  }
  std::vector<RelationId> relations;
  for (const char* r : {"related_to", "part_of", "located_in", "created_by",
                        "instance_of", "member_of"}) {
    relations.push_back(kg.AddRelation(r));
  }
  const size_t facts = static_cast<size_t>(spec.entities * spec.fact_ratio);
  size_t dominant_facts = 0;
  for (size_t f = 0; f < facts; ++f) {
    size_t domain_h = rng.Uniform() < spec.dominant_share
                          ? 0
                          : 1 + rng.UniformInt(domains.size() - 1);
    while (by_domain[domain_h].empty()) {
      domain_h = rng.UniformInt(domains.size());
    }
    // Mostly intra-domain facts, some cross-domain links.
    size_t domain_t =
        rng.Uniform() < 0.8 ? domain_h : rng.UniformInt(domains.size());
    while (by_domain[domain_t].empty()) {
      domain_t = rng.UniformInt(domains.size());
    }
    const EntityId h =
        by_domain[domain_h][rng.UniformInt(by_domain[domain_h].size())];
    const EntityId t =
        by_domain[domain_t][rng.UniformInt(by_domain[domain_t].size())];
    const RelationId r = relations[rng.UniformInt(relations.size())];
    if (!kg.AddTriple(h, r, t).ok()) continue;
    if (domain_h == 0) ++dominant_facts;
  }
  kg.Finalize();
  Measured out;
  out.entities = kg.num_entities();
  out.relations = kg.num_relations();
  out.facts = kg.num_triples();
  out.dominant_share =
      out.facts == 0 ? 0.0 : static_cast<double>(dominant_facts) / out.facts;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "== Table 1: A collection of commonly used knowledge graphs ==\n"
      "Synthetic stand-ins at reduced scale; the structure (domain type,\n"
      "composition, facts-per-entity ratio) follows the catalogue.\n\n");
  std::printf("%-26s %-18s %-22s | %9s %9s %9s %10s %14s\n", "KG Name",
              "Domain Type", "Paper-reported scale", "entities", "relations",
              "facts", "facts/ent", "dominant-share");
  for (int i = 0; i < 126; ++i) std::putchar('-');
  std::putchar('\n');
  Rng rng(2026);
  for (const KgSpec& spec : Specs()) {
    Measured m = BuildAndMeasure(spec, rng);
    std::printf("%-26s %-18s %-22s | %9zu %9zu %9zu %10.2f %13.0f%%\n",
                spec.name, spec.domain_type, spec.reported, m.entities,
                m.relations, m.facts,
                static_cast<double>(m.facts) / m.entities,
                100.0 * m.dominant_share);
  }
  std::printf(
      "\nMain knowledge sources (per Table 1): YAGO<-Wikipedia;"
      " Freebase<-Wikipedia,NNDB,FMD,MusicBrainz; DBpedia<-Wikipedia;\n"
      "Satori<-Web; CN-DBPedia<-Baidu/Hudong Baike; NELL<-Web;"
      " Wikidata<-Wikipedia,Freebase; Bio2RDF/KnowLife<-domain corpora.\n");
  return 0;
}
