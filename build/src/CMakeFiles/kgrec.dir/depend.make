# Empty dependencies file for kgrec.
# This may be replaced when dependencies are built.
