
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cf/fm.cc" "src/CMakeFiles/kgrec.dir/cf/fm.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/cf/fm.cc.o.d"
  "/root/repo/src/cf/knn.cc" "src/CMakeFiles/kgrec.dir/cf/knn.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/cf/knn.cc.o.d"
  "/root/repo/src/cf/mf.cc" "src/CMakeFiles/kgrec.dir/cf/mf.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/cf/mf.cc.o.d"
  "/root/repo/src/cf/popularity.cc" "src/CMakeFiles/kgrec.dir/cf/popularity.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/cf/popularity.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/CMakeFiles/kgrec.dir/core/recommender.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/core/recommender.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/kgrec.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/core/registry.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/kgrec.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/core/serialize.cc.o.d"
  "/root/repo/src/core/status.cc" "src/CMakeFiles/kgrec.dir/core/status.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/core/status.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "src/CMakeFiles/kgrec.dir/core/thread_pool.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/core/thread_pool.cc.o.d"
  "/root/repo/src/data/interactions.cc" "src/CMakeFiles/kgrec.dir/data/interactions.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/data/interactions.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/CMakeFiles/kgrec.dir/data/presets.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/data/presets.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/kgrec.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/data/synthetic.cc.o.d"
  "/root/repo/src/embed/cfkg.cc" "src/CMakeFiles/kgrec.dir/embed/cfkg.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/cfkg.cc.o.d"
  "/root/repo/src/embed/cke.cc" "src/CMakeFiles/kgrec.dir/embed/cke.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/cke.cc.o.d"
  "/root/repo/src/embed/dkfm.cc" "src/CMakeFiles/kgrec.dir/embed/dkfm.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/dkfm.cc.o.d"
  "/root/repo/src/embed/dkn.cc" "src/CMakeFiles/kgrec.dir/embed/dkn.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/dkn.cc.o.d"
  "/root/repo/src/embed/ecfkg.cc" "src/CMakeFiles/kgrec.dir/embed/ecfkg.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/ecfkg.cc.o.d"
  "/root/repo/src/embed/entity2rec.cc" "src/CMakeFiles/kgrec.dir/embed/entity2rec.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/entity2rec.cc.o.d"
  "/root/repo/src/embed/ksr.cc" "src/CMakeFiles/kgrec.dir/embed/ksr.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/ksr.cc.o.d"
  "/root/repo/src/embed/ktgan.cc" "src/CMakeFiles/kgrec.dir/embed/ktgan.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/ktgan.cc.o.d"
  "/root/repo/src/embed/ktup.cc" "src/CMakeFiles/kgrec.dir/embed/ktup.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/ktup.cc.o.d"
  "/root/repo/src/embed/mkr.cc" "src/CMakeFiles/kgrec.dir/embed/mkr.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/mkr.cc.o.d"
  "/root/repo/src/embed/sed.cc" "src/CMakeFiles/kgrec.dir/embed/sed.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/sed.cc.o.d"
  "/root/repo/src/embed/shine.cc" "src/CMakeFiles/kgrec.dir/embed/shine.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/embed/shine.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/kgrec.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/protocol.cc" "src/CMakeFiles/kgrec.dir/eval/protocol.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/eval/protocol.cc.o.d"
  "/root/repo/src/explain/explainer.cc" "src/CMakeFiles/kgrec.dir/explain/explainer.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/explain/explainer.cc.o.d"
  "/root/repo/src/graph/aggregators.cc" "src/CMakeFiles/kgrec.dir/graph/aggregators.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/aggregators.cc.o.d"
  "/root/repo/src/graph/bfs.cc" "src/CMakeFiles/kgrec.dir/graph/bfs.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/bfs.cc.o.d"
  "/root/repo/src/graph/hin.cc" "src/CMakeFiles/kgrec.dir/graph/hin.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/hin.cc.o.d"
  "/root/repo/src/graph/knowledge_graph.cc" "src/CMakeFiles/kgrec.dir/graph/knowledge_graph.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/knowledge_graph.cc.o.d"
  "/root/repo/src/graph/paths.cc" "src/CMakeFiles/kgrec.dir/graph/paths.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/paths.cc.o.d"
  "/root/repo/src/graph/pathsim.cc" "src/CMakeFiles/kgrec.dir/graph/pathsim.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/pathsim.cc.o.d"
  "/root/repo/src/graph/ripple.cc" "src/CMakeFiles/kgrec.dir/graph/ripple.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/graph/ripple.cc.o.d"
  "/root/repo/src/kge/kge_models.cc" "src/CMakeFiles/kgrec.dir/kge/kge_models.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/kge/kge_models.cc.o.d"
  "/root/repo/src/kge/kge_trainer.cc" "src/CMakeFiles/kgrec.dir/kge/kge_trainer.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/kge/kge_trainer.cc.o.d"
  "/root/repo/src/math/dense.cc" "src/CMakeFiles/kgrec.dir/math/dense.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/math/dense.cc.o.d"
  "/root/repo/src/math/kmeans.cc" "src/CMakeFiles/kgrec.dir/math/kmeans.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/math/kmeans.cc.o.d"
  "/root/repo/src/math/nmf.cc" "src/CMakeFiles/kgrec.dir/math/nmf.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/math/nmf.cc.o.d"
  "/root/repo/src/math/rng.cc" "src/CMakeFiles/kgrec.dir/math/rng.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/math/rng.cc.o.d"
  "/root/repo/src/math/sparse.cc" "src/CMakeFiles/kgrec.dir/math/sparse.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/math/sparse.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "src/CMakeFiles/kgrec.dir/nn/gradcheck.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/nn/gradcheck.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/kgrec.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/kgrec.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/kgrec.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/CMakeFiles/kgrec.dir/nn/optim.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/nn/optim.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/kgrec.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/nn/tensor.cc.o.d"
  "/root/repo/src/path/ekar.cc" "src/CMakeFiles/kgrec.dir/path/ekar.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/ekar.cc.o.d"
  "/root/repo/src/path/fmg.cc" "src/CMakeFiles/kgrec.dir/path/fmg.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/fmg.cc.o.d"
  "/root/repo/src/path/herec.cc" "src/CMakeFiles/kgrec.dir/path/herec.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/herec.cc.o.d"
  "/root/repo/src/path/hete_cf.cc" "src/CMakeFiles/kgrec.dir/path/hete_cf.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/hete_cf.cc.o.d"
  "/root/repo/src/path/hete_mf.cc" "src/CMakeFiles/kgrec.dir/path/hete_mf.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/hete_mf.cc.o.d"
  "/root/repo/src/path/heterec.cc" "src/CMakeFiles/kgrec.dir/path/heterec.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/heterec.cc.o.d"
  "/root/repo/src/path/kprn.cc" "src/CMakeFiles/kgrec.dir/path/kprn.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/kprn.cc.o.d"
  "/root/repo/src/path/mcrec.cc" "src/CMakeFiles/kgrec.dir/path/mcrec.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/mcrec.cc.o.d"
  "/root/repo/src/path/metapaths.cc" "src/CMakeFiles/kgrec.dir/path/metapaths.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/metapaths.cc.o.d"
  "/root/repo/src/path/path_finder.cc" "src/CMakeFiles/kgrec.dir/path/path_finder.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/path_finder.cc.o.d"
  "/root/repo/src/path/pgpr.cc" "src/CMakeFiles/kgrec.dir/path/pgpr.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/pgpr.cc.o.d"
  "/root/repo/src/path/proppr.cc" "src/CMakeFiles/kgrec.dir/path/proppr.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/proppr.cc.o.d"
  "/root/repo/src/path/rkge.cc" "src/CMakeFiles/kgrec.dir/path/rkge.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/rkge.cc.o.d"
  "/root/repo/src/path/rulerec.cc" "src/CMakeFiles/kgrec.dir/path/rulerec.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/path/rulerec.cc.o.d"
  "/root/repo/src/unified/akupm.cc" "src/CMakeFiles/kgrec.dir/unified/akupm.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/unified/akupm.cc.o.d"
  "/root/repo/src/unified/kgat.cc" "src/CMakeFiles/kgrec.dir/unified/kgat.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/unified/kgat.cc.o.d"
  "/root/repo/src/unified/kgcn.cc" "src/CMakeFiles/kgrec.dir/unified/kgcn.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/unified/kgcn.cc.o.d"
  "/root/repo/src/unified/kni.cc" "src/CMakeFiles/kgrec.dir/unified/kni.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/unified/kni.cc.o.d"
  "/root/repo/src/unified/ripplenet.cc" "src/CMakeFiles/kgrec.dir/unified/ripplenet.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/unified/ripplenet.cc.o.d"
  "/root/repo/src/unified/ripplenet_agg.cc" "src/CMakeFiles/kgrec.dir/unified/ripplenet_agg.cc.o" "gcc" "src/CMakeFiles/kgrec.dir/unified/ripplenet_agg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
