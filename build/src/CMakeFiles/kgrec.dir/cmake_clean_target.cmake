file(REMOVE_RECURSE
  "libkgrec.a"
)
