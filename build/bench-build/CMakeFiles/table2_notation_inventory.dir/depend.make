# Empty dependencies file for table2_notation_inventory.
# This may be replaced when dependencies are built.
