file(REMOVE_RECURSE
  "../bench/table2_notation_inventory"
  "../bench/table2_notation_inventory.pdb"
  "CMakeFiles/table2_notation_inventory.dir/table2_notation_inventory.cc.o"
  "CMakeFiles/table2_notation_inventory.dir/table2_notation_inventory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_notation_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
