file(REMOVE_RECURSE
  "../bench/fig1_explainability"
  "../bench/fig1_explainability.pdb"
  "CMakeFiles/fig1_explainability.dir/fig1_explainability.cc.o"
  "CMakeFiles/fig1_explainability.dir/fig1_explainability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_explainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
