# Empty dependencies file for fig1_explainability.
# This may be replaced when dependencies are built.
