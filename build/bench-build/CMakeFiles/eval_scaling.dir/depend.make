# Empty dependencies file for eval_scaling.
# This may be replaced when dependencies are built.
