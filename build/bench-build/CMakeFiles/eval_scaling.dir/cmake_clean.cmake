file(REMOVE_RECURSE
  "../bench/eval_scaling"
  "../bench/eval_scaling.pdb"
  "CMakeFiles/eval_scaling.dir/eval_scaling.cc.o"
  "CMakeFiles/eval_scaling.dir/eval_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
