file(REMOVE_RECURSE
  "../bench/ablation_multitask"
  "../bench/ablation_multitask.pdb"
  "CMakeFiles/ablation_multitask.dir/ablation_multitask.cc.o"
  "CMakeFiles/ablation_multitask.dir/ablation_multitask.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
