file(REMOVE_RECURSE
  "../bench/table4_scenario_datasets"
  "../bench/table4_scenario_datasets.pdb"
  "CMakeFiles/table4_scenario_datasets.dir/table4_scenario_datasets.cc.o"
  "CMakeFiles/table4_scenario_datasets.dir/table4_scenario_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_scenario_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
