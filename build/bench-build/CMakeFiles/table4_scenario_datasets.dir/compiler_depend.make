# Empty compiler generated dependencies file for table4_scenario_datasets.
# This may be replaced when dependencies are built.
