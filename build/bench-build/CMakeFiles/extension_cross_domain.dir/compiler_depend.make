# Empty compiler generated dependencies file for extension_cross_domain.
# This may be replaced when dependencies are built.
