file(REMOVE_RECURSE
  "../bench/extension_cross_domain"
  "../bench/extension_cross_domain.pdb"
  "CMakeFiles/extension_cross_domain.dir/extension_cross_domain.cc.o"
  "CMakeFiles/extension_cross_domain.dir/extension_cross_domain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cross_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
