file(REMOVE_RECURSE
  "../bench/table3_method_matrix"
  "../bench/table3_method_matrix.pdb"
  "CMakeFiles/table3_method_matrix.dir/table3_method_matrix.cc.o"
  "CMakeFiles/table3_method_matrix.dir/table3_method_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_method_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
