file(REMOVE_RECURSE
  "../bench/ablation_kge_backend"
  "../bench/ablation_kge_backend.pdb"
  "CMakeFiles/ablation_kge_backend.dir/ablation_kge_backend.cc.o"
  "CMakeFiles/ablation_kge_backend.dir/ablation_kge_backend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kge_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
