# Empty dependencies file for ablation_kge_backend.
# This may be replaced when dependencies are built.
