file(REMOVE_RECURSE
  "../bench/ablation_sparsity_coldstart"
  "../bench/ablation_sparsity_coldstart.pdb"
  "CMakeFiles/ablation_sparsity_coldstart.dir/ablation_sparsity_coldstart.cc.o"
  "CMakeFiles/ablation_sparsity_coldstart.dir/ablation_sparsity_coldstart.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparsity_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
