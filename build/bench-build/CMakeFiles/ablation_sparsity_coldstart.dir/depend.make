# Empty dependencies file for ablation_sparsity_coldstart.
# This may be replaced when dependencies are built.
