file(REMOVE_RECURSE
  "../bench/ablation_hops"
  "../bench/ablation_hops.pdb"
  "CMakeFiles/ablation_hops.dir/ablation_hops.cc.o"
  "CMakeFiles/ablation_hops.dir/ablation_hops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
