# Empty dependencies file for ablation_hops.
# This may be replaced when dependencies are built.
