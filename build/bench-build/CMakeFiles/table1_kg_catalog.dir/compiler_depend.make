# Empty compiler generated dependencies file for table1_kg_catalog.
# This may be replaced when dependencies are built.
