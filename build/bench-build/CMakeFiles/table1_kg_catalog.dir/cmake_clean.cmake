file(REMOVE_RECURSE
  "../bench/table1_kg_catalog"
  "../bench/table1_kg_catalog.pdb"
  "CMakeFiles/table1_kg_catalog.dir/table1_kg_catalog.cc.o"
  "CMakeFiles/table1_kg_catalog.dir/table1_kg_catalog.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_kg_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
