# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kgrec_tests "/root/repo/build/tests/kgrec_tests")
set_tests_properties(kgrec_tests PROPERTIES  LABELS "tier1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parallel_eval_test "/root/repo/build/tests/kgrec_tests" "--gtest_filter=*ParallelEval*:*ThreadPool*:*ParallelFor*:*RngFork*")
set_tests_properties(parallel_eval_test PROPERTIES  LABELS "tier1;tsan" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;14;add_test;/root/repo/tests/CMakeLists.txt;0;")
