
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/kgrec_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/kgrec_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/kgrec_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/kgrec_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_cf_test.cc" "tests/CMakeFiles/kgrec_tests.dir/integration_cf_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/integration_cf_test.cc.o.d"
  "/root/repo/tests/integration_embed_test.cc" "tests/CMakeFiles/kgrec_tests.dir/integration_embed_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/integration_embed_test.cc.o.d"
  "/root/repo/tests/integration_extended_test.cc" "tests/CMakeFiles/kgrec_tests.dir/integration_extended_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/integration_extended_test.cc.o.d"
  "/root/repo/tests/integration_path_test.cc" "tests/CMakeFiles/kgrec_tests.dir/integration_path_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/integration_path_test.cc.o.d"
  "/root/repo/tests/integration_unified_test.cc" "tests/CMakeFiles/kgrec_tests.dir/integration_unified_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/integration_unified_test.cc.o.d"
  "/root/repo/tests/integration_wave3_test.cc" "tests/CMakeFiles/kgrec_tests.dir/integration_wave3_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/integration_wave3_test.cc.o.d"
  "/root/repo/tests/kge_test.cc" "tests/CMakeFiles/kgrec_tests.dir/kge_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/kge_test.cc.o.d"
  "/root/repo/tests/math_test.cc" "tests/CMakeFiles/kgrec_tests.dir/math_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/math_test.cc.o.d"
  "/root/repo/tests/nn_extra_test.cc" "tests/CMakeFiles/kgrec_tests.dir/nn_extra_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/nn_extra_test.cc.o.d"
  "/root/repo/tests/nn_gradcheck_test.cc" "tests/CMakeFiles/kgrec_tests.dir/nn_gradcheck_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/nn_gradcheck_test.cc.o.d"
  "/root/repo/tests/parallel_eval_test.cc" "tests/CMakeFiles/kgrec_tests.dir/parallel_eval_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/parallel_eval_test.cc.o.d"
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/kgrec_tests.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/protocol_test.cc.o.d"
  "/root/repo/tests/registry_smoke_test.cc" "tests/CMakeFiles/kgrec_tests.dir/registry_smoke_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/registry_smoke_test.cc.o.d"
  "/root/repo/tests/registry_test.cc" "tests/CMakeFiles/kgrec_tests.dir/registry_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/registry_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/kgrec_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/kgrec_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/kgrec_tests.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/kgrec_tests.dir/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kgrec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
