# Empty dependencies file for kgrec_tests.
# This may be replaced when dependencies are built.
