file(REMOVE_RECURSE
  "CMakeFiles/news_dkn.dir/news_dkn.cpp.o"
  "CMakeFiles/news_dkn.dir/news_dkn.cpp.o.d"
  "news_dkn"
  "news_dkn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_dkn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
