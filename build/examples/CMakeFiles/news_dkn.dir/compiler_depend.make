# Empty compiler generated dependencies file for news_dkn.
# This may be replaced when dependencies are built.
