# Empty dependencies file for movie_explainable.
# This may be replaced when dependencies are built.
