file(REMOVE_RECURSE
  "CMakeFiles/movie_explainable.dir/movie_explainable.cpp.o"
  "CMakeFiles/movie_explainable.dir/movie_explainable.cpp.o.d"
  "movie_explainable"
  "movie_explainable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_explainable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
