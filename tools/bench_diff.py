#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json artifacts.

Every bench emits a machine-readable BENCH_<name>.json (throughput,
latency, peak RSS, bitwise/pass flags) into its working directory; this
tool compares two snapshots of those artifacts — e.g. the checkout
before and after a change, or two CI runs — and reports what moved.

Usage:
    tools/bench_diff.py OLD_DIR NEW_DIR [--threshold PCT]
    tools/bench_diff.py OLD_FILE NEW_FILE [--threshold PCT]

Exit status: 1 if any `pass` flag, any flag ending in `_pass` (the
online-update frontier's per-family gates `mf_family_pass` /
`kge_family_pass`), or any flag whose name contains `bitwise` regressed
true -> false — that includes the SQ8-vs-float32 equality flags
(`sq8_bitwise`, `sq8_exact_bitwise`, `int8_kernels_bitwise`), which
must never drift. 0 otherwise (numeric drift alone never fails —
timing noise is not a regression; the budgets inside the benches gate
RSS and the SQ8 bytes ratio). AUC columns in BENCH_online.json
(`stale_auc` / `updated_auc` / `refit_auc`, and the derived `recovery`)
are seed-deterministic, so any movement is reported; `cost_ratio` is a
timing quotient and subject to the noise threshold like the
`*_seconds` fields it divides.

Size/selection fields such as `factor_bytes`, `sq8_code_bytes` and
`candidate_pool` are never treated as timing noise: any change is
reported, because a silent candidate-pool or layout change is exactly
the kind of drift this tool exists to surface.
"""

import argparse
import json
import os
import sys

# Fields whose drift is noise at small magnitudes; reported only past
# the threshold.
NUMERIC_NOISE_FIELDS = ("seconds", "_s", "_ns", "qps", "speedup", "p50",
                        "p99", "latency", "cost_ratio")


def load(path):
    with open(path) as f:
        return json.load(f)


def fmt_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TiB"


def is_noise_field(key):
    return any(tag in key for tag in NUMERIC_NOISE_FIELDS)


def diff_scalar(key, old, new, threshold, lines):
    """Appends a report line when (key, old -> new) is worth showing.

    Returns True when the change is a pass/bitwise regression.
    """
    if isinstance(old, bool) or isinstance(new, bool):
        if old != new:
            gated = key == "pass" or key.endswith("_pass") or \
                "bitwise" in key
            tag = "REGRESSION" if old and not new and gated else "changed"
            lines.append(f"  {key}: {old} -> {new}  [{tag}]")
            return bool(old) and not new and gated
        return False
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if old == new:
            return False
        pct = 100.0 * (new - old) / old if old else float("inf")
        if is_noise_field(key) and abs(pct) < threshold:
            return False
        if "bytes" in key:
            lines.append(f"  {key}: {fmt_bytes(old)} -> {fmt_bytes(new)}"
                         f"  ({pct:+.1f}%)")
        else:
            lines.append(f"  {key}: {old:g} -> {new:g}  ({pct:+.1f}%)")
        return False
    if old != new:
        lines.append(f"  {key}: {old!r} -> {new!r}")
    return False


def is_row_list(value):
    return isinstance(value, list) and all(
        isinstance(item, dict) for item in value)


def row_label(row, index):
    for tag in ("model", "family", "kernel", "stage", "structure", "index",
                "catalog"):
        if tag in row:
            extra = f"@{row['catalog']}" if tag != "catalog" and \
                "catalog" in row else ""
            return f"{row[tag]}{extra}"
    return str(index)


def diff_rows(field, old_rows, new_rows, threshold, lines):
    """Positionally diffs one list-of-dicts field (models / sweep /
    stages / structures / rows). Returns True on a gated regression."""
    regressed = False
    if len(old_rows) != len(new_rows):
        lines.append(
            f"  {field}: {len(old_rows)} -> {len(new_rows)} entries")
        return False
    for i, (o, n) in enumerate(zip(old_rows, new_rows)):
        row_lines = []
        row_regressed = False
        for key in o.keys() & n.keys():
            if diff_scalar(key, o[key], n[key], threshold, row_lines):
                row_regressed = True
        for key in o.keys() - n.keys():
            row_lines.append(f"  {key}: {o[key]!r} -> (absent)")
        for key in n.keys() - o.keys():
            row_lines.append(f"  {key}: (absent) -> {n[key]!r}")
        if row_lines:
            lines.append(f"  {field}[{row_label(o, i)}]:")
            lines.extend("  " + l for l in sorted(row_lines))
        regressed = regressed or row_regressed
    return regressed


def diff_bench(name, old, new, threshold):
    """Returns (report_lines, regressed)."""
    lines = []
    regressed = False
    keys = list(dict.fromkeys(list(old.keys()) + list(new.keys())))
    for key in keys:
        if is_row_list(old.get(key)) or is_row_list(new.get(key)):
            continue  # handled positionally below
        if key not in old:
            lines.append(f"  {key}: (absent) -> {new[key]!r}")
            continue
        if key not in new:
            lines.append(f"  {key}: {old[key]!r} -> (absent)")
            continue
        if diff_scalar(key, old[key], new[key], threshold, lines):
            regressed = True
    # Row-level: every list-of-dicts field (rows, models, sweep, stages,
    # structures) is matched positionally when the shape is unchanged.
    for key in keys:
        old_value, new_value = old.get(key, []), new.get(key, [])
        if not (is_row_list(old_value) and is_row_list(new_value)):
            if is_row_list(old_value) or is_row_list(new_value):
                lines.append(f"  {key}: shape changed")
            continue
        if diff_rows(key, old_value, new_value, threshold, lines):
            regressed = True
    return lines, regressed


def collect(path):
    """Maps bench name -> parsed JSON for a file or a directory."""
    if os.path.isfile(path):
        data = load(path)
        return {data.get("bench", os.path.basename(path)): data}
    out = {}
    for entry in sorted(os.listdir(path)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            data = load(os.path.join(path, entry))
            out[data.get("bench", entry)] = data
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json artifacts between two snapshots.")
    parser.add_argument("old", help="old snapshot: a directory or one file")
    parser.add_argument("new", help="new snapshot: a directory or one file")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="hide timing drift below this percent "
                             "(default 5)")
    args = parser.parse_args()

    old_set, new_set = collect(args.old), collect(args.new)
    names = list(dict.fromkeys(list(old_set.keys()) + list(new_set.keys())))
    if not names:
        print("no BENCH_*.json artifacts found")
        return 0

    any_regressed = False
    for name in names:
        if name not in old_set:
            print(f"== {name}: new bench (no old artifact)")
            continue
        if name not in new_set:
            print(f"== {name}: artifact missing in new snapshot")
            continue
        lines, regressed = diff_bench(name, old_set[name], new_set[name],
                                      args.threshold)
        any_regressed = any_regressed or regressed
        if lines:
            print(f"== {name}")
            print("\n".join(lines))
        else:
            print(f"== {name}: no change above threshold")
    return 1 if any_regressed else 0


if __name__ == "__main__":
    sys.exit(main())
