#include "math/nmf.h"

#include <algorithm>

#include "core/check.h"

namespace kgrec {

NmfResult Nmf(const CsrMatrix& matrix, size_t rank, int iterations,
              Rng& rng) {
  const size_t m = matrix.rows();
  const size_t n = matrix.cols();
  KGREC_CHECK_GT(rank, 0u);
  constexpr float kEps = 1e-9f;

  // Densify R (library-scale matrices only).
  Matrix r(m, n);
  for (size_t i = 0; i < m; ++i) {
    const int32_t* cols = matrix.RowCols(i);
    const float* vals = matrix.RowVals(i);
    for (size_t k = 0; k < matrix.RowNnz(i); ++k) {
      r.At(i, cols[k]) = std::max(0.0f, vals[k]);
    }
  }

  NmfResult out;
  out.user_factors = Matrix(m, rank);
  out.item_factors = Matrix(n, rank);
  for (size_t i = 0; i < out.user_factors.size(); ++i) {
    out.user_factors.data()[i] = static_cast<float>(rng.Uniform(0.01, 1.0));
  }
  for (size_t i = 0; i < out.item_factors.size(); ++i) {
    out.item_factors.data()[i] = static_cast<float>(rng.Uniform(0.01, 1.0));
  }

  Matrix num_u(m, rank), num_v(n, rank), gram(rank, rank), denom(m, rank);
  for (int iter = 0; iter < iterations; ++iter) {
    Matrix& u = out.user_factors;
    Matrix& v = out.item_factors;
    // U <- U * (R V) / (U V^T V)
    dense::MatMul(r.data(), v.data(), num_u.data(), m, n, rank);
    // gram = V^T V.
    for (size_t a = 0; a < rank; ++a) {
      for (size_t b = 0; b < rank; ++b) {
        float acc = 0.0f;
        for (size_t j = 0; j < n; ++j) acc += v.At(j, a) * v.At(j, b);
        gram.At(a, b) = acc;
      }
    }
    dense::MatMul(u.data(), gram.data(), denom.data(), m, rank, rank);
    for (size_t i = 0; i < u.size(); ++i) {
      u.data()[i] *= num_u.data()[i] / (denom.data()[i] + kEps);
    }
    // V <- V * (R^T U) / (V U^T U)
    for (size_t a = 0; a < rank; ++a) {
      for (size_t b = 0; b < rank; ++b) {
        float acc = 0.0f;
        for (size_t i = 0; i < m; ++i) acc += u.At(i, a) * u.At(i, b);
        gram.At(a, b) = acc;
      }
    }
    for (size_t j = 0; j < n; ++j) {
      for (size_t a = 0; a < rank; ++a) {
        float acc = 0.0f;
        for (size_t i = 0; i < m; ++i) acc += r.At(i, j) * u.At(i, a);
        num_v.At(j, a) = acc;
      }
    }
    Matrix denom_v(n, rank);
    dense::MatMul(v.data(), gram.data(), denom_v.data(), n, rank, rank);
    for (size_t i = 0; i < v.size(); ++i) {
      v.data()[i] *= num_v.data()[i] / (denom_v.data()[i] + kEps);
    }
  }
  return out;
}

}  // namespace kgrec
