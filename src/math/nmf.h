#ifndef KGREC_MATH_NMF_H_
#define KGREC_MATH_NMF_H_

#include "math/dense.h"
#include "math/rng.h"
#include "math/sparse.h"

namespace kgrec {

/// Result of non-negative matrix factorization R ~= U^T V with
/// U [rank x rows]^T stored as rows x rank and V as cols x rank.
struct NmfResult {
  Matrix user_factors;  ///< rows x rank
  Matrix item_factors;  ///< cols x rank
};

/// Lee-Seung multiplicative-update NMF of a (sparse, non-negative) matrix,
/// densified internally — suitable for the diffused preference matrices of
/// HeteRec/FMG (survey Eq. 16) at library scale.
NmfResult Nmf(const CsrMatrix& matrix, size_t rank, int iterations, Rng& rng);

}  // namespace kgrec

#endif  // KGREC_MATH_NMF_H_
