#include "math/dense.h"

#include <cmath>

#include "math/kernels.h"

namespace kgrec::dense {

float Dot(const float* a, const float* b, size_t n) {
  return kernels::Dot(a, b, n);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  kernels::Axpy(alpha, x, y, n);
}

void Scale(float* x, size_t n, float alpha) { kernels::Scale(x, n, alpha); }

float Norm2(const float* x, size_t n) {
  return std::sqrt(kernels::Dot(x, x, n));
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  return kernels::SquaredDistance(a, b, n);
}

void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n) {
  kernels::MatMul(a, b, c, m, k, n);
}

void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n) {
  kernels::MatMulTransposeB(a, b, c, m, k, n);
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  return kernels::CosineSimilarity(a, b, n);
}

}  // namespace kgrec::dense
