#include "math/dense.h"

#include <cmath>
#include <cstring>

namespace kgrec::dense {

float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float* x, size_t n, float alpha) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

float Norm2(const float* x, size_t n) { return std::sqrt(Dot(x, x, n)); }

float SquaredDistance(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n) {
  std::memset(c, 0, m * n * sizeof(float));
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = Dot(arow, b + j * k, k);
  }
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  const float na = Norm2(a, n);
  const float nb = Norm2(b, n);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

}  // namespace kgrec::dense
