#ifndef KGREC_MATH_DENSE_H_
#define KGREC_MATH_DENSE_H_

#include <cstddef>

#include "core/aligned.h"

namespace kgrec {

/// Plain float vector/matrix kernels used by the non-autodiff parts of the
/// library (PathSim, matrix factorization baselines, the data generator).
/// Matrices are row-major, described by (data, rows, cols).
///
/// These are thin wrappers over the shared SIMD kernel layer
/// (math/kernels.h) and inherit its fixed-block accumulation contract:
/// reductions fold four lane accumulators as (l0+l2)+(l1+l3) with a
/// scalar tail, identically in scalar and SIMD builds.
namespace dense {

/// Dot product of two equal-length vectors.
float Dot(const float* a, const float* b, size_t n);

/// y += alpha * x (axpy).
void Axpy(float alpha, const float* x, float* y, size_t n);

/// Scales x in place by alpha.
void Scale(float* x, size_t n, float alpha);

/// Euclidean norm.
float Norm2(const float* x, size_t n);

/// Squared Euclidean distance between two vectors.
float SquaredDistance(const float* a, const float* b, size_t n);

/// C = A * B with A (m x k), B (k x n), C (m x n). C is overwritten.
/// Every C[i][j] accumulates its k products in ascending p — including
/// exact-zero A entries, which earlier versions skipped.
void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n);

/// C = A * B^T with A (m x k), B (n x k), C (m x n). C is overwritten.
void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero. Fused:
/// one pass accumulates the dot and both squared norms.
float CosineSimilarity(const float* a, const float* b, size_t n);

}  // namespace dense

/// Row-major owning matrix of floats. The backing store is 64-byte
/// aligned (core/aligned.h) so whole-matrix kernel sweeps start on a
/// cache-line boundary.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }
  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

 private:
  size_t rows_;
  size_t cols_;
  AlignedVector<float> data_;
};

}  // namespace kgrec

#endif  // KGREC_MATH_DENSE_H_
