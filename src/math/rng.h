#ifndef KGREC_MATH_RNG_H_
#define KGREC_MATH_RNG_H_

#include <cstdint>
#include <vector>

#include "core/check.h"

namespace kgrec {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// Every stochastic component in the library (initializers, negative
/// samplers, synthetic worlds, SGD shuffling) draws from an explicitly
/// seeded Rng so that runs are reproducible bit-for-bit given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 state expansion.
  void Seed(uint64_t seed);

  /// Derives an independent child generator for the given stream id
  /// (counter-based stream splitting). Fork is const: it hashes the
  /// current state together with `stream_id` without advancing this
  /// generator, so `rng.Fork(a)` and `rng.Fork(b)` are order-independent
  /// and a fixed (seed, stream_id) pair always yields the same stream.
  /// This is what makes parallel evaluation bitwise-reproducible: every
  /// work unit (e.g. a user) draws from Fork(unit_id) no matter which
  /// thread, or in which order, it is processed.
  Rng Fork(uint64_t stream_id) const;

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Standard normal variate (Box-Muller).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index proportionally to the given non-negative weights.
  /// The weights need not be normalized; their sum must be positive.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace kgrec

#endif  // KGREC_MATH_RNG_H_
