#ifndef KGREC_MATH_TOPK_H_
#define KGREC_MATH_TOPK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace kgrec {

/// The library-wide ranking order for (score, index) pairs — a *total*
/// order, so every top-K selection (full-vector partial_sort, streaming
/// heap, index scan) produces the same unique result:
///
///   1. any non-NaN score ranks before any NaN score;
///   2. among non-NaN scores, higher ranks first;
///   3. ties — including NaN vs NaN and +inf/-inf vs themselves — break
///      toward the smaller index.
///
/// NaN handling is the point: `scores[a] > scores[b]` alone is not a
/// strict weak ordering when NaN is present (NaN compares "equivalent" to
/// every value while real values stay ordered among themselves, breaking
/// transitivity of equivalence), which is undefined behaviour inside
/// std::partial_sort. Ranking NaN last restores a strict total order and
/// gives NaN-emitting models a defined, deterministic serving behaviour.
inline bool RankBetter(float score_a, int32_t a, float score_b, int32_t b) {
  const bool nan_a = std::isnan(score_a);
  const bool nan_b = std::isnan(score_b);
  if (nan_a != nan_b) return nan_b;  // the non-NaN side wins
  if (!nan_a && score_a != score_b) return score_a > score_b;
  return a < b;
}

/// Returns the indices of the k largest scores, ordered best-first under
/// RankBetter (NaN last, ties toward the smaller index).
inline std::vector<int32_t> TopKIndices(const std::vector<float>& scores,
                                        size_t k) {
  std::vector<int32_t> idx(scores.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int32_t>(i);
  k = std::min(k, scores.size());
  auto better = [&scores](int32_t a, int32_t b) {
    return RankBetter(scores[a], a, scores[b], b);
  };
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(), better);
  idx.resize(k);
  return idx;
}

/// Returns (index, score) pairs of the k largest scores, best-first.
inline std::vector<std::pair<int32_t, float>> TopKScored(
    const std::vector<float>& scores, size_t k) {
  std::vector<std::pair<int32_t, float>> out;
  for (int32_t i : TopKIndices(scores, k)) out.emplace_back(i, scores[i]);
  return out;
}

/// A bounded streaming top-K accumulator: feed any number of (index,
/// score) pairs, keep only the K best under RankBetter, in O(K) memory.
/// Because RankBetter is a total order, the result is *identical* to
/// materializing every score and running TopKScored over the full vector
/// — this is what lets the retrieval layer scan a million-item catalog
/// without ever allocating a million-float score buffer.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k) : k_(k) { heap_.reserve(k); }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

  /// Rearms the accumulator for a new selection of size k, keeping the
  /// heap buffer — with TakeSortedInto this makes a reused BoundedTopK
  /// allocation-free at steady state (the retrieval SearchScratch path).
  void Reset(size_t k) {
    k_ = k;
    heap_.clear();
    heap_.reserve(k);
  }

  /// The current worst kept entry; only meaningful when size() == k > 0.
  const std::pair<int32_t, float>& worst() const { return heap_.front(); }

  /// True when a candidate with this (index, score) would be kept.
  bool WouldAccept(int32_t index, float score) const {
    if (k_ == 0) return false;
    if (heap_.size() < k_) return true;
    return RankBetter(score, index, heap_.front().second, heap_.front().first);
  }

  void Push(int32_t index, float score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.emplace_back(index, score);
      std::push_heap(heap_.begin(), heap_.end(), WorseFirst);
      return;
    }
    if (!RankBetter(score, index, heap_.front().second, heap_.front().first)) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), WorseFirst);
    heap_.back() = {index, score};
    std::push_heap(heap_.begin(), heap_.end(), WorseFirst);
  }

  /// Extracts the kept entries, best-first. Leaves the accumulator empty.
  std::vector<std::pair<int32_t, float>> TakeSorted() {
    std::vector<std::pair<int32_t, float>> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(),
              [](const std::pair<int32_t, float>& x,
                 const std::pair<int32_t, float>& y) {
                return RankBetter(x.second, x.first, y.second, y.first);
              });
    return out;
  }

  /// TakeSorted into a caller-owned vector: sorts the kept entries
  /// best-first in place and copies them into `out` (reusing its
  /// capacity), leaving the accumulator empty but its buffer retained.
  /// Unlike TakeSorted, a steady-state reuse cycle of
  /// Reset/Push.../TakeSortedInto allocates nothing.
  void TakeSortedInto(std::vector<std::pair<int32_t, float>>& out) {
    std::sort(heap_.begin(), heap_.end(),
              [](const std::pair<int32_t, float>& x,
                 const std::pair<int32_t, float>& y) {
                return RankBetter(x.second, x.first, y.second, y.first);
              });
    out.assign(heap_.begin(), heap_.end());
    heap_.clear();
  }

 private:
  /// Heap comparator. std::push_heap keeps the *maximum under comp* at
  /// the front; with comp(x, y) = "x ranks better than y", the maximum
  /// is the entry every other entry ranks better than — the worst — so
  /// the front is exactly the entry to evict when a better candidate
  /// arrives.
  static bool WorseFirst(const std::pair<int32_t, float>& x,
                         const std::pair<int32_t, float>& y) {
    return RankBetter(x.second, x.first, y.second, y.first);
  }

  size_t k_;
  std::vector<std::pair<int32_t, float>> heap_;
};

}  // namespace kgrec

#endif  // KGREC_MATH_TOPK_H_
