#ifndef KGREC_MATH_TOPK_H_
#define KGREC_MATH_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace kgrec {

/// Returns the indices of the k largest scores, ordered best-first.
/// Ties are broken toward the smaller index so results are deterministic.
inline std::vector<int32_t> TopKIndices(const std::vector<float>& scores,
                                        size_t k) {
  std::vector<int32_t> idx(scores.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int32_t>(i);
  k = std::min(k, scores.size());
  auto better = [&scores](int32_t a, int32_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(), better);
  idx.resize(k);
  return idx;
}

/// Returns (index, score) pairs of the k largest scores, best-first.
inline std::vector<std::pair<int32_t, float>> TopKScored(
    const std::vector<float>& scores, size_t k) {
  std::vector<std::pair<int32_t, float>> out;
  for (int32_t i : TopKIndices(scores, k)) out.emplace_back(i, scores[i]);
  return out;
}

}  // namespace kgrec

#endif  // KGREC_MATH_TOPK_H_
