#include "math/sparse.h"

#include <algorithm>
#include <tuple>

#include "core/check.h"

namespace kgrec {

CsrMatrix CsrMatrix::FromTriplets(
    size_t rows, size_t cols,
    const std::vector<std::tuple<int32_t, int32_t, float>>& triplets) {
  CsrMatrix m(rows, cols);
  std::vector<std::tuple<int32_t, int32_t, float>> sorted = triplets;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  std::vector<size_t> counts(rows, 0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    auto [r, c, v] = sorted[i];
    KGREC_CHECK(r >= 0 && static_cast<size_t>(r) < rows);
    KGREC_CHECK(c >= 0 && static_cast<size_t>(c) < cols);
    if (!m.col_idx_.empty() && i > 0 &&
        std::get<0>(sorted[i - 1]) == r && std::get<1>(sorted[i - 1]) == c) {
      m.values_.back() += v;  // merge duplicate
      continue;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    ++counts[r];
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] = m.row_ptr_[r] + counts[r];
  return m;
}

float CsrMatrix::At(size_t r, size_t c) const {
  KGREC_CHECK_LT(r, rows_);
  for (size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
    if (static_cast<size_t>(col_idx_[i]) == c) return values_[i];
  }
  return 0.0f;
}

CsrMatrix CsrMatrix::Multiply(const CsrMatrix& other) const {
  KGREC_CHECK_EQ(cols_, other.rows_);
  CsrMatrix out(rows_, other.cols_);
  std::vector<float> accumulator(other.cols_, 0.0f);
  std::vector<int32_t> touched;
  for (size_t r = 0; r < rows_; ++r) {
    touched.clear();
    for (size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const size_t mid = col_idx_[i];
      const float av = values_[i];
      for (size_t j = other.row_ptr_[mid]; j < other.row_ptr_[mid + 1]; ++j) {
        const int32_t c = other.col_idx_[j];
        if (accumulator[c] == 0.0f) touched.push_back(c);
        accumulator[c] += av * other.values_[j];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int32_t c : touched) {
      if (accumulator[c] != 0.0f) {
        out.col_idx_.push_back(c);
        out.values_.push_back(accumulator[c]);
      }
      accumulator[c] = 0.0f;
    }
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  return out;
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix out(cols_, rows_);
  std::vector<size_t> counts(cols_, 0);
  for (int32_t c : col_idx_) ++counts[c];
  for (size_t c = 0; c < cols_; ++c)
    out.row_ptr_[c + 1] = out.row_ptr_[c] + counts[c];
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<size_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const size_t c = col_idx_[i];
      out.col_idx_[cursor[c]] = static_cast<int32_t>(r);
      out.values_[cursor[c]] = values_[i];
      ++cursor[c];
    }
  }
  return out;
}

void CsrMatrix::MultiplyVector(const float* x, float* y) const {
  for (size_t r = 0; r < rows_; ++r) {
    float acc = 0.0f;
    for (size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[i] * x[col_idx_[i]];
    }
    y[r] = acc;
  }
}

double CsrMatrix::Sum() const {
  double acc = 0.0;
  for (float v : values_) acc += v;
  return acc;
}

}  // namespace kgrec
