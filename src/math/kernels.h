#ifndef KGREC_MATH_KERNELS_H_
#define KGREC_MATH_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace kgrec {

/// Shared vectorized kernel layer. Every dense inner loop in the library
/// (dense::*, the nn/ops.cc forward/backward closures, the batched
/// ScoreItems fast paths) routes through these entry points, so there is
/// exactly one implementation — and one numerical specification — of each
/// hot loop.
///
/// # The fixed-block accumulation contract
///
/// Every *reduction* kernel (Dot, SquaredDistance, CosineSimilarity, the
/// per-output dots of MatMulTransposeB / DotBatch) is specified as
/// fixed-block accumulation, NOT left-to-right summation:
///
///   1. Four independent lane accumulators l0..l3. Lane t sums the
///      products at indices i with i % 4 == t, for i in
///      [0, 4 * floor(n / 4)), visited in ascending block order.
///   2. The lanes are folded in the documented order
///      (l0 + l2) + (l1 + l3).
///   3. The tail elements i in [4 * floor(n / 4), n) are then added to
///      the folded value one at a time, in ascending order.
///
/// SSE2 implements step 1 as one 4-lane vector accumulator (addps/mulps
/// are per-lane IEEE-754 single ops, no contraction), step 2 as the
/// movehl+shuffle horizontal fold, and step 3 as scalar adds. The scalar
/// reference in kernels::ref implements the *same* block order with plain
/// float arithmetic. Because both paths perform the identical sequence of
/// IEEE operations per output, scalar and SIMD builds are bitwise
/// identical — the block order is the single reference, and which path
/// executed is unobservable in the results.
///
/// *Accumulating matrix* kernels (MatMul, MatMulTransposeAAcc) are
/// specified element-wise instead: C[i][j] accumulates its k products one
/// add at a time in ascending reduction-index order. That specification
/// is invariant under vectorizing across j (each output element still
/// sees the same add sequence), so those kernels may use any vector
/// width — including AVX2 when the compiler targets it — without
/// changing a bit.
///
/// *Elementwise* kernels (Axpy, Scale, the transcendental maps) are
/// specified per element; the transcendental maps call the same libm
/// functions as the scalar reference (a vector polynomial exp would not
/// be bitwise equal to std::exp), so their SIMD benefit is limited to the
/// surrounding arithmetic and the value of the layer is having one shared
/// definition per map.
///
/// Build-time dispatch (the `KGREC_SIMD` CMake knob):
///   auto (default) — SSE2 kernels (always available on x86-64); matrix
///                    and elementwise kernels widen to AVX2 when the
///                    compile target has it (e.g. -march=native).
///   sse2           — as auto, but never widen past 128-bit.
///   off            — public entry points alias the scalar reference;
///                    this is the specification build CI keeps green.
namespace kernels {

/// Human-readable name of the dispatched implementation: "avx2", "sse2"
/// or "scalar".
const char* Mode();

/// Fixed-block dot product of two n-vectors.
float Dot(const float* a, const float* b, size_t n);

/// Four fixed-block dot products of `a` against rows[0..3], sharing each
/// a[c] broadcast. out[q] is bitwise equal to Dot(a, rows[q], n).
void Dot4(const float* a, const float* const* rows, size_t n, float* out);

/// `count` fixed-block dot products of `a` against scattered rows — the
/// gather form of MatMulTransposeB used by the batched ScoreItems paths.
/// out[q] is bitwise equal to Dot(a, rows[q], n) for every q.
void DotBatch(const float* a, const float* const* rows, size_t count,
              size_t n, float* out);

/// y[i] += alpha * x[i] (elementwise contract).
void Axpy(float alpha, const float* x, float* y, size_t n);

/// x[i] *= alpha (elementwise contract).
void Scale(float* x, size_t n, float alpha);

/// Fixed-block sum of (a[i] - b[i])^2.
float SquaredDistance(const float* a, const float* b, size_t n);

/// Single-pass fused cosine similarity: one sweep accumulates dot, |a|^2
/// and |b|^2 (three independent fixed-block reductions), then returns
/// dot / (sqrt(|a|^2) * sqrt(|b|^2)), or 0.0f when either vector is
/// all-zero.
float CosineSimilarity(const float* a, const float* b, size_t n);

/// C = A * B with A (m x k), B (k x n), C (m x n), overwritten.
/// Element-wise contract: C[i][j] accumulates A[i][p] * B[p][j] in
/// ascending p, one add per product (no zero-skip — a skipped
/// `0 * B[p][j]` add is observable for inf/NaN operands and for -0.0
/// accumulators, and the branch blocks vectorization).
void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n);

/// C = A * B^T with A (m x k), B (n x k), C (m x n). Each C[i][j] is a
/// fixed-block Dot(A row i, B row j); `accumulate` adds into C instead of
/// overwriting (the MatMul-backward dA form).
void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, bool accumulate = false);

/// C += A^T * B with A (m x k), B (m x n), C (k x n). Element-wise
/// contract: C[p][j] accumulates A[i][p] * B[i][j] in ascending i (the
/// MatMul-backward dB form).
void MatMulTransposeAAcc(const float* a, const float* b, float* c, size_t m,
                         size_t k, size_t n);

/// y[i] = sigmoid(x[i]), the numerically stable two-branch form.
void SigmoidMap(const float* x, float* y, size_t n);

/// y[i] = tanh(x[i]).
void TanhMap(const float* x, float* y, size_t n);

/// y[i] = exp(x[i]).
void ExpMap(const float* x, float* y, size_t n);

/// y[i] = softplus(x[i]) = log1p(exp(x)) with the overflow guard at 20.
void SoftplusMap(const float* x, float* y, size_t n);

/// Row-wise softmax of an (rows x cols) matrix: per row, subtract the
/// row max (sequential scan), exponentiate and sum sequentially, then
/// divide every entry by the sum (elementwise contract).
void SoftmaxRows(const float* x, float* y, size_t rows, size_t cols);

/// # Integer reduction kernels (the SQ8 quantized scan, DESIGN §12)
///
/// These reduce 8-bit codes into an int32 accumulator. Integer addition
/// is associative and exact, so unlike the float kernels above there is
/// no block-order fine print: scalar, SSE2 and AVX2 builds are bitwise
/// identical *by arithmetic*, for any accumulation order — the `ref`
/// mirrors exist as the plain-loop specification and test oracle, not as
/// a numerical contract.
///
/// Overflow caps (callers must respect; retrieval::QuantizedItemFactors
/// enforces them at encode time via kMaxSq8Dim):
///   DotI8:             |sum| <= n * 255 * 128  → safe for n <= 2^31/32640
///   SquaredDistanceI8:  sum <= n * 255 * 255   → safe for n <= 2^31/65025
/// Both hold comfortably for n <= 32768.

/// Sum of weights[i] * codes[i] with i8 weights and u8 codes — the
/// integer core of the quantized kDot scan.
int32_t DotI8(const int8_t* weights, const uint8_t* codes, size_t n);

/// `count` integer dots of `weights` against scattered u8 code rows.
/// out[q] == DotI8(weights, rows[q], n) exactly.
void DotBatchI8(const int8_t* weights, const uint8_t* const* rows,
                size_t count, size_t n, int32_t* out);

/// Fused dual reduction: two integer dots per row against the same code
/// bytes, loading each row exactly once. This is the serve-path kernel
/// for the SQ8 kDot scan, whose 15-bit query weights are carried as an
/// (hi, lo) pair of i8 vectors (retrieval::Sq8Query): a plain two-pass
/// DotBatchI8 costs a second sweep over the codes plus a second
/// horizontal fold per row, which dominates at small dims.
///   out_hi[q] == DotI8(w_hi, rows[q], n)
///   out_lo[q] == DotI8(w_lo, rows[q], n)   (both exactly)
/// Overflow caps are DotI8's, applied to each output independently.
void DotDualBatchI8(const int8_t* w_hi, const int8_t* w_lo,
                    const uint8_t* const* rows, size_t count, size_t n,
                    int32_t* out_hi, int32_t* out_lo);

/// Sum of (a[i] - b[i])^2 over u8 codes — the integer core of the
/// quantized kNegSquaredL2 scan (code-space distance).
int32_t SquaredDistanceI8(const uint8_t* a, const uint8_t* b, size_t n);

/// `count` integer squared distances of `query` against scattered u8
/// code rows. out[q] == SquaredDistanceI8(query, rows[q], n) exactly.
void SquaredDistanceBatchI8(const uint8_t* query, const uint8_t* const* rows,
                            size_t count, size_t n, int32_t* out);

/// The scalar reference implementations of every kernel above, compiled
/// in every build (deliberately without compiler auto-vectorization, so
/// this path stays the plain-float specification). The public entry
/// points must be bitwise equal to these for all inputs — that is the
/// contract tests/kernels_test.cc and bench/math_kernels.cc enforce.
/// When KGREC_SIMD=off, the public entry points simply forward here.
namespace ref {
float Dot(const float* a, const float* b, size_t n);
void Dot4(const float* a, const float* const* rows, size_t n, float* out);
void DotBatch(const float* a, const float* const* rows, size_t count,
              size_t n, float* out);
void Axpy(float alpha, const float* x, float* y, size_t n);
void Scale(float* x, size_t n, float alpha);
float SquaredDistance(const float* a, const float* b, size_t n);
float CosineSimilarity(const float* a, const float* b, size_t n);
void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n);
void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, bool accumulate = false);
void MatMulTransposeAAcc(const float* a, const float* b, float* c, size_t m,
                         size_t k, size_t n);
void SigmoidMap(const float* x, float* y, size_t n);
void TanhMap(const float* x, float* y, size_t n);
void ExpMap(const float* x, float* y, size_t n);
void SoftplusMap(const float* x, float* y, size_t n);
void SoftmaxRows(const float* x, float* y, size_t rows, size_t cols);
int32_t DotI8(const int8_t* weights, const uint8_t* codes, size_t n);
void DotBatchI8(const int8_t* weights, const uint8_t* const* rows,
                size_t count, size_t n, int32_t* out);
void DotDualBatchI8(const int8_t* w_hi, const int8_t* w_lo,
                    const uint8_t* const* rows, size_t count, size_t n,
                    int32_t* out_hi, int32_t* out_lo);
int32_t SquaredDistanceI8(const uint8_t* a, const uint8_t* b, size_t n);
void SquaredDistanceBatchI8(const uint8_t* query, const uint8_t* const* rows,
                            size_t count, size_t n, int32_t* out);
}  // namespace ref

}  // namespace kernels
}  // namespace kgrec

#endif  // KGREC_MATH_KERNELS_H_
