#ifndef KGREC_MATH_KMEANS_H_
#define KGREC_MATH_KMEANS_H_

#include <cstdint>
#include <vector>

#include "math/dense.h"
#include "math/rng.h"

namespace kgrec {

/// Result of a k-means clustering run.
struct KMeansResult {
  /// Cluster assignment per row of the input.
  std::vector<int32_t> assignment;
  /// Cluster centroids, one row per cluster.
  Matrix centroids;
};

/// Lloyd's k-means with k-means++ style seeding. Used by the synthetic
/// world generator (attribute entities = latent clusters) and by
/// HeteRec-p's user grouping (Eq. 18 of the survey).
KMeansResult KMeans(const Matrix& points, size_t k, int max_iters, Rng& rng);

/// Deterministic, thread-count-invariant k-means, used by the retrieval
/// layer's IVF index build (DESIGN §10). All randomness comes from
/// counter-based `Rng::Fork` streams of the given seed (one stream per
/// k-means++ pick, one for empty-cluster reseeding), the parallel
/// assignment step is a pure per-point function of the centroids, and the
/// centroid update accumulates in ascending point order — so the result
/// is bitwise identical at any `num_threads >= 1`.
KMeansResult KMeansDeterministic(const Matrix& points, size_t k,
                                 int max_iters, uint64_t seed,
                                 size_t num_threads);

}  // namespace kgrec

#endif  // KGREC_MATH_KMEANS_H_
