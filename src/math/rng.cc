#include "math/rng.h"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace kgrec {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_cached_normal_ = false;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the full 256-bit state down to 64 bits, perturb with the stream
  // id, and run one extra splitmix round so adjacent stream ids land far
  // apart; Seed() then re-expands to 256 bits.
  uint64_t mixed = state_[0] ^ Rotl(state_[1], 17) ^ Rotl(state_[2], 37) ^
                   Rotl(state_[3], 53);
  mixed ^= 0xd1b54a32d192ed03ULL + stream_id * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(mixed));
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  KGREC_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::Uniform() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  KGREC_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  KGREC_CHECK_GT(total, 0.0);
  double draw = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  KGREC_CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    Shuffle(all);
    all.resize(k);
    return all;
  }
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = UniformInt(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace kgrec
