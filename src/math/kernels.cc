#include "math/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

// Dispatch resolution. KGREC_SIMD_OFF / KGREC_SIMD_FORCE_SSE2 come from
// the KGREC_SIMD CMake knob; __SSE2__/__AVX2__ from the compile target.
// x86-64 always has SSE2, so the scalar path is only taken on non-x86
// targets or in the KGREC_SIMD=off specification build.
#if !defined(KGREC_SIMD_OFF) && defined(__SSE2__)
#define KGREC_KERNELS_SSE2 1
#include <emmintrin.h>
#if defined(__AVX2__) && !defined(KGREC_SIMD_FORCE_SSE2)
#define KGREC_KERNELS_AVX2 1
#include <immintrin.h>
#endif
#endif

// The scalar reference is the specification: it must stay a sequence of
// plain float ops. GCC 12+ auto-vectorizes at -O2, which would keep the
// results bitwise identical (the block shape is exactly SLP-able) but
// turn the "scalar fallback" into SIMD behind our back — the reference
// build would no longer measure what scalar code costs, and a future
// cost-model change could reorder something subtle. Pin it off.
#if defined(__GNUC__) && !defined(__clang__)
#define KGREC_NO_AUTOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define KGREC_NO_AUTOVEC
#endif

namespace kgrec::kernels {

// ---------------------------------------------------------------------------
// Scalar reference: the fixed-block specification in plain float ops.
// ---------------------------------------------------------------------------

namespace ref {

KGREC_NO_AUTOVEC
float Dot(const float* a, const float* b, size_t n) {
  float l0 = 0.0f, l1 = 0.0f, l2 = 0.0f, l3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  float acc = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

KGREC_NO_AUTOVEC
void Dot4(const float* a, const float* const* rows, size_t n, float* out) {
  for (size_t q = 0; q < 4; ++q) out[q] = Dot(a, rows[q], n);
}

KGREC_NO_AUTOVEC
void DotBatch(const float* a, const float* const* rows, size_t count,
              size_t n, float* out) {
  for (size_t q = 0; q < count; ++q) out[q] = Dot(a, rows[q], n);
}

KGREC_NO_AUTOVEC
void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

KGREC_NO_AUTOVEC
void Scale(float* x, size_t n, float alpha) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

KGREC_NO_AUTOVEC
float SquaredDistance(const float* a, const float* b, size_t n) {
  float l0 = 0.0f, l1 = 0.0f, l2 = 0.0f, l3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  float acc = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

KGREC_NO_AUTOVEC
float CosineSimilarity(const float* a, const float* b, size_t n) {
  float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  float b0 = 0.0f, b1 = 0.0f, b2 = 0.0f, b3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    d0 += a[i] * b[i];
    d1 += a[i + 1] * b[i + 1];
    d2 += a[i + 2] * b[i + 2];
    d3 += a[i + 3] * b[i + 3];
    a0 += a[i] * a[i];
    a1 += a[i + 1] * a[i + 1];
    a2 += a[i + 2] * a[i + 2];
    a3 += a[i + 3] * a[i + 3];
    b0 += b[i] * b[i];
    b1 += b[i + 1] * b[i + 1];
    b2 += b[i + 2] * b[i + 2];
    b3 += b[i + 3] * b[i + 3];
  }
  float dot = (d0 + d2) + (d1 + d3);
  float na2 = (a0 + a2) + (a1 + a3);
  float nb2 = (b0 + b2) + (b1 + b3);
  for (; i < n; ++i) {
    dot += a[i] * b[i];
    na2 += a[i] * a[i];
    nb2 += b[i] * b[i];
  }
  if (na2 == 0.0f || nb2 == 0.0f) return 0.0f;
  return dot / (std::sqrt(na2) * std::sqrt(nb2));
}

KGREC_NO_AUTOVEC
void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n) {
  if (m * n != 0) std::memset(c, 0, m * n * sizeof(float));
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

KGREC_NO_AUTOVEC
void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, bool accumulate) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float v = Dot(arow, b + j * k, k);
      crow[j] = accumulate ? crow[j] + v : v;
    }
  }
}

KGREC_NO_AUTOVEC
void MatMulTransposeAAcc(const float* a, const float* b, float* c, size_t m,
                         size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      float* crow = c + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

KGREC_NO_AUTOVEC
void SigmoidMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    y[i] = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                     : std::exp(v) / (1.0f + std::exp(v));
  }
}

KGREC_NO_AUTOVEC
void TanhMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

KGREC_NO_AUTOVEC
void ExpMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
}

KGREC_NO_AUTOVEC
void SoftplusMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    y[i] = v > 20.0f ? v : std::log1p(std::exp(std::min(v, 20.0f)));
  }
}

KGREC_NO_AUTOVEC
void SoftmaxRows(const float* x, float* y, size_t rows, size_t cols) {
  for (size_t i = 0; i < rows; ++i) {
    const float* row = x + i * cols;
    float* out = y + i * cols;
    if (cols == 0) continue;
    float max_v = row[0];
    for (size_t j = 1; j < cols; ++j) max_v = std::max(max_v, row[j]);
    float total = 0.0f;
    for (size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(row[j] - max_v);
      total += out[j];
    }
    for (size_t j = 0; j < cols; ++j) out[j] /= total;
  }
}

KGREC_NO_AUTOVEC
int32_t DotI8(const int8_t* weights, const uint8_t* codes, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(weights[i]) * static_cast<int32_t>(codes[i]);
  }
  return acc;
}

KGREC_NO_AUTOVEC
void DotBatchI8(const int8_t* weights, const uint8_t* const* rows,
                size_t count, size_t n, int32_t* out) {
  for (size_t q = 0; q < count; ++q) out[q] = DotI8(weights, rows[q], n);
}

KGREC_NO_AUTOVEC
void DotDualBatchI8(const int8_t* w_hi, const int8_t* w_lo,
                    const uint8_t* const* rows, size_t count, size_t n,
                    int32_t* out_hi, int32_t* out_lo) {
  for (size_t q = 0; q < count; ++q) {
    const uint8_t* codes = rows[q];
    int32_t hi = 0;
    int32_t lo = 0;
    for (size_t i = 0; i < n; ++i) {
      const int32_t c = static_cast<int32_t>(codes[i]);
      hi += static_cast<int32_t>(w_hi[i]) * c;
      lo += static_cast<int32_t>(w_lo[i]) * c;
    }
    out_hi[q] = hi;
    out_lo[q] = lo;
  }
}

KGREC_NO_AUTOVEC
int32_t SquaredDistanceI8(const uint8_t* a, const uint8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    acc += d * d;
  }
  return acc;
}

KGREC_NO_AUTOVEC
void SquaredDistanceBatchI8(const uint8_t* query, const uint8_t* const* rows,
                            size_t count, size_t n, int32_t* out) {
  for (size_t q = 0; q < count; ++q) {
    out[q] = SquaredDistanceI8(query, rows[q], n);
  }
}

}  // namespace ref

// ---------------------------------------------------------------------------
// SIMD implementations. Each mirrors the reference op-for-op; the inline
// comments note which contract step each instruction realizes.
// ---------------------------------------------------------------------------

#if KGREC_KERNELS_SSE2

namespace {

/// Contract step 2: fold the four lane accumulators as (l0+l2)+(l1+l3).
/// movehl pairs lane 0 with 2 and 1 with 3; the final add_ss joins the
/// two partial sums.
inline float FoldLanes(__m128 acc) {
  const __m128 hi = _mm_movehl_ps(acc, acc);          // (l2, l3, l2, l3)
  const __m128 s = _mm_add_ps(acc, hi);               // (l0+l2, l1+l3, ..)
  const __m128 s1 = _mm_shuffle_ps(s, s, _MM_SHUFFLE(1, 1, 1, 1));
  return _mm_cvtss_f32(_mm_add_ss(s, s1));            // (l0+l2)+(l1+l3)
}

/// Four dot products in the lanes of one register: candidate q's dot in
/// lane q. Each candidate sees exactly the fixed-block order — lane
/// accumulator t (acc_t) sums its candidate's products at column offsets
/// c % 4 == t, the fold is (l0+l2)+(l1+l3) per candidate, and the tail
/// columns are added scalar, after the fold.
inline __m128 Dot4Blocked(const float* a, const float* r0, const float* r1,
                          const float* r2, const float* r3, size_t n) {
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  __m128 acc2 = _mm_setzero_ps();
  __m128 acc3 = _mm_setzero_ps();
  size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    __m128 v0 = _mm_loadu_ps(r0 + c);
    __m128 v1 = _mm_loadu_ps(r1 + c);
    __m128 v2 = _mm_loadu_ps(r2 + c);
    __m128 v3 = _mm_loadu_ps(r3 + c);
    // In-register 4x4 transpose: v_t becomes column c+t of all four rows.
    _MM_TRANSPOSE4_PS(v0, v1, v2, v3);
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_set1_ps(a[c]), v0));
    acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_set1_ps(a[c + 1]), v1));
    acc2 = _mm_add_ps(acc2, _mm_mul_ps(_mm_set1_ps(a[c + 2]), v2));
    acc3 = _mm_add_ps(acc3, _mm_mul_ps(_mm_set1_ps(a[c + 3]), v3));
  }
  __m128 dots = _mm_add_ps(_mm_add_ps(acc0, acc2), _mm_add_ps(acc1, acc3));
  if (c < n) {
    alignas(16) float tail[4];
    _mm_store_ps(tail, dots);
    for (; c < n; ++c) {
      tail[0] += a[c] * r0[c];
      tail[1] += a[c] * r1[c];
      tail[2] += a[c] * r2[c];
      tail[3] += a[c] * r3[c];
    }
    dots = _mm_load_ps(tail);
  }
  return dots;
}

}  // namespace

const char* Mode() {
#if KGREC_KERNELS_AVX2
  return "avx2";
#else
  return "sse2";
#endif
}

float Dot(const float* a, const float* b, size_t n) {
  __m128 acc = _mm_setzero_ps();  // contract step 1: lane t = l_t
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  float r = FoldLanes(acc);
  for (; i < n; ++i) r += a[i] * b[i];  // contract step 3: scalar tail
  return r;
}

void Dot4(const float* a, const float* const* rows, size_t n, float* out) {
  _mm_storeu_ps(out, Dot4Blocked(a, rows[0], rows[1], rows[2], rows[3], n));
}

void DotBatch(const float* a, const float* const* rows, size_t count,
              size_t n, float* out) {
  size_t q = 0;
  for (; q + 4 <= count; q += 4) {
    _mm_storeu_ps(out + q, Dot4Blocked(a, rows[q], rows[q + 1], rows[q + 2],
                                       rows[q + 3], n));
  }
  for (; q < count; ++q) out[q] = Dot(a, rows[q], n);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  size_t i = 0;
#if KGREC_KERNELS_AVX2
  const __m256 va8 = _mm256_set1_ps(alpha);
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va8, _mm256_loadu_ps(x + i))));
  }
#endif
  const __m128 va = _mm_set1_ps(alpha);
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                    _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float* x, size_t n, float alpha) {
  size_t i = 0;
#if KGREC_KERNELS_AVX2
  const __m256 va8 = _mm256_set1_ps(alpha);
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va8));
  }
#endif
  const __m128 va = _mm_set1_ps(alpha);
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(_mm_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
  }
  float r = FoldLanes(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    r += d * d;
  }
  return r;
}

float CosineSimilarity(const float* a, const float* b, size_t n) {
  // One pass, three independent fixed-block reductions sharing the loads
  // (the fusion the satellite asks for: the old dense implementation
  // swept the vectors three times, Norm2(a) + Norm2(b) + Dot).
  __m128 dacc = _mm_setzero_ps();
  __m128 aacc = _mm_setzero_ps();
  __m128 bacc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 va = _mm_loadu_ps(a + i);
    const __m128 vb = _mm_loadu_ps(b + i);
    dacc = _mm_add_ps(dacc, _mm_mul_ps(va, vb));
    aacc = _mm_add_ps(aacc, _mm_mul_ps(va, va));
    bacc = _mm_add_ps(bacc, _mm_mul_ps(vb, vb));
  }
  float dot = FoldLanes(dacc);
  float na2 = FoldLanes(aacc);
  float nb2 = FoldLanes(bacc);
  for (; i < n; ++i) {
    dot += a[i] * b[i];
    na2 += a[i] * a[i];
    nb2 += b[i] * b[i];
  }
  if (na2 == 0.0f || nb2 == 0.0f) return 0.0f;
  return dot / (std::sqrt(na2) * std::sqrt(nb2));
}

void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n) {
  // Register-tiled over j: blocks of 16 columns live in four registers
  // across the whole p loop, so each C element is loaded/stored once and
  // accumulated in ascending p — the element-wise contract — with four
  // independent dependency chains per row for ILP.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
#if KGREC_KERNELS_AVX2
    for (; j + 32 <= n; j += 32) {
      __m256 c0 = _mm256_setzero_ps();
      __m256 c1 = _mm256_setzero_ps();
      __m256 c2 = _mm256_setzero_ps();
      __m256 c3 = _mm256_setzero_ps();
      for (size_t p = 0; p < k; ++p) {
        const __m256 av = _mm256_set1_ps(arow[p]);
        const float* brow = b + p * n + j;
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
        c1 = _mm256_add_ps(c1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
        c2 = _mm256_add_ps(c2, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 16)));
        c3 = _mm256_add_ps(c3, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 24)));
      }
      _mm256_storeu_ps(crow + j, c0);
      _mm256_storeu_ps(crow + j + 8, c1);
      _mm256_storeu_ps(crow + j + 16, c2);
      _mm256_storeu_ps(crow + j + 24, c3);
    }
#endif
    for (; j + 16 <= n; j += 16) {
      __m128 c0 = _mm_setzero_ps();
      __m128 c1 = _mm_setzero_ps();
      __m128 c2 = _mm_setzero_ps();
      __m128 c3 = _mm_setzero_ps();
      for (size_t p = 0; p < k; ++p) {
        const __m128 av = _mm_set1_ps(arow[p]);
        const float* brow = b + p * n + j;
        c0 = _mm_add_ps(c0, _mm_mul_ps(av, _mm_loadu_ps(brow)));
        c1 = _mm_add_ps(c1, _mm_mul_ps(av, _mm_loadu_ps(brow + 4)));
        c2 = _mm_add_ps(c2, _mm_mul_ps(av, _mm_loadu_ps(brow + 8)));
        c3 = _mm_add_ps(c3, _mm_mul_ps(av, _mm_loadu_ps(brow + 12)));
      }
      _mm_storeu_ps(crow + j, c0);
      _mm_storeu_ps(crow + j + 4, c1);
      _mm_storeu_ps(crow + j + 8, c2);
      _mm_storeu_ps(crow + j + 12, c3);
    }
    for (; j + 4 <= n; j += 4) {
      __m128 acc = _mm_setzero_ps();
      for (size_t p = 0; p < k; ++p) {
        acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(arow[p]),
                                         _mm_loadu_ps(b + p * n + j)));
      }
      _mm_storeu_ps(crow + j, acc);
    }
    for (; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * b[p * n + j];
      crow[j] = acc;
    }
  }
}

void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, bool accumulate) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m128 dots = Dot4Blocked(arow, b + j * k, b + (j + 1) * k,
                                b + (j + 2) * k, b + (j + 3) * k, k);
      if (accumulate) dots = _mm_add_ps(_mm_loadu_ps(crow + j), dots);
      _mm_storeu_ps(crow + j, dots);
    }
    for (; j < n; ++j) {
      const float v = Dot(arow, b + j * k, k);
      crow[j] = accumulate ? crow[j] + v : v;
    }
  }
}

void MatMulTransposeAAcc(const float* a, const float* b, float* c, size_t m,
                         size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (size_t p = 0; p < k; ++p) {
      // Rank-1 update row: c[p][:] += arow[p] * brow[:] — Axpy keeps the
      // element-wise ascending-i contract.
      Axpy(arow[p], brow, c + p * n, n);
    }
  }
}

void SigmoidMap(const float* x, float* y, size_t n) { ref::SigmoidMap(x, y, n); }

void TanhMap(const float* x, float* y, size_t n) { ref::TanhMap(x, y, n); }

void ExpMap(const float* x, float* y, size_t n) { ref::ExpMap(x, y, n); }

void SoftplusMap(const float* x, float* y, size_t n) {
  ref::SoftplusMap(x, y, n);
}

void SoftmaxRows(const float* x, float* y, size_t rows, size_t cols) {
  // max / exp / sum follow the scalar reference exactly (std::exp has no
  // bitwise-equal vector form); the normalizing divide is elementwise,
  // so divps is free to vectorize it.
  for (size_t i = 0; i < rows; ++i) {
    const float* row = x + i * cols;
    float* out = y + i * cols;
    if (cols == 0) continue;
    float max_v = row[0];
    for (size_t j = 1; j < cols; ++j) max_v = std::max(max_v, row[j]);
    float total = 0.0f;
    for (size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(row[j] - max_v);
      total += out[j];
    }
    const __m128 vt = _mm_set1_ps(total);
    size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      _mm_storeu_ps(out + j, _mm_div_ps(_mm_loadu_ps(out + j), vt));
    }
    for (; j < cols; ++j) out[j] /= total;
  }
}

// Int8 reductions. Strategy: widen u8/i8 bytes to i16 lanes, multiply-add
// adjacent pairs into i32 lanes with madd_epi16 (the products fit i16*i16
// -> i32 with room: |w|*c <= 128*255 = 32640 per element, <= 65280 per
// pair), accumulate in an i32 vector, fold at the end. NOT maddubs:
// _mm_maddubs_epi16 saturates its i16 pair-sum (65280 > 32767), which
// would silently break the exact-integer property these kernels promise.
//
// The widening must preserve sign: codes are zero-extended (unpack
// against a zero register), weights are sign-extended (unpack against
// their own sign mask, the SSE2 idiom for cvtepi8).

int32_t DotI8(const int8_t* weights, const uint8_t* codes, size_t n) {
  size_t i = 0;
  int32_t r = 0;
#if KGREC_KERNELS_AVX2
  {
    __m256i acc = _mm256_setzero_si256();
    for (; i + 16 <= n; i += 16) {
      const __m256i c16 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i)));
      const __m256i w16 = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(weights + i)));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(c16, w16));
    }
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int t = 0; t < 8; ++t) r += lanes[t];
  }
#else
  {
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = _mm_setzero_si128();
    for (; i + 16 <= n; i += 16) {
      const __m128i c8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
      const __m128i w8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(weights + i));
      const __m128i wsign = _mm_cmpgt_epi8(zero, w8);
      const __m128i c_lo = _mm_unpacklo_epi8(c8, zero);
      const __m128i c_hi = _mm_unpackhi_epi8(c8, zero);
      const __m128i w_lo = _mm_unpacklo_epi8(w8, wsign);
      const __m128i w_hi = _mm_unpackhi_epi8(w8, wsign);
      acc = _mm_add_epi32(acc, _mm_madd_epi16(c_lo, w_lo));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(c_hi, w_hi));
    }
    alignas(16) int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    r = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  }
#endif
  for (; i < n; ++i) {
    r += static_cast<int32_t>(weights[i]) * static_cast<int32_t>(codes[i]);
  }
  return r;
}

void DotBatchI8(const int8_t* weights, const uint8_t* const* rows,
                size_t count, size_t n, int32_t* out) {
  for (size_t q = 0; q < count; ++q) out[q] = DotI8(weights, rows[q], n);
}

namespace {

// Transpose-and-add fold: four 4-lane i32 partial-sum vectors (one per
// row) -> one vector [sumA, sumB, sumC, sumD]. Integer addition is
// exact under any association, so batching the horizontal reduction
// this way cannot change results — it only amortizes the fold cost that
// otherwise dominates per-row work at small dims.
inline __m128i FoldRows4I32(__m128i a, __m128i b, __m128i c, __m128i d) {
  const __m128i t0 = _mm_unpacklo_epi32(a, b);   // a0 b0 a1 b1
  const __m128i t1 = _mm_unpackhi_epi32(a, b);   // a2 b2 a3 b3
  const __m128i t2 = _mm_unpacklo_epi32(c, d);   // c0 d0 c1 d1
  const __m128i t3 = _mm_unpackhi_epi32(c, d);   // c2 d2 c3 d3
  const __m128i s0 = _mm_add_epi32(t0, t1);      // a02 b02 a13 b13
  const __m128i s1 = _mm_add_epi32(t2, t3);      // c02 d02 c13 d13
  const __m128i u0 = _mm_unpacklo_epi64(s0, s1); // a02 b02 c02 d02
  const __m128i u1 = _mm_unpackhi_epi64(s0, s1); // a13 b13 c13 d13
  return _mm_add_epi32(u0, u1);
}

#if KGREC_KERNELS_AVX2
inline __m128i NarrowI32(__m256i acc) {
  return _mm_add_epi32(_mm256_castsi256_si128(acc),
                       _mm256_extracti128_si256(acc, 1));
}
#endif

}  // namespace

void DotDualBatchI8(const int8_t* w_hi, const int8_t* w_lo,
                    const uint8_t* const* rows, size_t count, size_t n,
                    int32_t* out_hi, int32_t* out_lo) {
  size_t q = 0;
  // Four rows per block: each 16-byte code load feeds two madds (hi and
  // lo weights), and all eight horizontal folds collapse into two
  // transpose folds. Exact-integer accumulation keeps this bitwise
  // equal to ref:: for any blocking.
  for (; q + 4 <= count; q += 4) {
    const uint8_t* r0 = rows[q + 0];
    const uint8_t* r1 = rows[q + 1];
    const uint8_t* r2 = rows[q + 2];
    const uint8_t* r3 = rows[q + 3];
    size_t i = 0;
#if KGREC_KERNELS_AVX2
    __m256i h0 = _mm256_setzero_si256(), h1 = h0, h2 = h0, h3 = h0;
    __m256i l0 = h0, l1 = h0, l2 = h0, l3 = h0;
    for (; i + 16 <= n; i += 16) {
      const __m256i wh = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w_hi + i)));
      const __m256i wl = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w_lo + i)));
      const __m256i c0 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + i)));
      const __m256i c1 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + i)));
      const __m256i c2 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + i)));
      const __m256i c3 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + i)));
      h0 = _mm256_add_epi32(h0, _mm256_madd_epi16(c0, wh));
      h1 = _mm256_add_epi32(h1, _mm256_madd_epi16(c1, wh));
      h2 = _mm256_add_epi32(h2, _mm256_madd_epi16(c2, wh));
      h3 = _mm256_add_epi32(h3, _mm256_madd_epi16(c3, wh));
      l0 = _mm256_add_epi32(l0, _mm256_madd_epi16(c0, wl));
      l1 = _mm256_add_epi32(l1, _mm256_madd_epi16(c1, wl));
      l2 = _mm256_add_epi32(l2, _mm256_madd_epi16(c2, wl));
      l3 = _mm256_add_epi32(l3, _mm256_madd_epi16(c3, wl));
    }
    const __m128i rh =
        FoldRows4I32(NarrowI32(h0), NarrowI32(h1), NarrowI32(h2), NarrowI32(h3));
    const __m128i rl =
        FoldRows4I32(NarrowI32(l0), NarrowI32(l1), NarrowI32(l2), NarrowI32(l3));
#else
    const __m128i zero = _mm_setzero_si128();
    __m128i h0 = _mm_setzero_si128(), h1 = h0, h2 = h0, h3 = h0;
    __m128i l0 = h0, l1 = h0, l2 = h0, l3 = h0;
    for (; i + 16 <= n; i += 16) {
      const __m128i wh8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w_hi + i));
      const __m128i wl8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w_lo + i));
      const __m128i whs = _mm_cmpgt_epi8(zero, wh8);
      const __m128i wls = _mm_cmpgt_epi8(zero, wl8);
      const __m128i wh_lo = _mm_unpacklo_epi8(wh8, whs);
      const __m128i wh_hi = _mm_unpackhi_epi8(wh8, whs);
      const __m128i wl_lo = _mm_unpacklo_epi8(wl8, wls);
      const __m128i wl_hi = _mm_unpackhi_epi8(wl8, wls);
      const __m128i c0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + i));
      const __m128i c1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + i));
      const __m128i c2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + i));
      const __m128i c3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + i));
      const __m128i c0_lo = _mm_unpacklo_epi8(c0, zero);
      const __m128i c0_hi = _mm_unpackhi_epi8(c0, zero);
      const __m128i c1_lo = _mm_unpacklo_epi8(c1, zero);
      const __m128i c1_hi = _mm_unpackhi_epi8(c1, zero);
      const __m128i c2_lo = _mm_unpacklo_epi8(c2, zero);
      const __m128i c2_hi = _mm_unpackhi_epi8(c2, zero);
      const __m128i c3_lo = _mm_unpacklo_epi8(c3, zero);
      const __m128i c3_hi = _mm_unpackhi_epi8(c3, zero);
      h0 = _mm_add_epi32(h0, _mm_madd_epi16(c0_lo, wh_lo));
      h0 = _mm_add_epi32(h0, _mm_madd_epi16(c0_hi, wh_hi));
      h1 = _mm_add_epi32(h1, _mm_madd_epi16(c1_lo, wh_lo));
      h1 = _mm_add_epi32(h1, _mm_madd_epi16(c1_hi, wh_hi));
      h2 = _mm_add_epi32(h2, _mm_madd_epi16(c2_lo, wh_lo));
      h2 = _mm_add_epi32(h2, _mm_madd_epi16(c2_hi, wh_hi));
      h3 = _mm_add_epi32(h3, _mm_madd_epi16(c3_lo, wh_lo));
      h3 = _mm_add_epi32(h3, _mm_madd_epi16(c3_hi, wh_hi));
      l0 = _mm_add_epi32(l0, _mm_madd_epi16(c0_lo, wl_lo));
      l0 = _mm_add_epi32(l0, _mm_madd_epi16(c0_hi, wl_hi));
      l1 = _mm_add_epi32(l1, _mm_madd_epi16(c1_lo, wl_lo));
      l1 = _mm_add_epi32(l1, _mm_madd_epi16(c1_hi, wl_hi));
      l2 = _mm_add_epi32(l2, _mm_madd_epi16(c2_lo, wl_lo));
      l2 = _mm_add_epi32(l2, _mm_madd_epi16(c2_hi, wl_hi));
      l3 = _mm_add_epi32(l3, _mm_madd_epi16(c3_lo, wl_lo));
      l3 = _mm_add_epi32(l3, _mm_madd_epi16(c3_hi, wl_hi));
    }
    const __m128i rh = FoldRows4I32(h0, h1, h2, h3);
    const __m128i rl = FoldRows4I32(l0, l1, l2, l3);
#endif
    alignas(16) int32_t hs[4];
    alignas(16) int32_t ls[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(hs), rh);
    _mm_store_si128(reinterpret_cast<__m128i*>(ls), rl);
    for (int r = 0; r < 4; ++r) {
      const uint8_t* codes = rows[q + r];
      int32_t hi = hs[r];
      int32_t lo = ls[r];
      for (size_t t = i; t < n; ++t) {
        const int32_t c = static_cast<int32_t>(codes[t]);
        hi += static_cast<int32_t>(w_hi[t]) * c;
        lo += static_cast<int32_t>(w_lo[t]) * c;
      }
      out_hi[q + r] = hi;
      out_lo[q + r] = lo;
    }
  }
  for (; q < count; ++q) {
    out_hi[q] = DotI8(w_hi, rows[q], n);
    out_lo[q] = DotI8(w_lo, rows[q], n);
  }
}

int32_t SquaredDistanceI8(const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  int32_t r = 0;
#if KGREC_KERNELS_AVX2
  {
    __m256i acc = _mm256_setzero_si256();
    for (; i + 16 <= n; i += 16) {
      const __m256i a16 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
      const __m256i b16 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
      const __m256i d = _mm256_sub_epi16(a16, b16);  // fits i16: [-255, 255]
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
    }
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int t = 0; t < 8; ++t) r += lanes[t];
  }
#else
  {
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = _mm_setzero_si128();
    for (; i + 16 <= n; i += 16) {
      const __m128i a8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i b8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      const __m128i d_lo =
          _mm_sub_epi16(_mm_unpacklo_epi8(a8, zero), _mm_unpacklo_epi8(b8, zero));
      const __m128i d_hi =
          _mm_sub_epi16(_mm_unpackhi_epi8(a8, zero), _mm_unpackhi_epi8(b8, zero));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
    }
    alignas(16) int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    r = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  }
#endif
  for (; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    r += d * d;
  }
  return r;
}

void SquaredDistanceBatchI8(const uint8_t* query, const uint8_t* const* rows,
                            size_t count, size_t n, int32_t* out) {
  for (size_t q = 0; q < count; ++q) {
    out[q] = SquaredDistanceI8(query, rows[q], n);
  }
}

#else  // !KGREC_KERNELS_SSE2: the public entry points are the reference.

const char* Mode() { return "scalar"; }

float Dot(const float* a, const float* b, size_t n) { return ref::Dot(a, b, n); }
void Dot4(const float* a, const float* const* rows, size_t n, float* out) {
  ref::Dot4(a, rows, n, out);
}
void DotBatch(const float* a, const float* const* rows, size_t count,
              size_t n, float* out) {
  ref::DotBatch(a, rows, count, n, out);
}
void Axpy(float alpha, const float* x, float* y, size_t n) {
  ref::Axpy(alpha, x, y, n);
}
void Scale(float* x, size_t n, float alpha) { ref::Scale(x, n, alpha); }
float SquaredDistance(const float* a, const float* b, size_t n) {
  return ref::SquaredDistance(a, b, n);
}
float CosineSimilarity(const float* a, const float* b, size_t n) {
  return ref::CosineSimilarity(a, b, n);
}
void MatMul(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n) {
  ref::MatMul(a, b, c, m, k, n);
}
void MatMulTransposeB(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, bool accumulate) {
  ref::MatMulTransposeB(a, b, c, m, k, n, accumulate);
}
void MatMulTransposeAAcc(const float* a, const float* b, float* c, size_t m,
                         size_t k, size_t n) {
  ref::MatMulTransposeAAcc(a, b, c, m, k, n);
}
void SigmoidMap(const float* x, float* y, size_t n) { ref::SigmoidMap(x, y, n); }
void TanhMap(const float* x, float* y, size_t n) { ref::TanhMap(x, y, n); }
void ExpMap(const float* x, float* y, size_t n) { ref::ExpMap(x, y, n); }
void SoftplusMap(const float* x, float* y, size_t n) {
  ref::SoftplusMap(x, y, n);
}
void SoftmaxRows(const float* x, float* y, size_t rows, size_t cols) {
  ref::SoftmaxRows(x, y, rows, cols);
}
int32_t DotI8(const int8_t* weights, const uint8_t* codes, size_t n) {
  return ref::DotI8(weights, codes, n);
}
void DotBatchI8(const int8_t* weights, const uint8_t* const* rows,
                size_t count, size_t n, int32_t* out) {
  ref::DotBatchI8(weights, rows, count, n, out);
}
void DotDualBatchI8(const int8_t* w_hi, const int8_t* w_lo,
                    const uint8_t* const* rows, size_t count, size_t n,
                    int32_t* out_hi, int32_t* out_lo) {
  ref::DotDualBatchI8(w_hi, w_lo, rows, count, n, out_hi, out_lo);
}
int32_t SquaredDistanceI8(const uint8_t* a, const uint8_t* b, size_t n) {
  return ref::SquaredDistanceI8(a, b, n);
}
void SquaredDistanceBatchI8(const uint8_t* query, const uint8_t* const* rows,
                            size_t count, size_t n, int32_t* out) {
  ref::SquaredDistanceBatchI8(query, rows, count, n, out);
}

#endif  // KGREC_KERNELS_SSE2

}  // namespace kgrec::kernels
