#include "math/kmeans.h"

#include <limits>

#include "core/check.h"

namespace kgrec {

KMeansResult KMeans(const Matrix& points, size_t k, int max_iters, Rng& rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  KGREC_CHECK_GT(k, 0u);
  KGREC_CHECK_GE(n, k);

  KMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids = Matrix(k, d);

  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  size_t first = rng.UniformInt(n);
  for (size_t j = 0; j < d; ++j) result.centroids.At(0, j) = points.At(first, j);
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      double dist = dense::SquaredDistance(points.Row(i),
                                           result.centroids.Row(c - 1), d);
      if (dist < min_dist[i]) min_dist[i] = dist;
    }
    std::vector<double> weights(min_dist.begin(), min_dist.end());
    double total = 0.0;
    for (double w : weights) total += w;
    size_t chosen = total > 0.0 ? rng.Categorical(weights) : rng.UniformInt(n);
    for (size_t j = 0; j < d; ++j)
      result.centroids.At(c, j) = points.At(chosen, j);
  }

  std::vector<size_t> counts(k, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      float best = std::numeric_limits<float>::max();
      int32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        float dist =
            dense::SquaredDistance(points.Row(i), result.centroids.Row(c), d);
        if (dist < best) {
          best = dist;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (best_c != result.assignment[i]) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids.
    result.centroids = Matrix(k, d);
    counts.assign(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int32_t c = result.assignment[i];
      ++counts[c];
      dense::Axpy(1.0f, points.Row(i), result.centroids.Row(c), d);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        dense::Scale(result.centroids.Row(c), d, 1.0f / counts[c]);
      } else {
        // Re-seed an empty cluster at a random point.
        size_t pick = rng.UniformInt(n);
        for (size_t j = 0; j < d; ++j)
          result.centroids.At(c, j) = points.At(pick, j);
      }
    }
  }
  return result;
}

}  // namespace kgrec
