#include "math/kmeans.h"

#include <limits>

#include "core/check.h"
#include "core/thread_pool.h"

namespace kgrec {

KMeansResult KMeans(const Matrix& points, size_t k, int max_iters, Rng& rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  KGREC_CHECK_GT(k, 0u);
  KGREC_CHECK_GE(n, k);

  KMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids = Matrix(k, d);

  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  size_t first = rng.UniformInt(n);
  for (size_t j = 0; j < d; ++j) result.centroids.At(0, j) = points.At(first, j);
  for (size_t c = 1; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      double dist = dense::SquaredDistance(points.Row(i),
                                           result.centroids.Row(c - 1), d);
      if (dist < min_dist[i]) min_dist[i] = dist;
    }
    std::vector<double> weights(min_dist.begin(), min_dist.end());
    double total = 0.0;
    for (double w : weights) total += w;
    size_t chosen = total > 0.0 ? rng.Categorical(weights) : rng.UniformInt(n);
    for (size_t j = 0; j < d; ++j)
      result.centroids.At(c, j) = points.At(chosen, j);
  }

  std::vector<size_t> counts(k, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      float best = std::numeric_limits<float>::max();
      int32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        float dist =
            dense::SquaredDistance(points.Row(i), result.centroids.Row(c), d);
        if (dist < best) {
          best = dist;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (best_c != result.assignment[i]) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids.
    result.centroids = Matrix(k, d);
    counts.assign(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int32_t c = result.assignment[i];
      ++counts[c];
      dense::Axpy(1.0f, points.Row(i), result.centroids.Row(c), d);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        dense::Scale(result.centroids.Row(c), d, 1.0f / counts[c]);
      } else {
        // Re-seed an empty cluster at a random point.
        size_t pick = rng.UniformInt(n);
        for (size_t j = 0; j < d; ++j)
          result.centroids.At(c, j) = points.At(pick, j);
      }
    }
  }
  return result;
}

KMeansResult KMeansDeterministic(const Matrix& points, size_t k,
                                 int max_iters, uint64_t seed,
                                 size_t num_threads) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  KGREC_CHECK_GT(k, 0u);
  KGREC_CHECK_GE(n, k);
  if (num_threads == 0) num_threads = 1;
  const Rng base(seed);

  KMeansResult result;
  result.assignment.assign(n, 0);
  result.centroids = Matrix(k, d);

  // k-means++ seeding. The picks are inherently sequential (each depends
  // on the distances to all previous centroids) but each draws from its
  // own Fork(c) counter stream, so the seeding is a pure function of
  // (seed, points) with no shared generator state.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  const size_t first = Rng(base.Fork(0)).UniformInt(n);
  for (size_t j = 0; j < d; ++j) {
    result.centroids.At(0, j) = points.At(first, j);
  }
  for (size_t c = 1; c < k; ++c) {
    const Status status = ParallelFor(
        n, num_threads, [&](size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            const double dist = dense::SquaredDistance(
                points.Row(i), result.centroids.Row(c - 1), d);
            if (dist < min_dist[i]) min_dist[i] = dist;
          }
          return Status::OK();
        });
    KGREC_CHECK(status.ok());
    double total = 0.0;
    for (double w : min_dist) total += w;
    Rng pick_rng = base.Fork(c);
    const size_t chosen =
        total > 0.0 ? pick_rng.Categorical(min_dist) : pick_rng.UniformInt(n);
    for (size_t j = 0; j < d; ++j) {
      result.centroids.At(c, j) = points.At(chosen, j);
    }
  }

  std::vector<size_t> counts(k, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    // Assignment: each point's nearest centroid is a pure function of the
    // centroid matrix, and each chunk writes only its own slots — bitwise
    // identical at any thread count.
    bool changed = false;
    std::vector<uint8_t> chunk_changed(n, 0);
    const Status status = ParallelFor(
        n, num_threads, [&](size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            float best = std::numeric_limits<float>::max();
            int32_t best_c = 0;
            for (size_t c = 0; c < k; ++c) {
              const float dist = dense::SquaredDistance(
                  points.Row(i), result.centroids.Row(c), d);
              if (dist < best) {
                best = dist;
                best_c = static_cast<int32_t>(c);
              }
            }
            if (best_c != result.assignment[i]) {
              result.assignment[i] = best_c;
              chunk_changed[i] = 1;
            }
          }
          return Status::OK();
        });
    KGREC_CHECK(status.ok());
    for (uint8_t flag : chunk_changed) changed |= (flag != 0);
    if (!changed && iter > 0) break;

    // Update: serial accumulation in ascending point order keeps the
    // float sums independent of the thread count.
    result.centroids = Matrix(k, d);
    counts.assign(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int32_t c = result.assignment[i];
      ++counts[c];
      dense::Axpy(1.0f, points.Row(i), result.centroids.Row(c), d);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        dense::Scale(result.centroids.Row(c), d, 1.0f / counts[c]);
      } else {
        // Deterministic empty-cluster reseed from the iteration/cluster
        // counter stream.
        const size_t pick =
            Rng(base.Fork((static_cast<uint64_t>(iter) + 1) * k + c))
                .UniformInt(n);
        for (size_t j = 0; j < d; ++j) {
          result.centroids.At(c, j) = points.At(pick, j);
        }
      }
    }
  }
  return result;
}

}  // namespace kgrec
