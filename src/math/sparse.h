#ifndef KGREC_MATH_SPARSE_H_
#define KGREC_MATH_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

namespace kgrec {

/// Compressed sparse row matrix of floats with int32 column ids.
///
/// Used for user-item interaction matrices and meta-path commuting
/// matrices (PathSim, HeteRec's diffused preference matrices).
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }
  CsrMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builds from (row, col, value) triplets; duplicates are summed.
  static CsrMatrix FromTriplets(
      size_t rows, size_t cols,
      const std::vector<std::tuple<int32_t, int32_t, float>>& triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Number of stored entries in a row.
  size_t RowNnz(size_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }
  const int32_t* RowCols(size_t r) const {
    return col_idx_.data() + row_ptr_[r];
  }
  const float* RowVals(size_t r) const { return values_.data() + row_ptr_[r]; }

  /// Value at (r, c); 0 if not stored. O(row nnz).
  float At(size_t r, size_t c) const;

  /// Returns this * other (both CSR). Column count of *this must equal the
  /// row count of other.
  CsrMatrix Multiply(const CsrMatrix& other) const;

  /// Returns the transpose.
  CsrMatrix Transpose() const;

  /// y = this * x for a dense vector x of length cols().
  void MultiplyVector(const float* x, float* y) const;

  /// Sum of all stored values.
  double Sum() const;

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace kgrec

#endif  // KGREC_MATH_SPARSE_H_
