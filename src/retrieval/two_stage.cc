#include "retrieval/two_stage.h"

#include <algorithm>

#include "core/check.h"
#include "math/topk.h"

namespace kgrec::retrieval {

Status TwoStageRetriever::Create(
    std::shared_ptr<const Recommender> candidate_model,
    const TwoStageConfig& config,
    std::unique_ptr<const TwoStageRetriever>* out) {
  if (candidate_model == nullptr) {
    return Status::InvalidArgument("two-stage: null candidate model");
  }
  const auto* factors =
      dynamic_cast<const DotProductFactors*>(candidate_model.get());
  if (factors == nullptr) {
    return Status::FailedPrecondition(
        "two-stage: candidate model '" + candidate_model->name() +
        "' does not export dot-product factors");
  }
  ItemFactors exported = factors->ExportItemFactors();
  if (exported.items.rows() == 0) {
    return Status::FailedPrecondition(
        "two-stage: candidate model '" + candidate_model->name() +
        "' exported an empty item matrix (not fitted?)");
  }
  std::unique_ptr<const ItemIndex> index;
  if (config.use_ivf) {
    index = std::make_unique<IvfIndex>(std::move(exported), config.ivf,
                                       config.scan);
  } else {
    index = std::make_unique<BruteForceIndex>(std::move(exported),
                                              config.scan);
  }
  out->reset(new TwoStageRetriever(std::move(candidate_model), factors,
                                   std::move(index), config));
  return Status::OK();
}

std::vector<std::pair<int32_t, float>> TwoStageRetriever::Recommend(
    const Recommender& ranker, int32_t user, size_t k,
    std::span<const int32_t> sorted_exclude) const {
  if (k == 0) return {};
  const size_t num_candidates = std::max(
      k * std::max<size_t>(1, config_.candidates_per_k),
      config_.min_candidates);

  // Stage 1: candidate generation through the index.
  std::vector<float> query(factors_->factor_dim());
  factors_->FillUserQuery(user, query);
  std::vector<std::pair<int32_t, float>> candidates =
      index_->Query(query, num_candidates, sorted_exclude);

  // Stage 2: one batched exact re-rank on the serving model.
  std::vector<int32_t> ids;
  ids.reserve(candidates.size());
  for (const auto& [item, score] : candidates) ids.push_back(item);
  const std::vector<float> scores = ranker.ScoreItems(user, ids);
  KGREC_CHECK_EQ(scores.size(), ids.size());

  BoundedTopK top(k);
  for (size_t i = 0; i < ids.size(); ++i) top.Push(ids[i], scores[i]);
  return top.TakeSorted();
}

}  // namespace kgrec::retrieval
