#ifndef KGREC_RETRIEVAL_INDEX_H_
#define KGREC_RETRIEVAL_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "math/topk.h"
#include "retrieval/factors.h"

namespace kgrec::retrieval {

/// A top-K retrieval structure over one ItemFactors export. Queries are
/// user query vectors (DotProductFactors::FillUserQuery); results are
/// (item, score) pairs, best-first under the library ranking order
/// (math/topk.h RankBetter: NaN last, ties toward the smaller item id).
///
/// Thread-safety mirrors the serve path: indexes are immutable after
/// construction, Query() is const and touches no shared mutable state, so
/// any number of threads may query one index concurrently.
class ItemIndex {
 public:
  explicit ItemIndex(ItemFactors factors) : factors_(std::move(factors)) {}
  virtual ~ItemIndex() = default;

  ItemIndex(const ItemIndex&) = delete;
  ItemIndex& operator=(const ItemIndex&) = delete;

  virtual std::string name() const = 0;

  size_t num_items() const { return factors_.items.rows(); }
  size_t dim() const { return factors_.items.cols(); }
  ScoreKernel kernel() const { return factors_.kernel; }
  const ItemFactors& factors() const { return factors_; }

  /// Top-k for the query. `sorted_exclude` must be sorted, deduplicated
  /// and in-range (retrieval::SanitizeExclude); excluded items never
  /// appear in the result. Returns fewer than k pairs only when fewer
  /// than k non-excluded items exist (or, for approximate indexes, were
  /// probed).
  virtual std::vector<std::pair<int32_t, float>> Query(
      std::span<const float> query, size_t k,
      std::span<const int32_t> sorted_exclude = {}) const = 0;

 protected:
  /// Scores the contiguous id range [begin, end) in fixed-size blocks
  /// through KernelScoreBatch and streams the results into `top`,
  /// skipping excluded ids with a merge walk. O(block) scratch — no
  /// full-range score vector.
  void ScanRange(int32_t begin, int32_t end, const float* query,
                 std::span<const int32_t> sorted_exclude,
                 BoundedTopK& top) const;

  /// Same for an explicit ascending id list (an IVF posting list);
  /// exclusion via binary search.
  void ScanList(std::span<const int32_t> ids, const float* query,
                std::span<const int32_t> sorted_exclude,
                BoundedTopK& top) const;

  ItemFactors factors_;
};

/// The exact baseline: a blocked full-catalog scan feeding a bounded
/// streaming heap. Because the export contract makes every block score
/// bitwise equal to the model's Score() and RankBetter is a total order,
/// Query() is **bitwise identical** to materializing ScoreAll() and
/// running TopKScored() — with O(K + block) memory instead of O(catalog).
class BruteForceIndex : public ItemIndex {
 public:
  explicit BruteForceIndex(ItemFactors factors)
      : ItemIndex(std::move(factors)) {}

  std::string name() const override { return "brute-force"; }

  std::vector<std::pair<int32_t, float>> Query(
      std::span<const float> query, size_t k,
      std::span<const int32_t> sorted_exclude = {}) const override;
};

/// IVF (inverted-file) build knobs.
struct IvfConfig {
  /// Number of k-means cells; 0 → ceil(sqrt(num_items)), min 1.
  size_t num_clusters = 0;
  /// Cells probed per query (clamped to num_clusters). The default is
  /// tuned so recall@10 >= 0.95 on the trained-embedding worlds of
  /// bench/retrieval_scaling --smoke.
  size_t num_probes = 8;
  int kmeans_iters = 10;
  uint64_t seed = 13;
  /// Build-time threads; the build is bitwise identical at any count
  /// (math/kmeans.h KMeansDeterministic).
  size_t num_threads = 1;
};

/// Approximate cluster-pruned index: deterministic k-means over the item
/// factor rows partitions the catalog into cells; a query ranks the cell
/// centroids under the same kernel, scans only the best `num_probes`
/// cells exactly, and returns their top-k. Recall@K versus the exact
/// baseline is measured (not assumed) by bench/retrieval_scaling; with
/// num_probes == num_clusters the result is bitwise the brute-force one.
class IvfIndex : public ItemIndex {
 public:
  IvfIndex(ItemFactors factors, const IvfConfig& config);

  std::string name() const override { return "ivf"; }

  size_t num_clusters() const { return lists_.size(); }
  const IvfConfig& config() const { return config_; }

  std::vector<std::pair<int32_t, float>> Query(
      std::span<const float> query, size_t k,
      std::span<const int32_t> sorted_exclude = {}) const override;

 private:
  IvfConfig config_;
  Matrix centroids_;                        // [num_clusters, dim]
  std::vector<std::vector<int32_t>> lists_; // ascending item ids per cell
};

}  // namespace kgrec::retrieval

#endif  // KGREC_RETRIEVAL_INDEX_H_
