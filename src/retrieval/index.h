#ifndef KGREC_RETRIEVAL_INDEX_H_
#define KGREC_RETRIEVAL_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "math/topk.h"
#include "retrieval/factors.h"
#include "retrieval/quantize.h"

namespace kgrec::retrieval {

/// Which representation the candidate scan streams (DESIGN §12).
///  * kFloat32 — the exact float scan: every scanned item is scored with
///    the full-precision kernel; the result IS the final ranking.
///  * kSq8     — the quantized scan: items are scored approximately from
///    their u8 codes with the integer kernels (4x fewer bytes streamed),
///    an over-fetched candidate pool is kept, and the pool is re-ranked
///    with the float32 kernel to restore the exact RankBetter order.
enum class ScanPrecision { kFloat32, kSq8 };

const char* ScanPrecisionName(ScanPrecision precision);

/// Scan-representation knobs, shared by both index types.
struct ScanSpec {
  ScanPrecision precision = ScanPrecision::kFloat32;
  /// SQ8 candidate pool size: max(k * rerank_factor, k + rerank_slack).
  /// The final top-k equals the float32 index's exactly whenever the
  /// pool contains the true top-k — the widened pool is the safety
  /// margin against quantization reordering near the cut, and the gate
  /// (bench/retrieval_scaling, tests/retrieval_test.cc) holds the
  /// equality bitwise across the model zoo at these defaults.
  size_t rerank_factor = 4;
  size_t rerank_slack = 32;

  size_t PoolSize(size_t k) const {
    return std::max(k * rerank_factor, k + rerank_slack);
  }
};

/// Caller-owned scratch for ItemIndex::QueryInto: the blocked-scan
/// buffers, the streaming heaps, the prepared quantized query and the
/// re-rank staging vectors. Reusing one instance across queries makes
/// the steady-state query path allocation-free (pinned by
/// tests/retrieval_test.cc RetrievalScratch) — the serve path keeps one
/// per thread, so Router recommend traffic stops paying a block-sized
/// allocation per request.
struct SearchScratch {
  /// Items scored per batched-kernel call: large enough to amortize the
  /// kernels' SIMD lanes, small enough that the block scratch stays L1.
  static constexpr size_t kBlock = 256;

  const float* rows[kBlock];
  const uint8_t* code_rows[kBlock];
  int32_t ids[kBlock];
  float scores[kBlock];
  int32_t iscores[kBlock];
  int32_t iscores_lo[kBlock];  // kDot low-weight pass (Sq8Query)

  BoundedTopK top{0};   // final selection
  BoundedTopK pool{0};  // SQ8 candidate pool
  BoundedTopK cells{0}; // IVF probed-cell selection
  Sq8Query query8;
  std::vector<std::pair<int32_t, float>> candidates;
  /// Scanned items whose factor rows hold non-finite entries: bypass the
  /// approximate pool, re-ranked unconditionally (RerankPool).
  std::vector<int32_t> forced;
  std::vector<std::pair<int32_t, float>> cell_order;
  std::vector<const float*> rerank_rows;
  std::vector<float> rerank_scores;
  /// Serve-path staging for FillUserQuery (serve/serve_handle.cc).
  std::vector<float> user_query;
};

/// A top-K retrieval structure over one ItemFactors export. Queries are
/// user query vectors (DotProductFactors::FillUserQuery); results are
/// (item, score) pairs, best-first under the library ranking order
/// (math/topk.h RankBetter: NaN last, ties toward the smaller item id).
///
/// Thread-safety mirrors the serve path: indexes are immutable after
/// construction, Query()/QueryInto() are const and touch no shared
/// mutable state (per-call state lives in the SearchScratch), so any
/// number of threads may query one index concurrently.
class ItemIndex {
 public:
  ItemIndex(ItemFactors factors, const ScanSpec& scan);
  virtual ~ItemIndex() = default;

  ItemIndex(const ItemIndex&) = delete;
  ItemIndex& operator=(const ItemIndex&) = delete;

  virtual std::string name() const = 0;

  size_t num_items() const { return factors_.items.rows(); }
  size_t dim() const { return factors_.items.cols(); }
  ScoreKernel kernel() const { return factors_.kernel; }
  const ItemFactors& factors() const { return factors_; }
  const ScanSpec& scan() const { return scan_; }
  ScanPrecision precision() const { return scan_.precision; }
  /// The quantized factors backing the SQ8 scan; nullptr at kFloat32.
  const QuantizedItemFactors* quantized() const {
    return quantized_ ? &*quantized_ : nullptr;
  }

  /// Top-k for the query. `sorted_exclude` must be sorted, deduplicated
  /// and in-range (retrieval::SanitizeExclude); excluded items never
  /// appear in the result. Returns fewer than k pairs only when fewer
  /// than k non-excluded items exist (or, for approximate indexes, were
  /// probed). Convenience form — owns a throwaway scratch.
  std::vector<std::pair<int32_t, float>> Query(
      std::span<const float> query, size_t k,
      std::span<const int32_t> sorted_exclude = {}) const;

  /// Query with caller-owned scratch and output vector; at steady state
  /// (reused scratch, reused out) performs no heap allocation.
  virtual void QueryInto(std::span<const float> query, size_t k,
                         std::span<const int32_t> sorted_exclude,
                         SearchScratch& scratch,
                         std::vector<std::pair<int32_t, float>>* out) const = 0;

 protected:
  /// Scores the contiguous id range [begin, end) in fixed-size blocks
  /// through KernelScoreBatch and streams the results into `top`,
  /// skipping excluded ids with a merge walk. O(block) scratch — no
  /// full-range score vector.
  void ScanRange(int32_t begin, int32_t end, const float* query,
                 std::span<const int32_t> sorted_exclude,
                 SearchScratch& scratch, BoundedTopK& top) const;

  /// Same for an explicit ascending id list (an IVF posting list);
  /// exclusion via binary search.
  void ScanList(std::span<const int32_t> ids, const float* query,
                std::span<const int32_t> sorted_exclude,
                SearchScratch& scratch, BoundedTopK& top) const;

  /// Quantized variants: stream u8 code rows through the integer batch
  /// kernels and push the expanded approximate scores. Same exclusion
  /// walks as the float scans. Items listed in quantized()->
  /// nonfinite_items() skip the pool and land in scratch.forced — their
  /// true scores can be ±inf/NaN, which no finite code-space score can
  /// place correctly, so they are always re-ranked exactly.
  void ScanRangeSq8(int32_t begin, int32_t end, const Sq8Query& query,
                    std::span<const int32_t> sorted_exclude,
                    SearchScratch& scratch, BoundedTopK& pool) const;
  void ScanListSq8(std::span<const int32_t> ids, const Sq8Query& query,
                   std::span<const int32_t> sorted_exclude,
                   SearchScratch& scratch, BoundedTopK& pool) const;

  /// Drains scratch.pool plus scratch.forced, rescores every candidate
  /// with the float32 kernel (bitwise the model's Score via the export
  /// contract), and writes the exact top-k into `out`. This is what
  /// restores the RankBetter order after an approximate SQ8 scan:
  /// whenever pool ∪ forced contains the true top-k, the result is
  /// bitwise identical to the float32 index's.
  void RerankPool(std::span<const float> query, size_t k,
                  SearchScratch& scratch,
                  std::vector<std::pair<int32_t, float>>* out) const;

  ItemFactors factors_;
  ScanSpec scan_;
  std::optional<QuantizedItemFactors> quantized_;
};

/// The exact baseline: a blocked full-catalog scan feeding a bounded
/// streaming heap. Because the export contract makes every block score
/// bitwise equal to the model's Score() and RankBetter is a total order,
/// a float32 Query() is **bitwise identical** to materializing
/// ScoreAll() and running TopKScored() — with O(K + block) memory
/// instead of O(catalog). At ScanPrecision::kSq8 the scan streams the
/// quantized codes instead and the re-rank restores that same order.
class BruteForceIndex : public ItemIndex {
 public:
  explicit BruteForceIndex(ItemFactors factors, const ScanSpec& scan = {})
      : ItemIndex(std::move(factors), scan) {}

  std::string name() const override { return "brute-force"; }

  void QueryInto(std::span<const float> query, size_t k,
                 std::span<const int32_t> sorted_exclude,
                 SearchScratch& scratch,
                 std::vector<std::pair<int32_t, float>>* out) const override;
};

/// IVF (inverted-file) build knobs.
struct IvfConfig {
  /// Number of k-means cells; 0 → ceil(sqrt(num_items)), min 1.
  size_t num_clusters = 0;
  /// Cells probed per query (clamped to num_clusters). The default is
  /// tuned so recall@10 >= 0.95 on the trained-embedding worlds of
  /// bench/retrieval_scaling --smoke.
  size_t num_probes = 8;
  int kmeans_iters = 10;
  uint64_t seed = 13;
  /// Build-time threads; the build is bitwise identical at any count
  /// (math/kmeans.h KMeansDeterministic).
  size_t num_threads = 1;
};

/// Approximate cluster-pruned index: deterministic k-means over the item
/// factor rows partitions the catalog into cells; a query ranks the cell
/// centroids under the same kernel, scans only the best `num_probes`
/// cells exactly, and returns their top-k. Recall@K versus the exact
/// baseline is measured (not assumed) by bench/retrieval_scaling; with
/// num_probes == num_clusters the result is bitwise the brute-force one.
/// Centroid ranking always runs in float32; ScanPrecision only selects
/// the representation streamed by the per-cell scans.
class IvfIndex : public ItemIndex {
 public:
  IvfIndex(ItemFactors factors, const IvfConfig& config,
           const ScanSpec& scan = {});

  std::string name() const override { return "ivf"; }

  size_t num_clusters() const { return lists_.size(); }
  const IvfConfig& config() const { return config_; }

  void QueryInto(std::span<const float> query, size_t k,
                 std::span<const int32_t> sorted_exclude,
                 SearchScratch& scratch,
                 std::vector<std::pair<int32_t, float>>* out) const override;

 private:
  IvfConfig config_;
  Matrix centroids_;                        // [num_clusters, dim]
  std::vector<std::vector<int32_t>> lists_; // ascending item ids per cell
};

}  // namespace kgrec::retrieval

#endif  // KGREC_RETRIEVAL_INDEX_H_
