#include "retrieval/index.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "math/kernels.h"
#include "math/kmeans.h"

namespace kgrec::retrieval {
namespace {

void Flush(ScoreKernel kernel, const float* query, size_t dim,
           SearchScratch& scratch, size_t filled, BoundedTopK& top) {
  KernelScoreBatch(kernel, query, scratch.rows, filled, dim, scratch.scores);
  for (size_t i = 0; i < filled; ++i) {
    top.Push(scratch.ids[i], scratch.scores[i]);
  }
}

void FlushSq8(const QuantizedItemFactors& quantized, const Sq8Query& query,
              SearchScratch& scratch, size_t filled, BoundedTopK& pool) {
  // Integer reduction + affine expansion: the i32 scores are bitwise
  // identical across scalar/SSE2/AVX2 builds (math/kernels.h), and the
  // expansion is one float multiply-add per candidate, so the candidate
  // pool itself is build-invariant — not only the re-ranked result.
  const size_t dim = quantized.dim();
  if (quantized.kernel() == ScoreKernel::kDot) {
    // One fused pass over the streamed block: each code row is read once
    // and reduced against both halves of the 15-bit query weights
    // (Sq8Query), then combined in int64 (128 * hi_dot can exceed i32).
    kernels::DotDualBatchI8(query.weights.data(), query.weights_lo.data(),
                            scratch.code_rows, filled, dim, scratch.iscores,
                            scratch.iscores_lo);
    for (size_t i = 0; i < filled; ++i) {
      const int64_t combined =
          128 * static_cast<int64_t>(scratch.iscores[i]) +
          static_cast<int64_t>(scratch.iscores_lo[i]);
      pool.Push(scratch.ids[i], quantized.ApproxScore(query, combined));
    }
    return;
  }
  kernels::SquaredDistanceBatchI8(query.codes.data(), scratch.code_rows,
                                  filled, dim, scratch.iscores);
  for (size_t i = 0; i < filled; ++i) {
    pool.Push(scratch.ids[i], quantized.ApproxScore(query, scratch.iscores[i]));
  }
}

}  // namespace

const char* ScanPrecisionName(ScanPrecision precision) {
  switch (precision) {
    case ScanPrecision::kFloat32: return "float32";
    case ScanPrecision::kSq8: return "sq8";
  }
  return "?";
}

ItemIndex::ItemIndex(ItemFactors factors, const ScanSpec& scan)
    : factors_(std::move(factors)), scan_(scan) {
  if (scan_.precision == ScanPrecision::kSq8) {
    quantized_ = QuantizedItemFactors::Encode(factors_);
  }
}

std::vector<std::pair<int32_t, float>> ItemIndex::Query(
    std::span<const float> query, size_t k,
    std::span<const int32_t> sorted_exclude) const {
  SearchScratch scratch;
  std::vector<std::pair<int32_t, float>> out;
  QueryInto(query, k, sorted_exclude, scratch, &out);
  return out;
}

void ItemIndex::ScanRange(int32_t begin, int32_t end, const float* query,
                          std::span<const int32_t> sorted_exclude,
                          SearchScratch& scratch, BoundedTopK& top) const {
  size_t filled = 0;
  // Merge walk: `next_excluded` always points at the first exclusion
  // >= the current id, so each id costs O(1).
  const int32_t* next_excluded = std::lower_bound(
      sorted_exclude.data(), sorted_exclude.data() + sorted_exclude.size(),
      begin);
  const int32_t* excluded_end =
      sorted_exclude.data() + sorted_exclude.size();
  for (int32_t id = begin; id < end; ++id) {
    if (next_excluded != excluded_end && *next_excluded == id) {
      ++next_excluded;
      continue;
    }
    scratch.ids[filled] = id;
    scratch.rows[filled] = factors_.items.Row(id);
    if (++filled == SearchScratch::kBlock) {
      Flush(factors_.kernel, query, dim(), scratch, filled, top);
      filled = 0;
    }
  }
  if (filled > 0) Flush(factors_.kernel, query, dim(), scratch, filled, top);
}

void ItemIndex::ScanList(std::span<const int32_t> ids, const float* query,
                         std::span<const int32_t> sorted_exclude,
                         SearchScratch& scratch, BoundedTopK& top) const {
  size_t filled = 0;
  for (int32_t id : ids) {
    if (std::binary_search(sorted_exclude.begin(), sorted_exclude.end(),
                           id)) {
      continue;
    }
    scratch.ids[filled] = id;
    scratch.rows[filled] = factors_.items.Row(id);
    if (++filled == SearchScratch::kBlock) {
      Flush(factors_.kernel, query, dim(), scratch, filled, top);
      filled = 0;
    }
  }
  if (filled > 0) Flush(factors_.kernel, query, dim(), scratch, filled, top);
}

void ItemIndex::ScanRangeSq8(int32_t begin, int32_t end, const Sq8Query& query,
                             std::span<const int32_t> sorted_exclude,
                             SearchScratch& scratch, BoundedTopK& pool) const {
  const QuantizedItemFactors& q = *quantized_;
  size_t filled = 0;
  const int32_t* next_excluded = std::lower_bound(
      sorted_exclude.data(), sorted_exclude.data() + sorted_exclude.size(),
      begin);
  const int32_t* excluded_end =
      sorted_exclude.data() + sorted_exclude.size();
  // Second merge walk: non-finite rows divert to scratch.forced.
  const std::span<const int32_t> nonfinite = q.nonfinite_items();
  const int32_t* next_nonfinite = std::lower_bound(
      nonfinite.data(), nonfinite.data() + nonfinite.size(), begin);
  const int32_t* nonfinite_end = nonfinite.data() + nonfinite.size();
  for (int32_t id = begin; id < end; ++id) {
    if (next_excluded != excluded_end && *next_excluded == id) {
      ++next_excluded;
      if (next_nonfinite != nonfinite_end && *next_nonfinite == id) {
        ++next_nonfinite;
      }
      continue;
    }
    if (next_nonfinite != nonfinite_end && *next_nonfinite == id) {
      ++next_nonfinite;
      scratch.forced.push_back(id);
      continue;
    }
    scratch.ids[filled] = id;
    scratch.code_rows[filled] = q.Codes(static_cast<size_t>(id));
    if (++filled == SearchScratch::kBlock) {
      FlushSq8(q, query, scratch, filled, pool);
      filled = 0;
    }
  }
  if (filled > 0) FlushSq8(q, query, scratch, filled, pool);
}

void ItemIndex::ScanListSq8(std::span<const int32_t> ids,
                            const Sq8Query& query,
                            std::span<const int32_t> sorted_exclude,
                            SearchScratch& scratch, BoundedTopK& pool) const {
  const QuantizedItemFactors& q = *quantized_;
  const std::span<const int32_t> nonfinite = q.nonfinite_items();
  size_t filled = 0;
  for (int32_t id : ids) {
    if (std::binary_search(sorted_exclude.begin(), sorted_exclude.end(),
                           id)) {
      continue;
    }
    if (!nonfinite.empty() &&
        std::binary_search(nonfinite.begin(), nonfinite.end(), id)) {
      scratch.forced.push_back(id);
      continue;
    }
    scratch.ids[filled] = id;
    scratch.code_rows[filled] = q.Codes(static_cast<size_t>(id));
    if (++filled == SearchScratch::kBlock) {
      FlushSq8(q, query, scratch, filled, pool);
      filled = 0;
    }
  }
  if (filled > 0) FlushSq8(q, query, scratch, filled, pool);
}

void ItemIndex::RerankPool(std::span<const float> query, size_t k,
                           SearchScratch& scratch,
                           std::vector<std::pair<int32_t, float>>* out) const {
  scratch.pool.TakeSortedInto(scratch.candidates);
  // Forced (non-finite-row) candidates ride along unconditionally; the
  // scans never push them into the pool, so there are no duplicates.
  for (int32_t id : scratch.forced) {
    scratch.candidates.emplace_back(id, 0.0f);
  }
  const size_t count = scratch.candidates.size();
  scratch.rerank_rows.resize(count);
  scratch.rerank_scores.resize(count);
  for (size_t i = 0; i < count; ++i) {
    scratch.rerank_rows[i] =
        factors_.items.Row(static_cast<size_t>(scratch.candidates[i].first));
  }
  // Full-precision rescore of the pool: per the export contract each
  // score is bitwise the model's Score(), so selecting the top-k of the
  // pool under RankBetter reproduces the float32 index's result exactly
  // whenever the pool contains the true top-k.
  KernelScoreBatch(factors_.kernel, query.data(), scratch.rerank_rows.data(),
                   count, dim(), scratch.rerank_scores.data());
  scratch.top.Reset(k);
  for (size_t i = 0; i < count; ++i) {
    scratch.top.Push(scratch.candidates[i].first, scratch.rerank_scores[i]);
  }
  scratch.top.TakeSortedInto(*out);
}

void BruteForceIndex::QueryInto(
    std::span<const float> query, size_t k,
    std::span<const int32_t> sorted_exclude, SearchScratch& scratch,
    std::vector<std::pair<int32_t, float>>* out) const {
  KGREC_CHECK_EQ(query.size(), dim());
  const int32_t end = static_cast<int32_t>(num_items());
  if (scan_.precision == ScanPrecision::kFloat32) {
    scratch.top.Reset(k);
    ScanRange(0, end, query.data(), sorted_exclude, scratch, scratch.top);
    scratch.top.TakeSortedInto(*out);
    return;
  }
  if (k == 0) {
    out->clear();
    return;
  }
  quantized_->PrepareQuery(query, &scratch.query8);
  scratch.pool.Reset(scan_.PoolSize(k));
  scratch.forced.clear();
  ScanRangeSq8(0, end, scratch.query8, sorted_exclude, scratch, scratch.pool);
  RerankPool(query, k, scratch, out);
}

IvfIndex::IvfIndex(ItemFactors factors, const IvfConfig& config,
                   const ScanSpec& scan)
    : ItemIndex(std::move(factors), scan), config_(config) {
  const size_t n = num_items();
  KGREC_CHECK_GT(n, 0u);
  size_t clusters = config_.num_clusters;
  if (clusters == 0) {
    clusters = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  clusters = std::max<size_t>(1, std::min(clusters, n));
  const KMeansResult kmeans =
      KMeansDeterministic(factors_.items, clusters, config_.kmeans_iters,
                          config_.seed, config_.num_threads);
  centroids_ = kmeans.centroids;
  lists_.assign(clusters, {});
  // Ascending id order within each cell (the scan feeds ids in list
  // order, and RankBetter's tie rule expects no particular order — but
  // ascending keeps the scan cache-friendly and the layout canonical).
  for (size_t i = 0; i < n; ++i) {
    lists_[kmeans.assignment[i]].push_back(static_cast<int32_t>(i));
  }
}

void IvfIndex::QueryInto(std::span<const float> query, size_t k,
                         std::span<const int32_t> sorted_exclude,
                         SearchScratch& scratch,
                         std::vector<std::pair<int32_t, float>>* out) const {
  KGREC_CHECK_EQ(query.size(), dim());
  const size_t clusters = lists_.size();
  const size_t probes = std::max<size_t>(
      1, std::min(config_.num_probes, clusters));
  // Rank cells by the same kernel that ranks items: for kNegSquaredL2
  // that is nearest-centroid, for kDot highest centroid inner product.
  // Always full precision — the centroid pass is O(clusters), not the
  // scan bottleneck, and keeping it float makes probe selection
  // identical across scan precisions.
  scratch.cells.Reset(probes);
  for (size_t c = 0; c < clusters; ++c) {
    scratch.cells.Push(static_cast<int32_t>(c),
                       KernelScore(factors_.kernel, query.data(),
                                   centroids_.Row(c), dim()));
  }
  scratch.cells.TakeSortedInto(scratch.cell_order);
  if (scan_.precision == ScanPrecision::kFloat32) {
    scratch.top.Reset(k);
    for (const auto& [cell, cell_score] : scratch.cell_order) {
      ScanList(lists_[cell], query.data(), sorted_exclude, scratch,
               scratch.top);
    }
    scratch.top.TakeSortedInto(*out);
    return;
  }
  if (k == 0) {
    out->clear();
    return;
  }
  quantized_->PrepareQuery(query, &scratch.query8);
  scratch.pool.Reset(scan_.PoolSize(k));
  scratch.forced.clear();
  for (const auto& [cell, cell_score] : scratch.cell_order) {
    ScanListSq8(lists_[cell], scratch.query8, sorted_exclude, scratch,
                scratch.pool);
  }
  RerankPool(query, k, scratch, out);
}

}  // namespace kgrec::retrieval
