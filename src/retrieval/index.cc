#include "retrieval/index.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "math/kmeans.h"

namespace kgrec::retrieval {
namespace {

/// Items scored per KernelScoreBatch call: large enough to amortize the
/// batched kernel's 4-row SIMD lanes, small enough that the scratch
/// (row pointers + kept ids + scores) stays in L1.
constexpr size_t kScanBlock = 256;

struct ScanScratch {
  const float* rows[kScanBlock];
  int32_t ids[kScanBlock];
  float scores[kScanBlock];
};

void Flush(ScoreKernel kernel, const float* query, size_t dim,
           ScanScratch& scratch, size_t filled, BoundedTopK& top) {
  KernelScoreBatch(kernel, query, scratch.rows, filled, dim, scratch.scores);
  for (size_t i = 0; i < filled; ++i) {
    top.Push(scratch.ids[i], scratch.scores[i]);
  }
}

}  // namespace

void ItemIndex::ScanRange(int32_t begin, int32_t end, const float* query,
                          std::span<const int32_t> sorted_exclude,
                          BoundedTopK& top) const {
  ScanScratch scratch;
  size_t filled = 0;
  // Merge walk: `next_excluded` always points at the first exclusion
  // >= the current id, so each id costs O(1).
  const int32_t* next_excluded = std::lower_bound(
      sorted_exclude.data(), sorted_exclude.data() + sorted_exclude.size(),
      begin);
  const int32_t* excluded_end =
      sorted_exclude.data() + sorted_exclude.size();
  for (int32_t id = begin; id < end; ++id) {
    if (next_excluded != excluded_end && *next_excluded == id) {
      ++next_excluded;
      continue;
    }
    scratch.ids[filled] = id;
    scratch.rows[filled] = factors_.items.Row(id);
    if (++filled == kScanBlock) {
      Flush(factors_.kernel, query, dim(), scratch, filled, top);
      filled = 0;
    }
  }
  if (filled > 0) Flush(factors_.kernel, query, dim(), scratch, filled, top);
}

void ItemIndex::ScanList(std::span<const int32_t> ids, const float* query,
                         std::span<const int32_t> sorted_exclude,
                         BoundedTopK& top) const {
  ScanScratch scratch;
  size_t filled = 0;
  for (int32_t id : ids) {
    if (std::binary_search(sorted_exclude.begin(), sorted_exclude.end(),
                           id)) {
      continue;
    }
    scratch.ids[filled] = id;
    scratch.rows[filled] = factors_.items.Row(id);
    if (++filled == kScanBlock) {
      Flush(factors_.kernel, query, dim(), scratch, filled, top);
      filled = 0;
    }
  }
  if (filled > 0) Flush(factors_.kernel, query, dim(), scratch, filled, top);
}

std::vector<std::pair<int32_t, float>> BruteForceIndex::Query(
    std::span<const float> query, size_t k,
    std::span<const int32_t> sorted_exclude) const {
  KGREC_CHECK_EQ(query.size(), dim());
  BoundedTopK top(k);
  ScanRange(0, static_cast<int32_t>(num_items()), query.data(),
            sorted_exclude, top);
  return top.TakeSorted();
}

IvfIndex::IvfIndex(ItemFactors factors, const IvfConfig& config)
    : ItemIndex(std::move(factors)), config_(config) {
  const size_t n = num_items();
  KGREC_CHECK_GT(n, 0u);
  size_t clusters = config_.num_clusters;
  if (clusters == 0) {
    clusters = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  clusters = std::max<size_t>(1, std::min(clusters, n));
  const KMeansResult kmeans =
      KMeansDeterministic(factors_.items, clusters, config_.kmeans_iters,
                          config_.seed, config_.num_threads);
  centroids_ = kmeans.centroids;
  lists_.assign(clusters, {});
  // Ascending id order within each cell (the scan feeds ids in list
  // order, and RankBetter's tie rule expects no particular order — but
  // ascending keeps the scan cache-friendly and the layout canonical).
  for (size_t i = 0; i < n; ++i) {
    lists_[kmeans.assignment[i]].push_back(static_cast<int32_t>(i));
  }
}

std::vector<std::pair<int32_t, float>> IvfIndex::Query(
    std::span<const float> query, size_t k,
    std::span<const int32_t> sorted_exclude) const {
  KGREC_CHECK_EQ(query.size(), dim());
  const size_t clusters = lists_.size();
  const size_t probes = std::max<size_t>(
      1, std::min(config_.num_probes, clusters));
  // Rank cells by the same kernel that ranks items: for kNegSquaredL2
  // that is nearest-centroid, for kDot highest centroid inner product.
  BoundedTopK best_cells(probes);
  for (size_t c = 0; c < clusters; ++c) {
    best_cells.Push(static_cast<int32_t>(c),
                    KernelScore(factors_.kernel, query.data(),
                                centroids_.Row(c), dim()));
  }
  BoundedTopK top(k);
  for (const auto& [cell, cell_score] : best_cells.TakeSorted()) {
    ScanList(lists_[cell], query.data(), sorted_exclude, top);
  }
  return top.TakeSorted();
}

}  // namespace kgrec::retrieval
