#ifndef KGREC_RETRIEVAL_TWO_STAGE_H_
#define KGREC_RETRIEVAL_TWO_STAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/recommender.h"
#include "core/status.h"
#include "retrieval/index.h"

namespace kgrec::retrieval {

/// Candidate-generation knobs for the two-stage path.
struct TwoStageConfig {
  /// Candidates retrieved per requested k (C = max(k * candidates_per_k,
  /// min_candidates)): the re-rank stage sees C exact scores, so a
  /// larger multiplier trades re-rank cost for recall.
  size_t candidates_per_k = 8;
  size_t min_candidates = 128;
  /// Candidate index kind: exact blocked scan (default — stage 1 is then
  /// the candidate model's true top-C) or IVF (sublinear stage 1).
  bool use_ivf = false;
  IvfConfig ivf;
  /// Scan representation of the stage-1 index (float32 or SQ8 with
  /// float re-rank — see retrieval/index.h ScanSpec).
  ScanSpec scan;
};

/// The two-stage retrieve-then-rerank architecture every production
/// recommender converges on (ROADMAP; DESIGN §10): a *factorizable*
/// candidate model (stage 1) retrieves C candidates through an index
/// over its exported item factors, and the serving model (stage 2 — any
/// Recommender, factorizable or not: RippleNet, path RNNs, ...) re-ranks
/// exactly those C candidates with one batched ScoreItems call. Returned
/// scores are the *ranker's* — bitwise what the exhaustive path would
/// have assigned those items.
class TwoStageRetriever {
 public:
  /// Builds the candidate index from `candidate_model`'s factor export.
  /// Fails with FailedPrecondition when the model does not implement
  /// DotProductFactors. The retriever shares ownership of the candidate
  /// model (its factors are copied into the index; the model itself is
  /// only needed for FillUserQuery at query time).
  static Status Create(std::shared_ptr<const Recommender> candidate_model,
                       const TwoStageConfig& config,
                       std::unique_ptr<const TwoStageRetriever>* out);

  /// Stage 1 + stage 2 for one user. `sorted_exclude` must be canonical
  /// (retrieval::SanitizeExclude). Returns min(k, candidates) pairs,
  /// best-first under the ranker's scores (RankBetter order).
  std::vector<std::pair<int32_t, float>> Recommend(
      const Recommender& ranker, int32_t user, size_t k,
      std::span<const int32_t> sorted_exclude = {}) const;

  const ItemIndex& index() const { return *index_; }
  const TwoStageConfig& config() const { return config_; }

 private:
  TwoStageRetriever(std::shared_ptr<const Recommender> candidate_model,
                    const DotProductFactors* factors,
                    std::unique_ptr<const ItemIndex> index,
                    const TwoStageConfig& config)
      : candidate_model_(std::move(candidate_model)),
        factors_(factors),
        index_(std::move(index)),
        config_(config) {}

  std::shared_ptr<const Recommender> candidate_model_;
  const DotProductFactors* factors_;  // view into *candidate_model_
  std::unique_ptr<const ItemIndex> index_;
  TwoStageConfig config_;
};

}  // namespace kgrec::retrieval

#endif  // KGREC_RETRIEVAL_TWO_STAGE_H_
