#include "retrieval/factors.h"

#include <algorithm>

#include "core/check.h"
#include "math/kernels.h"

namespace kgrec::retrieval {

const char* ScoreKernelName(ScoreKernel kernel) {
  switch (kernel) {
    case ScoreKernel::kDot:
      return "dot";
    case ScoreKernel::kNegSquaredL2:
      return "neg-squared-l2";
  }
  return "unknown";
}

float KernelScore(ScoreKernel kernel, const float* query, const float* row,
                  size_t dim) {
  switch (kernel) {
    case ScoreKernel::kDot:
      return kernels::Dot(query, row, dim);
    case ScoreKernel::kNegSquaredL2:
      return -kernels::SquaredDistance(query, row, dim);
  }
  KGREC_CHECK(false);  // unreachable
  return 0.0f;
}

void KernelScoreBatch(ScoreKernel kernel, const float* query,
                      const float* const* rows, size_t count, size_t dim,
                      float* out) {
  switch (kernel) {
    case ScoreKernel::kDot:
      kernels::DotBatch(query, rows, count, dim, out);
      return;
    case ScoreKernel::kNegSquaredL2:
      for (size_t i = 0; i < count; ++i) {
        out[i] = -kernels::SquaredDistance(query, rows[i], dim);
      }
      return;
  }
  KGREC_CHECK(false);  // unreachable
}

std::vector<int32_t> SanitizeExclude(std::span<const int32_t> exclude,
                                     int32_t num_items) {
  std::vector<int32_t> out;
  out.reserve(exclude.size());
  for (int32_t item : exclude) {
    if (item >= 0 && item < num_items) out.push_back(item);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace kgrec::retrieval
