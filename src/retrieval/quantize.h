#ifndef KGREC_RETRIEVAL_QUANTIZE_H_
#define KGREC_RETRIEVAL_QUANTIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/aligned.h"
#include "retrieval/factors.h"

namespace kgrec::retrieval {

/// Largest factor dimension the SQ8 layer accepts. Guarantees the int32
/// accumulators of both integer kernels cannot wrap (math/kernels.h
/// overflow caps: 32768 * 255 * 255 < 2^31).
inline constexpr size_t kMaxSq8Dim = 32768;

/// Round to nearest integer, ties to even ("banker's rounding"),
/// implemented with explicit floor/fraction arithmetic so the result
/// never depends on the ambient FP rounding mode (std::rint does) and is
/// identical across compilers and SIMD modes. Exposed for the golden
/// tests in tests/quantize_test.cc.
int64_t RoundHalfEvenToInt(double v);

/// One query, prepared for the integer scan of a QuantizedItemFactors
/// (PrepareQuery). Reusable scratch: buffers keep their capacity across
/// queries so the steady-state serve path performs no allocation.
struct Sq8Query {
  /// kDot: the per-dim weights w[d] = q[d] * delta[d] quantized to a
  /// 15-bit integer W[d] at scale = max|w| / 16256 and split as
  /// W = 128 * hi + lo (hi in [-127,127], lo in [-64,63]) so both halves
  /// fit the u8xi8 kernel. approx(item) =
  ///   bias + scale * (128 * DotI8(hi, c) + DotI8(lo, c)).
  /// Two integer passes over the same streamed block cost little (the
  /// scan is memory-bound) and buy 128x finer weight resolution than a
  /// single i8 pass — which a single outlier-stretched delta[d] would
  /// otherwise collapse to a one-hot weight vector.
  std::vector<int8_t> weights;     // hi
  std::vector<int8_t> weights_lo;  // lo
  /// kNegSquaredL2: the query on the item grid;
  /// approx(item) = -SquaredDistanceI8 (code-space distance).
  std::vector<uint8_t> codes;
  float scale = 0.0f;
  float bias = 0.0f;
};

/// SQ8 (scalar 8-bit) quantization of one ItemFactors export: per
/// dimension d, a uniform 256-step grid
///
///   value(code) = vmin[d] + delta[d] * code,     code in [0, 255],
///
/// where [vmin[d], vmin[d] + 255 * delta[d]] spans the finite values of
/// column d. Codes are one byte per entry, row-major — 4x smaller than
/// the float matrix, which is the whole point: the scan streams a
/// quarter of the bytes and reduces them with the integer kernels.
///
/// The step size depends on the kernel the factors are scanned under:
///  * kDot: per-dimension delta[d] = (vmax[d] - vmin[d]) / 255 (0 when
///    the column is constant) — the tightest grid per column. The query
///    weights absorb delta[d] exactly (PrepareQuery), so per-dim steps
///    cost the dot approximation nothing.
///  * kNegSquaredL2: one shared delta = max_d (vmax[d] - vmin[d]) / 255
///    for every column (vmin stays per-dimension). With a shared step
///    the code-space squared distance is delta^2 times the grid squared
///    distance — *proportional* to the true metric. Per-dim steps would
///    instead re-weight each dimension by 1/delta[d]^2, an arbitrarily
///    distorted proxy that lets true top-k items sink out of any
///    fixed-size candidate pool.
///
/// # Determinism
///
/// Encoding maps x -> RoundHalfEvenToInt((x - vmin[d]) / delta[d]) with
/// the affine computed in double. Every step (double divide, explicit
/// round-half-even, clamp) is exact IEEE arithmetic with no
/// rounding-mode or fast-math dependence, so the codes — and therefore
/// the integer scan scores and the candidate pool — are bitwise
/// identical across scalar/SSE2/AVX2 builds.
///
/// # Non-finite entries
///
/// Non-finite values are excluded from the per-dimension range; at
/// encode time NaN and -inf map to code 0 and +inf to code 255. The
/// code-space score of such an item is an arbitrary finite
/// approximation — and the item's *true* score can be ±inf or NaN, i.e.
/// pinned to the very top or bottom of the RankBetter order regardless
/// of what its codes say. Such rows therefore cannot be trusted to the
/// approximate pool at all: Encode records them in nonfinite_items()
/// and the SQ8 scans force every scanned one into the exact float32
/// re-rank (retrieval/index.h), where its true score places it.
///
/// # Reconstruction error bound
///
/// For finite x in column d, DecodeRow returns x_hat with
///
///   |x - x_hat| <= delta[d] / 2  +  eps_f * (|vmin[d]| + 255 * delta[d])
///
/// — the half-step quantization error plus one float rounding of the
/// decode affine (eps_f = 2^-24). tests/quantize_test.cc verifies the
/// bound over every factorizable model's export.
class QuantizedItemFactors {
 public:
  /// Quantizes an export. Requires factors.items.cols() <= kMaxSq8Dim
  /// (KGREC_CHECK — programmer error, not data error).
  static QuantizedItemFactors Encode(const ItemFactors& factors);

  size_t num_items() const { return num_items_; }
  size_t dim() const { return dim_; }
  ScoreKernel kernel() const { return kernel_; }

  /// Row-major u8 codes of item `item`.
  const uint8_t* Codes(size_t item) const { return codes_.data() + item * dim_; }

  /// Per-dimension grid origin (the "zero point" in affine-quantization
  /// terms) and step size.
  std::span<const float> grid_min() const { return {vmin_.data(), dim_}; }
  std::span<const float> grid_delta() const { return {delta_.data(), dim_}; }

  /// Dequantizes item `item` into `out` (size dim()).
  void DecodeRow(size_t item, std::span<float> out) const;

  /// Items with at least one non-finite factor entry, ascending. Their
  /// true scores can be non-finite, so the SQ8 scans route every scanned
  /// one straight to the exact re-rank instead of the approximate pool.
  std::span<const int32_t> nonfinite_items() const {
    return {nonfinite_items_.data(), nonfinite_items_.size()};
  }

  /// Prepares `query` (size dim()) for the integer scan, reusing `out`'s
  /// buffers. Non-finite query entries are treated as 0 for the
  /// approximate scan (the exact re-rank sees the original query).
  ///
  /// kDot: the exact score decomposes over the grid as
  ///   Dot(q, decode(c)) = sum_d q[d]*vmin[d] + sum_d (q[d]*delta[d])*c[d]
  /// so with w[d] = q[d]*delta[d] quantized symmetrically to the 15-bit
  /// integer W[d] at scale s = max|w|/16256 and split W = 128*hi + lo
  /// (Sq8Query), approx = bias + s * (128*DotI8(hi,c) + DotI8(lo,c)) —
  /// monotone in the combined integer dot, exact up to the 15-bit
  /// rounding of w.
  ///
  /// kNegSquaredL2: the query is encoded onto the item grid and
  /// approx = -SquaredDistanceI8(q8, c). With the shared step the
  /// code-space distance is proportional to the grid distance, so the
  /// only ordering error left is the half-step rounding of items and
  /// query; the residual recall cost is measured by
  /// bench/retrieval_scaling (recall_before_rerank) and the exact
  /// re-rank restores the order.
  void PrepareQuery(std::span<const float> query, Sq8Query* out) const;

  /// Approximate score of one candidate from its combined integer scan
  /// value — the expansion Query uses when filling the candidate pool.
  /// kDot combines the two dual-kernel outputs as 128*hi_dot + lo_dot (the
  /// caller does this in int64: |combined| can reach 128 * 2^30); the
  /// int64 -> float conversion is one IEEE rounding, identical across
  /// builds.
  float ApproxScore(const Sq8Query& q, int64_t integer_score) const {
    if (kernel_ == ScoreKernel::kDot) {
      return q.bias + q.scale * static_cast<float>(integer_score);
    }
    return -static_cast<float>(integer_score);
  }

  /// Bytes of the code matrix (the scan working set).
  size_t code_bytes() const { return codes_.size(); }
  /// Bytes of the grid vectors (vmin + delta, resident but not scanned).
  size_t grid_bytes() const {
    return (vmin_.size() + delta_.size()) * sizeof(float);
  }

 private:
  ScoreKernel kernel_ = ScoreKernel::kDot;
  size_t num_items_ = 0;
  size_t dim_ = 0;
  AlignedVector<uint8_t> codes_;  // [num_items, dim], row-major
  std::vector<float> vmin_;       // [dim]
  std::vector<float> delta_;      // [dim]
  std::vector<int32_t> nonfinite_items_;  // ascending
};

}  // namespace kgrec::retrieval

#endif  // KGREC_RETRIEVAL_QUANTIZE_H_
