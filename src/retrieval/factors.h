#ifndef KGREC_RETRIEVAL_FACTORS_H_
#define KGREC_RETRIEVAL_FACTORS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "math/dense.h"

namespace kgrec {
namespace retrieval {

/// The two scoring forms a factorizable model may export (DESIGN §10).
/// Both are evaluated by the shared SIMD kernels (math/kernels.h), so a
/// score computed through an exported (query, item-row) pair is bitwise
/// identical however the rows are batched or blocked:
///  * kDot          — score = Dot(query, item_row); inner-product models
///                    (MF/BPR-MF, CKE, KGAT, Hete-MF/CF, DistMult).
///  * kNegSquaredL2 — score = -SquaredDistance(query, item_row); the
///                    translation-distance KGE family (TransE/H/R/D),
///                    where nearest-in-relation-space means best.
enum class ScoreKernel { kDot, kNegSquaredL2 };

const char* ScoreKernelName(ScoreKernel kernel);

/// score of one (query, item_row) pair under the kernel.
float KernelScore(ScoreKernel kernel, const float* query, const float* row,
                  size_t dim);

/// Batched form over `count` row pointers; out[i] is **bitwise** equal to
/// KernelScore(kernel, query, rows[i], dim) — the kDot path delegates to
/// kernels::DotBatch, whose per-output contract is exactly kernels::Dot.
void KernelScoreBatch(ScoreKernel kernel, const float* query,
                      const float* const* rows, size_t count, size_t dim,
                      float* out);

/// A materialized item-side factorization: one row per catalog item, in
/// item-id order. Produced by DotProductFactors::ExportItemFactors() and
/// owned by the index built over it — the index's lifetime is therefore
/// independent of the model's internal tensors.
struct ItemFactors {
  ScoreKernel kernel = ScoreKernel::kDot;
  Matrix items;  // [num_items, dim]
};

/// Sorted, deduplicated, in-range copy of an exclusion list — the
/// canonical form every retrieval selection consumes (binary-search /
/// merge-walk exclusion instead of the old -inf sentinel overwrite).
std::vector<int32_t> SanitizeExclude(std::span<const int32_t> exclude,
                                     int32_t num_items);

}  // namespace retrieval

/// The embedding-export surface of a factorizable recommender: a model
/// whose score is f(u, v) = kernel(q_u, x_v) for a per-user query vector
/// q_u and a per-item factor row x_v.
///
/// Contract (locked down by retrieval_test and the retrieval_scaling
/// smoke gate): for a fitted (or checkpoint-restored) model,
///
///   KernelScore(factor_kernel(), q, X.Row(v), factor_dim())
///     == Score(u, v)   **bitwise**,
///
/// where q is FillUserQuery(u)'s output and X is ExportItemFactors()'s
/// matrix. This is what makes an index an exact drop-in for the
/// exhaustive serve path: a BruteForceIndex scan over the export is
/// bitwise `ScoreAll` + `TopKScored`.
///
/// Implemented alongside Recommender (multiple inheritance); query it
/// through the registry helpers AsFactorizable() / IsFactorizable().
class DotProductFactors {
 public:
  virtual ~DotProductFactors() = default;

  /// Dimensionality of the exported queries and item rows.
  virtual size_t factor_dim() const = 0;

  /// Which kernel evaluates an exported (query, row) pair.
  virtual retrieval::ScoreKernel factor_kernel() const = 0;

  /// Materializes the item-side factors (a copy — safe to hold after the
  /// model is gone). Only valid after Fit()/Load().
  virtual retrieval::ItemFactors ExportItemFactors() const = 0;

  /// Writes user `user`'s query vector into `out` (size factor_dim()).
  virtual void FillUserQuery(int32_t user, std::span<float> out) const = 0;
};

}  // namespace kgrec

#endif  // KGREC_RETRIEVAL_FACTORS_H_
