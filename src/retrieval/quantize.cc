#include "retrieval/quantize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace kgrec::retrieval {
namespace {

/// Encodes one sanitized value onto the column grid. `x` must be finite;
/// the non-finite policy (NaN/-inf -> 0, +inf -> 255) is applied by the
/// callers before the affine.
uint8_t EncodeFinite(double x, double vmin, double delta) {
  if (delta == 0.0) return 0;
  int64_t code = RoundHalfEvenToInt((x - vmin) / delta);
  if (code < 0) code = 0;
  if (code > 255) code = 255;
  return static_cast<uint8_t>(code);
}

uint8_t EncodeValue(float x, double vmin, double delta) {
  if (std::isnan(x)) return 0;
  if (std::isinf(x)) return x > 0.0f ? 255 : 0;
  return EncodeFinite(static_cast<double>(x), vmin, delta);
}

}  // namespace

int64_t RoundHalfEvenToInt(double v) {
  const double f = std::floor(v);
  const double frac = v - f;
  const int64_t base = static_cast<int64_t>(f);
  if (frac > 0.5) return base + 1;
  if (frac < 0.5) return base;
  return (base % 2 == 0) ? base : base + 1;  // exact tie: toward even
}

QuantizedItemFactors QuantizedItemFactors::Encode(const ItemFactors& factors) {
  const size_t n = factors.items.rows();
  const size_t dim = factors.items.cols();
  KGREC_CHECK_LE(dim, kMaxSq8Dim);

  QuantizedItemFactors q;
  q.kernel_ = factors.kernel;
  q.num_items_ = n;
  q.dim_ = dim;
  q.vmin_.assign(dim, 0.0f);
  q.delta_.assign(dim, 0.0f);
  q.codes_.assign(n * dim, 0);

  // Pass 1: per-dimension finite range. Columns with no finite entry (or
  // a constant one) keep delta 0 — every code decodes to vmin.
  std::vector<float> vmax(dim, 0.0f);
  std::vector<bool> seen(dim, false);
  for (size_t i = 0; i < n; ++i) {
    const float* row = factors.items.Row(i);
    for (size_t d = 0; d < dim; ++d) {
      const float x = row[d];
      if (!std::isfinite(x)) continue;
      if (!seen[d]) {
        seen[d] = true;
        q.vmin_[d] = x;
        vmax[d] = x;
      } else {
        if (x < q.vmin_[d]) q.vmin_[d] = x;
        if (x > vmax[d]) vmax[d] = x;
      }
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    // The range arithmetic runs in double so delta is the correctly
    // rounded float of (vmax - vmin) / 255 even for extreme ranges.
    q.delta_[d] = static_cast<float>(
        (static_cast<double>(vmax[d]) - static_cast<double>(q.vmin_[d])) /
        255.0);
  }
  if (factors.kernel == ScoreKernel::kNegSquaredL2) {
    // Shared step (quantize.h): the code-space distance must be
    // proportional to the grid distance, so every column uses the widest
    // column's delta. vmin stays per-dimension.
    float shared = 0.0f;
    for (size_t d = 0; d < dim; ++d) shared = std::max(shared, q.delta_[d]);
    for (size_t d = 0; d < dim; ++d) q.delta_[d] = shared;
  }

  // Pass 2: encode every entry against the *stored* (float) grid, so the
  // reconstruction bound is relative to exactly what DecodeRow computes.
  // Rows with any non-finite entry are recorded: their true scores can
  // be non-finite, so the scans bypass the approximate pool for them.
  for (size_t i = 0; i < n; ++i) {
    const float* row = factors.items.Row(i);
    uint8_t* out = q.codes_.data() + i * dim;
    bool row_finite = true;
    for (size_t d = 0; d < dim; ++d) {
      if (!std::isfinite(row[d])) row_finite = false;
      out[d] = EncodeValue(row[d], static_cast<double>(q.vmin_[d]),
                           static_cast<double>(q.delta_[d]));
    }
    if (!row_finite) q.nonfinite_items_.push_back(static_cast<int32_t>(i));
  }
  return q;
}

void QuantizedItemFactors::DecodeRow(size_t item, std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), dim_);
  const uint8_t* codes = Codes(item);
  for (size_t d = 0; d < dim_; ++d) {
    out[d] = vmin_[d] + delta_[d] * static_cast<float>(codes[d]);
  }
}

void QuantizedItemFactors::PrepareQuery(std::span<const float> query,
                                        Sq8Query* out) const {
  KGREC_CHECK_EQ(query.size(), dim_);
  if (kernel_ == ScoreKernel::kNegSquaredL2) {
    out->weights.clear();
    out->codes.resize(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      out->codes[d] = EncodeValue(query[d], static_cast<double>(vmin_[d]),
                                  static_cast<double>(delta_[d]));
    }
    out->scale = 0.0f;
    out->bias = 0.0f;
    return;
  }

  // kDot. Two passes over the dimensions (no scratch buffer): the first
  // finds the symmetric-quantization scale of w[d] = q[d] * delta[d] and
  // accumulates the grid-origin bias, the second emits the hi/lo i8
  // weight split (Sq8Query). Sequential double accumulation — fixed
  // order, no SIMD — keeps the prepared query bitwise identical across
  // builds.
  out->codes.clear();
  out->weights.resize(dim_);
  out->weights_lo.resize(dim_);
  double max_w = 0.0;
  double bias = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    const float qf = query[d];
    const double qd = std::isfinite(qf) ? static_cast<double>(qf) : 0.0;
    const double w = qd * static_cast<double>(delta_[d]);
    const double mag = std::fabs(w);
    if (mag > max_w) max_w = mag;
    bias += qd * static_cast<double>(vmin_[d]);
  }
  if (max_w == 0.0) {
    for (size_t d = 0; d < dim_; ++d) {
      out->weights[d] = 0;
      out->weights_lo[d] = 0;
    }
    out->scale = 0.0f;
    out->bias = static_cast<float>(bias);
    return;
  }
  const double qscale = max_w / 16256.0;
  for (size_t d = 0; d < dim_; ++d) {
    const float qf = query[d];
    const double qd = std::isfinite(qf) ? static_cast<double>(qf) : 0.0;
    const double w = qd * static_cast<double>(delta_[d]);
    int64_t code = RoundHalfEvenToInt(w / qscale);
    if (code < -16256) code = -16256;
    if (code > 16256) code = 16256;
    // W = 128 * hi + lo with hi = floor((W + 64) / 128): hi lands in
    // [-127, 127] (so 16256 = 127 * 128 is the scale anchor) and lo in
    // [-64, 63] — both valid i8 kernel inputs. C++20 defines >> on a
    // negative value as the arithmetic (floor) shift this needs.
    const int64_t hi = (code + 64) >> 7;
    const int64_t lo = code - (hi << 7);
    out->weights[d] = static_cast<int8_t>(hi);
    out->weights_lo[d] = static_cast<int8_t>(lo);
  }
  out->scale = static_cast<float>(qscale);
  out->bias = static_cast<float>(bias);
}

}  // namespace kgrec::retrieval
