#ifndef KGREC_EVAL_PROTOCOL_H_
#define KGREC_EVAL_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

#include "core/recommender.h"
#include "data/interactions.h"
#include "math/rng.h"

namespace kgrec {

/// Knobs of the evaluation protocols. The defaults reproduce the
/// library-wide convention (K = 10, 50 sampled negatives, serial).
///
/// Determinism contract: for a fixed `seed`, both evaluators produce
/// **bitwise identical** metrics for every value of `num_threads`.
/// Negatives are drawn from per-work-unit counter-based RNG streams
/// (`Rng::Fork`): EvaluateTopK forks one stream per user id, EvaluateCtr
/// one stream per test-interaction index, so the sampled candidates never
/// depend on the order in which threads pick up work. Per-user partial
/// metrics are written into preallocated slots and reduced serially in
/// user order, so even floating-point summation order is fixed.
///
/// Both evaluators score candidates through `Recommender::ScoreItems`
/// (one batched call per user); its bitwise-equivalence contract with
/// `Score` keeps metrics identical to the historical per-item loop.
struct EvalOptions {
  /// Worker threads for the per-user / per-interaction loops. 1 = run
  /// inline on the caller's thread; values above 1 use a ThreadPool.
  size_t num_threads = 1;
  /// Sampled negatives per user in the top-K candidate pool.
  size_t num_negatives = 50;
  /// Cutoff of the @K ranking metrics.
  size_t k = 10;
  /// Root seed of the per-unit RNG streams.
  uint64_t seed = 0x5eedULL;
};

/// Click-through-rate style evaluation: for every test interaction a
/// random non-interacted item is paired as a negative (1:1), the model
/// scores both, and threshold-free / threshold metrics are computed.
/// A pair is skipped (not scored, not counted) only when the user has
/// interacted with every item in the catalog, i.e. no valid negative
/// exists.
struct CtrMetrics {
  double auc = 0.0;
  double accuracy = 0.0;
  double f1 = 0.0;
  /// Number of evaluated (positive, negative) pairs — equal to the number
  /// of test interactions minus any skipped pairs. (Historically this
  /// reported 2× the pair count, the raw score-vector length.)
  size_t num_pairs = 0;
};

CtrMetrics EvaluateCtr(const Recommender& model, const InteractionDataset& train,
                       const InteractionDataset& test,
                       const EvalOptions& options = {});

/// Legacy entry point: consumes one draw from `rng` to derive the stream
/// seed, then forwards to the options-based overload (serial).
CtrMetrics EvaluateCtr(const Recommender& model, const InteractionDataset& train,
                       const InteractionDataset& test, Rng& rng);

/// Top-K evaluation: for every user with test interactions, rank that
/// user's test items against `num_negatives` sampled non-interacted items
/// (the standard sampled-candidate protocol) and average ranking metrics.
struct TopKMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double hit_rate = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  size_t num_users = 0;
};

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test,
                         const EvalOptions& options = {});

/// Legacy entry point: consumes one draw from `rng` to derive the stream
/// seed, then forwards to the options-based overload (serial).
TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test, size_t k,
                         size_t num_negatives, Rng& rng);

}  // namespace kgrec

#endif  // KGREC_EVAL_PROTOCOL_H_
