#ifndef KGREC_EVAL_PROTOCOL_H_
#define KGREC_EVAL_PROTOCOL_H_

#include <cstdint>

#include "core/recommender.h"
#include "data/interactions.h"
#include "math/rng.h"

namespace kgrec {

/// Click-through-rate style evaluation: for every test interaction a
/// random non-interacted item is paired as a negative (1:1), the model
/// scores both, and threshold-free / threshold metrics are computed.
struct CtrMetrics {
  double auc = 0.0;
  double accuracy = 0.0;
  double f1 = 0.0;
  size_t num_pairs = 0;
};

CtrMetrics EvaluateCtr(const Recommender& model, const InteractionDataset& train,
                       const InteractionDataset& test, Rng& rng);

/// Top-K evaluation: for every user with test interactions, rank that
/// user's test items against `num_negatives` sampled non-interacted items
/// (the standard sampled-candidate protocol) and average ranking metrics.
struct TopKMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double hit_rate = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  size_t num_users = 0;
};

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test, size_t k,
                         size_t num_negatives, Rng& rng);

}  // namespace kgrec

#endif  // KGREC_EVAL_PROTOCOL_H_
