#include "eval/protocol.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"
#include "core/thread_pool.h"
#include "eval/metrics.h"
#include "math/topk.h"

namespace kgrec {
namespace {

// Distinct stream families so that EvaluateCtr and EvaluateTopK called
// with the same root seed do not replay each other's negatives.
constexpr uint64_t kCtrStreamSalt = 0x43545220535452ULL;   // "CTR STR"
constexpr uint64_t kTopKStreamSalt = 0x544f504b53545230ULL;  // "TOPKSTR0"

/// Per-user accumulator slot of the top-K protocol. Slots are written by
/// exactly one ParallelFor chunk and reduced serially afterwards, so the
/// reduction order (and therefore the floating-point result) is the same
/// for every thread count.
struct UserTopK {
  double precision = 0.0;
  double recall = 0.0;
  double hit_rate = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  bool counted = false;
};

/// Draws the CTR negative for one test interaction from its RNG stream.
/// Consumes the stream exactly like the historical sampler (one draw plus
/// up to 50 rejection redraws against the test set), then — instead of
/// silently accepting a test positive as a "negative", which inflates AUC
/// on dense worlds — falls back to a deterministic exhaustive scan over
/// the item catalog. Returns -1 when the user has interacted with every
/// item (train + test), in which case the pair must be skipped.
int32_t SampleCtrNegative(const NegativeSampler& sampler,
                          const InteractionDataset& train,
                          const InteractionDataset& test, int32_t user,
                          Rng& stream) {
  int32_t neg = sampler.Sample(user, stream);
  for (int attempt = 0; attempt < 50 && test.Contains(user, neg); ++attempt) {
    neg = sampler.Sample(user, stream);
  }
  if (!test.Contains(user, neg)) return neg;
  // Rejection exhausted: scan every item once, starting after the last
  // rejected draw so the fallback stays a pure function of the stream.
  const int32_t num_items = train.num_items();
  for (int32_t step = 1; step <= num_items; ++step) {
    const int32_t candidate = (neg + step) % num_items;
    if (!train.Contains(user, candidate) && !test.Contains(user, candidate)) {
      return candidate;
    }
  }
  return -1;
}

}  // namespace

CtrMetrics EvaluateCtr(const Recommender& model,
                       const InteractionDataset& train,
                       const InteractionDataset& test,
                       const EvalOptions& options) {
  // Negatives must avoid both train and test positives: sample against
  // the union via rejection on both sets.
  NegativeSampler sampler(train);
  const std::vector<Interaction>& pairs = test.interactions();
  const Rng base(options.seed);
  // Group the test interactions by user so every user's positives and
  // negatives go through one ScoreItems() call: models with a batched
  // override pay the user-side precompute once per user instead of once
  // per Score(). Slots stay indexed by interaction, so the scores land in
  // the same positions as the historical per-pair loop.
  const size_t num_users = static_cast<size_t>(test.num_users());
  std::vector<std::vector<size_t>> by_user(num_users);
  for (size_t i = 0; i < pairs.size(); ++i) {
    by_user[pairs[i].user].push_back(i);
  }
  std::vector<float> scores(2 * pairs.size());
  std::vector<char> valid(pairs.size(), 0);
  const Status status = ParallelFor(
      num_users, options.num_threads,
      [&](size_t begin, size_t end) -> Status {
        std::vector<int32_t> candidates;
        std::vector<size_t> kept;
        for (size_t uu = begin; uu < end; ++uu) {
          const std::vector<size_t>& user_pairs = by_user[uu];
          if (user_pairs.empty()) continue;
          candidates.clear();
          kept.clear();
          for (size_t i : user_pairs) {
            const Interaction& x = pairs[i];
            // One counter-based stream per test pair: negative i is a
            // pure function of (seed, i), never of thread scheduling or
            // of the by-user grouping.
            Rng stream = base.Fork(kCtrStreamSalt ^ static_cast<uint64_t>(i));
            const int32_t neg =
                SampleCtrNegative(sampler, train, test, x.user, stream);
            if (neg < 0) continue;  // user exhausted the catalog
            candidates.push_back(x.item);
            candidates.push_back(neg);
            kept.push_back(i);
          }
          if (kept.empty()) continue;
          const std::vector<float> user_scores =
              model.ScoreItems(static_cast<int32_t>(uu), candidates);
          for (size_t k = 0; k < kept.size(); ++k) {
            const size_t i = kept[k];
            scores[2 * i] = user_scores[2 * k];
            scores[2 * i + 1] = user_scores[2 * k + 1];
            valid[i] = 1;
          }
        }
        return Status::OK();
      });
  KGREC_CHECK(status.ok());
  // Serial compaction in interaction order: when nothing is skipped this
  // reproduces the historical (pos, neg, pos, neg, ...) layout exactly,
  // keeping the metric reduction bitwise stable.
  std::vector<float> kept_scores;
  std::vector<int> kept_labels;
  kept_scores.reserve(2 * pairs.size());
  kept_labels.reserve(2 * pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (!valid[i]) continue;
    kept_scores.push_back(scores[2 * i]);
    kept_labels.push_back(1);
    kept_scores.push_back(scores[2 * i + 1]);
    kept_labels.push_back(0);
  }
  CtrMetrics out;
  out.num_pairs = kept_scores.size() / 2;
  if (kept_scores.empty()) return out;
  out.auc = Auc(kept_scores, kept_labels);
  out.accuracy = Accuracy(kept_scores, kept_labels);
  out.f1 = F1Score(kept_scores, kept_labels);
  return out;
}

CtrMetrics EvaluateCtr(const Recommender& model,
                       const InteractionDataset& train,
                       const InteractionDataset& test, Rng& rng) {
  EvalOptions options;
  options.seed = rng.NextUint64();
  return EvaluateCtr(model, train, test, options);
}

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test,
                         const EvalOptions& options) {
  NegativeSampler sampler(train);
  const size_t num_users = static_cast<size_t>(test.num_users());
  const Rng base(options.seed);
  std::vector<UserTopK> per_user(num_users);
  const Status status = ParallelFor(
      num_users, options.num_threads,
      [&](size_t begin, size_t end) -> Status {
        for (size_t uu = begin; uu < end; ++uu) {
          const int32_t u = static_cast<int32_t>(uu);
          const auto& positives = test.UserItems(u);
          if (positives.empty()) continue;
          // The user's negatives come from Fork(user_id): the same stream
          // regardless of which thread evaluates the user.
          Rng stream = base.Fork(kTopKStreamSalt ^ static_cast<uint64_t>(uu));
          std::unordered_set<int32_t> relevant(positives.begin(),
                                               positives.end());
          // Candidate pool: test positives + sampled negatives not in
          // train/test for this user.
          std::vector<int32_t> candidates(positives.begin(), positives.end());
          std::unordered_set<int32_t> in_pool(relevant.begin(),
                                              relevant.end());
          size_t guard = 0;
          while (candidates.size() <
                     positives.size() + options.num_negatives &&
                 guard++ < options.num_negatives * 20) {
            const int32_t neg = sampler.Sample(u, stream);
            if (test.Contains(u, neg)) continue;
            if (!in_pool.insert(neg).second) continue;
            candidates.push_back(neg);
          }
          const std::vector<float> scores = model.ScoreItems(u, candidates);
          std::vector<int32_t> order = TopKIndices(scores, candidates.size());
          std::vector<int32_t> ranked(order.size());
          for (size_t i = 0; i < order.size(); ++i) {
            ranked[i] = candidates[order[i]];
          }
          UserTopK& slot = per_user[uu];
          slot.precision = PrecisionAtK(ranked, relevant, options.k);
          slot.recall = RecallAtK(ranked, relevant, options.k);
          slot.hit_rate = HitRateAtK(ranked, relevant, options.k);
          slot.ndcg = NdcgAtK(ranked, relevant, options.k);
          slot.mrr = ReciprocalRank(ranked, relevant);
          slot.counted = true;
        }
        return Status::OK();
      });
  KGREC_CHECK(status.ok());
  // Serial reduction in user order: the summation order is identical for
  // every thread count, keeping the averages bitwise stable.
  TopKMetrics out;
  for (const UserTopK& slot : per_user) {
    if (!slot.counted) continue;
    out.precision += slot.precision;
    out.recall += slot.recall;
    out.hit_rate += slot.hit_rate;
    out.ndcg += slot.ndcg;
    out.mrr += slot.mrr;
    ++out.num_users;
  }
  if (out.num_users > 0) {
    out.precision /= out.num_users;
    out.recall /= out.num_users;
    out.hit_rate /= out.num_users;
    out.ndcg /= out.num_users;
    out.mrr /= out.num_users;
  }
  return out;
}

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test, size_t k,
                         size_t num_negatives, Rng& rng) {
  EvalOptions options;
  options.k = k;
  options.num_negatives = num_negatives;
  options.seed = rng.NextUint64();
  return EvaluateTopK(model, train, test, options);
}

}  // namespace kgrec
