#include "eval/protocol.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"
#include "core/thread_pool.h"
#include "eval/metrics.h"
#include "math/topk.h"

namespace kgrec {
namespace {

// Distinct stream families so that EvaluateCtr and EvaluateTopK called
// with the same root seed do not replay each other's negatives.
constexpr uint64_t kCtrStreamSalt = 0x43545220535452ULL;   // "CTR STR"
constexpr uint64_t kTopKStreamSalt = 0x544f504b53545230ULL;  // "TOPKSTR0"

/// Per-user accumulator slot of the top-K protocol. Slots are written by
/// exactly one ParallelFor chunk and reduced serially afterwards, so the
/// reduction order (and therefore the floating-point result) is the same
/// for every thread count.
struct UserTopK {
  double precision = 0.0;
  double recall = 0.0;
  double hit_rate = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  bool counted = false;
};

}  // namespace

CtrMetrics EvaluateCtr(const Recommender& model,
                       const InteractionDataset& train,
                       const InteractionDataset& test,
                       const EvalOptions& options) {
  // Negatives must avoid both train and test positives: sample against
  // the union via rejection on both sets.
  NegativeSampler sampler(train);
  const std::vector<Interaction>& pairs = test.interactions();
  const Rng base(options.seed);
  std::vector<float> scores(2 * pairs.size());
  std::vector<int> labels(2 * pairs.size());
  const Status status = ParallelFor(
      pairs.size(), options.num_threads,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const Interaction& x = pairs[i];
          // One counter-based stream per test pair: negative i is a pure
          // function of (seed, i), never of thread scheduling.
          Rng stream = base.Fork(kCtrStreamSalt ^ static_cast<uint64_t>(i));
          scores[2 * i] = model.Score(x.user, x.item);
          labels[2 * i] = 1;
          int32_t neg = sampler.Sample(x.user, stream);
          for (int attempt = 0; attempt < 50 && test.Contains(x.user, neg);
               ++attempt) {
            neg = sampler.Sample(x.user, stream);
          }
          scores[2 * i + 1] = model.Score(x.user, neg);
          labels[2 * i + 1] = 0;
        }
        return Status::OK();
      });
  KGREC_CHECK(status.ok());
  CtrMetrics out;
  out.num_pairs = scores.size();
  if (scores.empty()) return out;
  out.auc = Auc(scores, labels);
  out.accuracy = Accuracy(scores, labels);
  out.f1 = F1Score(scores, labels);
  return out;
}

CtrMetrics EvaluateCtr(const Recommender& model,
                       const InteractionDataset& train,
                       const InteractionDataset& test, Rng& rng) {
  EvalOptions options;
  options.seed = rng.NextUint64();
  return EvaluateCtr(model, train, test, options);
}

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test,
                         const EvalOptions& options) {
  NegativeSampler sampler(train);
  const size_t num_users = static_cast<size_t>(test.num_users());
  const Rng base(options.seed);
  std::vector<UserTopK> per_user(num_users);
  const Status status = ParallelFor(
      num_users, options.num_threads,
      [&](size_t begin, size_t end) -> Status {
        for (size_t uu = begin; uu < end; ++uu) {
          const int32_t u = static_cast<int32_t>(uu);
          const auto& positives = test.UserItems(u);
          if (positives.empty()) continue;
          // The user's negatives come from Fork(user_id): the same stream
          // regardless of which thread evaluates the user.
          Rng stream = base.Fork(kTopKStreamSalt ^ static_cast<uint64_t>(uu));
          std::unordered_set<int32_t> relevant(positives.begin(),
                                               positives.end());
          // Candidate pool: test positives + sampled negatives not in
          // train/test for this user.
          std::vector<int32_t> candidates(positives.begin(), positives.end());
          std::unordered_set<int32_t> in_pool(relevant.begin(),
                                              relevant.end());
          size_t guard = 0;
          while (candidates.size() <
                     positives.size() + options.num_negatives &&
                 guard++ < options.num_negatives * 20) {
            const int32_t neg = sampler.Sample(u, stream);
            if (test.Contains(u, neg)) continue;
            if (!in_pool.insert(neg).second) continue;
            candidates.push_back(neg);
          }
          std::vector<float> scores(candidates.size());
          for (size_t i = 0; i < candidates.size(); ++i) {
            scores[i] = model.Score(u, candidates[i]);
          }
          std::vector<int32_t> order = TopKIndices(scores, candidates.size());
          std::vector<int32_t> ranked(order.size());
          for (size_t i = 0; i < order.size(); ++i) {
            ranked[i] = candidates[order[i]];
          }
          UserTopK& slot = per_user[uu];
          slot.precision = PrecisionAtK(ranked, relevant, options.k);
          slot.recall = RecallAtK(ranked, relevant, options.k);
          slot.hit_rate = HitRateAtK(ranked, relevant, options.k);
          slot.ndcg = NdcgAtK(ranked, relevant, options.k);
          slot.mrr = ReciprocalRank(ranked, relevant);
          slot.counted = true;
        }
        return Status::OK();
      });
  KGREC_CHECK(status.ok());
  // Serial reduction in user order: the summation order is identical for
  // every thread count, keeping the averages bitwise stable.
  TopKMetrics out;
  for (const UserTopK& slot : per_user) {
    if (!slot.counted) continue;
    out.precision += slot.precision;
    out.recall += slot.recall;
    out.hit_rate += slot.hit_rate;
    out.ndcg += slot.ndcg;
    out.mrr += slot.mrr;
    ++out.num_users;
  }
  if (out.num_users > 0) {
    out.precision /= out.num_users;
    out.recall /= out.num_users;
    out.hit_rate /= out.num_users;
    out.ndcg /= out.num_users;
    out.mrr /= out.num_users;
  }
  return out;
}

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test, size_t k,
                         size_t num_negatives, Rng& rng) {
  EvalOptions options;
  options.k = k;
  options.num_negatives = num_negatives;
  options.seed = rng.NextUint64();
  return EvaluateTopK(model, train, test, options);
}

}  // namespace kgrec
