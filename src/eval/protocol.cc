#include "eval/protocol.h"

#include <algorithm>
#include <unordered_set>

#include "eval/metrics.h"
#include "math/topk.h"

namespace kgrec {

CtrMetrics EvaluateCtr(const Recommender& model,
                       const InteractionDataset& train,
                       const InteractionDataset& test, Rng& rng) {
  // Negatives must avoid both train and test positives: sample against
  // the union via rejection on both sets.
  NegativeSampler sampler(train);
  std::vector<float> scores;
  std::vector<int> labels;
  for (const Interaction& x : test.interactions()) {
    scores.push_back(model.Score(x.user, x.item));
    labels.push_back(1);
    int32_t neg = sampler.Sample(x.user, rng);
    for (int attempt = 0; attempt < 50 && test.Contains(x.user, neg);
         ++attempt) {
      neg = sampler.Sample(x.user, rng);
    }
    scores.push_back(model.Score(x.user, neg));
    labels.push_back(0);
  }
  CtrMetrics out;
  out.num_pairs = scores.size();
  if (scores.empty()) return out;
  out.auc = Auc(scores, labels);
  out.accuracy = Accuracy(scores, labels);
  out.f1 = F1Score(scores, labels);
  return out;
}

TopKMetrics EvaluateTopK(const Recommender& model,
                         const InteractionDataset& train,
                         const InteractionDataset& test, size_t k,
                         size_t num_negatives, Rng& rng) {
  NegativeSampler sampler(train);
  TopKMetrics out;
  for (int32_t u = 0; u < test.num_users(); ++u) {
    const auto& positives = test.UserItems(u);
    if (positives.empty()) continue;
    std::unordered_set<int32_t> relevant(positives.begin(), positives.end());
    // Candidate pool: test positives + sampled negatives not in
    // train/test for this user.
    std::vector<int32_t> candidates(positives.begin(), positives.end());
    std::unordered_set<int32_t> in_pool(relevant.begin(), relevant.end());
    size_t guard = 0;
    while (candidates.size() < positives.size() + num_negatives &&
           guard++ < num_negatives * 20) {
      const int32_t neg = sampler.Sample(u, rng);
      if (test.Contains(u, neg)) continue;
      if (!in_pool.insert(neg).second) continue;
      candidates.push_back(neg);
    }
    std::vector<float> scores(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = model.Score(u, candidates[i]);
    }
    std::vector<int32_t> order = TopKIndices(scores, candidates.size());
    std::vector<int32_t> ranked(order.size());
    for (size_t i = 0; i < order.size(); ++i) ranked[i] = candidates[order[i]];
    out.precision += PrecisionAtK(ranked, relevant, k);
    out.recall += RecallAtK(ranked, relevant, k);
    out.hit_rate += HitRateAtK(ranked, relevant, k);
    out.ndcg += NdcgAtK(ranked, relevant, k);
    out.mrr += ReciprocalRank(ranked, relevant);
    ++out.num_users;
  }
  if (out.num_users > 0) {
    out.precision /= out.num_users;
    out.recall /= out.num_users;
    out.hit_rate /= out.num_users;
    out.ndcg /= out.num_users;
    out.mrr /= out.num_users;
  }
  return out;
}

}  // namespace kgrec
