#ifndef KGREC_EVAL_METRICS_H_
#define KGREC_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace kgrec {

/// Area under the ROC curve for binary labels and real scores. Ties are
/// handled by the rank-sum (Mann-Whitney) formulation. Returns 0.5 when a
/// class is empty.
double Auc(const std::vector<float>& scores, const std::vector<int>& labels);

/// Accuracy of thresholding each score at the batch's (lower) median.
/// Model scores are uncalibrated, so a fixed cut at 0 degenerates to the
/// majority class for models whose scores are all-positive (popularity
/// counts) or all-negative (hinge losses); the median split is
/// scale-invariant and comparable across models.
double Accuracy(const std::vector<float>& scores,
                const std::vector<int>& labels);

/// F1 of the positive class at the batch-median threshold (see Accuracy).
double F1Score(const std::vector<float>& scores,
               const std::vector<int>& labels);

/// Precision@K for one ranked list:
/// |top-K ∩ relevant| / min(K, |ranked|). The denominator counts items
/// actually ranked, so short candidate pools are not penalized for slots
/// that never existed.
double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::unordered_set<int32_t>& relevant, size_t k);

/// Recall@K for one ranked list: |top-K ∩ relevant| / |relevant|.
double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::unordered_set<int32_t>& relevant, size_t k);

/// Hit-rate@K: 1 if any relevant item appears in the top K.
double HitRateAtK(const std::vector<int32_t>& ranked,
                  const std::unordered_set<int32_t>& relevant, size_t k);

/// NDCG@K with binary relevance.
double NdcgAtK(const std::vector<int32_t>& ranked,
               const std::unordered_set<int32_t>& relevant, size_t k);

/// Reciprocal rank of the first relevant item (0 if none).
double ReciprocalRank(const std::vector<int32_t>& ranked,
                      const std::unordered_set<int32_t>& relevant);

}  // namespace kgrec

#endif  // KGREC_EVAL_METRICS_H_
