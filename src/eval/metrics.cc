#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace kgrec {
namespace {

/// Classification threshold for Accuracy/F1: the (lower) median score of
/// the batch. Raw model scores are uncalibrated — dot products, path
/// counts, beam values — so a fixed cut at 0 collapses to the majority
/// class whenever a model's scores live on one side of zero (popularity
/// counts are all positive, hinge losses push everything negative). The
/// median splits the batch in half regardless of the score scale, which
/// makes the thresholded metrics comparable across the zoo. Auc is
/// unaffected: it is threshold-free by construction.
float MedianThreshold(std::vector<float> scores) {
  const size_t mid = (scores.size() - 1) / 2;
  std::nth_element(scores.begin(), scores.begin() + mid, scores.end());
  return scores[mid];
}

}  // namespace

double Auc(const std::vector<float>& scores, const std::vector<int>& labels) {
  KGREC_CHECK_EQ(scores.size(), labels.size());
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Average ranks over tie groups.
  std::vector<double> ranks(scores.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  size_t num_pos = 0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += ranks[k];
      ++num_pos;
    }
  }
  const size_t num_neg = labels.size() - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  return (pos_rank_sum - num_pos * (num_pos + 1) / 2.0) /
         (static_cast<double>(num_pos) * num_neg);
}

double Accuracy(const std::vector<float>& scores,
                const std::vector<int>& labels) {
  KGREC_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  const float threshold = MedianThreshold(scores);
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int pred = scores[i] > threshold ? 1 : 0;
    if (pred == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / scores.size();
}

double F1Score(const std::vector<float>& scores,
               const std::vector<int>& labels) {
  KGREC_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  const float threshold = MedianThreshold(scores);
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int pred = scores[i] > threshold ? 1 : 0;
    if (pred == 1 && labels[i] == 1) ++tp;
    if (pred == 1 && labels[i] == 0) ++fp;
    if (pred == 0 && labels[i] == 1) ++fn;
  }
  if (tp == 0) return 0.0;
  const double precision = static_cast<double>(tp) / (tp + fp);
  const double recall = static_cast<double>(tp) / (tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::unordered_set<int32_t>& relevant, size_t k) {
  if (k == 0 || ranked.empty()) return 0.0;
  // Divide by the number of items actually ranked when fewer than k
  // exist: a 3-item pool with 3 hits is perfect precision, not 3/k. This
  // matters for sampled-candidate protocols with small pools.
  const size_t depth = std::min(k, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < depth; ++i) {
    if (relevant.count(ranked[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / depth;
}

double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::unordered_set<int32_t>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    if (relevant.count(ranked[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / relevant.size();
}

double HitRateAtK(const std::vector<int32_t>& ranked,
                  const std::unordered_set<int32_t>& relevant, size_t k) {
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    if (relevant.count(ranked[i]) > 0) return 1.0;
  }
  return 0.0;
}

double NdcgAtK(const std::vector<int32_t>& ranked,
               const std::unordered_set<int32_t>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  double dcg = 0.0;
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    if (relevant.count(ranked[i]) > 0) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double ideal = 0.0;
  const size_t ideal_hits = std::min(k, relevant.size());
  for (size_t i = 0; i < ideal_hits; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

double ReciprocalRank(const std::vector<int32_t>& ranked,
                      const std::unordered_set<int32_t>& relevant) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (relevant.count(ranked[i]) > 0) {
      return 1.0 / (static_cast<double>(i) + 1.0);
    }
  }
  return 0.0;
}

}  // namespace kgrec
