#ifndef KGREC_SERVE_SERVE_HANDLE_H_
#define KGREC_SERVE_SERVE_HANDLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/recommender.h"
#include "core/status.h"

namespace kgrec::serve {

/// An immutable, thread-safe serving view of one fitted model.
///
/// A ServeHandle owns its model through a `const Recommender` pointer, so
/// the whole serve path — Score / ScoreItems / Recommend — is const by
/// construction: a model whose scoring needs to mutate state (a lazy
/// cache, a scratch buffer) does not compile behind a handle. Combined
/// with the zoo-wide audit that no Score path writes through `mutable`
/// members or const_cast (see DESIGN §9), any number of threads may call
/// into one handle concurrently with no locking.
///
/// Handles are created once (from a checkpoint via Open(), or by adopting
/// an already-fitted model via Adopt()) and never modified; "updating" a
/// serving process means building a *new* handle and atomically swapping
/// it in (see Router). They are therefore always held as
/// `std::shared_ptr<const ServeHandle>`: an in-flight request keeps its
/// generation of the model alive however quickly the router moves on.
class ServeHandle {
 public:
  /// Loads the checkpoint at `path` via LoadModel() and wraps it.
  /// `generation` is an opaque tag stamped into every response served from
  /// this handle (the Router assigns consecutive generations; standalone
  /// users may pass anything). Fails with the LoadModel() Status — missing
  /// file, unknown model, fingerprint mismatch, truncation — without
  /// touching `*out`.
  static Status Open(const RecContext& context, const std::string& path,
                     uint64_t generation,
                     std::shared_ptr<const ServeHandle>* out);

  /// Same, but restores into a caller-constructed un-fitted `prototype` —
  /// the path for models trained under non-registry hyper-parameters,
  /// whose checkpoints LoadModel() (correctly) refuses to restore into a
  /// default-config instance. The usual Load() guards still apply: a
  /// wrong model class or stale fingerprint fails with Status.
  static Status Open(const RecContext& context, const std::string& path,
                     std::unique_ptr<Recommender> prototype,
                     uint64_t generation,
                     std::shared_ptr<const ServeHandle>* out);

  /// Wraps a model that was fitted (or loaded) in-process. The context
  /// supplies the catalog size; the handle takes ownership of the model.
  static std::shared_ptr<const ServeHandle> Adopt(
      std::unique_ptr<const Recommender> model, const RecContext& context,
      uint64_t generation);

  const std::string& model_name() const { return model_name_; }
  uint64_t generation() const { return generation_; }
  int32_t num_items() const { return num_items_; }

  /// f(u, v) — forwards to the model's const Score().
  float Score(int32_t user, int32_t item) const;

  /// Batched candidate scoring — forwards to the model's const
  /// ScoreItems(), inheriting its bitwise-equality contract with Score().
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const;

  /// Full-catalog top-k: (item, score) pairs, best-first, ties toward the
  /// smaller item id. Items in `exclude` (e.g. the user's training
  /// history) are removed from the ranking before the cut.
  std::vector<std::pair<int32_t, float>> Recommend(
      int32_t user, size_t k, std::span<const int32_t> exclude = {}) const;

  /// The wrapped model, const-only — the compiler enforces that callers
  /// cannot reach a mutating member function from a serving context.
  const Recommender& model() const { return *model_; }

 private:
  ServeHandle(std::unique_ptr<const Recommender> model,
              const RecContext& context, uint64_t generation);

  std::unique_ptr<const Recommender> model_;
  std::string model_name_;
  int32_t num_items_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace kgrec::serve

#endif  // KGREC_SERVE_SERVE_HANDLE_H_
