#ifndef KGREC_SERVE_SERVE_HANDLE_H_
#define KGREC_SERVE_SERVE_HANDLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/recommender.h"
#include "core/status.h"
#include "retrieval/index.h"
#include "retrieval/two_stage.h"

namespace kgrec::serve {

/// How a handle answers Recommend() (DESIGN §10). Everything except kIvf
/// returns the model's *exact* top-k; the default kAuto never fails and
/// never changes a result — it only swaps the O(catalog)-memory scan for
/// the O(K)-memory index scan when the model's factorization allows it.
struct RetrievalSpec {
  enum class Mode {
    /// Exact index when the model is factorizable, else exhaustive.
    kAuto,
    /// ScoreAll + streaming bounded top-K (any model).
    kExhaustive,
    /// BruteForceIndex over the model's factor export — bitwise the
    /// exhaustive result; requires DotProductFactors.
    kExact,
    /// IvfIndex (approximate, sublinear); requires DotProductFactors.
    kIvf,
    /// `candidate_model`'s index retrieves C candidates, the served
    /// model re-ranks them exactly — the path for non-factorizable
    /// rankers (RippleNet, path RNNs, KTUP).
    kTwoStage,
  };
  Mode mode = Mode::kAuto;
  /// IVF build knobs (kIvf).
  retrieval::IvfConfig ivf;
  /// Stage-1 model (kTwoStage); must implement DotProductFactors.
  std::shared_ptr<const Recommender> candidate_model;
  /// Candidate-generation knobs (kTwoStage) — including its own stage-1
  /// ScanSpec (two_stage.scan).
  retrieval::TwoStageConfig two_stage;
  /// Scan representation for the index modes (kAuto/kExact/kIvf):
  /// float32, or SQ8 — the quantized scan with exact float32 re-rank
  /// (retrieval/index.h ScanSpec). SQ8 keeps the served top-k bitwise
  /// identical to float32 whenever the over-fetched candidate pool
  /// contains the true top-k, which the retrieval gates hold zoo-wide.
  retrieval::ScanSpec scan;
};

/// An immutable, thread-safe serving view of one fitted model.
///
/// A ServeHandle owns its model through a `const Recommender` pointer, so
/// the whole serve path — Score / ScoreItems / Recommend — is const by
/// construction: a model whose scoring needs to mutate state (a lazy
/// cache, a scratch buffer) does not compile behind a handle. Combined
/// with the zoo-wide audit that no Score path writes through `mutable`
/// members or const_cast (see DESIGN §9), any number of threads may call
/// into one handle concurrently with no locking.
///
/// Handles are created once (from a checkpoint via Open(), or by adopting
/// an already-fitted model via Adopt()) and never modified; "updating" a
/// serving process means building a *new* handle and atomically swapping
/// it in (see Router). They are therefore always held as
/// `std::shared_ptr<const ServeHandle>`: an in-flight request keeps its
/// generation of the model alive however quickly the router moves on.
class ServeHandle {
 public:
  /// Loads the checkpoint at `path` via LoadModel() and wraps it.
  /// `generation` is an opaque tag stamped into every response served from
  /// this handle (the Router assigns consecutive generations; standalone
  /// users may pass anything). Fails with the LoadModel() Status — missing
  /// file, unknown model, fingerprint mismatch, truncation — without
  /// touching `*out`.
  static Status Open(const RecContext& context, const std::string& path,
                     uint64_t generation,
                     std::shared_ptr<const ServeHandle>* out);

  /// Same, but restores into a caller-constructed un-fitted `prototype` —
  /// the path for models trained under non-registry hyper-parameters,
  /// whose checkpoints LoadModel() (correctly) refuses to restore into a
  /// default-config instance. The usual Load() guards still apply: a
  /// wrong model class or stale fingerprint fails with Status.
  static Status Open(const RecContext& context, const std::string& path,
                     std::unique_ptr<Recommender> prototype,
                     uint64_t generation,
                     std::shared_ptr<const ServeHandle>* out);

  /// Loads the checkpoint and builds the requested retrieval structure
  /// (index / two-stage) before the handle is published. Fails with the
  /// LoadModel() Status or with FailedPrecondition when the spec demands
  /// a factorization the model does not export.
  static Status Open(const RecContext& context, const std::string& path,
                     uint64_t generation, const RetrievalSpec& spec,
                     std::shared_ptr<const ServeHandle>* out);

  /// Wraps a model that was fitted (or loaded) in-process. The context
  /// supplies the catalog size; the handle takes ownership of the model.
  static std::shared_ptr<const ServeHandle> Adopt(
      std::unique_ptr<const Recommender> model, const RecContext& context,
      uint64_t generation);

  /// Adopt with an explicit retrieval spec. Unlike the kAuto overload
  /// above this can fail (kExact/kIvf on a non-factorizable model,
  /// kTwoStage with a non-factorizable candidate), so it returns Status.
  static Status Adopt(std::unique_ptr<const Recommender> model,
                      const RecContext& context, uint64_t generation,
                      const RetrievalSpec& spec,
                      std::shared_ptr<const ServeHandle>* out);

  const std::string& model_name() const { return model_name_; }
  uint64_t generation() const { return generation_; }
  int32_t num_items() const { return num_items_; }

  /// f(u, v) — forwards to the model's const Score().
  float Score(int32_t user, int32_t item) const;

  /// Batched candidate scoring — forwards to the model's const
  /// ScoreItems(), inheriting its bitwise-equality contract with Score().
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const;

  /// Catalog top-k: (item, score) pairs, best-first under the library
  /// ranking order (math/topk.h RankBetter: higher score first, NaN last,
  /// ties toward the smaller item id). `exclude` (e.g. the user's
  /// training history; any order, duplicates and out-of-range ids
  /// tolerated) never appears in the result — exclusion is a selection
  /// filter, not a score overwrite, so items whose *real* score is -inf
  /// are still ranked and excluded items are never returned.
  ///
  /// Which machinery answers is fixed at construction (RetrievalSpec);
  /// every mode except kIvf returns the model's exact top-k, and the
  /// index modes return it without materializing a catalog-sized score
  /// vector per request.
  std::vector<std::pair<int32_t, float>> Recommend(
      int32_t user, size_t k, std::span<const int32_t> exclude = {}) const;

  /// The wrapped model, const-only — the compiler enforces that callers
  /// cannot reach a mutating member function from a serving context.
  const Recommender& model() const { return *model_; }

  /// "exhaustive", "exact-index", "ivf-index" or "two-stage"; the index
  /// modes append "+sq8" when the scan is quantized (e.g.
  /// "exact-index+sq8").
  const std::string& retrieval_mode() const { return retrieval_mode_; }

  /// The index answering Recommend(), or nullptr on the exhaustive path
  /// (for two-stage, the candidate index).
  const retrieval::ItemIndex* index() const {
    return two_stage_ != nullptr ? &two_stage_->index() : index_.get();
  }

 private:
  ServeHandle(std::unique_ptr<const Recommender> model,
              const RecContext& context, uint64_t generation);

  /// Builds index_/two_stage_ per `spec`; called once before publishing.
  Status BuildRetrieval(const RetrievalSpec& spec);

  std::unique_ptr<const Recommender> model_;
  std::string model_name_;
  int32_t num_items_ = 0;
  uint64_t generation_ = 0;

  /// The model's factor surface when it has one (a view into *model_).
  const DotProductFactors* factors_ = nullptr;
  /// Exactly one of these is set for the index modes; both empty on the
  /// exhaustive path.
  std::unique_ptr<const retrieval::ItemIndex> index_;
  std::unique_ptr<const retrieval::TwoStageRetriever> two_stage_;
  std::string retrieval_mode_ = "exhaustive";
};

}  // namespace kgrec::serve

#endif  // KGREC_SERVE_SERVE_HANDLE_H_
