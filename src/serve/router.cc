#include "serve/router.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "core/check.h"
#include "core/registry.h"
#include <exception>
#include <unordered_map>
#include <utility>

namespace kgrec::serve {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Router::Router(const RouterConfig& config,
               std::shared_ptr<const ServeHandle> initial)
    : config_(config),
      current_(std::move(initial)),
      pool_(config.num_threads) {}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // Every admitted request either sits in pending_ with a drain task
  // scheduled, or is already dispatched — Wait() therefore runs all of
  // them to completion and no future is ever abandoned.
  pool_.Wait();
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers.swap(pending_);
  }
  for (Pending& p : leftovers) {
    if (p.kind == Pending::Kind::kRecommend) {
      RecommendResponse response;
      response.status = Status::Unavailable("router destroyed");
      response.submitted_ns = p.submitted_ns;
      p.rec_promise.set_value(std::move(response));
    } else {
      ScoreResponse response;
      response.status = Status::Unavailable("router destroyed");
      response.submitted_ns = p.submitted_ns;
      p.promise.set_value(std::move(response));
    }
  }
}

std::future<ScoreResponse> Router::Rejected(std::string why) {
  std::promise<ScoreResponse> promise;
  ScoreResponse response;
  response.status = Status::Unavailable(std::move(why));
  promise.set_value(std::move(response));
  return promise.get_future();
}

std::future<RecommendResponse> Router::RejectedRecommend(std::string why) {
  std::promise<RecommendResponse> promise;
  RecommendResponse response;
  response.status = Status::Unavailable(std::move(why));
  promise.set_value(std::move(response));
  return promise.get_future();
}

std::future<ScoreResponse> Router::Submit(ScoreRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    ++stats_.rejected;
    return Rejected("router is stopping");
  }
  if (pending_.size() >= config_.max_queue) {
    ++stats_.rejected;
    return Rejected("admission queue full");
  }
  Pending pending;
  pending.user = request.user;
  pending.items = std::move(request.items);
  pending.submitted_ns = NowNs();
  std::future<ScoreResponse> future = pending.promise.get_future();
  pending_.push_back(std::move(pending));
  ++stats_.accepted;
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    pool_.Submit([this] { DrainLoop(); });
  }
  return future;
}

ScoreResponse Router::ScoreSync(ScoreRequest request) {
  return Submit(std::move(request)).get();
}

std::future<RecommendResponse> Router::SubmitRecommend(
    RecommendRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    ++stats_.rejected;
    return RejectedRecommend("router is stopping");
  }
  if (pending_.size() >= config_.max_queue) {
    ++stats_.rejected;
    return RejectedRecommend("admission queue full");
  }
  Pending pending;
  pending.kind = Pending::Kind::kRecommend;
  pending.user = request.user;
  pending.items = std::move(request.exclude);
  pending.k = request.k;
  pending.submitted_ns = NowNs();
  std::future<RecommendResponse> future = pending.rec_promise.get_future();
  pending_.push_back(std::move(pending));
  ++stats_.accepted;
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    pool_.Submit([this] { DrainLoop(); });
  }
  return future;
}

RecommendResponse Router::RecommendSync(RecommendRequest request) {
  return SubmitRecommend(std::move(request)).get();
}

void Router::DrainLoop() {
  for (;;) {
    std::deque<Pending> stolen;
    std::shared_ptr<const ServeHandle> handle;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.empty()) {
        // A Submit observing drain_scheduled_ == false (under this same
        // lock) schedules a fresh drain, so no request is stranded.
        drain_scheduled_ = false;
        return;
      }
      stolen.swap(pending_);
      handle = current_;
      // Provisional lease: the stolen batch must hold Swap's drain open
      // while the lock is released for grouping — otherwise a swap in
      // that window could observe zero inflight work and return before
      // the batch is served on the old generation. Converted to
      // one-lease-per-group below.
      ++inflight_[handle.get()];
    }
    if (post_steal_hook_) post_steal_hook_();

    // Group the stolen requests by user, preserving arrival order both
    // across groups (first-arrival) and within each group, so the
    // dispatch is deterministic given the admission order. Recommend
    // requests are never coalesced — each carries its own k and
    // exclusion list — so each becomes a singleton group.
    std::vector<std::vector<Pending>> groups;
    std::unordered_map<int32_t, size_t> group_of_user;
    for (Pending& p : stolen) {
      if (p.kind == Pending::Kind::kRecommend) {
        groups.emplace_back();
        groups.back().push_back(std::move(p));
        continue;
      }
      auto [it, inserted] = group_of_user.try_emplace(p.user, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(std::move(p));
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Convert the provisional lease into one lease per group on the
      // handle that will serve it; Swap's drain waits for these to
      // return to zero. `groups` is non-empty (stolen was non-empty),
      // but handle the general case: a zero-group batch releases the
      // provisional lease and wakes the drain.
      auto it = inflight_.find(handle.get());
      KGREC_CHECK(it != inflight_.end());
      it->second += groups.size();
      if (--it->second == 0) {
        inflight_.erase(it);
        drained_cv_.notify_all();
      }
      stats_.batches += groups.size();
      for (const std::vector<Pending>& group : groups) {
        stats_.coalesced += group.size() - 1;
      }
    }
    for (std::vector<Pending>& group : groups) {
      // shared_ptr wrapper because std::function requires a copyable
      // callable and Pending holds a move-only promise.
      auto boxed = std::make_shared<std::vector<Pending>>(std::move(group));
      pool_.Submit([this, handle, boxed] {
        if (boxed->front().kind == Pending::Kind::kRecommend) {
          ServeRecommend(handle, std::move(boxed->front()));
        } else {
          ServeGroup(handle, std::move(*boxed));
        }
      });
    }
  }
}

void Router::ServeGroup(const std::shared_ptr<const ServeHandle>& handle,
                        std::vector<Pending> group) {
  std::vector<int32_t> merged;
  size_t total = 0;
  for (const Pending& p : group) total += p.items.size();
  merged.reserve(total);
  for (const Pending& p : group) {
    merged.insert(merged.end(), p.items.begin(), p.items.end());
  }

  // One batched ScoreItems call per user group: the contract
  // ScoreItems(u, I)[i] == Score(u, I[i]) (bitwise) makes splitting the
  // concatenated result exactly equal to per-request calls.
  Status status = Status::OK();
  std::vector<float> scores;
  try {
    scores = handle->ScoreItems(group.front().user, merged);
  } catch (const std::exception& e) {
    status = Status::Internal(std::string("serve failure: ") + e.what());
  } catch (...) {
    status = Status::Internal("serve failure");
  }
  // A model violating the ScoreItems contract (one score per item) must
  // surface as a clean Internal status, not an out-of-bounds slice below.
  if (status.ok() && scores.size() != merged.size()) {
    status = Status::Internal("serve failure: model returned " +
                              std::to_string(scores.size()) + " scores for " +
                              std::to_string(merged.size()) + " items");
  }
  const uint64_t completed_ns = NowNs();

  // Account the deliveries first: a client that has already collected
  // its response must see it reflected in Stats().
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.responses += group.size();
  }

  // Deliver responses *before* releasing the lease: when Swap's drain
  // returns, every response served by the old generation has been set.
  size_t offset = 0;
  for (Pending& p : group) {
    ScoreResponse response;
    response.status = status;
    response.generation = handle->generation();
    response.submitted_ns = p.submitted_ns;
    response.completed_ns = completed_ns;
    if (status.ok()) {
      response.scores.assign(scores.begin() + offset,
                             scores.begin() + offset + p.items.size());
    }
    offset += p.items.size();
    p.promise.set_value(std::move(response));
  }

  ReleaseLease(handle.get());
}

void Router::ServeRecommend(const std::shared_ptr<const ServeHandle>& handle,
                            Pending pending) {
  Status status = Status::OK();
  std::vector<std::pair<int32_t, float>> items;
  try {
    items = handle->Recommend(pending.user, pending.k, pending.items);
  } catch (const std::exception& e) {
    status = Status::Internal(std::string("serve failure: ") + e.what());
  } catch (...) {
    status = Status::Internal("serve failure");
  }
  const uint64_t completed_ns = NowNs();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.responses;
  }

  // Deliver before releasing the lease (same invariant as ServeGroup):
  // when Swap's drain returns, this response has been set.
  RecommendResponse response;
  response.status = status;
  response.generation = handle->generation();
  response.submitted_ns = pending.submitted_ns;
  response.completed_ns = completed_ns;
  if (status.ok()) response.items = std::move(items);
  pending.rec_promise.set_value(std::move(response));

  ReleaseLease(handle.get());
}

void Router::ReleaseLease(const ServeHandle* handle) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(handle);
    KGREC_CHECK(it != inflight_.end());  // leasing invariant
    if (--it->second == 0) inflight_.erase(it);
  }
  drained_cv_.notify_all();
}

Status Router::Swap(std::shared_ptr<const ServeHandle> fresh) {
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  return SwapLocked(std::move(fresh));
}

Status Router::SwapLocked(std::shared_ptr<const ServeHandle> fresh) {
  if (fresh == nullptr) {
    return Status::InvalidArgument("Swap: null handle");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) return Status::Unavailable("router is stopping");
  std::shared_ptr<const ServeHandle> old =
      std::exchange(current_, std::move(fresh));
  ++stats_.swaps;
  if (old.get() == current_.get()) return Status::OK();  // self-swap
  // Drain: batches dispatched on the old handle before the flip must
  // deliver before we let go of it. Requests still *queued* at flip time
  // are served by the new generation.
  const ServeHandle* raw = old.get();
  drained_cv_.wait(lock, [&] { return !inflight_.contains(raw); });
  return Status::OK();
}

Status Router::SwapFromCheckpoint(const RecContext& context,
                                  const std::string& path) {
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  uint64_t next_generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    next_generation = current_->generation() + 1;
  }
  // The load runs without the router lock: traffic keeps flowing on the
  // old handle for however long the checkpoint takes to restore.
  std::shared_ptr<const ServeHandle> fresh;
  KGREC_RETURN_IF_ERROR(
      ServeHandle::Open(context, path, next_generation, &fresh));
  return SwapLocked(std::move(fresh));
}

Status Router::SwapFromUpdate(const RecContext& restore_context,
                              const RecContext& update_context,
                              const EventBatch& batch) {
  std::lock_guard<std::mutex> swap_lock(swap_mutex_);
  std::shared_ptr<const ServeHandle> live;
  uint64_t next_generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live = current_;
    next_generation = current_->generation() + 1;
  }
  // Clone the live model through its own checkpoint round-trip, off the
  // router lock — traffic keeps flowing on the old handle for however
  // long the save + restore + fold takes.
  const std::string temp_path = "/tmp/kgrec_swap_" +
                                std::to_string(getpid()) + "_" +
                                std::to_string(next_generation) + ".kgrc";
  Status status = live->model().Save(temp_path);
  if (!status.ok()) {
    std::remove(temp_path.c_str());
    return status;
  }
  std::unique_ptr<Recommender> clone;
  status = LoadModel(restore_context, temp_path, &clone);
  std::remove(temp_path.c_str());
  KGREC_RETURN_IF_ERROR(status);
  KGREC_RETURN_IF_ERROR(clone->Update(update_context, batch));
  return SwapLocked(ServeHandle::Adopt(std::move(clone), update_context,
                                       next_generation));
}

std::shared_ptr<const ServeHandle> Router::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

RouterStats Router::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Router::SetPostStealHookForTest(std::function<void()> hook) {
  post_steal_hook_ = std::move(hook);
}

size_t Router::InflightForTest(const ServeHandle* handle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = inflight_.find(handle);
  return it == inflight_.end() ? 0 : it->second;
}

}  // namespace kgrec::serve
