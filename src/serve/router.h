#ifndef KGREC_SERVE_ROUTER_H_
#define KGREC_SERVE_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/thread_pool.h"
#include "serve/serve_handle.h"

namespace kgrec::serve {

/// Router knobs. The defaults serve a test-sized deployment; production
/// callers size the admission queue to their latency budget (a full queue
/// rejects with Unavailable instead of growing an unbounded backlog).
struct RouterConfig {
  /// Worker threads of the router's ThreadPool (the existing core pool;
  /// clamped to at least 1).
  size_t num_threads = ThreadPool::HardwareThreads();
  /// Admission bound: requests beyond this many *queued* (not yet
  /// dispatched) are rejected immediately with StatusCode::kUnavailable.
  size_t max_queue = 1024;
};

/// One scoring request: rank these candidate items for this user.
struct ScoreRequest {
  int32_t user = 0;
  std::vector<int32_t> items;
};

/// One top-k request: the user's catalog top-k minus `exclude`
/// (ServeHandle::Recommend semantics — any order, duplicates and
/// out-of-range ids tolerated).
struct RecommendRequest {
  int32_t user = 0;
  size_t k = 0;
  std::vector<int32_t> exclude;
};

/// The response to one ScoreRequest. `scores[i]` corresponds to
/// `items[i]` and is **bitwise** what `ScoreItems(user, items)[i]` on the
/// serving model returns — batching and per-user coalescing never change
/// a float (the ScoreItems contract makes concatenation exact).
struct ScoreResponse {
  Status status;
  std::vector<float> scores;
  /// Generation tag of the ServeHandle that produced the scores; all
  /// scores of one response come from exactly one handle.
  uint64_t generation = 0;
  /// steady-clock nanoseconds at admission and at fulfilment, for
  /// latency accounting in benches (0 when rejected at admission).
  uint64_t submitted_ns = 0;
  uint64_t completed_ns = 0;
};

/// The response to one RecommendRequest: (item, score) pairs best-first
/// under the library ranking order, exactly what
/// `handle->Recommend(user, k, exclude)` returns on the serving handle —
/// admission-queue batching never changes a result. That includes
/// handles built with RetrievalSpec::scan = ScanPrecision::kSq8: the
/// quantized scan's float re-rank keeps the served ranking bitwise the
/// float32 one, and the per-thread SearchScratch behind
/// ServeHandle::Recommend makes steady-state recommend traffic
/// allocation-free on the worker threads.
struct RecommendResponse {
  Status status;
  std::vector<std::pair<int32_t, float>> items;
  /// Generation tag of the ServeHandle that produced the ranking.
  uint64_t generation = 0;
  /// steady-clock nanoseconds at admission and at fulfilment, for
  /// latency accounting in benches (0 when rejected at admission).
  uint64_t submitted_ns = 0;
  uint64_t completed_ns = 0;
};

/// Counters exposed for tests and benches; a snapshot, not a sync point.
struct RouterStats {
  uint64_t accepted = 0;   ///< requests admitted to the queue
  uint64_t rejected = 0;   ///< requests refused (queue full / stopping)
  uint64_t responses = 0;  ///< promises fulfilled by worker tasks
  uint64_t batches = 0;    ///< dispatched groups (per-user score batches
                           ///< plus singleton recommend dispatches)
  uint64_t coalesced = 0;  ///< requests merged into another request's batch
  uint64_t swaps = 0;      ///< successful hot swaps
};

/// A long-lived serving front-end over an atomically swappable
/// ServeHandle.
///
/// Requests enter a bounded admission queue; a drain task on the router's
/// ThreadPool periodically steals the whole queue, groups the stolen
/// requests *by user* (concatenating their candidate lists, so one
/// ScoreItems call amortizes the per-user state hoisting that PR 2 built
/// into every model), and dispatches one pool task per user group. Each
/// group captures one `shared_ptr<const ServeHandle>` at steal time, so
/// every response is served by — and stamped with — exactly one model
/// generation even while a swap is in flight.
///
/// Hot swap protocol (Swap / SwapFromCheckpoint):
///   1. build the new handle (for SwapFromCheckpoint, load the checkpoint
///      on the calling thread — traffic keeps flowing on the old handle);
///   2. atomically flip the current-handle pointer under the router lock;
///   3. drain: block until every already-dispatched batch on the *old*
///      handle has delivered its responses, then release the old handle.
/// When Swap returns, no request is executing against the old model and
/// every response it served has been delivered; requests still queued at
/// flip time are served by the new generation. A failed checkpoint load
/// leaves the old handle serving untouched.
///
/// Thread-safety: Submit and current() may be called from any thread;
/// swaps are serialized among themselves and must not be called from a
/// router pool task (the drain wait would starve the pool).
class Router {
 public:
  Router(const RouterConfig& config,
         std::shared_ptr<const ServeHandle> initial);

  /// Rejects queued work, waits for dispatched work to deliver, then
  /// joins the pool. Safe while clients still hold futures.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Admits a request (or rejects it with an immediately-ready
  /// Unavailable response when the queue is full or the router is
  /// stopping). Every returned future is eventually fulfilled exactly
  /// once — responses are never lost or duplicated.
  std::future<ScoreResponse> Submit(ScoreRequest request);

  /// Convenience: Submit + wait.
  ScoreResponse ScoreSync(ScoreRequest request);

  /// Admits a top-k request through the same bounded queue, drain leases
  /// and generation stamping as Submit(). Recommend requests ride the
  /// drain but are never coalesced — each carries its own k and
  /// exclusion list, so each dispatches as its own pool task.
  std::future<RecommendResponse> SubmitRecommend(RecommendRequest request);

  /// Convenience: SubmitRecommend + wait.
  RecommendResponse RecommendSync(RecommendRequest request);

  /// Installs `fresh` as the serving handle and drains the old one (see
  /// the class comment for the protocol). The caller gives distinct
  /// handles distinct generation tags; SwapFromCheckpoint does this
  /// automatically.
  Status Swap(std::shared_ptr<const ServeHandle> fresh);

  /// Loads the checkpoint at `path` (current generation + 1), then
  /// Swap()s it in. On load failure the old handle keeps serving and the
  /// load Status is returned.
  Status SwapFromCheckpoint(const RecContext& context,
                            const std::string& path);

  /// Applies an online Update (DESIGN §13) to a *copy* of the live
  /// model, then Swap()s the updated copy in (current generation + 1).
  /// The copy is made through the model's own checkpoint round-trip:
  /// Save to a temp file, restore against `restore_context` — the
  /// PRE-batch world the live model was fitted under, so the stored
  /// shapes match — then Update(update_context, batch) against the
  /// POST-batch world. Everything runs off the router lock: traffic
  /// keeps flowing on the old handle throughout, and any failure
  /// (save, load, kUnimplemented from a non-updatable model) leaves it
  /// serving untouched and returns the Status.
  Status SwapFromUpdate(const RecContext& restore_context,
                        const RecContext& update_context,
                        const EventBatch& batch);

  /// The handle serving newly admitted requests right now.
  std::shared_ptr<const ServeHandle> current() const;

  RouterStats Stats() const;

  /// Test-only: `hook` runs on the drain task, outside the router lock,
  /// right after a batch is stolen — i.e. inside the unlocked grouping
  /// window that the provisional drain lease protects. Set it before any
  /// traffic is submitted; it is not synchronized against running drains.
  void SetPostStealHookForTest(std::function<void()> hook);

  /// Test-only: current drain-lease count for `handle` (0 when absent).
  size_t InflightForTest(const ServeHandle* handle) const;

 private:
  struct Pending {
    enum class Kind { kScore, kRecommend };
    Kind kind = Kind::kScore;
    int32_t user = 0;
    /// kScore: candidate items. kRecommend: exclusion list.
    std::vector<int32_t> items;
    /// kRecommend only.
    size_t k = 0;
    std::promise<ScoreResponse> promise;          // kScore
    std::promise<RecommendResponse> rec_promise;  // kRecommend
    uint64_t submitted_ns = 0;
  };

  /// Swap body, assuming swap_mutex_ is already held by the caller.
  Status SwapLocked(std::shared_ptr<const ServeHandle> fresh);

  /// Pool task: repeatedly steal the queue and dispatch user groups
  /// until the queue is empty.
  void DrainLoop();

  /// Serves one user group on `handle` and fulfils its promises.
  void ServeGroup(const std::shared_ptr<const ServeHandle>& handle,
                  std::vector<Pending> group);

  /// Serves one recommend request on `handle` and fulfils its promise.
  void ServeRecommend(const std::shared_ptr<const ServeHandle>& handle,
                      Pending pending);

  /// Releases one drain lease on `handle` and wakes Swap's drain wait.
  void ReleaseLease(const ServeHandle* handle);

  static std::future<ScoreResponse> Rejected(std::string why);
  static std::future<RecommendResponse> RejectedRecommend(std::string why);

  const RouterConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::deque<Pending> pending_;
  std::shared_ptr<const ServeHandle> current_;
  /// Dispatched-but-undelivered batch count per handle; Swap's drain
  /// waits for the old handle's count to reach zero. Keyed by raw
  /// pointer — entries are erased when the count drops to zero, so the
  /// map stays as small as the number of generations in flight.
  std::unordered_map<const ServeHandle*, size_t> inflight_;
  bool drain_scheduled_ = false;
  bool stopping_ = false;
  RouterStats stats_;
  std::function<void()> post_steal_hook_;

  /// Serializes swaps against each other (never held by pool tasks).
  std::mutex swap_mutex_;

  /// Last member: destroyed (and therefore joined) first.
  ThreadPool pool_;
};

}  // namespace kgrec::serve

#endif  // KGREC_SERVE_ROUTER_H_
