#include "serve/serve_handle.h"

#include "core/check.h"
#include "core/registry.h"
#include "math/topk.h"
#include "retrieval/factors.h"

namespace kgrec::serve {

ServeHandle::ServeHandle(std::unique_ptr<const Recommender> model,
                         const RecContext& context, uint64_t generation)
    : model_(std::move(model)),
      model_name_(model_->name()),
      num_items_(context.train != nullptr ? context.train->num_items() : 0),
      generation_(generation) {}

Status ServeHandle::BuildRetrieval(const RetrievalSpec& spec) {
  factors_ = AsFactorizable(*model_);
  const bool sq8 = spec.scan.precision == retrieval::ScanPrecision::kSq8;
  switch (spec.mode) {
    case RetrievalSpec::Mode::kExhaustive:
      retrieval_mode_ = "exhaustive";
      return Status::OK();
    case RetrievalSpec::Mode::kAuto:
      if (factors_ == nullptr) {
        retrieval_mode_ = "exhaustive";
        return Status::OK();
      }
      [[fallthrough]];
    case RetrievalSpec::Mode::kExact: {
      if (factors_ == nullptr) {
        return Status::FailedPrecondition(
            "RetrievalSpec::kExact: model '" + model_name_ +
            "' does not export DotProductFactors");
      }
      auto index = std::make_unique<retrieval::BruteForceIndex>(
          factors_->ExportItemFactors(), spec.scan);
      if (num_items_ > 0) {
        KGREC_CHECK_EQ(index->num_items(), static_cast<size_t>(num_items_));
      }
      index_ = std::move(index);
      retrieval_mode_ = sq8 ? "exact-index+sq8" : "exact-index";
      return Status::OK();
    }
    case RetrievalSpec::Mode::kIvf: {
      if (factors_ == nullptr) {
        return Status::FailedPrecondition(
            "RetrievalSpec::kIvf: model '" + model_name_ +
            "' does not export DotProductFactors");
      }
      auto index = std::make_unique<retrieval::IvfIndex>(
          factors_->ExportItemFactors(), spec.ivf, spec.scan);
      if (num_items_ > 0) {
        KGREC_CHECK_EQ(index->num_items(), static_cast<size_t>(num_items_));
      }
      index_ = std::move(index);
      retrieval_mode_ = sq8 ? "ivf-index+sq8" : "ivf-index";
      return Status::OK();
    }
    case RetrievalSpec::Mode::kTwoStage: {
      if (spec.candidate_model == nullptr) {
        return Status::InvalidArgument(
            "RetrievalSpec::kTwoStage: no candidate model");
      }
      std::unique_ptr<const retrieval::TwoStageRetriever> two_stage;
      KGREC_RETURN_IF_ERROR(retrieval::TwoStageRetriever::Create(
          spec.candidate_model, spec.two_stage, &two_stage));
      two_stage_ = std::move(two_stage);
      retrieval_mode_ =
          spec.two_stage.scan.precision == retrieval::ScanPrecision::kSq8
              ? "two-stage+sq8"
              : "two-stage";
      return Status::OK();
    }
  }
  return Status::InvalidArgument("RetrievalSpec: unknown mode");
}

Status ServeHandle::Open(const RecContext& context, const std::string& path,
                         uint64_t generation,
                         std::shared_ptr<const ServeHandle>* out) {
  return Open(context, path, generation, RetrievalSpec{}, out);
}

Status ServeHandle::Open(const RecContext& context, const std::string& path,
                         uint64_t generation, const RetrievalSpec& spec,
                         std::shared_ptr<const ServeHandle>* out) {
  std::unique_ptr<Recommender> model;
  KGREC_RETURN_IF_ERROR(LoadModel(context, path, &model));
  // std::shared_ptr cannot reach the private constructor through
  // make_shared; the extra allocation is once per checkpoint load.
  std::shared_ptr<ServeHandle> handle(
      new ServeHandle(std::move(model), context, generation));
  KGREC_RETURN_IF_ERROR(handle->BuildRetrieval(spec));
  *out = std::move(handle);
  return Status::OK();
}

Status ServeHandle::Open(const RecContext& context, const std::string& path,
                         std::unique_ptr<Recommender> prototype,
                         uint64_t generation,
                         std::shared_ptr<const ServeHandle>* out) {
  KGREC_CHECK(prototype != nullptr);
  KGREC_RETURN_IF_ERROR(prototype->Load(context, path));
  std::shared_ptr<ServeHandle> handle(
      new ServeHandle(std::move(prototype), context, generation));
  KGREC_RETURN_IF_ERROR(handle->BuildRetrieval(RetrievalSpec{}));
  *out = std::move(handle);
  return Status::OK();
}

std::shared_ptr<const ServeHandle> ServeHandle::Adopt(
    std::unique_ptr<const Recommender> model, const RecContext& context,
    uint64_t generation) {
  KGREC_CHECK(model != nullptr);
  std::shared_ptr<ServeHandle> handle(
      new ServeHandle(std::move(model), context, generation));
  // kAuto cannot fail: it only indexes models that export factors.
  const Status status = handle->BuildRetrieval(RetrievalSpec{});
  KGREC_CHECK(status.ok());
  return handle;
}

Status ServeHandle::Adopt(std::unique_ptr<const Recommender> model,
                          const RecContext& context, uint64_t generation,
                          const RetrievalSpec& spec,
                          std::shared_ptr<const ServeHandle>* out) {
  KGREC_CHECK(model != nullptr);
  std::shared_ptr<ServeHandle> handle(
      new ServeHandle(std::move(model), context, generation));
  KGREC_RETURN_IF_ERROR(handle->BuildRetrieval(spec));
  *out = std::move(handle);
  return Status::OK();
}

float ServeHandle::Score(int32_t user, int32_t item) const {
  return model_->Score(user, item);
}

std::vector<float> ServeHandle::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  return model_->ScoreItems(user, items);
}

std::vector<std::pair<int32_t, float>> ServeHandle::Recommend(
    int32_t user, size_t k, std::span<const int32_t> exclude) const {
  const std::vector<int32_t> sorted_exclude =
      retrieval::SanitizeExclude(exclude, num_items_);

  if (two_stage_ != nullptr) {
    return two_stage_->Recommend(*model_, user, k, sorted_exclude);
  }
  if (index_ != nullptr) {
    // One scratch per serving thread: block buffers, heaps, quantized
    // query and the FillUserQuery staging vector all reach steady-state
    // capacity after the first requests, so per-request index traffic
    // stops allocating (the block-scratch hoist; see retrieval/index.h
    // SearchScratch).
    static thread_local retrieval::SearchScratch scratch;
    scratch.user_query.resize(factors_->factor_dim());
    factors_->FillUserQuery(user, scratch.user_query);
    std::vector<std::pair<int32_t, float>> out;
    index_->QueryInto(scratch.user_query, k, sorted_exclude, scratch, &out);
    return out;
  }

  // Exhaustive fallback for non-factorizable models: one ScoreAll, then
  // a streaming bounded top-K that *skips* excluded ids. The old -inf
  // sentinel overwrite is gone — it conflated "excluded" with "scored
  // -inf", returning excluded items whenever a model legitimately
  // produced -inf and dropping legitimate -inf items near a short
  // catalog's tail.
  const std::vector<float> scores = model_->ScoreAll(user, num_items_);
  BoundedTopK top(k);
  size_t e = 0;
  for (int32_t item = 0; item < num_items_; ++item) {
    while (e < sorted_exclude.size() && sorted_exclude[e] < item) ++e;
    if (e < sorted_exclude.size() && sorted_exclude[e] == item) continue;
    top.Push(item, scores[item]);
  }
  return top.TakeSorted();
}

}  // namespace kgrec::serve
