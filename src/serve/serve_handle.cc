#include "serve/serve_handle.h"

#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/registry.h"
#include "math/topk.h"

namespace kgrec::serve {

ServeHandle::ServeHandle(std::unique_ptr<const Recommender> model,
                         const RecContext& context, uint64_t generation)
    : model_(std::move(model)),
      model_name_(model_->name()),
      num_items_(context.train != nullptr ? context.train->num_items() : 0),
      generation_(generation) {}

Status ServeHandle::Open(const RecContext& context, const std::string& path,
                         uint64_t generation,
                         std::shared_ptr<const ServeHandle>* out) {
  std::unique_ptr<Recommender> model;
  KGREC_RETURN_IF_ERROR(LoadModel(context, path, &model));
  // std::shared_ptr cannot reach the private constructor through
  // make_shared; the extra allocation is once per checkpoint load.
  out->reset(new ServeHandle(std::move(model), context, generation));
  return Status::OK();
}

Status ServeHandle::Open(const RecContext& context, const std::string& path,
                         std::unique_ptr<Recommender> prototype,
                         uint64_t generation,
                         std::shared_ptr<const ServeHandle>* out) {
  KGREC_CHECK(prototype != nullptr);
  KGREC_RETURN_IF_ERROR(prototype->Load(context, path));
  out->reset(new ServeHandle(std::move(prototype), context, generation));
  return Status::OK();
}

std::shared_ptr<const ServeHandle> ServeHandle::Adopt(
    std::unique_ptr<const Recommender> model, const RecContext& context,
    uint64_t generation) {
  KGREC_CHECK(model != nullptr);
  return std::shared_ptr<const ServeHandle>(
      new ServeHandle(std::move(model), context, generation));
}

float ServeHandle::Score(int32_t user, int32_t item) const {
  return model_->Score(user, item);
}

std::vector<float> ServeHandle::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  return model_->ScoreItems(user, items);
}

std::vector<std::pair<int32_t, float>> ServeHandle::Recommend(
    int32_t user, size_t k, std::span<const int32_t> exclude) const {
  std::vector<float> scores = model_->ScoreAll(user, num_items_);
  for (int32_t item : exclude) {
    if (item >= 0 && static_cast<size_t>(item) < scores.size()) {
      scores[item] = -std::numeric_limits<float>::infinity();
    }
  }
  std::vector<std::pair<int32_t, float>> top = TopKScored(scores, k);
  // Drop excluded sentinels that survived a short catalog.
  while (!top.empty() && std::isinf(top.back().second) &&
         top.back().second < 0) {
    top.pop_back();
  }
  return top;
}

}  // namespace kgrec::serve
