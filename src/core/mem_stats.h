#ifndef KGREC_CORE_MEM_STATS_H_
#define KGREC_CORE_MEM_STATS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace kgrec {

/// Peak resident set size of this process in bytes (Linux VmHWM, with a
/// getrusage fallback). 0 when the platform exposes neither. This is the
/// high-water mark the mega-scale RSS budgets gate on: it only grows, so
/// reading it after a phase bounds everything the phase allocated.
size_t PeakRssBytes();

/// Current resident set size in bytes (Linux VmRSS); 0 when unavailable.
size_t CurrentRssBytes();

/// Collects the *logical* bytes of a data structure, category by
/// category, via the structures' `MemoryUse(visitor)` methods. Logical
/// means payload actually reachable through the structure (element count
/// x element size, including vector capacity slack), not allocator or
/// page overhead — so `total()` is comparable across layouts while peak
/// RSS captures what the OS really charged.
class MemoryVisitor {
 public:
  void Add(const std::string& name, size_t bytes) {
    entries_.emplace_back(name, bytes);
    total_ += bytes;
  }

  const std::vector<std::pair<std::string, size_t>>& entries() const {
    return entries_;
  }
  size_t total() const { return total_; }

 private:
  std::vector<std::pair<std::string, size_t>> entries_;
  size_t total_ = 0;
};

/// Logical bytes held by a vector: capacity (not size), so growth slack
/// is visible in the accounting.
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace kgrec

#endif  // KGREC_CORE_MEM_STATS_H_
