#ifndef KGREC_CORE_ALIGNED_H_
#define KGREC_CORE_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace kgrec {

/// Minimal over-aligning allocator so dense buffers (Matrix, nn::Tensor
/// data/grad, GradShadow shards) start on a cache-line boundary. The SIMD
/// kernel layer (math/kernels.h) uses unaligned load/store instructions —
/// row offsets inside a buffer need not be aligned — but on every x86
/// since Nehalem those instructions are penalty-free when the address
/// happens to be aligned, so aligning the buffer start makes whole-buffer
/// kernels (MatMul, Axpy over a full matrix) run on aligned addresses and
/// keeps rows cache-line aligned whenever the row stride is a multiple of
/// 16 floats.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte (cache-line) aligned vector, the backing store of every dense
/// buffer the kernel layer touches.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace kgrec

#endif  // KGREC_CORE_ALIGNED_H_
