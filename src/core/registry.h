#ifndef KGREC_CORE_REGISTRY_H_
#define KGREC_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"

namespace kgrec {

class DotProductFactors;  // retrieval/factors.h

/// How a method uses the KG (survey Table 3 columns).
enum class UsageType { kNone, kEmbedding, kPath, kUnified };

/// One row of the survey's Table 3 (plus the non-KG baselines of
/// Section 2.2), with a factory when the method is implemented here.
struct MethodInfo {
  std::string name;
  std::string venue;
  int year = 0;
  UsageType usage = UsageType::kNone;
  /// Technique flags as in Table 3.
  bool uses_cnn = false;
  bool uses_rnn = false;
  bool uses_attention = false;
  bool uses_gnn = false;
  bool uses_gan = false;
  bool uses_rl = false;
  bool uses_autoencoder = false;
  bool uses_mf = false;
  /// False for surveyed methods catalogued but not implemented in kgrec.
  bool implemented = false;
};

/// All methods: the implemented zoo first (baselines + one per family
/// walkthrough of the survey), then the remaining Table 3 rows for
/// completeness (implemented = false).
std::vector<MethodInfo> AllMethods();

/// Creates an implemented recommender by name (e.g. "RippleNet",
/// "BPR-MF", "KGCN-LS"). Returns nullptr for unknown or unimplemented
/// names. Models are created with their default (library-scale)
/// hyper-parameters.
std::unique_ptr<Recommender> MakeRecommender(const std::string& name);

/// Names of all implemented methods, in Table 3 order.
std::vector<std::string> ImplementedMethodNames();

/// Reconstructs a recommender from a KGRC checkpoint: peeks the typed
/// header, builds the concrete type named there (with its registry
/// default hyper-parameters) and restores it against `context`, which
/// must describe the dataset the checkpoint was trained on. Fails with a
/// descriptive Status — never a crash or a silently wrong model — when
/// the file is missing/corrupt, names an unknown model, or carries a
/// mismatched format version or hyper-parameter fingerprint.
Status LoadModel(const RecContext& context, const std::string& path,
                 std::unique_ptr<Recommender>* out);

const char* UsageTypeName(UsageType usage);

/// The model's embedding-export surface if it has one, else nullptr.
/// A factorizable model scores as a fixed kernel between a per-user
/// query vector and a per-item factor row (see retrieval/factors.h),
/// which is what lets an ItemIndex serve its exact top-K sublinearly.
const DotProductFactors* AsFactorizable(const Recommender& model);

/// True when AsFactorizable(model) != nullptr.
bool IsFactorizable(const Recommender& model);

/// Names of implemented methods whose default-constructed model exposes
/// DotProductFactors (no Fit needed — factorizability is a property of
/// the type). Subset of ImplementedMethodNames(), same order.
std::vector<std::string> FactorizableMethodNames();

/// True when the named method implements the online Update() path (a
/// property of the type — no Fit needed). Unknown names are false.
bool SupportsUpdate(const std::string& name);

/// Names of implemented methods supporting Update(), in
/// ImplementedMethodNames() order.
std::vector<std::string> UpdatableMethodNames();

}  // namespace kgrec

#endif  // KGREC_CORE_REGISTRY_H_
