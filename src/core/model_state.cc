#include "core/model_state.h"

#include <cstdio>
#include <cstring>

namespace kgrec {
namespace {

/// int32 <-> float bit-cast helpers. The archive stores raw bytes, so
/// reinterpreting the bit pattern round-trips every value exactly
/// (a value-level float conversion would corrupt ints above 2^24).
std::vector<float> IntsToBits(const std::vector<int32_t>& v) {
  std::vector<float> bits(v.size());
  if (!v.empty()) std::memcpy(bits.data(), v.data(), v.size() * sizeof(float));
  return bits;
}

std::vector<int32_t> BitsToInts(const std::vector<float>& bits) {
  std::vector<int32_t> v(bits.size());
  if (!bits.empty()) {
    std::memcpy(v.data(), bits.data(), bits.size() * sizeof(float));
  }
  return v;
}

}  // namespace

Status StateVisitor::Int(const std::string& name, int32_t* v) {
  std::vector<int32_t> one{*v};
  KGREC_RETURN_IF_ERROR(Ints(name, &one));
  if (loading()) {
    if (one.size() != 1) {
      return Status::FailedPrecondition("checkpoint entry '" + name +
                                        "' is not a scalar");
    }
    *v = one[0];
  }
  return Status::OK();
}

Status StateVisitor::Params(const std::string& prefix,
                            std::vector<nn::Tensor> params) {
  for (size_t i = 0; i < params.size(); ++i) {
    if (loading() && !params[i].defined()) {
      return Status::Internal("parameter " + prefix + "." +
                              std::to_string(i) +
                              " was not constructed before restore");
    }
    KGREC_RETURN_IF_ERROR(Tensor(prefix + "." + std::to_string(i),
                                 &params[i]));
  }
  return Status::OK();
}

Status StateVisitor::MatrixList(const std::string& prefix,
                                std::vector<kgrec::Matrix>* ms) {
  int32_t count = static_cast<int32_t>(ms->size());
  KGREC_RETURN_IF_ERROR(Int(prefix + ".n", &count));
  if (loading()) {
    if (count < 0) {
      return Status::FailedPrecondition("negative list length at " + prefix);
    }
    ms->assign(static_cast<size_t>(count), kgrec::Matrix());
  }
  for (size_t i = 0; i < ms->size(); ++i) {
    KGREC_RETURN_IF_ERROR(Matrix(prefix + "." + std::to_string(i),
                                 &(*ms)[i]));
  }
  return Status::OK();
}

Status StateVisitor::RaggedFloats(const std::string& prefix,
                                  std::vector<std::vector<float>>* rows) {
  std::vector<int32_t> offsets;
  std::vector<float> values;
  if (!loading()) {
    offsets.reserve(rows->size() + 1);
    offsets.push_back(0);
    for (const std::vector<float>& row : *rows) {
      values.insert(values.end(), row.begin(), row.end());
      offsets.push_back(static_cast<int32_t>(values.size()));
    }
  }
  KGREC_RETURN_IF_ERROR(Ints(prefix + ".offsets", &offsets));
  KGREC_RETURN_IF_ERROR(Floats(prefix + ".values", &values));
  if (loading()) {
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != static_cast<int32_t>(values.size())) {
      return Status::FailedPrecondition("corrupt ragged section at " + prefix);
    }
    rows->clear();
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      if (offsets[i] > offsets[i + 1]) {
        return Status::FailedPrecondition("corrupt ragged section at " +
                                          prefix);
      }
      rows->emplace_back(values.begin() + offsets[i],
                         values.begin() + offsets[i + 1]);
    }
  }
  return Status::OK();
}

Status StateVisitor::RaggedInts(const std::string& prefix,
                                std::vector<std::vector<int32_t>>* rows) {
  // Reuses the float layout through the bit-cast: pack to ragged floats,
  // visit, and cast back per row on load.
  std::vector<std::vector<float>> bit_rows;
  if (!loading()) {
    bit_rows.reserve(rows->size());
    for (const std::vector<int32_t>& row : *rows) {
      bit_rows.push_back(IntsToBits(row));
    }
  }
  KGREC_RETURN_IF_ERROR(RaggedFloats(prefix, &bit_rows));
  if (loading()) {
    rows->clear();
    rows->reserve(bit_rows.size());
    for (const std::vector<float>& row : bit_rows) {
      rows->push_back(BitsToInts(row));
    }
  }
  return Status::OK();
}

// ---- StatePacker ------------------------------------------------------

Status StatePacker::Add(const std::string& name, size_t rows, size_t cols,
                        const float* data) {
  NamedTensor t;
  t.name = name;
  t.rows = rows;
  t.cols = cols;
  t.data.assign(data, data + rows * cols);
  tensors_.push_back(std::move(t));
  return Status::OK();
}

Status StatePacker::Tensor(const std::string& name, nn::Tensor* t) {
  if (!t->defined()) {
    return Status::FailedPrecondition("cannot save undefined tensor '" +
                                      name + "' (model not fitted?)");
  }
  return Add(name, t->rows(), t->cols(), t->data());
}

Status StatePacker::Matrix(const std::string& name, kgrec::Matrix* m) {
  return Add(name, m->rows(), m->cols(), m->data());
}

Status StatePacker::Floats(const std::string& name, std::vector<float>* v) {
  return Add(name, 1, v->size(), v->data());
}

Status StatePacker::Ints(const std::string& name, std::vector<int32_t>* v) {
  const std::vector<float> bits = IntsToBits(*v);
  return Add(name, 1, bits.size(), bits.data());
}

Status StatePacker::Scalar(const std::string& name, float* v) {
  return Add(name, 1, 1, v);
}

// ---- StateUnpacker ----------------------------------------------------

StateUnpacker::StateUnpacker(std::vector<NamedTensor> tensors)
    : tensors_(std::move(tensors)), consumed_(tensors_.size(), false) {
  for (size_t i = 0; i < tensors_.size(); ++i) {
    index_.emplace(tensors_[i].name, i);
  }
}

Status StateUnpacker::Find(const std::string& name, const NamedTensor** out) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::FailedPrecondition("checkpoint is missing entry '" + name +
                                      "'");
  }
  consumed_[it->second] = true;
  *out = &tensors_[it->second];
  return Status::OK();
}

Status StateUnpacker::Tensor(const std::string& name, nn::Tensor* t) {
  const NamedTensor* entry = nullptr;
  KGREC_RETURN_IF_ERROR(Find(name, &entry));
  if (t->defined()) {
    if (t->rows() != entry->rows || t->cols() != entry->cols) {
      return Status::FailedPrecondition(
          "shape mismatch at '" + name + "': checkpoint has " +
          std::to_string(entry->rows) + "x" + std::to_string(entry->cols) +
          ", model has " + std::to_string(t->rows()) + "x" +
          std::to_string(t->cols()));
    }
    std::copy(entry->data.begin(), entry->data.end(), t->data());
  } else {
    *t = nn::Tensor::FromData(entry->rows, entry->cols, entry->data,
                              /*requires_grad=*/true);
  }
  return Status::OK();
}

Status StateUnpacker::Matrix(const std::string& name, kgrec::Matrix* m) {
  const NamedTensor* entry = nullptr;
  KGREC_RETURN_IF_ERROR(Find(name, &entry));
  kgrec::Matrix restored(entry->rows, entry->cols);
  std::copy(entry->data.begin(), entry->data.end(), restored.data());
  *m = std::move(restored);
  return Status::OK();
}

Status StateUnpacker::Floats(const std::string& name, std::vector<float>* v) {
  const NamedTensor* entry = nullptr;
  KGREC_RETURN_IF_ERROR(Find(name, &entry));
  *v = entry->data;
  return Status::OK();
}

Status StateUnpacker::Ints(const std::string& name, std::vector<int32_t>* v) {
  const NamedTensor* entry = nullptr;
  KGREC_RETURN_IF_ERROR(Find(name, &entry));
  *v = BitsToInts(entry->data);
  return Status::OK();
}

Status StateUnpacker::Scalar(const std::string& name, float* v) {
  const NamedTensor* entry = nullptr;
  KGREC_RETURN_IF_ERROR(Find(name, &entry));
  if (entry->data.size() != 1) {
    return Status::FailedPrecondition("checkpoint entry '" + name +
                                      "' is not a scalar");
  }
  *v = entry->data[0];
  return Status::OK();
}

Status StateUnpacker::CheckFullyConsumed() const {
  for (size_t i = 0; i < tensors_.size(); ++i) {
    if (!consumed_[i]) {
      return Status::FailedPrecondition(
          "checkpoint carries entry '" + tensors_[i].name +
          "' that this model does not know — model/version mismatch?");
    }
  }
  return Status::OK();
}

// ---- FingerprintBuilder -----------------------------------------------

FingerprintBuilder& FingerprintBuilder::Add(const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  if (!out_.empty()) out_ += ';';
  out_ += key;
  out_ += '=';
  out_ += buf;
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(const char* key,
                                            const std::string& value) {
  if (!out_.empty()) out_ += ';';
  out_ += key;
  out_ += '=';
  out_ += value;
  return *this;
}

}  // namespace kgrec
