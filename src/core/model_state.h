#ifndef KGREC_CORE_MODEL_STATE_H_
#define KGREC_CORE_MODEL_STATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/serialize.h"
#include "core/status.h"
#include "math/dense.h"
#include "nn/tensor.h"

namespace kgrec {

/// Direction-agnostic serialization of a model's learned state: each
/// Recommender implements one VisitState(StateVisitor*) that names every
/// persisted piece of state, and the same method both packs (Save) and
/// unpacks (Load) depending on the concrete visitor. Non-tensor state
/// that is deterministically rebuildable from the RecContext (ripple
/// sets, path contexts, KNN similarity lists, popularity counts) is NOT
/// visited — it is recomputed by PrepareLoad/FinishLoad instead.
///
/// Everything is stored as named float blobs in the checkpoint's tensor
/// section; integers are bit-cast into float storage (the archive writes
/// raw bytes, so the round-trip is exact).
class StateVisitor {
 public:
  virtual ~StateVisitor() = default;

  /// True while restoring (Load), false while packing (Save).
  virtual bool loading() const = 0;

  /// An nn::Tensor. Packing snapshots the data. Unpacking copies into the
  /// existing storage when `t` is defined (shape must match — layers
  /// constructed by PrepareLoad are restored in place, which keeps their
  /// internal parameter handles valid), and creates a fresh tensor of the
  /// stored shape when `t` is a null handle.
  virtual Status Tensor(const std::string& name, nn::Tensor* t) = 0;

  /// A plain Matrix; unpacking overwrites it with the stored shape.
  virtual Status Matrix(const std::string& name, kgrec::Matrix* m) = 0;

  /// A float vector; unpacking resizes to the stored length.
  virtual Status Floats(const std::string& name, std::vector<float>* v) = 0;

  /// An int32 vector, bit-cast into float storage.
  virtual Status Ints(const std::string& name, std::vector<int32_t>* v) = 0;

  /// A single float, stored as a [1, 1] entry.
  virtual Status Scalar(const std::string& name, float* v) = 0;

  /// A single int32 (bit-cast [1, 1] entry).
  Status Int(const std::string& name, int32_t* v);

  /// A parameter list (e.g. nn::Linear/GruCell/KgeModel Params()). The
  /// handles share storage with the owning module, so in-place unpacking
  /// restores the module itself; every handle must already be defined
  /// when loading (construct the module in PrepareLoad first).
  Status Params(const std::string& prefix, std::vector<nn::Tensor> params);

  /// A list of matrices, stored as "<prefix>.n" + "<prefix>.<i>".
  Status MatrixList(const std::string& prefix, std::vector<kgrec::Matrix>* ms);

  /// Ragged float rows, stored as bit-cast offsets + a flat value blob.
  Status RaggedFloats(const std::string& prefix,
                      std::vector<std::vector<float>>* rows);

  /// Ragged int32 rows (same layout as RaggedFloats).
  Status RaggedInts(const std::string& prefix,
                    std::vector<std::vector<int32_t>>* rows);
};

/// Save-direction visitor: collects the visited state as NamedTensors.
class StatePacker : public StateVisitor {
 public:
  bool loading() const override { return false; }
  Status Tensor(const std::string& name, nn::Tensor* t) override;
  Status Matrix(const std::string& name, kgrec::Matrix* m) override;
  Status Floats(const std::string& name, std::vector<float>* v) override;
  Status Ints(const std::string& name, std::vector<int32_t>* v) override;
  Status Scalar(const std::string& name, float* v) override;

  std::vector<NamedTensor> TakeTensors() { return std::move(tensors_); }

 private:
  Status Add(const std::string& name, size_t rows, size_t cols,
             const float* data);

  std::vector<NamedTensor> tensors_;
};

/// Load-direction visitor over a checkpoint's tensor section. Every
/// visited name must exist exactly once, and CheckFullyConsumed() fails
/// if the checkpoint carried entries the model never asked for — both
/// directions of drift produce a descriptive error instead of a model
/// that silently scores garbage.
class StateUnpacker : public StateVisitor {
 public:
  explicit StateUnpacker(std::vector<NamedTensor> tensors);

  bool loading() const override { return true; }
  Status Tensor(const std::string& name, nn::Tensor* t) override;
  Status Matrix(const std::string& name, kgrec::Matrix* m) override;
  Status Floats(const std::string& name, std::vector<float>* v) override;
  Status Ints(const std::string& name, std::vector<int32_t>* v) override;
  Status Scalar(const std::string& name, float* v) override;

  /// FailedPrecondition when any stored entry was never visited.
  Status CheckFullyConsumed() const;

 private:
  Status Find(const std::string& name, const NamedTensor** out);

  std::vector<NamedTensor> tensors_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<bool> consumed_;
};

/// Builds the deterministic "key=value;key=value" hyper-parameter
/// fingerprints stored in checkpoint headers (see
/// Recommender::HyperFingerprint). Floats are rendered with %.9g, which
/// round-trips every float exactly, so fingerprint equality means the
/// configs are numerically identical.
class FingerprintBuilder {
 public:
  FingerprintBuilder& Add(const char* key, double value);
  FingerprintBuilder& Add(const char* key, const std::string& value);

  std::string str() const { return out_; }

 private:
  std::string out_;
};

}  // namespace kgrec

#endif  // KGREC_CORE_MODEL_STATE_H_
