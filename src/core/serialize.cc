#include "core/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace kgrec {
namespace {

constexpr char kMagic[4] = {'K', 'G', 'R', 'T'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

}  // namespace

Status SaveTensorArchive(const std::string& path,
                         const std::vector<NamedTensor>& tensors) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const uint32_t count = static_cast<uint32_t>(tensors.size());
  if (!WriteBytes(f.get(), kMagic, sizeof(kMagic)) ||
      !WriteBytes(f.get(), &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f.get(), &count, sizeof(count))) {
    return Status::IoError("write failed: " + path);
  }
  for (const NamedTensor& t : tensors) {
    if (t.data.size() != t.rows * t.cols) {
      return Status::InvalidArgument("tensor '" + t.name +
                                     "' data does not match its shape");
    }
    const uint32_t name_len = static_cast<uint32_t>(t.name.size());
    const uint64_t rows = t.rows;
    const uint64_t cols = t.cols;
    if (!WriteBytes(f.get(), &name_len, sizeof(name_len)) ||
        !WriteBytes(f.get(), t.name.data(), name_len) ||
        !WriteBytes(f.get(), &rows, sizeof(rows)) ||
        !WriteBytes(f.get(), &cols, sizeof(cols)) ||
        !WriteBytes(f.get(), t.data.data(), t.data.size() * sizeof(float))) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::OK();
}

Status LoadTensorArchive(const std::string& path,
                         std::vector<NamedTensor>* tensors) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[4];
  uint32_t version = 0, count = 0;
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a KGRT archive: " + path);
  }
  if (!ReadBytes(f.get(), &version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported KGRT version");
  }
  if (!ReadBytes(f.get(), &count, sizeof(count))) {
    return Status::IoError("truncated archive: " + path);
  }
  tensors->clear();
  for (uint32_t i = 0; i < count; ++i) {
    NamedTensor t;
    uint32_t name_len = 0;
    uint64_t rows = 0, cols = 0;
    if (!ReadBytes(f.get(), &name_len, sizeof(name_len))) {
      return Status::IoError("truncated archive: " + path);
    }
    if (name_len > 4096) {
      return Status::InvalidArgument("corrupt archive (name too long)");
    }
    t.name.resize(name_len);
    if (!ReadBytes(f.get(), t.name.data(), name_len) ||
        !ReadBytes(f.get(), &rows, sizeof(rows)) ||
        !ReadBytes(f.get(), &cols, sizeof(cols))) {
      return Status::IoError("truncated archive: " + path);
    }
    // Checked via division: `rows * cols` itself can wrap uint64 for a
    // corrupt header (e.g. rows = cols = 2^33) and sneak past a guard on
    // the product with a tiny bogus allocation.
    constexpr uint64_t kMaxElements = 1ull << 32;
    if (cols != 0 && rows > kMaxElements / cols) {
      return Status::InvalidArgument("corrupt archive (blob too large)");
    }
    if (rows * cols > kMaxElements) {
      return Status::InvalidArgument("corrupt archive (blob too large)");
    }
    t.rows = rows;
    t.cols = cols;
    t.data.resize(rows * cols);
    if (!ReadBytes(f.get(), t.data.data(), t.data.size() * sizeof(float))) {
      return Status::IoError("truncated archive: " + path);
    }
    tensors->push_back(std::move(t));
  }
  return Status::OK();
}

std::vector<NamedTensor> SnapshotParams(
    const std::vector<nn::Tensor>& params) {
  std::vector<NamedTensor> out;
  for (size_t i = 0; i < params.size(); ++i) {
    NamedTensor t;
    t.name = "param_" + std::to_string(i);
    t.rows = params[i].rows();
    t.cols = params[i].cols();
    t.data.assign(params[i].data(), params[i].data() + params[i].size());
    out.push_back(std::move(t));
  }
  return out;
}

Status RestoreParams(const std::vector<NamedTensor>& snapshot,
                     std::vector<nn::Tensor>* params) {
  if (snapshot.size() != params->size()) {
    return Status::FailedPrecondition("parameter count mismatch");
  }
  for (size_t i = 0; i < snapshot.size(); ++i) {
    nn::Tensor& p = (*params)[i];
    if (snapshot[i].rows != p.rows() || snapshot[i].cols != p.cols()) {
      return Status::FailedPrecondition("shape mismatch at " +
                                        snapshot[i].name);
    }
    std::copy(snapshot[i].data.begin(), snapshot[i].data.end(), p.data());
  }
  return Status::OK();
}

}  // namespace kgrec
