#include "core/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace kgrec {
namespace {

constexpr char kMagic[4] = {'K', 'G', 'R', 'T'};
constexpr uint32_t kVersion = 1;
constexpr char kCheckpointMagic[4] = {'K', 'G', 'R', 'C'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

/// Writes the count + entry sequence shared by KGRT archives and the
/// tensor section of KGRC checkpoints.
Status WriteTensorSection(std::FILE* f, const std::string& path,
                          const std::vector<NamedTensor>& tensors) {
  const uint32_t count = static_cast<uint32_t>(tensors.size());
  if (!WriteBytes(f, &count, sizeof(count))) {
    return Status::IoError("write failed: " + path);
  }
  for (const NamedTensor& t : tensors) {
    if (t.data.size() != t.rows * t.cols) {
      return Status::InvalidArgument("tensor '" + t.name +
                                     "' data does not match its shape");
    }
    const uint32_t name_len = static_cast<uint32_t>(t.name.size());
    const uint64_t rows = t.rows;
    const uint64_t cols = t.cols;
    if (!WriteBytes(f, &name_len, sizeof(name_len)) ||
        !WriteBytes(f, t.name.data(), name_len) ||
        !WriteBytes(f, &rows, sizeof(rows)) ||
        !WriteBytes(f, &cols, sizeof(cols)) ||
        !WriteBytes(f, t.data.data(), t.data.size() * sizeof(float))) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::OK();
}

Status ReadTensorSection(std::FILE* f, const std::string& path,
                         std::vector<NamedTensor>* tensors) {
  uint32_t count = 0;
  if (!ReadBytes(f, &count, sizeof(count))) {
    return Status::IoError("truncated archive: " + path);
  }
  tensors->clear();
  for (uint32_t i = 0; i < count; ++i) {
    NamedTensor t;
    uint32_t name_len = 0;
    uint64_t rows = 0, cols = 0;
    if (!ReadBytes(f, &name_len, sizeof(name_len))) {
      return Status::IoError("truncated archive: " + path);
    }
    if (name_len > 4096) {
      return Status::InvalidArgument("corrupt archive (name too long)");
    }
    t.name.resize(name_len);
    if (!ReadBytes(f, t.name.data(), name_len) ||
        !ReadBytes(f, &rows, sizeof(rows)) ||
        !ReadBytes(f, &cols, sizeof(cols))) {
      return Status::IoError("truncated archive: " + path);
    }
    // Checked via division: `rows * cols` itself can wrap uint64 for a
    // corrupt header (e.g. rows = cols = 2^33) and sneak past a guard on
    // the product with a tiny bogus allocation.
    constexpr uint64_t kMaxElements = 1ull << 32;
    if (cols != 0 && rows > kMaxElements / cols) {
      return Status::InvalidArgument("corrupt archive (blob too large)");
    }
    if (rows * cols > kMaxElements) {
      return Status::InvalidArgument("corrupt archive (blob too large)");
    }
    t.rows = rows;
    t.cols = cols;
    t.data.resize(rows * cols);
    if (!ReadBytes(f, t.data.data(), t.data.size() * sizeof(float))) {
      return Status::IoError("truncated archive: " + path);
    }
    tensors->push_back(std::move(t));
  }
  return Status::OK();
}

/// Atomic file write: runs `write_body` against "<path>.tmp", then
/// flushes, closes (checking both) and renames over `path`. Any failure
/// removes the temporary and leaves a pre-existing file at `path`
/// untouched, so a reported OK means the bytes are durably at `path` and
/// an error means the previous archive (if any) is still intact.
template <typename WriteBody>
Status AtomicWrite(const std::string& path, const WriteBody& write_body) {
  const std::string tmp = path + ".tmp";
  std::FILE* raw = std::fopen(tmp.c_str(), "wb");
  if (raw == nullptr) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  Status status = write_body(raw);
  if (status.ok() && std::fflush(raw) != 0) {
    status = Status::IoError("flush failed: " + tmp);
  }
  // fclose() can surface deferred write errors (e.g. disk full); treating
  // it as void used to let a torn file masquerade as a good save.
  const int close_result = std::fclose(raw);
  if (status.ok() && close_result != 0) {
    status = Status::IoError("close failed: " + tmp);
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveTensorArchive(const std::string& path,
                         const std::vector<NamedTensor>& tensors) {
  return AtomicWrite(path, [&](std::FILE* f) -> Status {
    if (!WriteBytes(f, kMagic, sizeof(kMagic)) ||
        !WriteBytes(f, &kVersion, sizeof(kVersion))) {
      return Status::IoError("write failed: " + path);
    }
    return WriteTensorSection(f, path, tensors);
  });
}

Status LoadTensorArchive(const std::string& path,
                         std::vector<NamedTensor>* tensors) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a KGRT archive: " + path);
  }
  if (!ReadBytes(f.get(), &version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported KGRT version");
  }
  return ReadTensorSection(f.get(), path, tensors);
}

namespace {

/// Reads and validates the KGRC magic + typed header, leaving the stream
/// positioned at the tensor section.
Status ReadHeaderFrom(std::FILE* f, const std::string& path,
                      CheckpointHeader* header) {
  char magic[4];
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("not a KGRC checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadBytes(f, &version, sizeof(version))) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (version != kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kCheckpointFormatVersion) + "): " + path);
  }
  header->format_version = version;
  for (std::string* field : {&header->model_name, &header->fingerprint}) {
    uint32_t len = 0;
    if (!ReadBytes(f, &len, sizeof(len))) {
      return Status::IoError("truncated checkpoint: " + path);
    }
    if (len > 4096) {
      return Status::InvalidArgument("corrupt checkpoint (header too long)");
    }
    field->resize(len);
    if (!ReadBytes(f, field->data(), len)) {
      return Status::IoError("truncated checkpoint: " + path);
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const CheckpointHeader& header,
                      const std::vector<NamedTensor>& tensors) {
  return AtomicWrite(path, [&](std::FILE* f) -> Status {
    const uint32_t version = kCheckpointFormatVersion;
    if (!WriteBytes(f, kCheckpointMagic, sizeof(kCheckpointMagic)) ||
        !WriteBytes(f, &version, sizeof(version))) {
      return Status::IoError("write failed: " + path);
    }
    for (const std::string* field : {&header.model_name,
                                     &header.fingerprint}) {
      const uint32_t len = static_cast<uint32_t>(field->size());
      if (!WriteBytes(f, &len, sizeof(len)) ||
          !WriteBytes(f, field->data(), len)) {
        return Status::IoError("write failed: " + path);
      }
    }
    return WriteTensorSection(f, path, tensors);
  });
}

Status LoadCheckpoint(const std::string& path, CheckpointHeader* header,
                      std::vector<NamedTensor>* tensors) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  KGREC_RETURN_IF_ERROR(ReadHeaderFrom(f.get(), path, header));
  return ReadTensorSection(f.get(), path, tensors);
}

Status ReadCheckpointHeader(const std::string& path,
                            CheckpointHeader* header) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadHeaderFrom(f.get(), path, header);
}

std::vector<NamedTensor> SnapshotParams(
    const std::vector<nn::Tensor>& params) {
  std::vector<NamedTensor> out;
  for (size_t i = 0; i < params.size(); ++i) {
    NamedTensor t;
    t.name = "param_" + std::to_string(i);
    t.rows = params[i].rows();
    t.cols = params[i].cols();
    t.data.assign(params[i].data(), params[i].data() + params[i].size());
    out.push_back(std::move(t));
  }
  return out;
}

Status RestoreParams(const std::vector<NamedTensor>& snapshot,
                     std::vector<nn::Tensor>* params) {
  if (snapshot.size() != params->size()) {
    return Status::FailedPrecondition("parameter count mismatch");
  }
  for (size_t i = 0; i < snapshot.size(); ++i) {
    nn::Tensor& p = (*params)[i];
    if (snapshot[i].rows != p.rows() || snapshot[i].cols != p.cols()) {
      return Status::FailedPrecondition("shape mismatch at " +
                                        snapshot[i].name);
    }
    std::copy(snapshot[i].data.begin(), snapshot[i].data.end(), p.data());
  }
  return Status::OK();
}

}  // namespace kgrec
