#include "core/mem_stats.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace kgrec {
namespace {

/// Reads one "VmXXX:  <kB> kB" line from /proc/self/status; 0 if absent.
size_t ProcStatusBytes(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t key_len = std::strlen(key);
  char line[256];
  size_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0) continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + key_len, ": %llu", &kb) == 1) {
      bytes = static_cast<size_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

size_t PeakRssBytes() {
  const size_t vm_hwm = ProcStatusBytes("VmHWM");
  if (vm_hwm > 0) return vm_hwm;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<size_t>(usage.ru_maxrss);
#else
    return static_cast<size_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

size_t CurrentRssBytes() { return ProcStatusBytes("VmRSS"); }

}  // namespace kgrec
