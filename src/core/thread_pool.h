#ifndef KGREC_CORE_THREAD_POOL_H_
#define KGREC_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"

namespace kgrec {

/// A fixed-size pool of worker threads draining one shared FIFO queue.
///
/// The pool is deliberately work-stealing-free: tasks are executed in
/// submission order by whichever worker becomes free, which keeps the
/// scheduler trivial to reason about. Determinism of results is the
/// *caller's* contract — see ParallelFor, which partitions index ranges
/// statically and gives every partition an order-independent workspace, so
/// outputs never depend on which worker ran which chunk.
///
/// Tasks must not throw: ParallelFor wraps its chunk bodies in a
/// try/catch that converts exceptions into Status (the library itself is
/// exception-free, but model code may still hit std::bad_alloc etc.).
/// A task submitted directly through Submit() that throws anyway is
/// swallowed by the worker loop rather than taking down the process.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Never blocks; tasks run in FIFO order.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Number of hardware threads, with a floor of 1 (hardware_concurrency
  /// may report 0 on exotic platforms).
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(begin, end)` over a static partition of [0, n) using
/// `num_threads` workers and returns the first non-OK Status in chunk
/// order (so the reported error does not depend on scheduling).
///
/// Guarantees:
///  * every chunk body runs exactly once, even after another chunk fails —
///    a worker failure therefore surfaces as a Status, never as a hang;
///  * exceptions escaping `body` are caught and converted to
///    Status::Internal;
///  * with num_threads <= 1 (or n <= 1) the body runs inline on the
///    calling thread with zero pool overhead.
///
/// Chunks are contiguous, so a body that writes only to slots of a
/// preallocated output indexed by its own range is race-free and produces
/// results independent of the thread count.
Status ParallelFor(size_t n, size_t num_threads,
                   const std::function<Status(size_t begin, size_t end)>& body);

/// Same, reusing an existing pool (all of its workers participate).
Status ParallelFor(ThreadPool& pool, size_t n,
                   const std::function<Status(size_t begin, size_t end)>& body);

}  // namespace kgrec

#endif  // KGREC_CORE_THREAD_POOL_H_
