#ifndef KGREC_CORE_STRING_POOL_H_
#define KGREC_CORE_STRING_POOL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "core/mem_stats.h"

namespace kgrec {

/// An append-only interning arena for short strings (entity / relation
/// names). Characters live in chunked blocks that are never reallocated,
/// so the `std::string_view`s handed out stay valid for the pool's
/// lifetime — which lets a lookup map key on views *into* the pool
/// instead of owning a second copy of every name (the KnowledgeGraph
/// stored each entity name twice before this existed).
///
/// Logical cost per string: length bytes in a block + one 16-byte view,
/// versus 32+ bytes of std::string header plus its own heap block.
class StringPool {
 public:
  StringPool() = default;

  /// Pools cannot be copied cheaply (views would need rebasing); they
  /// move fine because block storage is pointer-stable.
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;
  StringPool(const StringPool& other) { CopyFrom(other); }
  StringPool& operator=(const StringPool& other) {
    if (this != &other) {
      blocks_.clear();
      views_.clear();
      block_used_ = 0;
      block_cap_ = 0;
      CopyFrom(other);
    }
    return *this;
  }

  /// Appends a copy of `s` and returns its index. Does NOT deduplicate —
  /// callers that intern keep their own name -> index map (keyed on the
  /// returned view to avoid the second copy).
  uint32_t Append(std::string_view s) {
    if (s.size() > block_cap_ - block_used_) NewBlock(s.size());
    char* dst = blocks_.back().get() + block_used_;
    std::memcpy(dst, s.data(), s.size());
    block_used_ += s.size();
    views_.emplace_back(dst, s.size());
    return static_cast<uint32_t>(views_.size() - 1);
  }

  std::string_view Get(uint32_t index) const { return views_[index]; }

  size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  void MemoryUse(MemoryVisitor& visitor, const std::string& name) const {
    size_t chars = 0;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      chars += (i + 1 == blocks_.size()) ? block_cap_ : kBlockSize;
    }
    visitor.Add(name + ".chars", chars);
    visitor.Add(name + ".views", VectorBytes(views_));
  }

 private:
  static constexpr size_t kBlockSize = size_t{1} << 16;

  void NewBlock(size_t min_size) {
    const size_t cap = min_size > kBlockSize ? min_size : kBlockSize;
    blocks_.push_back(std::make_unique<char[]>(cap));
    block_used_ = 0;
    block_cap_ = cap;
  }

  void CopyFrom(const StringPool& other) {
    views_.reserve(other.views_.size());
    for (std::string_view v : other.views_) Append(v);
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;
  size_t block_cap_ = 0;
  std::vector<std::string_view> views_;
};

}  // namespace kgrec

#endif  // KGREC_CORE_STRING_POOL_H_
