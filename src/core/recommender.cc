#include "core/recommender.h"

#include <numeric>
#include <utility>

#include "core/model_state.h"
#include "core/serialize.h"

namespace kgrec {

std::vector<float> Recommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> scores(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    scores[i] = Score(user, items[i]);
  }
  return scores;
}

std::vector<float> Recommender::ScoreAll(int32_t user,
                                         int32_t num_items) const {
  std::vector<int32_t> items(num_items);
  std::iota(items.begin(), items.end(), 0);
  return ScoreItems(user, items);
}

Status Recommender::Update(const RecContext& /*context*/,
                           const EventBatch& /*batch*/) {
  return Status::Unimplemented("model '" + name() +
                               "' has no online update path");
}

Status Recommender::VisitState(StateVisitor* /*visitor*/) {
  return Status::FailedPrecondition("model '" + name() +
                                    "' does not support checkpointing");
}

Status Recommender::PrepareLoad(const RecContext& /*context*/) {
  return Status::OK();
}

Status Recommender::FinishLoad(const RecContext& /*context*/) {
  return Status::OK();
}

Status Recommender::Save(const std::string& path) const {
  StatePacker packer;
  // VisitState is shared between the pack and unpack directions, so it
  // takes mutable pointers; the packing visitor only reads through them.
  KGREC_RETURN_IF_ERROR(
      const_cast<Recommender*>(this)->VisitState(&packer));
  CheckpointHeader header;
  header.model_name = name();
  header.fingerprint = HyperFingerprint();
  return SaveCheckpoint(path, header, packer.TakeTensors());
}

Status Recommender::Load(const RecContext& context, const std::string& path) {
  CheckpointHeader header;
  std::vector<NamedTensor> tensors;
  KGREC_RETURN_IF_ERROR(LoadCheckpoint(path, &header, &tensors));
  if (header.model_name != name()) {
    return Status::FailedPrecondition(
        "checkpoint was saved by model '" + header.model_name +
        "' but is being loaded into '" + name() + "': " + path);
  }
  if (header.fingerprint != HyperFingerprint()) {
    return Status::FailedPrecondition(
        "hyper-parameter fingerprint mismatch for '" + name() +
        "': checkpoint has [" + header.fingerprint + "], this instance has [" +
        HyperFingerprint() + "]: " + path);
  }
  KGREC_RETURN_IF_ERROR(PrepareLoad(context));
  StateUnpacker unpacker(std::move(tensors));
  KGREC_RETURN_IF_ERROR(VisitState(&unpacker));
  KGREC_RETURN_IF_ERROR(unpacker.CheckFullyConsumed());
  return FinishLoad(context);
}

}  // namespace kgrec
