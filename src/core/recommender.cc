#include "core/recommender.h"

namespace kgrec {

std::vector<float> Recommender::ScoreAll(int32_t user,
                                         int32_t num_items) const {
  std::vector<float> scores(num_items);
  for (int32_t j = 0; j < num_items; ++j) scores[j] = Score(user, j);
  return scores;
}

}  // namespace kgrec
