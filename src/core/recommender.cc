#include "core/recommender.h"

#include <numeric>

namespace kgrec {

std::vector<float> Recommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> scores(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    scores[i] = Score(user, items[i]);
  }
  return scores;
}

std::vector<float> Recommender::ScoreAll(int32_t user,
                                         int32_t num_items) const {
  std::vector<int32_t> items(num_items);
  std::iota(items.begin(), items.end(), 0);
  return ScoreItems(user, items);
}

}  // namespace kgrec
