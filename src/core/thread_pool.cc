#include "core/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

namespace kgrec {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::HardwareThreads() {
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      // Submit() tasks own their error reporting; ParallelFor never lets
      // an exception reach this point. Swallow rather than terminate.
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

Status RunChunkGuarded(const std::function<Status(size_t, size_t)>& body,
                       size_t begin, size_t end) {
  try {
    return body(begin, end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel task threw a non-std exception");
  }
}

struct ChunkPlan {
  size_t num_chunks = 0;
  size_t chunk_size = 0;
};

ChunkPlan PlanChunks(size_t n, size_t num_threads) {
  ChunkPlan plan;
  // A few chunks per worker smooths out uneven per-index cost without
  // work stealing; chunk boundaries depend only on (n, num_threads).
  plan.num_chunks = std::min(n, num_threads * 4);
  plan.chunk_size = (n + plan.num_chunks - 1) / plan.num_chunks;
  return plan;
}

}  // namespace

Status ParallelFor(size_t n, size_t num_threads,
                   const std::function<Status(size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  if (num_threads <= 1 || n == 1) return RunChunkGuarded(body, 0, n);
  ThreadPool pool(std::min(num_threads, n));
  return ParallelFor(pool, n, body);
}

Status ParallelFor(ThreadPool& pool, size_t n,
                   const std::function<Status(size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  if (pool.num_threads() <= 1 || n == 1) return RunChunkGuarded(body, 0, n);
  const ChunkPlan plan = PlanChunks(n, pool.num_threads());
  std::vector<Status> statuses(plan.num_chunks);

  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t remaining = plan.num_chunks;
  for (size_t c = 0; c < plan.num_chunks; ++c) {
    const size_t begin = c * plan.chunk_size;
    const size_t end = std::min(n, begin + plan.chunk_size);
    pool.Submit([&, c, begin, end] {
      Status status = RunChunkGuarded(body, begin, end);
      std::unique_lock<std::mutex> lock(done_mutex);
      statuses[c] = std::move(status);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&remaining] { return remaining == 0; });
  }
  // First failure in chunk order, independent of scheduling.
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace kgrec
