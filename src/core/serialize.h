#ifndef KGREC_CORE_SERIALIZE_H_
#define KGREC_CORE_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "math/dense.h"
#include "nn/tensor.h"

namespace kgrec {

/// Binary tensor archive ("KGRT" format): persists a list of named,
/// shaped float blobs. Used to checkpoint trained models (KGE tables,
/// embedding matrices) across processes.
///
/// Layout: magic "KGRT", uint32 version, uint32 count, then per entry:
/// uint32 name length + bytes, uint64 rows, uint64 cols, rows*cols
/// little-endian floats.
struct NamedTensor {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> data;
};

/// Writes the archive; overwrites any existing file.
Status SaveTensorArchive(const std::string& path,
                         const std::vector<NamedTensor>& tensors);

/// Reads the archive. Fails with IoError / InvalidArgument on missing or
/// corrupt files.
Status LoadTensorArchive(const std::string& path,
                         std::vector<NamedTensor>* tensors);

/// Convenience: snapshots a list of parameters (e.g. KgeModel::Params())
/// with names "param_0", "param_1", ...
std::vector<NamedTensor> SnapshotParams(const std::vector<nn::Tensor>& params);

/// Restores a snapshot into existing parameters; shapes must match
/// exactly (FailedPrecondition otherwise).
Status RestoreParams(const std::vector<NamedTensor>& snapshot,
                     std::vector<nn::Tensor>* params);

}  // namespace kgrec

#endif  // KGREC_CORE_SERIALIZE_H_
