#ifndef KGREC_CORE_SERIALIZE_H_
#define KGREC_CORE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "math/dense.h"
#include "nn/tensor.h"

namespace kgrec {

/// Binary tensor archive ("KGRT" format): persists a list of named,
/// shaped float blobs. Used to checkpoint trained models (KGE tables,
/// embedding matrices) across processes.
///
/// Layout: magic "KGRT", uint32 version, uint32 count, then per entry:
/// uint32 name length + bytes, uint64 rows, uint64 cols, rows*cols
/// little-endian floats.
struct NamedTensor {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> data;
};

/// Writes the archive; overwrites any existing file. The write is
/// atomic: bytes go to "<path>.tmp" and are renamed over `path` only
/// after a verified flush + close, so a crash mid-write or a failed
/// flush (disk full) can neither leave a torn archive at `path` nor
/// clobber a previous good one.
Status SaveTensorArchive(const std::string& path,
                         const std::vector<NamedTensor>& tensors);

/// Reads the archive. Fails with IoError / InvalidArgument on missing or
/// corrupt files.
Status LoadTensorArchive(const std::string& path,
                         std::vector<NamedTensor>* tensors);

/// Current version of the model-checkpoint container format ("KGRC").
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// Typed header of a model checkpoint: identifies the concrete model, the
/// container format revision and the hyper-parameters the model was
/// trained with, so restore can reconstruct the right type and refuse
/// mismatched checkpoints with a clear Status instead of garbage scores.
struct CheckpointHeader {
  std::string model_name;
  /// Hyper-parameter fingerprint (Recommender::HyperFingerprint()).
  std::string fingerprint;
  uint32_t format_version = kCheckpointFormatVersion;
};

/// Model checkpoint ("KGRC" format): the typed header followed by a KGRT
/// tensor section. Layout: magic "KGRC", uint32 format version, uint32
/// name length + bytes, uint32 fingerprint length + bytes, then the same
/// count + entry sequence as a KGRT archive. Writes are atomic like
/// SaveTensorArchive.
Status SaveCheckpoint(const std::string& path, const CheckpointHeader& header,
                      const std::vector<NamedTensor>& tensors);

/// Reads a full checkpoint (header + tensors). Fails with IoError /
/// InvalidArgument on missing, truncated, corrupt or wrong-version files.
Status LoadCheckpoint(const std::string& path, CheckpointHeader* header,
                      std::vector<NamedTensor>* tensors);

/// Reads only the typed header (cheap peek used by LoadModel to decide
/// which concrete type to construct before restoring).
Status ReadCheckpointHeader(const std::string& path, CheckpointHeader* header);

/// Convenience: snapshots a list of parameters (e.g. KgeModel::Params())
/// with names "param_0", "param_1", ...
std::vector<NamedTensor> SnapshotParams(const std::vector<nn::Tensor>& params);

/// Restores a snapshot into existing parameters; shapes must match
/// exactly (FailedPrecondition otherwise).
Status RestoreParams(const std::vector<NamedTensor>& snapshot,
                     std::vector<nn::Tensor>* params);

}  // namespace kgrec

#endif  // KGREC_CORE_SERIALIZE_H_
