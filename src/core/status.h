#ifndef KGREC_CORE_STATUS_H_
#define KGREC_CORE_STATUS_H_

#include <string>
#include <utility>

namespace kgrec {

/// Error categories used across the library. The library does not use C++
/// exceptions; fallible operations return a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  /// The operation was refused by an overloaded or shutting-down
  /// component (e.g. the serving router's admission queue); the request
  /// was never executed and may be retried.
  kUnavailable = 7,
  /// The operation exists in the interface but this implementation does
  /// not provide it (e.g. Update() on a model without an online path);
  /// the receiver's state is untouched.
  kUnimplemented = 8,
};

/// Lightweight status object modeled after the common database-library
/// idiom (RocksDB/Arrow): cheap to return, carries a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad triple".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns early with the status if the expression is not OK.
#define KGREC_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::kgrec::Status kgrec_status_tmp_ = (expr);     \
    if (!kgrec_status_tmp_.ok()) {                  \
      return kgrec_status_tmp_;                     \
    }                                               \
  } while (0)

}  // namespace kgrec

#endif  // KGREC_CORE_STATUS_H_
