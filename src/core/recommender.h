#ifndef KGREC_CORE_RECOMMENDER_H_
#define KGREC_CORE_RECOMMENDER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/interactions.h"
#include "data/synthetic.h"
#include "graph/knowledge_graph.h"

namespace kgrec {

class StateVisitor;
struct EventBatch;  // data/event_stream.h

/// Everything a model may consume at training time. Models use the
/// subset they need: CF baselines read only `train`; embedding-based
/// methods add `item_kg`; CFKG/KGAT/path-based methods read
/// `user_item_graph`.
///
/// Entity-layout conventions:
///  * in `item_kg`, entity j == item j for j < train->num_items();
///  * in `user_item_graph->kg`, entity u == user u and entity
///    (num_users + j) == item j (see UserItemGraph helpers).
struct RecContext {
  const InteractionDataset* train = nullptr;
  const KnowledgeGraph* item_kg = nullptr;
  const UserItemGraph* user_item_graph = nullptr;
  uint64_t seed = 7;
};

/// Base interface of every recommender in the zoo (survey Section 2.2):
/// learn representations, expose a scoring function f(u, v) -> y_hat, and
/// rank items by descending preference score.
///
/// Serve-path contract: after Fit() (or Load()), the const methods —
/// Score, ScoreItems, ScoreAll — are **mutation-free and thread-safe**:
/// any number of threads may score concurrently with no locking. No model
/// may hide writes behind `mutable` members or const_cast on this path;
/// per-call scratch lives on the stack of the call. The serving layer
/// (serve/serve_handle.h) holds models as `const Recommender` so the
/// compiler enforces the const half, and the TSan-gated serve concurrency
/// suite enforces the no-hidden-writes half across the zoo.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// A short identifier, e.g. "RippleNet".
  virtual std::string name() const = 0;

  /// Trains the model. Must be called exactly once before scoring.
  virtual void Fit(const RecContext& context) = 0;

  /// Predicted preference y_hat_{u,v} as an unnormalized score (higher =
  /// preferred). Implementations must be usable for any valid user/item
  /// pair, including items unseen in training (cold start).
  virtual float Score(int32_t user, int32_t item) const = 0;

  /// Scores a batch of candidate items for one user; the hot path of both
  /// evaluation protocols and of top-N serving (rank N candidates with
  /// one call instead of N f(u, v) evaluations).
  ///
  /// Contract: `ScoreItems(u, items)[i]` must equal `Score(u, items[i])`
  /// **bitwise** for every model, so the eval protocols may route through
  /// either path without changing metrics (registry_smoke_test locks this
  /// down for the whole zoo). The default loops over Score(); models that
  /// recompute per-user state on every Score() call (ripple sets, H-hop
  /// receptive fields, path enumeration) override it to hoist that state
  /// out of the per-candidate loop. Overrides must therefore only batch
  /// row-independent work — never fold scores across candidates.
  virtual std::vector<float> ScoreItems(int32_t user,
                                        std::span<const int32_t> items) const;

  /// Scores every item for the user. Routed through ScoreItems(), so a
  /// batched override accelerates full-catalog ranking too.
  virtual std::vector<float> ScoreAll(int32_t user, int32_t num_items) const;

  /// Serializes the fitted model to a KGRC checkpoint at `path` (typed
  /// header naming the model, format version and hyper-parameter
  /// fingerprint, followed by the model's learned state as a KGRT tensor
  /// section). The write is atomic — a failed save never clobbers an
  /// existing good checkpoint. Must be called after Fit().
  Status Save(const std::string& path) const;

  /// Restores a model saved by Save() into this un-fitted instance. The
  /// context must describe the same dataset the model was trained on:
  /// derived state that is deterministically rebuildable (ripple sets,
  /// path contexts, similarity lists, sampled neighborhoods) is
  /// recomputed from it rather than stored, and the restored model's
  /// ScoreItems() output is bitwise identical to the fitted one's
  /// (enforced zoo-wide by bench/checkpoint_roundtrip and
  /// registry_smoke_test). Refuses checkpoints whose model name, format
  /// version or hyper-parameter fingerprint do not match.
  Status Load(const RecContext& context, const std::string& path);

  /// Deterministic "key=value;..." rendering of the hyper-parameters,
  /// stored in the checkpoint header and compared on Load so a
  /// checkpoint trained under one config cannot be silently served under
  /// another.
  virtual std::string HyperFingerprint() const { return ""; }

  /// Opt-in online update (DESIGN.md §13): folds a batch of stream
  /// events into the fitted model without a full retrain. `context`
  /// must point at the world AFTER the batch was applied (the grown
  /// InteractionDataset / KnowledgeGraph / UserItemGraph), with the
  /// same seed the model was fit under.
  ///
  /// Contract for implementers (enforced zoo-wide by the update suite
  /// and bench/online_updates --smoke):
  ///  * deterministic — runs serially; every RNG draw comes from
  ///    counter-keyed forks of Rng(context.seed) (per-event:
  ///    Fork(event.timestamp); per-new-row: Fork(row id)), never from
  ///    stored RNG state, so fit->update and save->load->update are
  ///    bitwise identical and no thread count enters the result;
  ///  * after Update returns, the serve-path const contract holds
  ///    again (Score/ScoreItems thread-safe, mutation-free);
  ///  * on any non-OK return the model is unchanged.
  /// The default refuses with kUnimplemented and touches nothing.
  virtual Status Update(const RecContext& context, const EventBatch& batch);

  /// True when this model implements Update(). Registry-queryable via
  /// SupportsUpdate(name) without fitting (a property of the type).
  virtual bool SupportsUpdate() const { return false; }

 protected:
  /// Names every piece of learned state for Save (pack) and Load
  /// (unpack); see StateVisitor (core/model_state.h). State rebuildable
  /// from the RecContext belongs in PrepareLoad/FinishLoad instead.
  virtual Status VisitState(StateVisitor* visitor);

  /// Load step 1, before the state is unpacked: rebuild derived
  /// structures and construct parameter-holding modules (layers, KGE
  /// backends) so VisitState can restore them in place. Deterministic
  /// replays of the Fit() preamble belong here.
  virtual Status PrepareLoad(const RecContext& context);

  /// Load step 2, after the state is unpacked: recompute caches that
  /// depend on the restored parameters (e.g. PGPR's beam search).
  virtual Status FinishLoad(const RecContext& context);
};

}  // namespace kgrec

#endif  // KGREC_CORE_RECOMMENDER_H_
