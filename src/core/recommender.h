#ifndef KGREC_CORE_RECOMMENDER_H_
#define KGREC_CORE_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/interactions.h"
#include "data/synthetic.h"
#include "graph/knowledge_graph.h"

namespace kgrec {

/// Everything a model may consume at training time. Models use the
/// subset they need: CF baselines read only `train`; embedding-based
/// methods add `item_kg`; CFKG/KGAT/path-based methods read
/// `user_item_graph`.
///
/// Entity-layout conventions:
///  * in `item_kg`, entity j == item j for j < train->num_items();
///  * in `user_item_graph->kg`, entity u == user u and entity
///    (num_users + j) == item j (see UserItemGraph helpers).
struct RecContext {
  const InteractionDataset* train = nullptr;
  const KnowledgeGraph* item_kg = nullptr;
  const UserItemGraph* user_item_graph = nullptr;
  uint64_t seed = 7;
};

/// Base interface of every recommender in the zoo (survey Section 2.2):
/// learn representations, expose a scoring function f(u, v) -> y_hat, and
/// rank items by descending preference score.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// A short identifier, e.g. "RippleNet".
  virtual std::string name() const = 0;

  /// Trains the model. Must be called exactly once before scoring.
  virtual void Fit(const RecContext& context) = 0;

  /// Predicted preference y_hat_{u,v} as an unnormalized score (higher =
  /// preferred). Implementations must be usable for any valid user/item
  /// pair, including items unseen in training (cold start).
  virtual float Score(int32_t user, int32_t item) const = 0;

  /// Scores every item for the user. The default loops over Score();
  /// models with cheap batch scoring may override.
  virtual std::vector<float> ScoreAll(int32_t user, int32_t num_items) const;
};

}  // namespace kgrec

#endif  // KGREC_CORE_RECOMMENDER_H_
