#ifndef KGREC_CORE_RECOMMENDER_H_
#define KGREC_CORE_RECOMMENDER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/interactions.h"
#include "data/synthetic.h"
#include "graph/knowledge_graph.h"

namespace kgrec {

/// Everything a model may consume at training time. Models use the
/// subset they need: CF baselines read only `train`; embedding-based
/// methods add `item_kg`; CFKG/KGAT/path-based methods read
/// `user_item_graph`.
///
/// Entity-layout conventions:
///  * in `item_kg`, entity j == item j for j < train->num_items();
///  * in `user_item_graph->kg`, entity u == user u and entity
///    (num_users + j) == item j (see UserItemGraph helpers).
struct RecContext {
  const InteractionDataset* train = nullptr;
  const KnowledgeGraph* item_kg = nullptr;
  const UserItemGraph* user_item_graph = nullptr;
  uint64_t seed = 7;
};

/// Base interface of every recommender in the zoo (survey Section 2.2):
/// learn representations, expose a scoring function f(u, v) -> y_hat, and
/// rank items by descending preference score.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// A short identifier, e.g. "RippleNet".
  virtual std::string name() const = 0;

  /// Trains the model. Must be called exactly once before scoring.
  virtual void Fit(const RecContext& context) = 0;

  /// Predicted preference y_hat_{u,v} as an unnormalized score (higher =
  /// preferred). Implementations must be usable for any valid user/item
  /// pair, including items unseen in training (cold start).
  virtual float Score(int32_t user, int32_t item) const = 0;

  /// Scores a batch of candidate items for one user; the hot path of both
  /// evaluation protocols and of top-N serving (rank N candidates with
  /// one call instead of N f(u, v) evaluations).
  ///
  /// Contract: `ScoreItems(u, items)[i]` must equal `Score(u, items[i])`
  /// **bitwise** for every model, so the eval protocols may route through
  /// either path without changing metrics (registry_smoke_test locks this
  /// down for the whole zoo). The default loops over Score(); models that
  /// recompute per-user state on every Score() call (ripple sets, H-hop
  /// receptive fields, path enumeration) override it to hoist that state
  /// out of the per-candidate loop. Overrides must therefore only batch
  /// row-independent work — never fold scores across candidates.
  virtual std::vector<float> ScoreItems(int32_t user,
                                        std::span<const int32_t> items) const;

  /// Scores every item for the user. Routed through ScoreItems(), so a
  /// batched override accelerates full-catalog ranking too.
  virtual std::vector<float> ScoreAll(int32_t user, int32_t num_items) const;
};

}  // namespace kgrec

#endif  // KGREC_CORE_RECOMMENDER_H_
