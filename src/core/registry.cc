#include "core/registry.h"

#include "core/serialize.h"
#include "retrieval/factors.h"

#include "cf/fm.h"
#include "cf/knn.h"
#include "cf/mf.h"
#include "cf/popularity.h"
#include "embed/cfkg.h"
#include "embed/cke.h"
#include "embed/dkfm.h"
#include "embed/dkn.h"
#include "embed/ecfkg.h"
#include "embed/entity2rec.h"
#include "embed/ksr.h"
#include "embed/ktgan.h"
#include "embed/ktup.h"
#include "embed/mkr.h"
#include "embed/sed.h"
#include "embed/shine.h"
#include "path/ekar.h"
#include "path/fmg.h"
#include "path/hete_cf.h"
#include "path/hete_mf.h"
#include "path/herec.h"
#include "path/heterec.h"
#include "path/kprn.h"
#include "path/mcrec.h"
#include "path/pgpr.h"
#include "path/proppr.h"
#include "path/rkge.h"
#include "path/rulerec.h"
#include "unified/akupm.h"
#include "unified/kgat.h"
#include "unified/kgcn.h"
#include "unified/kni.h"
#include "unified/ripplenet.h"
#include "unified/ripplenet_agg.h"

namespace kgrec {

const char* UsageTypeName(UsageType usage) {
  switch (usage) {
    case UsageType::kNone:
      return "-";
    case UsageType::kEmbedding:
      return "Emb.";
    case UsageType::kPath:
      return "Path";
    case UsageType::kUnified:
      return "Uni.";
  }
  return "?";
}

std::vector<MethodInfo> AllMethods() {
  std::vector<MethodInfo> methods;
  auto add = [&methods](MethodInfo info) { methods.push_back(info); };

  // --- Non-KG baselines (survey Section 2.2) -------------------------
  add({.name = "Popularity", .venue = "-", .year = 0, .implemented = true});
  add({.name = "UserKNN", .venue = "-", .year = 0, .implemented = true});
  add({.name = "ItemKNN", .venue = "-", .year = 0, .implemented = true});
  add({.name = "MF", .venue = "-", .year = 0, .uses_mf = true,
       .implemented = true});
  add({.name = "BPR-MF", .venue = "UAI", .year = 2009, .uses_mf = true,
       .implemented = true});
  add({.name = "FM", .venue = "ICDM", .year = 2010, .uses_mf = true,
       .implemented = true});

  // --- Embedding-based methods (Table 3, top block) -------------------
  add({.name = "CKE", .venue = "KDD", .year = 2016,
       .usage = UsageType::kEmbedding, .uses_autoencoder = true,
       .implemented = true});
  add({.name = "entity2rec", .venue = "RecSys", .year = 2017,
       .usage = UsageType::kEmbedding, .implemented = true});
  add({.name = "ECFKG", .venue = "Algorithms", .year = 2018,
       .usage = UsageType::kEmbedding, .implemented = true});
  add({.name = "SHINE", .venue = "WSDM", .year = 2018,
       .usage = UsageType::kEmbedding, .uses_autoencoder = true,
       .implemented = true});
  add({.name = "DKN", .venue = "WWW", .year = 2018,
       .usage = UsageType::kEmbedding, .uses_cnn = true,
       .uses_attention = true, .implemented = true});
  add({.name = "KSR", .venue = "SIGIR", .year = 2018,
       .usage = UsageType::kEmbedding, .uses_rnn = true,
       .uses_attention = true, .implemented = true});
  add({.name = "CFKG", .venue = "SIGIR", .year = 2018,
       .usage = UsageType::kEmbedding, .implemented = true});
  add({.name = "KTGAN", .venue = "ICDM", .year = 2018,
       .usage = UsageType::kEmbedding, .uses_gan = true,
       .implemented = true});
  add({.name = "KTUP", .venue = "WWW", .year = 2019,
       .usage = UsageType::kEmbedding, .implemented = true});
  add({.name = "MKR", .venue = "WWW", .year = 2019,
       .usage = UsageType::kEmbedding, .uses_attention = true,
       .implemented = true});
  add({.name = "DKFM", .venue = "WWW", .year = 2019,
       .usage = UsageType::kEmbedding, .implemented = true});
  add({.name = "SED", .venue = "WWW", .year = 2019,
       .usage = UsageType::kEmbedding, .implemented = true});
  add({.name = "RCF", .venue = "SIGIR", .year = 2019,
       .usage = UsageType::kEmbedding, .uses_attention = true});
  add({.name = "BEM", .venue = "CIKM", .year = 2019,
       .usage = UsageType::kEmbedding});

  // --- Path-based methods (Table 3, middle block) ----------------------
  add({.name = "Hete-MF", .venue = "IJCAI", .year = 2013,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "HeteRec", .venue = "RecSys", .year = 2013,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "HeteRec-p", .venue = "WSDM", .year = 2014,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "Hete-CF", .venue = "ICDM", .year = 2014,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "SemRec", .venue = "CIKM", .year = 2015,
       .usage = UsageType::kPath, .uses_mf = true});
  add({.name = "ProPPR", .venue = "RecSys", .year = 2016,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "FMG", .venue = "KDD", .year = 2017,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "MCRec", .venue = "KDD", .year = 2018,
       .usage = UsageType::kPath, .uses_cnn = true, .uses_attention = true,
       .uses_mf = true, .implemented = true});
  add({.name = "RKGE", .venue = "RecSys", .year = 2018,
       .usage = UsageType::kPath, .uses_rnn = true, .uses_attention = true,
       .implemented = true});
  add({.name = "HERec", .venue = "TKDE", .year = 2019,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "KPRN", .venue = "AAAI", .year = 2019,
       .usage = UsageType::kPath, .uses_rnn = true, .uses_attention = true,
       .implemented = true});
  add({.name = "RuleRec", .venue = "WWW", .year = 2019,
       .usage = UsageType::kPath, .uses_mf = true, .implemented = true});
  add({.name = "PGPR", .venue = "SIGIR", .year = 2019,
       .usage = UsageType::kPath, .uses_rl = true, .implemented = true});
  add({.name = "EIUM", .venue = "MM", .year = 2019,
       .usage = UsageType::kPath, .uses_cnn = true, .uses_attention = true});
  add({.name = "Ekar", .venue = "arXiv", .year = 2019,
       .usage = UsageType::kPath, .uses_rl = true, .implemented = true});

  // --- Unified methods (Table 3, bottom block) -------------------------
  add({.name = "RippleNet", .venue = "CIKM", .year = 2018,
       .usage = UsageType::kUnified, .uses_attention = true,
       .implemented = true});
  add({.name = "RippleNet-agg", .venue = "TOIS", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .uses_gnn = true, .implemented = true});
  add({.name = "KGCN", .venue = "WWW", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .uses_gnn = true, .implemented = true});
  add({.name = "KGAT", .venue = "KDD", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .uses_gnn = true, .implemented = true});
  add({.name = "KGCN-LS", .venue = "KDD", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .uses_gnn = true, .implemented = true});
  add({.name = "AKUPM", .venue = "KDD", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .implemented = true});
  add({.name = "KNI", .venue = "KDD", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .uses_gnn = true, .implemented = true});
  add({.name = "IntentGC", .venue = "KDD", .year = 2019,
       .usage = UsageType::kUnified, .uses_gnn = true});
  add({.name = "RCoLM", .venue = "IEEE Access", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true});
  add({.name = "AKGE", .venue = "arXiv", .year = 2019,
       .usage = UsageType::kUnified, .uses_attention = true,
       .uses_gnn = true});
  return methods;
}

std::unique_ptr<Recommender> MakeRecommender(const std::string& name) {
  if (name == "Popularity") return std::make_unique<PopularityRecommender>();
  if (name == "UserKNN") return std::make_unique<UserKnnRecommender>();
  if (name == "ItemKNN") return std::make_unique<ItemKnnRecommender>();
  if (name == "MF") return std::make_unique<MfRecommender>();
  if (name == "BPR-MF") return std::make_unique<BprMfRecommender>();
  if (name == "FM") return std::make_unique<FmRecommender>();
  if (name == "CKE") return std::make_unique<CkeRecommender>();
  if (name == "entity2rec") return std::make_unique<Entity2RecRecommender>();
  if (name == "SHINE") return std::make_unique<ShineRecommender>();
  if (name == "KSR") return std::make_unique<KsrRecommender>();
  if (name == "KTGAN") return std::make_unique<KtganRecommender>();
  if (name == "DKN") return std::make_unique<DknRecommender>();
  if (name == "CFKG") return std::make_unique<CfkgRecommender>();
  if (name == "ECFKG") return std::make_unique<EcfkgRecommender>();
  if (name == "DKFM") return std::make_unique<DkfmRecommender>();
  if (name == "SED") return std::make_unique<SedRecommender>();
  if (name == "KTUP") return std::make_unique<KtupRecommender>();
  if (name == "MKR") return std::make_unique<MkrRecommender>();
  if (name == "Hete-MF") return std::make_unique<HeteMfRecommender>();
  if (name == "Hete-CF") return std::make_unique<HeteCfRecommender>();
  if (name == "HeteRec") return std::make_unique<HeteRecRecommender>();
  if (name == "HERec") return std::make_unique<HERecRecommender>();
  if (name == "HeteRec-p") {
    HeteRecConfig config;
    config.num_user_clusters = 4;
    return std::make_unique<HeteRecRecommender>(config);
  }
  if (name == "FMG") return std::make_unique<FmgRecommender>();
  if (name == "RKGE") return std::make_unique<RkgeRecommender>();
  if (name == "MCRec") return std::make_unique<McRecRecommender>();
  if (name == "KPRN") return std::make_unique<KprnRecommender>();
  if (name == "RuleRec") return std::make_unique<RuleRecRecommender>();
  if (name == "PGPR") return std::make_unique<PgprRecommender>();
  if (name == "ProPPR") return std::make_unique<ProPprRecommender>();
  if (name == "Ekar") return std::make_unique<EkarRecommender>();
  if (name == "RippleNet") return std::make_unique<RippleNetRecommender>();
  if (name == "RippleNet-agg") {
    return std::make_unique<RippleNetAggRecommender>();
  }
  if (name == "KNI") return std::make_unique<KniRecommender>();
  if (name == "AKUPM") return std::make_unique<AkupmRecommender>();
  if (name == "KGCN") return std::make_unique<KgcnRecommender>();
  if (name == "KGCN-LS") {
    KgcnConfig config;
    config.ls_weight = 0.5f;
    return std::make_unique<KgcnRecommender>(config);
  }
  if (name == "KGAT") return std::make_unique<KgatRecommender>();
  return nullptr;
}

Status LoadModel(const RecContext& context, const std::string& path,
                 std::unique_ptr<Recommender>* out) {
  CheckpointHeader header;
  KGREC_RETURN_IF_ERROR(ReadCheckpointHeader(path, &header));
  std::unique_ptr<Recommender> model = MakeRecommender(header.model_name);
  if (model == nullptr) {
    return Status::InvalidArgument(
        "checkpoint names unknown model '" + header.model_name + "': " + path);
  }
  KGREC_RETURN_IF_ERROR(model->Load(context, path));
  *out = std::move(model);
  return Status::OK();
}

std::vector<std::string> ImplementedMethodNames() {
  std::vector<std::string> out;
  for (const MethodInfo& info : AllMethods()) {
    if (info.implemented) out.push_back(info.name);
  }
  return out;
}

const DotProductFactors* AsFactorizable(const Recommender& model) {
  return dynamic_cast<const DotProductFactors*>(&model);
}

bool IsFactorizable(const Recommender& model) {
  return AsFactorizable(model) != nullptr;
}

std::vector<std::string> FactorizableMethodNames() {
  std::vector<std::string> out;
  for (const std::string& name : ImplementedMethodNames()) {
    const std::unique_ptr<Recommender> model = MakeRecommender(name);
    if (model != nullptr && IsFactorizable(*model)) out.push_back(name);
  }
  return out;
}

bool SupportsUpdate(const std::string& name) {
  const std::unique_ptr<Recommender> model = MakeRecommender(name);
  return model != nullptr && model->SupportsUpdate();
}

std::vector<std::string> UpdatableMethodNames() {
  std::vector<std::string> out;
  for (const std::string& name : ImplementedMethodNames()) {
    const std::unique_ptr<Recommender> model = MakeRecommender(name);
    if (model != nullptr && model->SupportsUpdate()) out.push_back(name);
  }
  return out;
}

}  // namespace kgrec
