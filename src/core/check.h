#ifndef KGREC_CORE_CHECK_H_
#define KGREC_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace kgrec::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "KGREC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace kgrec::internal

/// Aborts the program when a programmer-error invariant does not hold.
/// Used for conditions that indicate a bug in the caller rather than a
/// recoverable input error (those return Status instead).
#define KGREC_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::kgrec::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                            \
  } while (0)

#define KGREC_CHECK_EQ(a, b) KGREC_CHECK((a) == (b))
#define KGREC_CHECK_NE(a, b) KGREC_CHECK((a) != (b))
#define KGREC_CHECK_LT(a, b) KGREC_CHECK((a) < (b))
#define KGREC_CHECK_LE(a, b) KGREC_CHECK((a) <= (b))
#define KGREC_CHECK_GT(a, b) KGREC_CHECK((a) > (b))
#define KGREC_CHECK_GE(a, b) KGREC_CHECK((a) >= (b))

#endif  // KGREC_CORE_CHECK_H_
