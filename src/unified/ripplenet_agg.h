#ifndef KGREC_UNIFIED_RIPPLENET_AGG_H_
#define KGREC_UNIFIED_RIPPLENET_AGG_H_

#include <vector>

#include "unified/ripplenet.h"

namespace kgrec {

/// RippleNet-agg (Wang et al., TOIS'19, "Exploring high-order user
/// preference on the knowledge graph"): the journal extension of
/// RippleNet that additionally refines the *candidate item* with its
/// entity ripple set — the item embedding becomes a mixture of itself and
/// its aggregated KG neighborhood, so both sides of sigma(u^T v) are
/// knowledge-enhanced.
class RippleNetAggRecommender : public RippleNetRecommender {
 public:
  explicit RippleNetAggRecommender(RippleNetConfig config = {})
      : RippleNetRecommender(config) {}

  std::string name() const override { return "RippleNet-agg"; }

 protected:
  nn::Tensor ItemVectors(const std::vector<int32_t>& items) const override;
  void PrepareAux(const RecContext& context, Rng& rng) override;

  /// Update hook: resamples the neighborhood rows of items whose KG
  /// adjacency the batch changed, each from its own Fork(item) stream.
  void RefreshAux(const RecContext& context,
                  const std::vector<int32_t>& touched_items,
                  const Rng& base_rng) override;

 private:
  /// Fixed-size sampled neighborhood per item entity, arena-backed: row
  /// j of the flat buffer holds item j's neighbor_count_ entities.
  std::vector<EntityId> item_neighbors_;  // [num_items * neighbor_count_]
  size_t neighbor_count_ = 8;
};

}  // namespace kgrec

#endif  // KGREC_UNIFIED_RIPPLENET_AGG_H_
