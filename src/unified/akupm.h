#ifndef KGREC_UNIFIED_AKUPM_H_
#define KGREC_UNIFIED_AKUPM_H_

#include "unified/ripplenet.h"

namespace kgrec {

/// AKUPM (Tang et al., KDD'19): attention-enhanced knowledge-aware user
/// preference. Like RippleNet it propagates the user's click history
/// through ripple sets, but the per-hop responses are combined with a
/// self-attention mechanism (conditioned on the candidate) instead of a
/// plain sum, letting the model weight different propagation depths per
/// user-item pair.
class AkupmRecommender : public RippleNetRecommender {
 public:
  explicit AkupmRecommender(RippleNetConfig config = {})
      : RippleNetRecommender(config) {}

  std::string name() const override { return "AKUPM"; }

 protected:
  nn::Tensor CombineResponses(const std::vector<nn::Tensor>& responses,
                              const nn::Tensor& item_vecs) const override;
};

}  // namespace kgrec

#endif  // KGREC_UNIFIED_AKUPM_H_
