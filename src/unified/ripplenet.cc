#include "unified/ripplenet.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "core/thread_pool.h"
#include "data/event_stream.h"
#include "graph/ripple.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

namespace {

// Update-path RNG streams (counter-keyed forks of Rng(context.seed)).
constexpr uint64_t kGrowStream = 101;
constexpr uint64_t kHopStream = 103;
constexpr uint64_t kPadStream = 104;
constexpr uint64_t kAuxStream = 105;

}  // namespace

void RippleNetRecommender::RippleArena::Reset(size_t num_users, size_t hops,
                                              size_t size) {
  num_hops = hops;
  hop_size = size;
  heads.assign(num_users * hops * size, 0);
  relations.assign(num_users * hops * size, 0);
  tails.assign(num_users * hops * size, 0);
  seeds.assign(num_users * size, 0);
  seed_weights.assign(num_users * size, 0.0f);
  filled.assign(num_users, 0);
}

void RippleNetRecommender::RippleArena::Grow(size_t num_users) {
  heads.resize(num_users * num_hops * hop_size, 0);
  relations.resize(num_users * num_hops * hop_size, 0);
  tails.resize(num_users * num_hops * hop_size, 0);
  seeds.resize(num_users * hop_size, 0);
  seed_weights.resize(num_users * hop_size, 0.0f);
  filled.resize(num_users, 0);
}

void RippleNetRecommender::RippleArena::MemoryUse(
    MemoryVisitor& visitor) const {
  visitor.Add("ripples.heads", VectorBytes(heads));
  visitor.Add("ripples.relations", VectorBytes(relations));
  visitor.Add("ripples.tails", VectorBytes(tails));
  visitor.Add("ripples.seeds", VectorBytes(seeds));
  visitor.Add("ripples.seed_weights", VectorBytes(seed_weights));
  visitor.Add("ripples.filled", VectorBytes(filled));
}

nn::Tensor RippleNetRecommender::Forward(
    const std::vector<int32_t>& users,
    const std::vector<int32_t>& items) const {
  const size_t batch = users.size();
  const size_t s = config_.hop_size;
  nn::Tensor v = ItemVectors(items);  // [B, d]

  // Flat per-hop index arrays across the batch.
  std::vector<nn::Tensor> responses;
  std::vector<int32_t> repeat(batch * s);
  for (size_t b = 0; b < batch; ++b) {
    for (size_t k = 0; k < s; ++k) repeat[b * s + k] = static_cast<int32_t>(b);
  }
  // 0-hop response: mean of the user's clicked-item embeddings.
  std::vector<int32_t> seed_flat(batch * s);
  std::vector<float> seed_w(batch * s);
  for (size_t b = 0; b < batch; ++b) {
    const size_t so = ripples_.SeedOffset(users[b]);
    for (size_t k = 0; k < s; ++k) {
      seed_flat[b * s + k] = ripples_.seeds[so + k];
      seed_w[b * s + k] = ripples_.seed_weights[so + k];
    }
  }
  nn::Tensor seed_emb = nn::Gather(entity_emb_, seed_flat);
  nn::Tensor seed_weights =
      nn::Tensor::FromData(batch * s, 1, std::move(seed_w));
  std::vector<nn::Tensor> all_responses{
      nn::GroupSumRows(nn::Mul(seed_emb, seed_weights), s)};

  nn::Tensor probe = v;  // Eq. 24 starts with the candidate item.
  for (size_t hop = 0; hop < config_.num_hops; ++hop) {
    std::vector<int32_t> heads(batch * s), rels(batch * s), tails(batch * s);
    for (size_t b = 0; b < batch; ++b) {
      const size_t ho = ripples_.HopOffset(users[b], hop);
      for (size_t k = 0; k < s; ++k) {
        heads[b * s + k] = ripples_.heads[ho + k];
        rels[b * s + k] = ripples_.relations[ho + k];
        tails[b * s + k] = ripples_.tails[ho + k];
      }
    }
    nn::Tensor h = nn::Gather(entity_emb_, heads);        // [B*s, d]
    nn::Tensor r = nn::Gather(relation_mats_, rels);      // [B*s, d*d]
    nn::Tensor t = nn::Gather(entity_emb_, tails);        // [B*s, d]
    nn::Tensor rh = nn::RowwiseVecMat(h, r);              // [B*s, d]
    nn::Tensor probe_rep = nn::Gather(probe, repeat);     // [B*s, d]
    nn::Tensor logits = nn::SumRows(nn::Mul(rh, probe_rep));  // [B*s, 1]
    nn::Tensor p = nn::Softmax(nn::Reshape(logits, batch, s));
    nn::Tensor p_flat = nn::Reshape(p, batch * s, 1);
    nn::Tensor o = nn::GroupSumRows(nn::Mul(t, p_flat), s);  // [B, d]
    responses.push_back(o);
    all_responses.push_back(o);
    probe = o;  // Eq. 24 replaces v with o^(h-1) for the next hop.
  }
  nn::Tensor u = CombineResponses(all_responses, v);
  return nn::SumRows(nn::Mul(u, v));  // logits; sigma applied in the loss
}

nn::Tensor RippleNetRecommender::ItemVectors(
    const std::vector<int32_t>& items) const {
  return nn::Gather(entity_emb_, items);
}

void RippleNetRecommender::PrepareAux(const RecContext& /*context*/,
                                      Rng& /*rng*/) {}

void RippleNetRecommender::RefreshAux(
    const RecContext& /*context*/,
    const std::vector<int32_t>& /*touched_items*/, const Rng& /*base_rng*/) {}

void RippleNetRecommender::FillUserRipples(
    int32_t u, const std::vector<EntityId>& seed_entities,
    const std::vector<RippleHop>& hops, Rng& resample_rng) {
  // Pads the seed slots and each hop to hop_size by resampling
  // (self-loops for isolated seeds keep shapes fixed).
  ripples_.filled[u] = 1;
  int32_t* seeds = ripples_.seeds.data() + ripples_.SeedOffset(u);
  float* weights = ripples_.seed_weights.data() + ripples_.SeedOffset(u);
  for (size_t k = 0; k < config_.hop_size; ++k) {
    seeds[k] = seed_entities[k % seed_entities.size()];
    weights[k] =
        k < seed_entities.size()
            ? 1.0f / std::min<size_t>(seed_entities.size(), config_.hop_size)
            : 0.0f;
  }
  KGREC_CHECK_EQ(hops.size(), config_.num_hops);
  for (size_t hop = 0; hop < hops.size(); ++hop) {
    int32_t* heads = ripples_.heads.data() + ripples_.HopOffset(u, hop);
    int32_t* rels = ripples_.relations.data() + ripples_.HopOffset(u, hop);
    int32_t* tails = ripples_.tails.data() + ripples_.HopOffset(u, hop);
    if (hops[hop].triples.empty()) {
      for (size_t k = 0; k < config_.hop_size; ++k) {
        heads[k] = seed_entities[0];
        rels[k] = 0;
        tails[k] = seed_entities[0];
      }
    } else {
      for (size_t k = 0; k < config_.hop_size; ++k) {
        const Triple& t = hops[hop].triples[resample_rng.UniformInt(
            hops[hop].triples.size())];
        heads[k] = t.head;
        rels[k] = t.relation;
        tails[k] = t.tail;
      }
    }
  }
}

nn::Tensor RippleNetRecommender::CombineResponses(
    const std::vector<nn::Tensor>& responses,
    const nn::Tensor& /*item_vecs*/) const {
  nn::Tensor u = responses[0];
  for (size_t i = 1; i < responses.size(); ++i) {
    u = nn::Add(u, responses[i]);
  }
  return u;
}

void RippleNetRecommender::BuildPropagationState(const RecContext& context,
                                                 Rng& rng) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const size_t d = config_.dim;

  entity_emb_ = nn::NormalInit(kg.num_entities(), d, 0.1f, rng);
  relation_mats_ = nn::NormalInit(kg.num_relations(), d * d, 0.1f, rng);
  // Identity bias so h^T R t starts near h . t.
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    for (size_t i = 0; i < d; ++i) {
      relation_mats_.data()[r * d * d + i * d + i] += 1.0f;
    }
  }

  PrepareAux(context, rng);

  // Precompute fixed-size ripple sets per user from training history
  // (FillUserRipples pads each hop to hop_size by resampling).
  ripples_.Reset(train.num_users(), config_.num_hops, config_.hop_size);
  if (config_.num_threads == 0) {
    // Legacy serial build: one shared sequential stream for every user
    // (the historical float/draw sequence, preserved exactly).
    for (int32_t u = 0; u < train.num_users(); ++u) {
      const auto& seeds = train.UserItems(u);
      if (seeds.empty()) continue;
      std::vector<EntityId> seed_entities(seeds.begin(), seeds.end());
      std::vector<RippleHop> hops = BuildRippleSets(
          kg, seed_entities, config_.num_hops, config_.hop_size * 4, rng);
      FillUserRipples(u, seed_entities, hops, rng);
    }
  } else {
    // Deterministic parallel build: hop construction and hop padding
    // each give user u its own counter-forked stream, so results are
    // bitwise-identical at any thread count. Fork() is const, so the
    // main stream is unaffected by how many draws the build makes.
    const Rng hop_rng = rng.Fork(1);
    const Rng pad_rng = rng.Fork(2);
    std::vector<std::vector<EntityId>> seed_lists(train.num_users());
    for (int32_t u = 0; u < train.num_users(); ++u) {
      const auto& seeds = train.UserItems(u);
      seed_lists[u].assign(seeds.begin(), seeds.end());
    }
    std::vector<std::vector<RippleHop>> all_hops = BuildRippleSetsParallel(
        kg, seed_lists, config_.num_hops, config_.hop_size * 4, hop_rng,
        config_.num_threads);
    const Status status = ParallelFor(
        train.num_users(), config_.num_threads,
        [&](size_t begin, size_t end) {
          for (size_t u = begin; u < end; ++u) {
            if (seed_lists[u].empty()) continue;
            Rng user_rng = pad_rng.Fork(u);
            FillUserRipples(static_cast<int32_t>(u), seed_lists[u],
                            all_hops[u], user_rng);
          }
          return Status::OK();
        });
    KGREC_CHECK(status.ok());
  }
}

Status RippleNetRecommender::Update(const RecContext& context,
                                    const EventBatch& batch) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  if (!entity_emb_.defined() || ripples_.filled.empty()) {
    return Status::FailedPrecondition(
        "RippleNet Update() requires a fitted (or loaded) model");
  }
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const Rng base_rng(context.seed);

  // Growth: new entities get counter-keyed embedding rows, new users
  // get zeroed (unfilled) arena rows.
  if (kg.num_entities() > entity_emb_.rows()) {
    entity_emb_ = nn::GrowRowsNormal(entity_emb_, kg.num_entities(),
                                     base_rng.Fork(kGrowStream), 0.1f);
  }
  if (static_cast<size_t>(train.num_users()) > ripples_.filled.size()) {
    ripples_.Grow(train.num_users());
  }

  // Who needs a ripple rebuild? Users with new interactions, plus users
  // whose history lies within num_hops of any new fact's endpoints
  // (conservative: a hop-k head sits at distance <= k-1 from a seed).
  std::vector<uint8_t> refresh(train.num_users(), 0);
  std::vector<EntityId> fact_frontier;
  std::vector<int32_t> touched_items;
  for (const Event& e : batch.events) {
    switch (e.kind) {
      case EventKind::kNewUser:
      case EventKind::kNewEntity:
        break;  // growth above is the whole fold
      case EventKind::kNewInteraction:
        refresh[e.user] = 1;
        break;
      case EventKind::kNewFact:
        fact_frontier.push_back(e.head);
        fact_frontier.push_back(e.tail);
        if (e.head < train.num_items()) touched_items.push_back(e.head);
        if (e.tail < train.num_items()) touched_items.push_back(e.tail);
        break;
    }
  }
  if (!fact_frontier.empty()) {
    // One multi-source BFS over the updated KG (inverse relations make
    // it effectively undirected) marks every item entity within
    // num_hops of a new fact; any user seeded on such an item might now
    // ripple through it.
    std::vector<int32_t> depth(kg.num_entities(), -1);
    std::vector<EntityId> frontier;
    for (EntityId e : fact_frontier) {
      if (depth[e] < 0) {
        depth[e] = 0;
        frontier.push_back(e);
      }
    }
    for (size_t hop = 0; hop < config_.num_hops && !frontier.empty(); ++hop) {
      std::vector<EntityId> next;
      for (EntityId e : frontier) {
        const Edge* edges = kg.OutEdges(e);
        const size_t degree = kg.OutDegree(e);
        for (size_t i = 0; i < degree; ++i) {
          const EntityId t = edges[i].target;
          if (depth[t] < 0) {
            depth[t] = static_cast<int32_t>(hop + 1);
            next.push_back(t);
          }
        }
      }
      frontier = std::move(next);
    }
    for (int32_t u = 0; u < train.num_users(); ++u) {
      if (refresh[u] || ripples_.empty(u)) continue;
      for (int32_t item : train.UserItems(u)) {
        if (depth[item] >= 0) {
          refresh[u] = 1;
          break;
        }
      }
    }
  }

  // Per-item aux (RippleNet-agg neighborhoods) for adjacency changes.
  std::sort(touched_items.begin(), touched_items.end());
  touched_items.erase(
      std::unique(touched_items.begin(), touched_items.end()),
      touched_items.end());
  RefreshAux(context, touched_items, base_rng.Fork(kAuxStream));

  // Rebuild each marked user's ripple row from Fork(user)-keyed streams
  // (same split as the parallel fit-time build: hops then padding).
  const Rng hop_rng = base_rng.Fork(kHopStream);
  const Rng pad_rng = base_rng.Fork(kPadStream);
  for (int32_t u = 0; u < train.num_users(); ++u) {
    if (!refresh[u]) continue;
    const auto& seeds = train.UserItems(u);
    if (seeds.empty()) continue;
    const std::vector<EntityId> seed_entities(seeds.begin(), seeds.end());
    Rng user_hop_rng = hop_rng.Fork(u);
    const std::vector<RippleHop> hops =
        BuildRippleSets(kg, seed_entities, config_.num_hops,
                        config_.hop_size * 4, user_hop_rng);
    Rng user_pad_rng = pad_rng.Fork(u);
    FillUserRipples(u, seed_entities, hops, user_pad_rng);
  }
  return Status::OK();
}

std::string RippleNetRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("hops", static_cast<double>(config_.num_hops))
      .Add("hop_size", static_cast<double>(config_.hop_size))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("kge_weight", config_.kge_weight)
      // The serial (num_threads == 0) and forked (>= 1) ripple builds
      // draw different RNG sequences, so checkpoints are only portable
      // within one mode; any thread count >= 1 is bitwise-identical.
      .Add("ripple_rng", config_.num_threads == 0 ? 0.0 : 1.0)
      .str();
}

Status RippleNetRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  return visitor->Tensor("relation_mats", &relation_mats_);
}

Status RippleNetRecommender::PrepareLoad(const RecContext& context) {
  // Replays Fit's preamble with Fit's seed: the parameter inits consume
  // the same draws before PrepareAux and the ripple build, so the ripple
  // sets (and RippleNet-agg's item neighborhoods) match training bitwise;
  // the parameter values themselves are overwritten by the restore.
  Rng rng(context.seed);
  BuildPropagationState(context, rng);
  return Status::OK();
}

void RippleNetRecommender::Fit(const RecContext& context) {
  Rng rng(context.seed);
  BuildPropagationState(context, rng);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;

  nn::Adagrad optimizer({entity_emb_, relation_mats_},
                        config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  const auto& triples = kg.triples();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        if (ripples_.empty(x.user)) continue;
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      if (users.empty()) continue;
      nn::Tensor logits = Forward(users, items);
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      if (config_.kge_weight > 0.0f) {
        // KGE regularizer: sampled triples should satisfy h^T R t > 0.
        std::vector<int32_t> heads, rels, tails;
        std::vector<float> kge_labels;
        for (size_t i = 0; i < users.size() / 2; ++i) {
          const Triple& t = triples[rng.UniformInt(triples.size())];
          heads.push_back(t.head);
          rels.push_back(t.relation);
          tails.push_back(t.tail);
          kge_labels.push_back(1.0f);
          // Corrupted tail as a negative, so the regularizer separates
          // true facts from noise instead of inflating all scores.
          heads.push_back(t.head);
          rels.push_back(t.relation);
          tails.push_back(
              static_cast<int32_t>(rng.UniformInt(kg.num_entities())));
          kge_labels.push_back(0.0f);
        }
        nn::Tensor h = nn::Gather(entity_emb_, heads);
        nn::Tensor r = nn::Gather(relation_mats_, rels);
        nn::Tensor t = nn::Gather(entity_emb_, tails);
        nn::Tensor plaus = nn::SumRows(nn::Mul(nn::RowwiseVecMat(h, r), t));
        loss = nn::Add(loss, nn::ScaleBy(nn::BceWithLogits(plaus, kge_labels),
                                         config_.kge_weight));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

float RippleNetRecommender::Score(int32_t user, int32_t item) const {
  if (ripples_.empty(user)) return 0.0f;
  std::vector<int32_t> users{user}, items{item};
  return Forward(users, items).value();
}

std::vector<float> RippleNetRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size(), 0.0f);
  if (items.empty() || ripples_.empty(user)) return out;
  const size_t s = config_.hop_size;
  const size_t so = ripples_.SeedOffset(user);

  // Once-per-user tensors, built with the same ops (and therefore the
  // same floats) a B=1 Forward() would produce for this user.
  const std::vector<int32_t> seed_ids(ripples_.seeds.begin() + so,
                                      ripples_.seeds.begin() + so + s);
  nn::Tensor seed_emb = nn::Gather(entity_emb_, seed_ids);
  nn::Tensor seed_weights = nn::Tensor::FromData(
      s, 1,
      std::vector<float>(ripples_.seed_weights.begin() + so,
                         ripples_.seed_weights.begin() + so + s));
  nn::Tensor o0 = nn::GroupSumRows(nn::Mul(seed_emb, seed_weights), s);
  std::vector<nn::Tensor> rh_hops, tail_hops;
  for (size_t hop = 0; hop < config_.num_hops; ++hop) {
    const size_t ho = ripples_.HopOffset(user, hop);
    const std::vector<int32_t> heads(ripples_.heads.begin() + ho,
                                     ripples_.heads.begin() + ho + s);
    const std::vector<int32_t> rels(ripples_.relations.begin() + ho,
                                    ripples_.relations.begin() + ho + s);
    const std::vector<int32_t> tails(ripples_.tails.begin() + ho,
                                     ripples_.tails.begin() + ho + s);
    nn::Tensor h = nn::Gather(entity_emb_, heads);        // [s, d]
    nn::Tensor r = nn::Gather(relation_mats_, rels);      // [s, d*d]
    rh_hops.push_back(nn::RowwiseVecMat(h, r));           // [s, d]
    tail_hops.push_back(nn::Gather(entity_emb_, tails));  // [s, d]
  }

  // Chunked so the [B*s, d] intermediates stay cache-resident.
  constexpr size_t kChunk = 256;
  for (size_t start = 0; start < items.size(); start += kChunk) {
    const size_t batch = std::min(items.size() - start, kChunk);
    const std::vector<int32_t> chunk(items.begin() + start,
                                     items.begin() + start + batch);
    nn::Tensor v = ItemVectors(chunk);  // [B, d]
    std::vector<int32_t> tile(batch * s), repeat(batch * s);
    for (size_t b = 0; b < batch; ++b) {
      for (size_t k = 0; k < s; ++k) {
        tile[b * s + k] = static_cast<int32_t>(k);
        repeat[b * s + k] = static_cast<int32_t>(b);
      }
    }
    const std::vector<int32_t> zeros(batch, 0);
    std::vector<nn::Tensor> all_responses{nn::Gather(o0, zeros)};  // [B, d]
    nn::Tensor probe = v;
    for (size_t hop = 0; hop < config_.num_hops; ++hop) {
      nn::Tensor rh = nn::Gather(rh_hops[hop], tile);      // [B*s, d]
      nn::Tensor t = nn::Gather(tail_hops[hop], tile);     // [B*s, d]
      nn::Tensor probe_rep = nn::Gather(probe, repeat);    // [B*s, d]
      nn::Tensor logits = nn::SumRows(nn::Mul(rh, probe_rep));
      nn::Tensor p = nn::Softmax(nn::Reshape(logits, batch, s));
      nn::Tensor p_flat = nn::Reshape(p, batch * s, 1);
      nn::Tensor o = nn::GroupSumRows(nn::Mul(t, p_flat), s);  // [B, d]
      all_responses.push_back(o);
      probe = o;
    }
    nn::Tensor u = CombineResponses(all_responses, v);
    nn::Tensor scores = nn::SumRows(nn::Mul(u, v));  // [B, 1]
    std::copy(scores.data(), scores.data() + batch, out.begin() + start);
  }
  return out;
}

}  // namespace kgrec
