#include "unified/kgat.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "core/thread_pool.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

void KgatRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = graph_->kg;
  const size_t num_entities = kg.num_entities();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  nn::Tensor entity_emb = nn::NormalInit(num_entities, d, 0.1f, rng);
  nn::Tensor relation_emb = nn::NormalInit(kg.num_relations(), d, 0.1f, rng);
  std::vector<Aggregator> aggregators;
  for (size_t l = 0; l < config_.num_layers; ++l) {
    aggregators.emplace_back(AggregatorKind::kBiInteraction, d, rng);
  }

  // Edge arrays over the whole user-item KG.
  const auto& triples = kg.triples();
  std::vector<int32_t> edge_heads, edge_rels, edge_tails;
  edge_heads.reserve(triples.size());
  for (const Triple& t : triples) {
    edge_heads.push_back(t.head);
    edge_rels.push_back(t.relation);
    edge_tails.push_back(t.tail);
  }

  // Group triple indices by head entity once (stable counting sort, so
  // each head's triples keep their global scan order). The attention
  // softmax never mixes heads: max, denominator, and normalization all
  // stay within one head's contiguous index range.
  std::vector<size_t> head_ptr(num_entities + 1, 0);
  for (int32_t h : edge_heads) ++head_ptr[static_cast<size_t>(h) + 1];
  for (size_t e = 0; e < num_entities; ++e) head_ptr[e + 1] += head_ptr[e];
  std::vector<size_t> head_triples(triples.size());
  {
    std::vector<size_t> cursor(head_ptr.begin(), head_ptr.end() - 1);
    for (size_t i = 0; i < triples.size(); ++i) {
      head_triples[cursor[edge_heads[i]]++] = i;
    }
  }

  // Knowledge-aware attention, refreshed once per epoch from the current
  // level-0 embeddings (as KGAT alternates attention and embedding
  // updates): pi(h,r,t) = e_t . tanh(e_h + e_r), softmaxed per head.
  // One pass per head entity, parallelized over entities: heads are
  // independent and within-head accumulation follows ascending triple
  // index, so the result is bitwise-identical at any thread count.
  std::vector<float> edge_attention(triples.size(), 0.0f);
  auto refresh_attention = [&] {
    const Status status = ParallelFor(
        num_entities, config_.num_threads, [&](size_t begin, size_t end) {
          for (size_t h = begin; h < end; ++h) {
            const size_t lo = head_ptr[h];
            const size_t hi = head_ptr[h + 1];
            if (lo == hi) continue;
            float max_v = -std::numeric_limits<float>::infinity();
            for (size_t idx = lo; idx < hi; ++idx) {
              const size_t i = head_triples[idx];
              const float* he = entity_emb.data() + edge_heads[i] * d;
              const float* re = relation_emb.data() + edge_rels[i] * d;
              const float* te = entity_emb.data() + edge_tails[i] * d;
              float acc = 0.0f;
              for (size_t c = 0; c < d; ++c) {
                acc += te[c] * std::tanh(he[c] + re[c]);
              }
              edge_attention[i] = acc;
              max_v = std::max(max_v, acc);
            }
            float denom = 0.0f;
            for (size_t idx = lo; idx < hi; ++idx) {
              const size_t i = head_triples[idx];
              edge_attention[i] = std::exp(edge_attention[i] - max_v);
              denom += edge_attention[i];
            }
            for (size_t idx = lo; idx < hi; ++idx) {
              edge_attention[head_triples[idx]] /= denom;
            }
          }
          return Status::OK();
        });
    KGREC_CHECK(status.ok());
  };

  // Full-graph propagation producing the concatenated representation.
  auto propagate = [&] {
    nn::Tensor layer = entity_emb;
    nn::Tensor final_rep = layer;
    nn::Tensor att = nn::Tensor::FromData(
        triples.size(), 1,
        std::vector<float>(edge_attention.begin(), edge_attention.end()));
    for (size_t l = 0; l < config_.num_layers; ++l) {
      nn::Tensor messages = nn::Mul(nn::Gather(layer, edge_tails), att);
      nn::Tensor neighborhood =
          nn::IndexedSumRows(messages, edge_heads, num_entities);
      layer = aggregators[l].Forward(layer, neighborhood,
                                     /*final_layer=*/l + 1 ==
                                         config_.num_layers);
      final_rep = nn::Concat(final_rep, layer);
    }
    return final_rep;
  };

  std::vector<nn::Tensor> params{entity_emb, relation_emb};
  for (const Aggregator& agg : aggregators) {
    for (const auto& p : agg.Params()) params.push_back(p);
  }
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    refresh_attention();
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, pos_items, neg_items;
      std::vector<int32_t> heads, rels, tails, neg_tails;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(graph_->UserEntity(x.user));
        pos_items.push_back(graph_->ItemEntity(x.item));
        neg_items.push_back(
            graph_->ItemEntity(sampler.Sample(x.user, rng)));
        const Triple& t = triples[rng.UniformInt(triples.size())];
        heads.push_back(t.head);
        rels.push_back(t.relation);
        tails.push_back(t.tail);
        neg_tails.push_back(
            static_cast<int32_t>(rng.UniformInt(num_entities)));
      }
      nn::Tensor rep = propagate();
      nn::Tensor u = nn::Gather(rep, users);
      nn::Tensor pos = nn::Gather(rep, pos_items);
      nn::Tensor neg = nn::Gather(rep, neg_items);
      nn::Tensor cf_loss =
          nn::BprLoss(nn::RowwiseDot(u, pos), nn::RowwiseDot(u, neg));
      // Joint translation loss on the KG (TransE-form surrogate of the
      // paper's TransR stage).
      nn::Tensor h = nn::Gather(entity_emb, heads);
      nn::Tensor r = nn::Gather(relation_emb, rels);
      nn::Tensor t_pos = nn::Gather(entity_emb, tails);
      nn::Tensor t_neg = nn::Gather(entity_emb, neg_tails);
      nn::Tensor d_pos =
          nn::SumRows(nn::Square(nn::Sub(nn::Add(h, r), t_pos)));
      nn::Tensor d_neg =
          nn::SumRows(nn::Square(nn::Sub(nn::Add(h, r), t_neg)));
      nn::Tensor kg_loss =
          nn::MarginRankingLoss(d_pos, d_neg, config_.margin);
      nn::Tensor loss =
          nn::Add(cf_loss, nn::ScaleBy(kg_loss, config_.kg_weight));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }

  // Cache the final propagated representation for scoring.
  refresh_attention();
  nn::Tensor rep = propagate();
  final_emb_ = Matrix(rep.rows(), rep.cols());
  std::copy_n(rep.data(), rep.size(), final_emb_.data());
}

std::string KgatRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("layers", static_cast<double>(config_.num_layers))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("kg_weight", config_.kg_weight)
      .Add("margin", config_.margin)
      .str();
}

Status KgatRecommender::VisitState(StateVisitor* visitor) {
  return visitor->Matrix("final_emb", &final_emb_);
}

Status KgatRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  return Status::OK();
}

float KgatRecommender::Score(int32_t user, int32_t item) const {
  return dense::Dot(final_emb_.Row(graph_->UserEntity(user)),
                    final_emb_.Row(graph_->ItemEntity(item)),
                    final_emb_.cols());
}

std::vector<float> KgatRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  // The shared batched-dot kernel replaces the private SSE2 block this
  // method used to carry: every output is a fixed-block Dot of the user
  // row against one candidate row, so it stays bitwise equal to Score(),
  // which routes through the same kernel via dense::Dot.
  const float* u = final_emb_.Row(graph_->UserEntity(user));
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = final_emb_.Row(graph_->ItemEntity(items[i]));
  }
  std::vector<float> out(items.size());
  kernels::DotBatch(u, rows.data(), rows.size(), final_emb_.cols(),
                    out.data());
  return out;
}

retrieval::ItemFactors KgatRecommender::ExportItemFactors() const {
  KGREC_CHECK(graph_ != nullptr);
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = Matrix(graph_->num_items, final_emb_.cols());
  for (int32_t item = 0; item < graph_->num_items; ++item) {
    std::copy_n(final_emb_.Row(graph_->ItemEntity(item)), final_emb_.cols(),
                factors.items.Row(item));
  }
  return factors;
}

void KgatRecommender::FillUserQuery(int32_t user, std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), final_emb_.cols());
  std::copy_n(final_emb_.Row(graph_->UserEntity(user)), final_emb_.cols(),
              out.data());
}

}  // namespace kgrec
