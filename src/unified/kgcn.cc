#include "unified/kgcn.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor KgcnRecommender::Forward(const std::vector<int32_t>& users,
                                    const std::vector<int32_t>& items,
                                    nn::Tensor* ls_logits) const {
  const size_t batch = users.size();
  const size_t k = config_.num_neighbors;
  const size_t depth = config_.num_layers;

  // Build the receptive field: entities[l] has batch * k^l rows.
  std::vector<std::vector<int32_t>> entities(depth + 1);
  std::vector<std::vector<int32_t>> relations(depth + 1);  // edge into row
  entities[0] = items;
  for (size_t l = 0; l < depth; ++l) {
    entities[l + 1].reserve(entities[l].size() * k);
    relations[l + 1].reserve(entities[l].size() * k);
    for (int32_t e : entities[l]) {
      const auto& neighbors = sampled_neighbors_[e];
      for (size_t j = 0; j < k; ++j) {
        if (neighbors.empty()) {
          entities[l + 1].push_back(e);  // self-loop for isolated nodes
          relations[l + 1].push_back(0);
        } else {
          entities[l + 1].push_back(neighbors[j % neighbors.size()].target);
          relations[l + 1].push_back(
              neighbors[j % neighbors.size()].relation);
        }
      }
    }
  }

  // Initial vectors per level.
  std::vector<nn::Tensor> vecs(depth + 1);
  for (size_t l = 0; l <= depth; ++l) {
    vecs[l] = nn::Gather(entity_emb_, entities[l]);
  }

  // Per-level user-relation attention, fixed across iterations.
  auto attention_for_level = [&](size_t l) {
    const size_t rows = entities[l].size();  // == batch * k^l
    const size_t per_user = rows / batch;
    std::vector<int32_t> user_of_row(rows);
    for (size_t i = 0; i < rows; ++i) {
      user_of_row[i] = users[i / per_user];
    }
    nn::Tensor u = nn::Gather(user_emb_, user_of_row);
    nn::Tensor r = nn::Gather(relation_emb_, relations[l]);
    nn::Tensor logits = nn::SumRows(nn::Mul(u, r));  // [rows, 1]
    nn::Tensor att =
        nn::Softmax(nn::Reshape(logits, rows / k, k));  // per parent node
    return nn::Reshape(att, rows, 1);
  };

  std::vector<nn::Tensor> attention(depth + 1);
  for (size_t l = 1; l <= depth; ++l) attention[l] = attention_for_level(l);

  // Label smoothness (KGCN-LS): the attention-propagated interaction
  // labels of the item's 1-hop neighborhood should predict the label.
  if (ls_logits != nullptr && depth >= 1) {
    std::vector<float> signed_labels(entities[1].size());
    for (size_t i = 0; i < entities[1].size(); ++i) {
      const int32_t e = entities[1][i];
      const int32_t u = users[i / k];
      const bool positive =
          e < num_items_ && train_->Contains(u, e);
      signed_labels[i] = positive ? 1.0f : -1.0f;
    }
    nn::Tensor labels =
        nn::Tensor::FromData(entities[1].size(), 1, std::move(signed_labels));
    *ls_logits = nn::ScaleBy(
        nn::GroupSumRows(nn::Mul(labels, attention[1]), k), 4.0f);
  }

  // Iterative inward aggregation (Eq. 29): H sweeps; sweep i updates
  // levels 0 .. depth-1-i.
  for (size_t i = 0; i < depth; ++i) {
    const bool final_sweep = (i + 1 == depth);
    std::vector<nn::Tensor> next(depth + 1);
    for (size_t l = 0; l + i < depth; ++l) {
      nn::Tensor weighted = nn::Mul(vecs[l + 1], attention[l + 1]);
      nn::Tensor pooled = nn::GroupSumRows(weighted, k);  // [rows(l), d]
      next[l] = aggregators_[i].Forward(vecs[l], pooled, final_sweep);
    }
    for (size_t l = 0; l + i < depth; ++l) vecs[l] = next[l];
  }

  nn::Tensor u = nn::Gather(user_emb_, users);
  return nn::SumRows(nn::Mul(u, vecs[0]));
}

void KgcnRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  train_ = &train;
  num_items_ = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  user_emb_ = nn::NormalInit(train.num_users(), d, 0.1f, rng);
  entity_emb_ = nn::NormalInit(kg.num_entities(), d, 0.1f, rng);
  relation_emb_ = nn::NormalInit(kg.num_relations(), d, 0.1f, rng);
  aggregators_.clear();
  for (size_t l = 0; l < config_.num_layers; ++l) {
    aggregators_.emplace_back(config_.aggregator, d, rng);
  }

  // Static fixed-size receptive field (the paper resamples per batch; a
  // static sample keeps runs deterministic and is a standard variant).
  sampled_neighbors_.assign(kg.num_entities(), {});
  for (size_t e = 0; e < kg.num_entities(); ++e) {
    sampled_neighbors_[e] = kg.SampleNeighbors(
        static_cast<EntityId>(e), config_.num_neighbors, rng);
  }

  std::vector<nn::Tensor> params{user_emb_, entity_emb_, relation_emb_};
  for (const Aggregator& agg : aggregators_) {
    for (const auto& p : agg.Params()) params.push_back(p);
  }
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor ls;
      nn::Tensor logits = Forward(
          users, items, config_.ls_weight > 0.0f ? &ls : nullptr);
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      if (config_.ls_weight > 0.0f) {
        loss = nn::Add(
            loss, nn::ScaleBy(nn::BceWithLogits(ls, labels),
                              config_.ls_weight));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

float KgcnRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> users{user}, items{item};
  return Forward(users, items, nullptr).value();
}

}  // namespace kgrec
