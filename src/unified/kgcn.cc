#include "unified/kgcn.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "data/event_stream.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

namespace {

// Update-path RNG streams (counter-keyed forks of Rng(context.seed)).
constexpr uint64_t kGrowUserStream = 101;
constexpr uint64_t kGrowEntityStream = 102;
constexpr uint64_t kSampleStream = 103;

}  // namespace

nn::Tensor KgcnRecommender::Forward(const std::vector<int32_t>& users,
                                    const std::vector<int32_t>& items,
                                    nn::Tensor* ls_logits) const {
  const size_t batch = users.size();
  const size_t k = config_.num_neighbors;
  const size_t depth = config_.num_layers;

  // Build the receptive field: entities[l] has batch * k^l rows.
  std::vector<std::vector<int32_t>> entities(depth + 1);
  std::vector<std::vector<int32_t>> relations(depth + 1);  // edge into row
  entities[0] = items;
  for (size_t l = 0; l < depth; ++l) {
    entities[l + 1].reserve(entities[l].size() * k);
    relations[l + 1].reserve(entities[l].size() * k);
    for (int32_t e : entities[l]) {
      if (entity_isolated_[e]) {
        for (size_t j = 0; j < k; ++j) {
          entities[l + 1].push_back(e);  // self-loop for isolated nodes
          relations[l + 1].push_back(0);
        }
        continue;
      }
      const Edge* row = sampled_edges_.data() + static_cast<size_t>(e) * k;
      for (size_t j = 0; j < k; ++j) {
        entities[l + 1].push_back(row[j].target);
        relations[l + 1].push_back(row[j].relation);
      }
    }
  }

  // Initial vectors per level.
  std::vector<nn::Tensor> vecs(depth + 1);
  for (size_t l = 0; l <= depth; ++l) {
    vecs[l] = nn::Gather(entity_emb_, entities[l]);
  }

  // Per-level user-relation attention, fixed across iterations.
  auto attention_for_level = [&](size_t l) {
    const size_t rows = entities[l].size();  // == batch * k^l
    const size_t per_user = rows / batch;
    std::vector<int32_t> user_of_row(rows);
    for (size_t i = 0; i < rows; ++i) {
      user_of_row[i] = users[i / per_user];
    }
    nn::Tensor u = nn::Gather(user_emb_, user_of_row);
    nn::Tensor r = nn::Gather(relation_emb_, relations[l]);
    nn::Tensor logits = nn::SumRows(nn::Mul(u, r));  // [rows, 1]
    nn::Tensor att =
        nn::Softmax(nn::Reshape(logits, rows / k, k));  // per parent node
    return nn::Reshape(att, rows, 1);
  };

  std::vector<nn::Tensor> attention(depth + 1);
  for (size_t l = 1; l <= depth; ++l) attention[l] = attention_for_level(l);

  // Label smoothness (KGCN-LS): the attention-propagated interaction
  // labels of the item's 1-hop neighborhood should predict the label.
  if (ls_logits != nullptr && depth >= 1) {
    std::vector<float> signed_labels(entities[1].size());
    for (size_t i = 0; i < entities[1].size(); ++i) {
      const int32_t e = entities[1][i];
      const int32_t u = users[i / k];
      const bool positive =
          e < num_items_ && train_->Contains(u, e);
      signed_labels[i] = positive ? 1.0f : -1.0f;
    }
    nn::Tensor labels =
        nn::Tensor::FromData(entities[1].size(), 1, std::move(signed_labels));
    *ls_logits = nn::ScaleBy(
        nn::GroupSumRows(nn::Mul(labels, attention[1]), k), 4.0f);
  }

  // Iterative inward aggregation (Eq. 29): H sweeps; sweep i updates
  // levels 0 .. depth-1-i.
  for (size_t i = 0; i < depth; ++i) {
    const bool final_sweep = (i + 1 == depth);
    std::vector<nn::Tensor> next(depth + 1);
    for (size_t l = 0; l + i < depth; ++l) {
      nn::Tensor weighted = nn::Mul(vecs[l + 1], attention[l + 1]);
      nn::Tensor pooled = nn::GroupSumRows(weighted, k);  // [rows(l), d]
      next[l] = aggregators_[i].Forward(vecs[l], pooled, final_sweep);
    }
    for (size_t l = 0; l + i < depth; ++l) vecs[l] = next[l];
  }

  nn::Tensor u = nn::Gather(user_emb_, users);
  return nn::SumRows(nn::Mul(u, vecs[0]));
}

void KgcnRecommender::BuildModel(const RecContext& context, Rng& rng) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  train_ = &train;
  num_items_ = train.num_items();
  const size_t d = config_.dim;

  user_emb_ = nn::NormalInit(train.num_users(), d, 0.1f, rng);
  entity_emb_ = nn::NormalInit(kg.num_entities(), d, 0.1f, rng);
  relation_emb_ = nn::NormalInit(kg.num_relations(), d, 0.1f, rng);
  aggregators_.clear();
  for (size_t l = 0; l < config_.num_layers; ++l) {
    aggregators_.emplace_back(config_.aggregator, d, rng);
  }

  // Static fixed-size receptive field (the paper resamples per batch; a
  // static sample keeps runs deterministic and is a standard variant).
  // Arena layout: the sampler always returns exactly num_neighbors edges
  // for connected entities, so rows pack at a fixed stride; isolated
  // entities (empty sample) only set a flag.
  sampled_edges_.assign(kg.num_entities() * config_.num_neighbors,
                        Edge{0, 0});
  entity_isolated_.assign(kg.num_entities(), 0);
  std::vector<Edge> sampled;  // reused across entities
  for (size_t e = 0; e < kg.num_entities(); ++e) {
    kg.SampleNeighbors(static_cast<EntityId>(e), config_.num_neighbors, rng,
                       &sampled);
    if (sampled.empty()) {
      entity_isolated_[e] = 1;
      continue;
    }
    KGREC_CHECK_EQ(sampled.size(), config_.num_neighbors);
    std::copy(sampled.begin(), sampled.end(),
              sampled_edges_.begin() + e * config_.num_neighbors);
  }
}

Status KgcnRecommender::Update(const RecContext& context,
                               const EventBatch& batch) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  if (!user_emb_.defined() || entity_isolated_.empty()) {
    return Status::FailedPrecondition(
        "KGCN Update() requires a fitted (or loaded) model");
  }
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const size_t k = config_.num_neighbors;
  const Rng base_rng(context.seed);

  if (static_cast<size_t>(train.num_users()) > user_emb_.rows()) {
    user_emb_ = nn::GrowRowsNormal(user_emb_, train.num_users(),
                                   base_rng.Fork(kGrowUserStream), 0.1f);
  }
  // Entities needing a fresh receptive-field row: every new entity,
  // plus both endpoints of every new fact (their adjacency changed).
  std::vector<int32_t> resample;
  const size_t old_entities = entity_isolated_.size();
  if (kg.num_entities() > old_entities) {
    entity_emb_ = nn::GrowRowsNormal(entity_emb_, kg.num_entities(),
                                     base_rng.Fork(kGrowEntityStream), 0.1f);
    sampled_edges_.resize(kg.num_entities() * k, Edge{0, 0});
    entity_isolated_.resize(kg.num_entities(), 1);
    for (size_t e = old_entities; e < kg.num_entities(); ++e) {
      resample.push_back(static_cast<int32_t>(e));
    }
  }
  for (const Event& e : batch.events) {
    if (e.kind != EventKind::kNewFact) continue;
    resample.push_back(e.head);
    resample.push_back(e.tail);
  }
  std::sort(resample.begin(), resample.end());
  resample.erase(std::unique(resample.begin(), resample.end()),
                 resample.end());
  const Rng sample_rng = base_rng.Fork(kSampleStream);
  std::vector<Edge> sampled;  // reused across entities
  for (int32_t e : resample) {
    Rng entity_rng = sample_rng.Fork(e);
    kg.SampleNeighbors(e, k, entity_rng, &sampled);
    if (sampled.empty()) {
      entity_isolated_[e] = 1;
      continue;
    }
    KGREC_CHECK_EQ(sampled.size(), k);
    entity_isolated_[e] = 0;
    std::copy(sampled.begin(), sampled.end(),
              sampled_edges_.begin() + static_cast<size_t>(e) * k);
  }
  // The post-batch world is the new serving context (KGCN-LS reads the
  // train set through train_).
  train_ = &train;
  num_items_ = train.num_items();
  return Status::OK();
}

std::string KgcnRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("layers", static_cast<double>(config_.num_layers))
      .Add("neighbors", static_cast<double>(config_.num_neighbors))
      .Add("agg", static_cast<double>(config_.aggregator))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("ls_weight", config_.ls_weight)
      .str();
}

Status KgcnRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("relation_emb", &relation_emb_));
  for (size_t l = 0; l < aggregators_.size(); ++l) {
    KGREC_RETURN_IF_ERROR(visitor->Params("agg." + std::to_string(l),
                                          aggregators_[l].Params()));
  }
  return Status::OK();
}

Status KgcnRecommender::PrepareLoad(const RecContext& context) {
  // Replays Fit's preamble with Fit's seed: the embedding and aggregator
  // inits consume the same draws before the neighbor sampler, so the
  // static receptive field matches training bitwise; the parameter
  // values themselves are overwritten by the restore.
  Rng rng(context.seed);
  BuildModel(context, rng);
  return Status::OK();
}

void KgcnRecommender::Fit(const RecContext& context) {
  Rng rng(context.seed);
  BuildModel(context, rng);
  const InteractionDataset& train = *context.train;

  std::vector<nn::Tensor> params{user_emb_, entity_emb_, relation_emb_};
  for (const Aggregator& agg : aggregators_) {
    for (const auto& p : agg.Params()) params.push_back(p);
  }
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor ls;
      nn::Tensor logits = Forward(
          users, items, config_.ls_weight > 0.0f ? &ls : nullptr);
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      if (config_.ls_weight > 0.0f) {
        loss = nn::Add(
            loss, nn::ScaleBy(nn::BceWithLogits(ls, labels),
                              config_.ls_weight));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

float KgcnRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> users{user}, items{item};
  return Forward(users, items, nullptr).value();
}

std::vector<float> KgcnRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size());
  if (items.empty()) return out;
  const size_t k = config_.num_neighbors;
  const size_t depth = config_.num_layers;
  const size_t num_entities = entity_isolated_.size();

  // Once-per-user attention table: u . r for every relation, built with
  // the exact op sequence attention_for_level uses per row.
  const size_t num_relations = static_cast<size_t>(relation_emb_.rows());
  std::vector<int32_t> user_rows(num_relations, user);
  std::vector<int32_t> all_relations(num_relations);
  std::iota(all_relations.begin(), all_relations.end(), 0);
  nn::Tensor att_table = nn::SumRows(
      nn::Mul(nn::Gather(user_emb_, user_rows),
              nn::Gather(relation_emb_, all_relations)));  // [R, 1]

  // In Forward(), sweep i recomputes every receptive-field slot even
  // though the update for a slot holding entity e depends only on
  // (user, e): it is agg_i(U_{i-1}(e), pool(U_{i-1}(children(e)))) with
  // U_{-1} = entity_emb_ and the static neighbor sample fixed per
  // entity. For a single user we therefore compute each *distinct*
  // entity once per sweep — rows are capped by the entity count instead
  // of growing as B * k^depth — and every op (Gather / Mul /
  // GroupSumRows / per-parent Softmax / rowwise aggregator) runs the
  // same in-order float sequence per row, so scores stay bitwise equal
  // to Score().
  const auto child_of = [&](int32_t e, size_t j) {
    if (entity_isolated_[e]) return Edge{0, e};  // self-loop, relation 0
    return sampled_edges_[static_cast<size_t>(e) * k + j];
  };

  // Distinct candidates, first-occurrence order; slot[i] = distinct row.
  std::vector<int32_t> row_of(num_entities, -1);
  std::vector<int32_t> distinct;
  std::vector<int32_t> slot(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (row_of[items[i]] < 0) {
      row_of[items[i]] = static_cast<int32_t>(distinct.size());
      distinct.push_back(items[i]);
    }
    slot[i] = row_of[items[i]];
  }

  // need[i]: entities whose sweep-i output is required. Walking top-down,
  // sweep i's inputs are need[i] plus their sampled children.
  const auto expand = [&](const std::vector<int32_t>& s) {
    std::vector<char> seen(num_entities, 0);
    std::vector<int32_t> result = s;
    for (int32_t e : s) seen[e] = 1;
    for (int32_t e : s) {
      for (size_t j = 0; j < k; ++j) {
        const int32_t child = child_of(e, j).target;
        if (!seen[child]) {
          seen[child] = 1;
          result.push_back(child);
        }
      }
    }
    return result;
  };
  std::vector<std::vector<int32_t>> need(depth);
  if (depth > 0) need[depth - 1] = distinct;
  for (size_t i = depth; i-- > 1;) need[i - 1] = expand(need[i]);
  const std::vector<int32_t> base =
      depth > 0 ? expand(need[0]) : distinct;

  // U holds post-sweep representations; its rows follow `order`.
  std::vector<int32_t> order = base;
  nn::Tensor u_level = nn::Gather(entity_emb_, order);
  const auto reindex = [&](const std::vector<int32_t>& ord) {
    row_of.assign(num_entities, -1);
    for (size_t idx = 0; idx < ord.size(); ++idx) {
      row_of[ord[idx]] = static_cast<int32_t>(idx);
    }
  };
  reindex(order);
  for (size_t i = 0; i < depth; ++i) {
    const std::vector<int32_t>& s = need[i];
    const size_t rows = s.size() * k;
    std::vector<int32_t> child_rows;
    std::vector<int32_t> self_rows;
    std::vector<float> logit_data;
    child_rows.reserve(rows);
    self_rows.reserve(s.size());
    logit_data.reserve(rows);
    for (int32_t e : s) {
      self_rows.push_back(row_of[e]);
      for (size_t j = 0; j < k; ++j) {
        const Edge edge = child_of(e, j);
        child_rows.push_back(row_of[edge.target]);
        logit_data.push_back(att_table.data()[edge.relation]);
      }
    }
    nn::Tensor logits =
        nn::Tensor::FromData(rows, 1, std::move(logit_data));
    nn::Tensor att = nn::Reshape(
        nn::Softmax(nn::Reshape(logits, s.size(), k)), rows, 1);
    nn::Tensor pooled =
        nn::GroupSumRows(nn::Mul(nn::Gather(u_level, child_rows), att), k);
    u_level = aggregators_[i].Forward(nn::Gather(u_level, self_rows),
                                      pooled, i + 1 == depth);
    order = s;
    reindex(order);
  }

  // order == distinct here; dot with the user and scatter to candidates.
  std::vector<int32_t> user_of_row(distinct.size(), user);
  nn::Tensor scores = nn::SumRows(
      nn::Mul(nn::Gather(user_emb_, user_of_row), u_level));
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = scores.data()[slot[i]];
  }
  return out;
}

}  // namespace kgrec
