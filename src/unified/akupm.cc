#include "unified/akupm.h"

#include "nn/ops.h"

namespace kgrec {

nn::Tensor AkupmRecommender::CombineResponses(
    const std::vector<nn::Tensor>& responses,
    const nn::Tensor& item_vecs) const {
  if (responses.size() == 1) return responses[0];
  // Attention logits: compatibility of each hop response with the
  // candidate item; softmax over hops.
  nn::Tensor logits = nn::SumRows(nn::Mul(responses[0], item_vecs));
  for (size_t h = 1; h < responses.size(); ++h) {
    logits =
        nn::Concat(logits, nn::SumRows(nn::Mul(responses[h], item_vecs)));
  }
  nn::Tensor attention = nn::Softmax(logits);  // [B, H]
  nn::Tensor user = nn::Mul(responses[0], nn::SliceCols(attention, 0, 1));
  for (size_t h = 1; h < responses.size(); ++h) {
    user = nn::Add(user,
                   nn::Mul(responses[h], nn::SliceCols(attention, h, 1)));
  }
  return user;
}

}  // namespace kgrec
