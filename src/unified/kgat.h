#ifndef KGREC_UNIFIED_KGAT_H_
#define KGREC_UNIFIED_KGAT_H_

#include <vector>

#include "core/recommender.h"
#include "graph/aggregators.h"
#include "math/dense.h"
#include "nn/tensor.h"
#include "retrieval/factors.h"

namespace kgrec {

/// Hyper-parameters for KGAT.
struct KgatConfig {
  size_t dim = 16;
  /// Number of propagation layers (survey Eq. 34: H).
  size_t num_layers = 2;
  int epochs = 15;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weight of the auxiliary TransR-style KG loss (trained jointly).
  float kg_weight = 0.5f;
  float margin = 1.0f;
  /// Threads for the per-entity attention refresh. The pass is grouped
  /// by head entity (softmax denominators never mix across heads), so
  /// any value >= 1 produces bitwise-identical attention — this is a
  /// pure speed knob, not a mode switch.
  size_t num_threads = 1;
};

/// KGAT (Wang et al., KDD'19; survey Eq. 34): attentive embedding
/// propagation over the *user-item* KG. Every entity (users included)
/// repeatedly aggregates its neighborhood with knowledge-aware attention
/// pi(h, r, t) = e_t . tanh(e_h + e_r) (softmax-normalized per head,
/// refreshed every epoch), using the bi-interaction aggregator; the final
/// representation concatenates all layer embeddings, and preference is
/// their inner product. A translation hinge loss on the KG triples is
/// trained jointly.
class KgatRecommender : public Recommender, public DotProductFactors {
 public:
  explicit KgatRecommender(KgatConfig config = {}) : config_(config) {}

  std::string name() const override { return "KGAT"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: hoists the user row lookup and scores candidates
  /// four at a time through kernels::DotBatch. Every output follows the
  /// shared fixed-block dot contract, so scores are bitwise equal to
  /// Score().
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

  // DotProductFactors: preference is the inner product of final
  // concatenated embeddings, so the export slices the item-entity rows
  // out of final_emb_ and the query is the user-entity row.
  size_t factor_dim() const override { return final_emb_.cols(); }
  retrieval::ScoreKernel factor_kernel() const override {
    return retrieval::ScoreKernel::kDot;
  }
  retrieval::ItemFactors ExportItemFactors() const override;
  void FillUserQuery(int32_t user, std::span<float> out) const override;

 protected:
  /// Serving only reads the final concatenated embeddings (the training
  /// graph's embeddings, relations and aggregators are all baked into
  /// final_emb_), so that matrix is the whole checkpoint; PrepareLoad
  /// just re-binds the graph used for entity-id lookups.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  KgatConfig config_;
  const UserItemGraph* graph_ = nullptr;
  /// Final concatenated embeddings [num_entities, dim * (layers + 1)].
  Matrix final_emb_;
};

}  // namespace kgrec

#endif  // KGREC_UNIFIED_KGAT_H_
