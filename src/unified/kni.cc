#include "unified/kni.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor KniRecommender::Forward(const std::vector<int32_t>& users,
                                   const std::vector<int32_t>& items) const {
  const size_t batch = users.size();
  const size_t k = config_.num_neighbors;
  const size_t pairs = k * k;
  std::vector<int32_t> left(batch * pairs), right(batch * pairs);
  for (size_t b = 0; b < batch; ++b) {
    const EntityId* nu = user_neighbors_.data() +
                         static_cast<size_t>(users[b]) * k;
    const EntityId* nv = item_neighbors_.data() +
                         static_cast<size_t>(items[b]) * k;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        left[b * pairs + i * k + j] = nu[i];
        right[b * pairs + i * k + j] = nv[j];
      }
    }
  }
  nn::Tensor ei = nn::Gather(entity_emb_, left);    // [B*k*k, d]
  nn::Tensor ej = nn::Gather(entity_emb_, right);   // [B*k*k, d]
  nn::Tensor s = nn::RowwiseDot(ei, ej);            // [B*k*k, 1]
  nn::Tensor s_rows = nn::Reshape(s, batch, pairs); // [B, k*k]
  nn::Tensor att = nn::Softmax(s_rows);
  return nn::SumRows(nn::Mul(att, s_rows));         // [B, 1]
}

void KniRecommender::BuildNeighborhoods(const RecContext& context, Rng& rng) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = graph_->kg;
  const size_t k = config_.num_neighbors;
  KGREC_CHECK_GT(k, 0u);  // arena rows are written unconditionally

  entity_emb_ = nn::NormalInit(kg.num_entities(), config_.dim, 0.1f, rng);

  // User-side neighborhoods: the user entity + sampled consumed items.
  user_neighbors_.assign(static_cast<size_t>(train.num_users()) * k, 0);
  for (int32_t u = 0; u < train.num_users(); ++u) {
    EntityId* row = user_neighbors_.data() + static_cast<size_t>(u) * k;
    size_t c = 0;
    row[c++] = graph_->UserEntity(u);
    const auto& history = train.UserItems(u);
    for (; c < k; ++c) {
      row[c] = history.empty()
                   ? graph_->UserEntity(u)
                   : graph_->ItemEntity(
                         history[rng.UniformInt(history.size())]);
    }
  }
  // Item-side neighborhoods: the item entity + sampled KG neighbors
  // (attributes and co-consumers).
  item_neighbors_.assign(static_cast<size_t>(train.num_items()) * k, 0);
  std::vector<Edge> sampled;  // reused across items
  for (int32_t j = 0; j < train.num_items(); ++j) {
    EntityId* row = item_neighbors_.data() + static_cast<size_t>(j) * k;
    const EntityId entity = graph_->ItemEntity(j);
    size_t c = 0;
    row[c++] = entity;
    kg.SampleNeighbors(entity, k - 1, rng, &sampled);
    for (const Edge& e : sampled) row[c++] = e.target;
    for (; c < k; ++c) row[c] = entity;
  }
}

std::string KniRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("neighbors", static_cast<double>(config_.num_neighbors))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .str();
}

Status KniRecommender::VisitState(StateVisitor* visitor) {
  return visitor->Tensor("entity_emb", &entity_emb_);
}

Status KniRecommender::PrepareLoad(const RecContext& context) {
  // Replays Fit's preamble with Fit's seed: the embedding init consumes
  // the same draws before the neighborhood samplers, so both sampled
  // neighborhoods match training bitwise; the embedding values are
  // overwritten by the restore.
  Rng rng(context.seed);
  BuildNeighborhoods(context, rng);
  return Status::OK();
}

void KniRecommender::Fit(const RecContext& context) {
  Rng rng(context.seed);
  BuildNeighborhoods(context, rng);
  const InteractionDataset& train = *context.train;

  nn::Adagrad optimizer({entity_emb_}, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor loss = nn::BceWithLogits(Forward(users, items), labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

float KniRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> users{user}, items{item};
  return Forward(users, items).value();
}

std::vector<float> KniRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size());
  // Chunked so the [B*k*k, d] pair tensors stay cache-resident.
  constexpr size_t kChunk = 128;
  for (size_t start = 0; start < items.size(); start += kChunk) {
    const size_t batch = std::min(items.size() - start, kChunk);
    const std::vector<int32_t> users(batch, user);
    const std::vector<int32_t> chunk(items.begin() + start,
                                     items.begin() + start + batch);
    nn::Tensor logits = Forward(users, chunk);  // [B, 1]
    std::copy(logits.data(), logits.data() + batch, out.begin() + start);
  }
  return out;
}

}  // namespace kgrec
