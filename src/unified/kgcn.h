#ifndef KGREC_UNIFIED_KGCN_H_
#define KGREC_UNIFIED_KGCN_H_

#include <cstdint>
#include <vector>

#include "core/recommender.h"
#include "graph/aggregators.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for KGCN / KGCN-LS.
struct KgcnConfig {
  size_t dim = 16;
  /// Receptive-field depth H.
  size_t num_layers = 2;
  /// Fixed number of sampled neighbors per entity.
  size_t num_neighbors = 6;
  AggregatorKind aggregator = AggregatorKind::kSum;
  int epochs = 12;
  size_t batch_size = 128;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// KGCN-LS only: weight of the label-smoothness regularizer.
  float ls_weight = 0.0f;
};

/// KGCN (Wang et al., WWW'19; survey Eq. 28-29): the candidate item's
/// representation is computed by sampling a fixed-size receptive field in
/// the item KG and aggregating neighbor embeddings inward, with
/// user-relation attention pi(u, r) = u . r deciding how much each edge
/// matters to this user. All four aggregators of Eq. 30-33 are supported.
class KgcnRecommender : public Recommender {
 public:
  explicit KgcnRecommender(KgcnConfig config = {}) : config_(config) {}

  std::string name() const override {
    return config_.ls_weight > 0.0f ? "KGCN-LS" : "KGCN";
  }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path. For a fixed user, a receptive-field node's
  /// sweep-i update depends only on its entity (the neighbor sample is
  /// static), so instead of materialising B * k^l rows per level this
  /// computes each *distinct* entity once per sweep, with the u . r
  /// attention logits built once per relation. Every op involved is
  /// row-independent with the same in-order accumulation as Forward(),
  /// so results are bitwise equal to per-item Score() calls.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  /// Online update (DESIGN §13): a structural refresh, no SGD. The
  /// user/entity tables grow for kNewUser / kNewEntity events
  /// (counter-keyed rows), and the static receptive field is resampled
  /// only for entities whose adjacency the batch changed — new entities
  /// plus both endpoints of every kNewFact — each from its own
  /// Fork(entity)-keyed stream over the updated KG. The model then
  /// serves against the post-batch world (train_, num_items_). Covers
  /// KGCN-LS: the label-smoothness term reads the updated train set.
  Status Update(const RecContext& context, const EventBatch& batch) override;
  bool SupportsUpdate() const override { return true; }

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the user/entity/relation embeddings and per-layer aggregator
  /// parameters; the static receptive field is rebuilt by PrepareLoad
  /// replaying Fit's exact Rng prefix.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Fit's preamble, shared with PrepareLoad: allocates the parameter
  /// tensors and aggregators, then samples the static receptive field.
  /// All draws come from `rng` in a fixed order, so calling this with
  /// Rng(context.seed) reproduces the neighbor sample exactly.
  void BuildModel(const RecContext& context, Rng& rng);

  /// Differentiable forward: logits [B,1] for (users, items). When
  /// `ls_logits` is non-null also emits label-smoothness logits (the
  /// attention-propagated interaction labels of the 1-hop neighborhood).
  nn::Tensor Forward(const std::vector<int32_t>& users,
                     const std::vector<int32_t>& items,
                     nn::Tensor* ls_logits) const;

  KgcnConfig config_;
  int32_t num_items_ = 0;
  const InteractionDataset* train_ = nullptr;
  /// Static receptive field, arena-backed: row e of the flat buffer holds
  /// entity e's num_neighbors sampled (relation, target) pairs
  /// (resampled-with-replacement when degree is small). Isolated entities
  /// carry a flag instead of a short row; Forward substitutes self-loops
  /// for them, exactly as the old empty per-entity vector did.
  std::vector<Edge> sampled_edges_;       // [num_entities * num_neighbors]
  std::vector<uint8_t> entity_isolated_;  // [num_entities]
  nn::Tensor user_emb_;
  nn::Tensor entity_emb_;
  nn::Tensor relation_emb_;
  std::vector<Aggregator> aggregators_;  // one per layer
};

}  // namespace kgrec

#endif  // KGREC_UNIFIED_KGCN_H_
