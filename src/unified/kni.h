#ifndef KGREC_UNIFIED_KNI_H_
#define KGREC_UNIFIED_KNI_H_

#include <vector>

#include "core/recommender.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for KNI.
struct KniConfig {
  size_t dim = 16;
  /// Sampled neighborhood size on each side.
  size_t num_neighbors = 6;
  int epochs = 12;
  size_t batch_size = 128;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
};

/// KNI (Qu et al., 2019): end-to-end neighborhood-based interaction. The
/// preference for (u, v) is computed from *all pairwise interactions*
/// between the user-side neighborhood (the user itself + consumed items)
/// and the item-side neighborhood (the item itself + its KG neighbors),
/// attention-weighted:
///   y = sum_{i in N(u), j in N(v)} softmax_{ij}(e_i . e_j) (e_i . e_j),
/// so the refinement of user and item representations is not separated
/// (survey Section 4.3).
class KniRecommender : public Recommender {
 public:
  explicit KniRecommender(KniConfig config = {}) : config_(config) {}

  std::string name() const override { return "KNI"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: one chunked Forward() with the user repeated.
  /// The k*k neighbor-pair attention is softmaxed per batch row, so the
  /// batched rows are bitwise equal to per-item Score() calls.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the entity embeddings — the only learned parameter. The
  /// sampled neighborhoods are rebuilt by PrepareLoad replaying Fit's
  /// exact Rng prefix, so they match training bitwise.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Fit's preamble, shared with PrepareLoad: allocates the embedding
  /// table and samples both neighborhoods from `rng` in a fixed order.
  void BuildNeighborhoods(const RecContext& context, Rng& rng);

  nn::Tensor Forward(const std::vector<int32_t>& users,
                     const std::vector<int32_t>& items) const;

  KniConfig config_;
  const UserItemGraph* graph_ = nullptr;
  /// Fixed sampled neighborhoods (entity ids of the user-item KG),
  /// arena-backed at a stride of num_neighbors per user/item row.
  std::vector<EntityId> user_neighbors_;  // [num_users * num_neighbors]
  std::vector<EntityId> item_neighbors_;  // [num_items * num_neighbors]
  nn::Tensor entity_emb_;
};

}  // namespace kgrec

#endif  // KGREC_UNIFIED_KNI_H_
