#ifndef KGREC_UNIFIED_RIPPLENET_H_
#define KGREC_UNIFIED_RIPPLENET_H_

#include <cstdint>
#include <vector>

#include "core/mem_stats.h"
#include "core/recommender.h"
#include "graph/ripple.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for RippleNet.
struct RippleNetConfig {
  size_t dim = 16;
  /// Number of ripple hops H.
  size_t num_hops = 2;
  /// Fixed ripple-set size per hop (padded by resampling).
  size_t hop_size = 32;
  int epochs = 15;
  size_t batch_size = 128;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weight of the KGE regularization term ||R - E^T E|| surrogate
  /// (we regularize hop triple plausibility h^T R t).
  float kge_weight = 0.01f;
  /// Threads for per-user ripple-set construction. 0 (default) keeps the
  /// legacy serial build, where every user draws from one sequential RNG
  /// stream. >= 1 switches to the deterministic parallel build: user u
  /// draws from its own counter-forked stream, so the ripple sets (and
  /// everything trained on them) are bitwise-identical at any thread
  /// count >= 1. SGD itself is unchanged in both modes.
  size_t num_threads = 0;
};

/// RippleNet (Wang et al., CIKM'18; survey Eq. 24-26): the first
/// preference-propagation model. A user's interests ripple outward from
/// their clicked items along KG triples; hop responses
///   o_u^h = sum_i softmax_i(v^T R_i h_i) t_i
/// are summed into the user embedding and scored against the candidate
/// with a sigmoid inner product.
class RippleNetRecommender : public Recommender {
 public:
  explicit RippleNetRecommender(RippleNetConfig config = {})
      : config_(config) {}

  std::string name() const override { return "RippleNet"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: the ripple-set tensors (seed response, per-hop
  /// h^T R products and tail embeddings) depend only on the user, so they
  /// are computed once and re-tiled across candidates, skipping the
  /// O(hop_size * dim^2) RowwiseVecMat per candidate that Score() pays.
  /// Uses the same op sequence as Forward(), so results are bitwise equal.
  /// Covers RippleNet-agg and AKUPM through the ItemVectors /
  /// CombineResponses hooks (both are candidate-rowwise).
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  /// Online update (DESIGN §13): a structural refresh, no SGD. The
  /// entity table and ripple arena grow for kNewEntity / kNewUser
  /// events (counter-keyed rows); then every user whose ripple sets
  /// could see the batch — users with new interactions plus users whose
  /// history lies within num_hops of a new fact's endpoints (one
  /// multi-source BFS over the updated KG) — gets their ripple row
  /// rebuilt from their own Fork(user)-keyed streams. Subclass aux
  /// (RippleNet-agg's item neighborhoods) refreshes through the
  /// RefreshAux hook; AKUPM inherits everything.
  Status Update(const RecContext& context, const EventBatch& batch) override;
  bool SupportsUpdate() const override { return true; }

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the entity embeddings and relation matrices — the only
  /// learned parameters. The ripple sets (and any subclass aux built by
  /// PrepareAux) are rebuilt by PrepareLoad replaying Fit's exact Rng
  /// prefix, so they match training bitwise. Subclasses (RippleNet-agg,
  /// AKUPM) add no parameters of their own and inherit these hooks.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

  /// Fit's preamble, shared with PrepareLoad: allocates the parameter
  /// tensors, runs PrepareAux and builds every user's ripple sets. All
  /// draws come from `rng` in a fixed order, so calling this with
  /// Rng(context.seed) reproduces Fit's derived state exactly.
  void BuildPropagationState(const RecContext& context, Rng& rng);

  /// Dense arena holding every user's fixed-size padded ripple sets.
  /// All per-user shapes are static (num_hops x hop_size triples plus
  /// hop_size seeds), so instead of 3 heap-allocated vectors per hop per
  /// user the whole model shares six flat buffers with computed strides
  /// — at 10^6 users that removes millions of small allocations and
  /// their per-vector header overhead.
  struct RippleArena {
    size_t num_hops = 0;
    size_t hop_size = 0;
    /// [num_users * num_hops * hop_size] each.
    std::vector<int32_t> heads;
    std::vector<int32_t> relations;
    std::vector<int32_t> tails;
    /// [num_users * hop_size]: seed items padded to hop_size with
    /// per-slot averaging weights (the 0-hop response o_u^0 = mean of
    /// clicked-item embeddings).
    std::vector<int32_t> seeds;
    std::vector<float> seed_weights;
    /// [num_users]: 0 until the user's slices are filled (users with no
    /// training history stay unfilled and score 0).
    std::vector<uint8_t> filled;

    void Reset(size_t num_users, size_t hops, size_t size);
    /// Appends zero-filled rows for users [old, num_users); existing
    /// rows are untouched (the layout is user-major).
    void Grow(size_t num_users);
    bool empty(int32_t user) const { return filled[user] == 0; }
    size_t SeedOffset(int32_t user) const {
      return static_cast<size_t>(user) * hop_size;
    }
    size_t HopOffset(int32_t user, size_t hop) const {
      return (static_cast<size_t>(user) * num_hops + hop) * hop_size;
    }
    void MemoryUse(MemoryVisitor& visitor) const;
  };

  /// Differentiable forward: logits [B,1] for (users, items) pairs.
  nn::Tensor Forward(const std::vector<int32_t>& users,
                     const std::vector<int32_t>& items) const;

  /// Hook: combines hop responses [B*H rows grouped] into the user
  /// vector. RippleNet sums; AKUPM overrides with self-attention.
  virtual nn::Tensor CombineResponses(const std::vector<nn::Tensor>& responses,
                                      const nn::Tensor& item_vecs) const;

  /// Hook: candidate-item representation [B, dim]. RippleNet uses the
  /// plain entity embedding; RippleNet-agg aggregates the item's entity
  /// ripple set (its KG neighborhood) into it.
  virtual nn::Tensor ItemVectors(const std::vector<int32_t>& items) const;

  /// Hook: called at the start of Fit() after embeddings exist, so
  /// subclasses can build auxiliary structures (sampled neighborhoods).
  virtual void PrepareAux(const RecContext& context, Rng& rng);

  /// Hook: called by Update() with the (deduped, ascending) item
  /// entities whose KG adjacency the batch changed, so subclasses can
  /// refresh per-item aux. Item j must draw only from base_rng.Fork(j).
  /// Default does nothing.
  virtual void RefreshAux(const RecContext& context,
                          const std::vector<int32_t>& touched_items,
                          const Rng& base_rng);

  /// Writes one user's padded seed slots and hop triples into the
  /// arena (shared by the fit-time build and Update's refresh; all
  /// draws come from `resample_rng` in a fixed order).
  void FillUserRipples(int32_t user,
                       const std::vector<EntityId>& seed_entities,
                       const std::vector<RippleHop>& hops,
                       Rng& resample_rng);

  RippleNetConfig config_;
  RippleArena ripples_;
  nn::Tensor entity_emb_;
  nn::Tensor relation_mats_;  // [num_relations, dim*dim]
};

}  // namespace kgrec

#endif  // KGREC_UNIFIED_RIPPLENET_H_
