#include "unified/ripplenet_agg.h"

#include <algorithm>

#include "core/check.h"
#include "nn/ops.h"

namespace kgrec {

void RippleNetAggRecommender::PrepareAux(const RecContext& context,
                                         Rng& rng) {
  KGREC_CHECK(context.item_kg != nullptr);
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t num_items = context.train->num_items();
  item_neighbors_.assign(num_items * neighbor_count_, 0);
  std::vector<Edge> sampled;  // reused across items
  for (int32_t j = 0; j < num_items; ++j) {
    kg.SampleNeighbors(j, neighbor_count_, rng, &sampled);
    EntityId* row = item_neighbors_.data() + j * neighbor_count_;
    if (sampled.empty()) {
      std::fill(row, row + neighbor_count_, j);  // isolated: self only
    } else {
      size_t c = 0;
      for (const Edge& e : sampled) row[c++] = e.target;
      for (; c < neighbor_count_; ++c) row[c] = row[c % sampled.size()];
    }
  }
}

void RippleNetAggRecommender::RefreshAux(
    const RecContext& context, const std::vector<int32_t>& touched_items,
    const Rng& base_rng) {
  KGREC_CHECK(context.item_kg != nullptr);
  const KnowledgeGraph& kg = *context.item_kg;
  std::vector<Edge> sampled;
  for (int32_t j : touched_items) {
    Rng item_rng = base_rng.Fork(j);
    kg.SampleNeighbors(j, neighbor_count_, item_rng, &sampled);
    EntityId* row = item_neighbors_.data() + j * neighbor_count_;
    if (sampled.empty()) {
      std::fill(row, row + neighbor_count_, j);  // isolated: self only
    } else {
      size_t c = 0;
      for (const Edge& e : sampled) row[c++] = e.target;
      for (; c < neighbor_count_; ++c) row[c] = row[c % sampled.size()];
    }
  }
}

nn::Tensor RippleNetAggRecommender::ItemVectors(
    const std::vector<int32_t>& items) const {
  nn::Tensor self = nn::Gather(entity_emb_, items);
  std::vector<int32_t> flat;
  flat.reserve(items.size() * neighbor_count_);
  for (int32_t j : items) {
    const EntityId* row = item_neighbors_.data() + j * neighbor_count_;
    flat.insert(flat.end(), row, row + neighbor_count_);
  }
  nn::Tensor neighborhood = nn::ScaleBy(
      nn::GroupSumRows(nn::Gather(entity_emb_, flat), neighbor_count_),
      1.0f / static_cast<float>(neighbor_count_));
  // v = 0.5 (e_v + mean of entity ripple set): both sides knowledge-mixed.
  return nn::ScaleBy(nn::Add(self, neighborhood), 0.5f);
}

}  // namespace kgrec
