#include "unified/ripplenet_agg.h"

#include "core/check.h"
#include "nn/ops.h"

namespace kgrec {

void RippleNetAggRecommender::PrepareAux(const RecContext& context,
                                         Rng& rng) {
  KGREC_CHECK(context.item_kg != nullptr);
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t num_items = context.train->num_items();
  item_neighbors_.assign(num_items, {});
  std::vector<Edge> sampled;  // reused across items
  for (int32_t j = 0; j < num_items; ++j) {
    kg.SampleNeighbors(j, neighbor_count_, rng, &sampled);
    std::vector<EntityId>& neighbors = item_neighbors_[j];
    if (sampled.empty()) {
      neighbors.assign(neighbor_count_, j);  // isolated: self only
    } else {
      for (const Edge& e : sampled) neighbors.push_back(e.target);
      while (neighbors.size() < neighbor_count_) {
        neighbors.push_back(neighbors[neighbors.size() %
                                      sampled.size()]);
      }
    }
  }
}

nn::Tensor RippleNetAggRecommender::ItemVectors(
    const std::vector<int32_t>& items) const {
  nn::Tensor self = nn::Gather(entity_emb_, items);
  std::vector<int32_t> flat;
  flat.reserve(items.size() * neighbor_count_);
  for (int32_t j : items) {
    for (EntityId e : item_neighbors_[j]) flat.push_back(e);
  }
  nn::Tensor neighborhood = nn::ScaleBy(
      nn::GroupSumRows(nn::Gather(entity_emb_, flat), neighbor_count_),
      1.0f / static_cast<float>(neighbor_count_));
  // v = 0.5 (e_v + mean of entity ripple set): both sides knowledge-mixed.
  return nn::ScaleBy(nn::Add(self, neighborhood), 0.5f);
}

}  // namespace kgrec
