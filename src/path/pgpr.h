#ifndef KGREC_PATH_PGPR_H_
#define KGREC_PATH_PGPR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/recommender.h"
#include "kge/kge_model.h"
#include "nn/layers.h"
#include "path/path_finder.h"

namespace kgrec {

/// Hyper-parameters for PGPR.
struct PgprConfig {
  size_t dim = 16;
  /// TransE pretraining epochs on the user-item KG (reward function).
  int kge_epochs = 12;
  /// REINFORCE epochs; each epoch runs episodes_per_user rollouts.
  int rl_epochs = 6;
  size_t episodes_per_user = 6;
  size_t max_path_length = 3;
  /// Maximum actions (out-edges) considered per step (action pruning).
  size_t max_actions = 24;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Beam width of the inference-time path search.
  size_t beam_width = 24;
  /// Threads for the KGE pretraining stage
  /// (KgeTrainConfig::num_threads): 0 = legacy serial loop, >= 1 =
  /// deterministic sharded trainer.
  size_t num_threads = 0;
};

/// PGPR (Xian et al., SIGIR'19): policy-guided path reasoning. The
/// recommendation problem is cast as an MDP on the user-item KG: starting
/// at the user, an agent walks up to T edges; reaching an unconsumed item
/// yields a terminal reward given by a pretrained KGE scoring function
/// (sigmoid of the <user, interact, item> plausibility). The policy (an
/// MLP over [user ++ current ++ relation ++ target] embeddings) is
/// trained with REINFORCE; at inference a beam search materializes paths,
/// which are simultaneously the recommendations and their explanations.
class PgprRecommender : public Recommender {
 public:
  explicit PgprRecommender(PgprConfig config = {}) : config_(config) {}

  std::string name() const override { return "PGPR"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: beam-reached candidates are map lookups; all
  /// remaining candidates share one KGE ScoreBatch call (the KGE scorers
  /// are rowwise, so the batched scores are bitwise equal to Score()).
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  /// The path by which the beam search reached this item for this user,
  /// rendered as text ("" if the item was not reached).
  std::string ExplainPath(int32_t user, int32_t item) const;

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the KGE backend and policy-network parameters. PrepareLoad
  /// replays Fit's exact constructor/Rng prefix so the pruned action sets
  /// come out identical, and FinishLoad re-runs the (deterministic) beam
  /// search against the restored parameters. Ekar inherits all of this:
  /// only name() and Reward() differ, both config-free.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;
  Status FinishLoad(const RecContext& context) override;

  struct ReachedItem {
    float value = 0.0f;
    PathInstance path;
  };

  /// Policy logits over the pruned out-edges of `current` for `user`.
  nn::Tensor ActionLogits(int32_t user, EntityId current,
                          const std::vector<Edge>& actions) const;

  /// Pruned deterministic action set of an entity.
  const std::vector<Edge>& Actions(EntityId entity) const;

  /// Reward of ending at `entity` for `user`. Virtual: Ekar overrides
  /// with its binary known-interaction reward.
  virtual float Reward(int32_t user, EntityId entity) const;

  void RunBeamSearch();

  PgprConfig config_;
  const UserItemGraph* graph_ = nullptr;
  const InteractionDataset* train_ = nullptr;
  std::unique_ptr<KgeModel> kge_;
  nn::Linear policy_hidden_;
  nn::Linear policy_out_;
  std::vector<std::vector<Edge>> pruned_actions_;
  /// Per user: items reached by the beam with their path and value.
  std::vector<std::unordered_map<int32_t, ReachedItem>> reached_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_PGPR_H_
