#include "path/heterec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "math/kmeans.h"
#include "math/nmf.h"
#include "path/metapaths.h"

namespace kgrec {

void HeteRecRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const int32_t m = train.num_users();
  Rng rng(context.seed);

  // Diffused preference matrices R~(l) = R S(l) (Eq. 16). The identity
  // path (S = I, plain R) is always included as path 0.
  CsrMatrix r = train.ToCsr();
  std::vector<CsrMatrix> diffused;
  diffused.push_back(r);
  for (ItemSimilarity& sim : ItemMetaPathSimilarities(
           *context.item_kg, train.num_items(), config_.top_k)) {
    diffused.push_back(r.Multiply(sim.matrix));
  }

  user_factors_.clear();
  item_factors_.clear();
  for (const CsrMatrix& matrix : diffused) {
    NmfResult nmf = Nmf(matrix, config_.rank, config_.nmf_iterations, rng);
    user_factors_.push_back(std::move(nmf.user_factors));
    item_factors_.push_back(std::move(nmf.item_factors));
  }
  const size_t num_paths = user_factors_.size();

  // --- User clustering (HeteRec-p, Eq. 18) ---------------------------
  const size_t c = std::max<size_t>(1, config_.num_user_clusters);
  membership_.assign(m, std::vector<float>(c, 1.0f));
  Matrix centroids;
  if (c > 1) {
    // Cluster users on their concatenated per-path latent profiles.
    Matrix profiles(m, num_paths * config_.rank);
    for (int32_t u = 0; u < m; ++u) {
      for (size_t l = 0; l < num_paths; ++l) {
        std::copy_n(user_factors_[l].Row(u), config_.rank,
                    profiles.Row(u) + l * config_.rank);
      }
    }
    KMeansResult km = KMeans(profiles, c, 15, rng);
    centroids = km.centroids;
    for (int32_t u = 0; u < m; ++u) {
      float total = 0.0f;
      for (size_t k = 0; k < c; ++k) {
        const float sim = std::max(
            0.0f, dense::CosineSimilarity(profiles.Row(u), centroids.Row(k),
                                          profiles.cols()));
        membership_[u][k] = sim;
        total += sim;
      }
      if (total <= 0.0f) {
        membership_[u].assign(c, 1.0f / c);
      } else {
        for (float& v : membership_[u]) v /= total;
      }
    }
  }

  // --- Learn path weights theta by BPR (Eq. 17/18) --------------------
  theta_.assign(c, std::vector<float>(num_paths, 1.0f / num_paths));
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.weight_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Interaction& x = train.interactions()[idx];
      const int32_t neg = sampler.Sample(x.user, rng);
      const std::vector<float> f_pos = PairFeatures(x.user, x.item);
      const std::vector<float> f_neg = PairFeatures(x.user, neg);
      // Current margin under the user's mixed weights.
      float margin = 0.0f;
      for (size_t k = 0; k < c; ++k) {
        for (size_t l = 0; l < num_paths; ++l) {
          margin += membership_[x.user][k] * theta_[k][l] *
                    (f_pos[l] - f_neg[l]);
        }
      }
      const float sig = 1.0f / (1.0f + std::exp(margin));  // d(-logsig)/dm
      for (size_t k = 0; k < c; ++k) {
        const float coef =
            config_.weight_learning_rate * sig * membership_[x.user][k];
        for (size_t l = 0; l < num_paths; ++l) {
          theta_[k][l] += coef * (f_pos[l] - f_neg[l]);
        }
      }
    }
  }
}

std::vector<float> HeteRecRecommender::PairFeatures(int32_t user,
                                                    int32_t item) const {
  std::vector<float> out(user_factors_.size());
  for (size_t l = 0; l < user_factors_.size(); ++l) {
    out[l] = dense::Dot(user_factors_[l].Row(user),
                        item_factors_[l].Row(item), config_.rank);
  }
  return out;
}

std::string HeteRecRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("rank", static_cast<double>(config_.rank))
      .Add("nmf_iterations", config_.nmf_iterations)
      .Add("weight_epochs", config_.weight_epochs)
      .Add("weight_lr", config_.weight_learning_rate)
      .Add("top_k", static_cast<double>(config_.top_k))
      .Add("num_user_clusters", static_cast<double>(config_.num_user_clusters))
      .str();
}

Status HeteRecRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->MatrixList("user_factors", &user_factors_));
  KGREC_RETURN_IF_ERROR(visitor->MatrixList("item_factors", &item_factors_));
  KGREC_RETURN_IF_ERROR(visitor->RaggedFloats("theta", &theta_));
  return visitor->RaggedFloats("membership", &membership_);
}

float HeteRecRecommender::Score(int32_t user, int32_t item) const {
  const std::vector<float> features = PairFeatures(user, item);
  float score = 0.0f;
  for (size_t k = 0; k < theta_.size(); ++k) {
    for (size_t l = 0; l < features.size(); ++l) {
      score += membership_[user][k] * theta_[k][l] * features[l];
    }
  }
  return score;
}

}  // namespace kgrec
