#include "path/ekar.h"

#include <cmath>

namespace kgrec {

float EkarRecommender::Reward(int32_t user, EntityId entity) const {
  const int32_t first_item = graph_->ItemEntity(0);
  const int32_t last_item = graph_->ItemEntity(train_->num_items() - 1);
  if (entity < first_item || entity > last_item) return 0.0f;
  const int32_t item = entity - first_item;
  if (train_->Contains(user, item)) return 1.0f;  // known interaction
  // Small shaped reward toward plausible unconsumed items.
  std::vector<int32_t> h{graph_->UserEntity(user)};
  std::vector<int32_t> r{graph_->interact_relation};
  std::vector<int32_t> t{entity};
  const float plausibility = kge_->ScoreBatch(h, r, t).value();
  return 0.2f / (1.0f + std::exp(-plausibility - 4.0f));
}

}  // namespace kgrec
