#include "path/fmg.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "math/nmf.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "path/metapaths.h"

namespace kgrec {

void FmgRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);

  // Meta-graphs: the plain interaction matrix, each attribute round-trip
  // meta-path, and pairwise *combinations* of attribute round-trips (the
  // meta-graph advantage: two parallel relation sequences at once).
  CsrMatrix r = train.ToCsr();
  std::vector<ItemSimilarity> paths = ItemMetaPathSimilarities(
      *context.item_kg, train.num_items(), config_.top_k);
  std::vector<CsrMatrix> diffused;
  diffused.push_back(r);
  for (const ItemSimilarity& p : paths) {
    diffused.push_back(r.Multiply(p.matrix));
  }
  const size_t n_items = train.num_items();
  for (size_t a = 0; a + 1 < paths.size(); ++a) {
    for (size_t b = a + 1; b < paths.size() && b < a + 2; ++b) {
      // Meta-graph similarity = sum of member path similarities
      // (parallel-path fan-in), truncated again to top_k.
      std::vector<std::tuple<int32_t, int32_t, float>> triplets;
      for (const ItemSimilarity* sim : {&paths[a], &paths[b]}) {
        for (size_t row = 0; row < sim->matrix.rows(); ++row) {
          const int32_t* cols = sim->matrix.RowCols(row);
          const float* vals = sim->matrix.RowVals(row);
          for (size_t i = 0; i < sim->matrix.RowNnz(row); ++i) {
            triplets.emplace_back(static_cast<int32_t>(row), cols[i],
                                  vals[i]);
          }
        }
      }
      CsrMatrix combined = TopKPerRow(
          CsrMatrix::FromTriplets(n_items, n_items, triplets),
          config_.top_k);
      diffused.push_back(r.Multiply(combined));
    }
  }

  user_factors_.clear();
  item_factors_.clear();
  for (const CsrMatrix& matrix : diffused) {
    NmfResult nmf = Nmf(matrix, config_.rank, config_.nmf_iterations, rng);
    user_factors_.push_back(std::move(nmf.user_factors));
    item_factors_.push_back(std::move(nmf.item_factors));
  }

  // --- Factorization machine over the dense latent features -----------
  const size_t f = user_factors_.size() * config_.rank * 2;
  fm_linear_ = nn::NormalInit(1, f, 0.01f, rng);
  fm_factors_ = nn::NormalInit(f, config_.fm_dim, 0.05f, rng);
  nn::Adagrad optimizer({fm_linear_, fm_factors_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<float> flat;
      std::vector<float> labels;
      size_t batch = 0;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        std::vector<float> pos = PairFeatures(x.user, x.item);
        std::vector<float> neg =
            PairFeatures(x.user, sampler.Sample(x.user, rng));
        flat.insert(flat.end(), pos.begin(), pos.end());
        labels.push_back(1.0f);
        flat.insert(flat.end(), neg.begin(), neg.end());
        labels.push_back(0.0f);
        batch += 2;
      }
      nn::Tensor x = nn::Tensor::FromData(batch, f, std::move(flat));
      // Dense FM: w.x + 0.5 * sum((xV)^2 - x^2 V^2).
      nn::Tensor linear = nn::SumRows(nn::Mul(x, fm_linear_));
      nn::Tensor xv = nn::MatMul(x, fm_factors_);
      nn::Tensor x2v2 = nn::MatMul(nn::Square(x), nn::Square(fm_factors_));
      nn::Tensor pair =
          nn::ScaleBy(nn::SumRows(nn::Sub(nn::Square(xv), x2v2)), 0.5f);
      nn::Tensor logits = nn::Add(linear, pair);
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::vector<float> FmgRecommender::PairFeatures(int32_t user,
                                                int32_t item) const {
  std::vector<float> out;
  out.reserve(user_factors_.size() * config_.rank * 2);
  for (size_t l = 0; l < user_factors_.size(); ++l) {
    const float* u = user_factors_[l].Row(user);
    const float* v = item_factors_[l].Row(item);
    out.insert(out.end(), u, u + config_.rank);
    out.insert(out.end(), v, v + config_.rank);
  }
  return out;
}

std::string FmgRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("rank", static_cast<double>(config_.rank))
      .Add("nmf_iterations", config_.nmf_iterations)
      .Add("fm_dim", static_cast<double>(config_.fm_dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("top_k", static_cast<double>(config_.top_k))
      .str();
}

Status FmgRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->MatrixList("user_factors", &user_factors_));
  KGREC_RETURN_IF_ERROR(visitor->MatrixList("item_factors", &item_factors_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("fm_linear", &fm_linear_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("fm_factors", &fm_factors_));
  return visitor->Scalar("bias", &bias_);
}

float FmgRecommender::Score(int32_t user, int32_t item) const {
  std::vector<float> features = PairFeatures(user, item);
  const size_t f = features.size();
  nn::Tensor x = nn::Tensor::FromData(1, f, std::move(features));
  nn::Tensor linear = nn::SumRows(nn::Mul(x, fm_linear_));
  nn::Tensor xv = nn::MatMul(x, fm_factors_);
  nn::Tensor x2v2 = nn::MatMul(nn::Square(x), nn::Square(fm_factors_));
  nn::Tensor pair =
      nn::ScaleBy(nn::SumRows(nn::Sub(nn::Square(xv), x2v2)), 0.5f);
  return nn::Add(linear, pair).value();
}

}  // namespace kgrec
