#include "path/mcrec.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/check.h"
#include "core/model_state.h"
#include "core/thread_pool.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "path/metapaths.h"

namespace kgrec {
namespace {

constexpr size_t kPathLen = 4;  // entities per (padded) path instance

std::string SignatureKey(const std::vector<RelationId>& relations) {
  std::string key;
  for (RelationId r : relations) {
    key += std::to_string(r);
    key += ',';
  }
  return key;
}

}  // namespace

nn::Tensor McRecRecommender::Forward(const std::vector<int32_t>& users,
                                     const std::vector<int32_t>& items) const {
  return ForwardImpl(users, items, nullptr);
}

nn::Tensor McRecRecommender::ForwardImpl(
    const std::vector<int32_t>& users, const std::vector<int32_t>& items,
    const TemplatePathFinder::UserPathContext* ctx) const {
  const size_t batch = users.size();
  const size_t num_types = type_keys_.size();
  const size_t p = config_.instances_per_type;
  const size_t d = config_.dim;
  const size_t rows = batch * num_types * p;

  // Collect padded instances and per-type presence masks.
  std::vector<std::vector<int32_t>> step_entities(
      kPathLen, std::vector<int32_t>(rows));
  std::vector<float> type_mask(batch * num_types, -1e9f);
  for (size_t b = 0; b < batch; ++b) {
    std::vector<PathInstance> paths;
    if (ctx != nullptr) {
      paths = finder_->FindPaths(*ctx, items[b]);
    } else if (static_cast<size_t>(users[b]) < user_ctx_.size()) {
      paths = finder_->FindPaths(user_ctx_[users[b]], items[b]);
    } else {
      paths = finder_->FindPaths(users[b], items[b]);
    }
    std::unordered_map<std::string, std::vector<const PathInstance*>> by_type;
    for (const PathInstance& path : paths) {
      by_type[SignatureKey(path.relations)].push_back(&path);
    }
    for (size_t t = 0; t < num_types; ++t) {
      const auto it = by_type.find(type_keys_[t]);
      const bool present = it != by_type.end() && !it->second.empty();
      if (present) type_mask[b * num_types + t] = 0.0f;
      for (size_t k = 0; k < p; ++k) {
        const size_t row = (b * num_types + t) * p + k;
        if (present) {
          const PathInstance& inst = *it->second[k % it->second.size()];
          for (size_t step = 0; step < kPathLen; ++step) {
            step_entities[step][row] =
                inst.entities[std::min(step, inst.entities.size() - 1)];
          }
        } else {
          // Dummy walk (masked out of the attention): user -> item.
          const int32_t ue = graph_->UserEntity(users[b]);
          const int32_t ie = graph_->ItemEntity(items[b]);
          for (size_t step = 0; step < kPathLen; ++step) {
            step_entities[step][row] = step == 0 ? ue : ie;
          }
        }
      }
    }
  }

  // CNN instance encoder: window-2 convolution over the entity sequence,
  // relu, then max-pool over the 3 positions.
  std::vector<nn::Tensor> step_emb(kPathLen);
  for (size_t step = 0; step < kPathLen; ++step) {
    step_emb[step] = nn::Gather(entity_emb_, step_entities[step]);
  }
  nn::Tensor pooled;
  for (size_t pos = 0; pos + 1 < kPathLen; ++pos) {
    nn::Tensor window = nn::Concat(step_emb[pos], step_emb[pos + 1]);
    nn::Tensor feature = nn::Relu(conv_.Forward(window));  // [rows, d]
    pooled = pooled.defined() ? nn::Max(pooled, feature) : feature;
  }

  // Max-pool the P instances of each (pair, type).
  nn::Tensor type_ctx;
  for (size_t k = 0; k < p; ++k) {
    std::vector<int32_t> pick(batch * num_types);
    for (size_t g = 0; g < pick.size(); ++g) {
      pick[g] = static_cast<int32_t>(g * p + k);
    }
    nn::Tensor instance = nn::Gather(pooled, pick);  // [B*T, d]
    type_ctx = type_ctx.defined() ? nn::Max(type_ctx, instance) : instance;
  }

  // User-conditioned attention over the path types.
  nn::Tensor u_rep = nn::Gather(user_emb_, users);  // [B, d]
  std::vector<int32_t> repeat(batch * num_types);
  for (size_t g = 0; g < repeat.size(); ++g) {
    repeat[g] = static_cast<int32_t>(g / num_types);
  }
  nn::Tensor u_rep_t = nn::Gather(u_rep, repeat);  // [B*T, d]
  nn::Tensor att_logit = att_out_.Forward(
      nn::Relu(att_hidden_.Forward(nn::Concat(u_rep_t, type_ctx))));
  nn::Tensor mask = nn::Tensor::FromData(
      batch * num_types, 1, std::vector<float>(type_mask));
  nn::Tensor att = nn::Softmax(
      nn::Reshape(nn::Add(att_logit, mask), batch, num_types));
  nn::Tensor att_flat = nn::Reshape(att, batch * num_types, 1);
  nn::Tensor context =
      nn::GroupSumRows(nn::Mul(type_ctx, att_flat), num_types);  // [B, d]

  nn::Tensor v_rep = nn::Gather(item_emb_, items);
  nn::Tensor features = nn::Concat(nn::Concat(u_rep, context), v_rep);
  return score_out_.Forward(nn::Relu(score_hidden_.Forward(features)));
}

void McRecRecommender::BuildPathIndex(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  const InteractionDataset& train = *context.train;
  graph_ = context.user_item_graph;

  finder_ = std::make_unique<TemplatePathFinder>(
      *graph_, train, config_.instances_per_type);
  // Precompute every user's path context in parallel (BuildUserContext is
  // const and RNG-free, so the contexts are identical at any thread
  // count); training forwards then probe the index instead of rebuilding
  // the user's attribute map for every pair in every epoch.
  user_ctx_.resize(train.num_users());
  const Status ctx_status = ParallelFor(
      train.num_users(), config_.num_threads,
      [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          user_ctx_[u] = finder_->BuildUserContext(static_cast<int32_t>(u));
        }
        return Status::OK();
      });
  KGREC_CHECK(ctx_status.ok());
  // Meta-path types: the >=2-edge user->item meta-paths of the schema
  // (shared-attribute per relation + collaborative), matching the
  // finder's templates.
  type_keys_.clear();
  for (const MetaPath& meta : UserItemMetaPaths(*graph_)) {
    if (meta.relations.size() < 2) continue;  // direct edge excluded
    type_keys_.push_back(SignatureKey(meta.relations));
  }
  KGREC_CHECK(!type_keys_.empty());
}

void McRecRecommender::Fit(const RecContext& context) {
  BuildPathIndex(context);
  const InteractionDataset& train = *context.train;
  const size_t d = config_.dim;
  Rng rng(context.seed);

  user_emb_ = nn::NormalInit(train.num_users(), d, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), d, 0.1f, rng);
  entity_emb_ = nn::NormalInit(graph_->kg.num_entities(), d, 0.1f, rng);
  conv_ = nn::Linear(2 * d, d, rng);
  att_hidden_ = nn::Linear(2 * d, d, rng);
  att_out_ = nn::Linear(d, 1, rng);
  score_hidden_ = nn::Linear(3 * d, d, rng);
  score_out_ = nn::Linear(d, 1, rng);

  std::vector<nn::Tensor> params{user_emb_, item_emb_, entity_emb_};
  for (const nn::Linear* l :
       {&conv_, &att_hidden_, &att_out_, &score_hidden_, &score_out_}) {
    for (const auto& x : l->Params()) params.push_back(x);
  }
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor loss = nn::BceWithLogits(Forward(users, items), labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string McRecRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("instances", static_cast<double>(config_.instances_per_type))
      .str();
}

Status McRecRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("item_emb", &item_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Params("conv", conv_.Params()));
  KGREC_RETURN_IF_ERROR(visitor->Params("att_hidden", att_hidden_.Params()));
  KGREC_RETURN_IF_ERROR(visitor->Params("att_out", att_out_.Params()));
  KGREC_RETURN_IF_ERROR(visitor->Params("score_hidden", score_hidden_.Params()));
  return visitor->Params("score_out", score_out_.Params());
}

Status McRecRecommender::PrepareLoad(const RecContext& context) {
  BuildPathIndex(context);
  // Layers only need their parameter tensors allocated at the right
  // shapes before the in-place restore; any seed works.
  const size_t d = config_.dim;
  Rng rng(context.seed);
  conv_ = nn::Linear(2 * d, d, rng);
  att_hidden_ = nn::Linear(2 * d, d, rng);
  att_out_ = nn::Linear(d, 1, rng);
  score_hidden_ = nn::Linear(3 * d, d, rng);
  score_out_ = nn::Linear(d, 1, rng);
  return Status::OK();
}

float McRecRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> users{user}, items{item};
  return Forward(users, items).value();
}

std::vector<float> McRecRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size());
  const TemplatePathFinder::UserPathContext ctx =
      finder_->BuildUserContext(user);
  // Chunked so the [B*T*P, d] instance tensors stay cache-resident.
  constexpr size_t kChunk = 128;
  for (size_t start = 0; start < items.size(); start += kChunk) {
    const size_t batch = std::min(items.size() - start, kChunk);
    const std::vector<int32_t> users(batch, user);
    const std::vector<int32_t> chunk(items.begin() + start,
                                     items.begin() + start + batch);
    nn::Tensor logits = ForwardImpl(users, chunk, &ctx);  // [B, 1]
    std::copy(logits.data(), logits.data() + batch, out.begin() + start);
  }
  return out;
}

}  // namespace kgrec
