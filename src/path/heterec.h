#ifndef KGREC_PATH_HETEREC_H_
#define KGREC_PATH_HETEREC_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"

namespace kgrec {

/// Hyper-parameters for HeteRec / HeteRec-p.
struct HeteRecConfig {
  /// Rank of the per-meta-path NMF factorization.
  size_t rank = 8;
  int nmf_iterations = 40;
  /// Epochs of BPR training for the path weights theta.
  int weight_epochs = 10;
  float weight_learning_rate = 0.05f;
  /// Strongest neighbors kept per item and meta-path.
  size_t top_k = 10;
  /// HeteRec-p only: number of user clusters c (Eq. 18). 1 = plain
  /// HeteRec (a single global weight vector).
  size_t num_user_clusters = 1;
};

/// HeteRec (Yu et al., RecSys'13; survey Eq. 16-17) and its personalized
/// extension HeteRec-p (WSDM'14; Eq. 18).
///
/// For each meta-path l the interaction matrix is diffused,
/// R~(l) = R S(l), factorized with NMF into (U(l), V(l)), and the final
/// score is sum_l theta_l u_i(l) . v_j(l), with theta learned by BPR.
/// HeteRec-p clusters users (k-means on their diffused preference
/// profiles) and learns per-cluster weights, mixed by cosine similarity
/// to each cluster centroid.
class HeteRecRecommender : public Recommender {
 public:
  explicit HeteRecRecommender(HeteRecConfig config = {}) : config_(config) {}

  std::string name() const override {
    return config_.num_user_clusters > 1 ? "HeteRec-p" : "HeteRec";
  }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// NMF factors, path weights and cluster memberships are all learned
  /// (RNG-dependent) state, so the checkpoint stores everything.
  Status VisitState(StateVisitor* visitor) override;

 private:
  /// Per-path latent dot product features for a (user, item) pair.
  std::vector<float> PairFeatures(int32_t user, int32_t item) const;

  HeteRecConfig config_;
  std::vector<Matrix> user_factors_;  // per path: m x rank
  std::vector<Matrix> item_factors_;  // per path: n x rank
  /// theta[k][l]: weight of path l for cluster k.
  std::vector<std::vector<float>> theta_;
  /// Soft cluster membership per user (HeteRec-p), or a single 1.0.
  std::vector<std::vector<float>> membership_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_HETEREC_H_
