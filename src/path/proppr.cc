#include "path/proppr.h"

#include <algorithm>

#include "core/check.h"
#include "core/model_state.h"
#include "data/synthetic.h"

namespace kgrec {

void ProPprRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  const UserItemGraph& graph = *context.user_item_graph;
  const KnowledgeGraph& kg = graph.kg;
  const InteractionDataset& train = *context.train;
  const size_t num_entities = kg.num_entities();
  const int32_t m = train.num_users();
  const int32_t n = train.num_items();

  // Out-degree row normalization of the full user-item KG.
  std::vector<float> inv_degree(num_entities, 0.0f);
  for (size_t e = 0; e < num_entities; ++e) {
    const size_t degree = kg.OutDegree(static_cast<EntityId>(e));
    if (degree > 0) inv_degree[e] = 1.0f / static_cast<float>(degree);
  }

  ppr_ = Matrix(m, n);
  std::vector<float> mass(num_entities), next(num_entities);
  for (int32_t u = 0; u < m; ++u) {
    std::fill(mass.begin(), mass.end(), 0.0f);
    const EntityId source = graph.UserEntity(u);
    mass[source] = 1.0f;
    for (int iter = 0; iter < config_.iterations; ++iter) {
      std::fill(next.begin(), next.end(), 0.0f);
      next[source] += config_.restart;
      for (size_t e = 0; e < num_entities; ++e) {
        if (mass[e] == 0.0f || inv_degree[e] == 0.0f) continue;
        const float push = (1.0f - config_.restart) * mass[e] * inv_degree[e];
        const size_t degree = kg.OutDegree(static_cast<EntityId>(e));
        const Edge* edges = kg.OutEdges(static_cast<EntityId>(e));
        for (size_t i = 0; i < degree; ++i) next[edges[i].target] += push;
      }
      mass.swap(next);
    }
    for (int32_t j = 0; j < n; ++j) {
      ppr_.At(u, j) = mass[graph.ItemEntity(j)];
    }
  }
}

float ProPprRecommender::Score(int32_t user, int32_t item) const {
  return ppr_.At(user, item);
}

std::string ProPprRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("restart", config_.restart)
      .Add("iterations", config_.iterations)
      .str();
}

Status ProPprRecommender::VisitState(StateVisitor* /*visitor*/) {
  return Status::OK();
}

Status ProPprRecommender::PrepareLoad(const RecContext& context) {
  Fit(context);
  return Status::OK();
}

}  // namespace kgrec
