#include "path/path_finder.h"

#include <algorithm>

#include "core/check.h"

namespace kgrec {
namespace {

int64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}

}  // namespace

TemplatePathFinder::TemplatePathFinder(const UserItemGraph& graph,
                                       const InteractionDataset& train,
                                       size_t max_paths_per_template)
    : graph_(&graph),
      train_(&train),
      max_per_template_(max_paths_per_template) {
  const KnowledgeGraph& kg = graph.kg;
  KGREC_CHECK(kg.finalized());
  KGREC_CHECK(
      kg.FindRelation(kg.relation_name(graph.interact_relation) + "^-1",
                      &interact_inv_)
          .ok());
  item_attrs_.assign(train.num_items(), {});
  item_users_.assign(train.num_items(), {});
  for (int32_t j = 0; j < train.num_items(); ++j) {
    const EntityId entity = graph.ItemEntity(j);
    const size_t degree = kg.OutDegree(entity);
    const Edge* edges = kg.OutEdges(entity);
    for (size_t e = 0; e < degree; ++e) {
      // Attribute targets live beyond the item range.
      if (edges[e].target >= graph.ItemEntity(train.num_items()) &&
          edges[e].relation != graph.interact_relation &&
          edges[e].relation != interact_inv_) {
        item_attrs_[j].push_back(edges[e]);
        item_attr_relation_[PairKey(j, edges[e].target)] = edges[e].relation;
      }
    }
  }
  for (const Interaction& x : train.interactions()) {
    item_users_[x.item].push_back(x.user);
  }
  inverse_relation_.assign(kg.num_relations(), RelationId{-1});
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    RelationId inverse = -1;
    const RelationId rel = static_cast<RelationId>(r);
    if (kg.FindRelation(kg.relation_name(rel) + "^-1", &inverse).ok()) {
      inverse_relation_[r] = inverse;
    }
  }
}

TemplatePathFinder::UserPathContext TemplatePathFinder::BuildUserContext(
    int32_t user) const {
  UserPathContext ctx;
  ctx.user = user;
  ctx.user_entity = graph_->UserEntity(user);
  for (int32_t j : train_->UserItems(user)) {
    for (const Edge& e : item_attrs_[j]) {
      auto& list = ctx.attr_items[e.target];
      if (!list.empty() && list.back().first == j) {
        // Parallel edge from j to the same attribute: keep the last
        // relation, matching item_attr_relation_'s last write.
        list.back().second = e.relation;
      } else {
        list.emplace_back(j, e.relation);
      }
    }
  }
  return ctx;
}

std::vector<PathInstance> TemplatePathFinder::FindPaths(int32_t user,
                                                        int32_t item) const {
  std::vector<PathInstance> out;
  const EntityId user_entity = graph_->UserEntity(user);
  const EntityId item_entity = graph_->ItemEntity(item);
  const RelationId interact = graph_->interact_relation;
  const auto& history = train_->UserItems(user);

  // The direct U -I-> v edge is intentionally excluded: during training
  // it is present for every positive and absent for every negative, so a
  // path model would learn that shortcut and transfer nothing to held-out
  // items (which never have the direct edge either).

  // Template 1: shared attribute U -I-> j -r-> a -r^-1-> v.
  size_t found = 0;
  for (const Edge& attr : item_attrs_[item]) {
    if (found >= max_per_template_) break;
    for (int32_t j : history) {
      if (j == item) continue;
      auto it = item_attr_relation_.find(PairKey(j, attr.target));
      if (it == item_attr_relation_.end()) continue;
      const RelationId inverse = inverse_relation_[attr.relation];
      if (inverse < 0) continue;
      PathInstance p;
      p.entities = {user_entity, graph_->ItemEntity(j), attr.target,
                    item_entity};
      p.relations = {interact, it->second, inverse};
      out.push_back(std::move(p));
      if (++found >= max_per_template_) break;
    }
  }

  // Template 2: collaborative U -I-> j -I^-1-> u' -I-> v.
  found = 0;
  for (int32_t other : item_users_[item]) {
    if (found >= max_per_template_) break;
    if (other == user) continue;
    for (int32_t j : train_->UserItems(other)) {
      if (j == item) continue;
      if (!train_->Contains(user, j)) continue;
      PathInstance p;
      p.entities = {user_entity, graph_->ItemEntity(j),
                    graph_->UserEntity(other), item_entity};
      p.relations = {interact, interact_inv_, interact};
      out.push_back(std::move(p));
      ++found;
      break;  // one witness item per collaborating user
    }
  }
  return out;
}

std::vector<PathInstance> TemplatePathFinder::FindPaths(
    const UserPathContext& ctx, int32_t item) const {
  std::vector<PathInstance> out;
  const EntityId item_entity = graph_->ItemEntity(item);
  const RelationId interact = graph_->interact_relation;

  // Template 1: shared attribute, probing the user-side index instead of
  // the full history. Iteration order (attr-major, history-minor) and the
  // caps match the user-id overload, so the emitted paths are identical.
  size_t found = 0;
  for (const Edge& attr : item_attrs_[item]) {
    if (found >= max_per_template_) break;
    const auto it = ctx.attr_items.find(attr.target);
    if (it == ctx.attr_items.end()) continue;
    const RelationId inverse = inverse_relation_[attr.relation];
    for (const auto& [j, relation] : it->second) {
      if (j == item) continue;
      if (inverse < 0) continue;
      PathInstance p;
      p.entities = {ctx.user_entity, graph_->ItemEntity(j), attr.target,
                    item_entity};
      p.relations = {interact, relation, inverse};
      out.push_back(std::move(p));
      if (++found >= max_per_template_) break;
    }
  }

  // Template 2: collaborative — inherently candidate-driven, unchanged.
  found = 0;
  for (int32_t other : item_users_[item]) {
    if (found >= max_per_template_) break;
    if (other == ctx.user) continue;
    for (int32_t j : train_->UserItems(other)) {
      if (j == item) continue;
      if (!train_->Contains(ctx.user, j)) continue;
      PathInstance p;
      p.entities = {ctx.user_entity, graph_->ItemEntity(j),
                    graph_->UserEntity(other), item_entity};
      p.relations = {interact, interact_inv_, interact};
      out.push_back(std::move(p));
      ++found;
      break;  // one witness item per collaborating user
    }
  }
  return out;
}

}  // namespace kgrec
