#ifndef KGREC_PATH_PATH_FINDER_H_
#define KGREC_PATH_PATH_FINDER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/interactions.h"
#include "data/synthetic.h"
#include "graph/paths.h"

namespace kgrec {

/// Efficient extraction of user->item path instances in a user-item KG,
/// following the standard semantic templates
///   U -interact-> I                                 (direct history)
///   U -interact-> J -r-> A -r^-1-> I                (shared attribute)
///   U -interact-> J -interact^-1-> U' -interact-> I (collaborative)
/// instead of unbounded DFS: paths are found by meeting in the middle,
/// which keeps RKGE/KPRN training tractable (RKGE's "automatic"
/// enumeration explores the same <=3-edge path space; the templates are
/// exactly the relation sequences that exist in this schema).
class TemplatePathFinder {
 public:
  /// `graph` and `train` must outlive the finder.
  TemplatePathFinder(const UserItemGraph& graph,
                     const InteractionDataset& train,
                     size_t max_paths_per_template = 3);

  /// Path instances from the user to the item (entity ids of the
  /// user-item KG), at most 3 * max_paths_per_template, deterministic.
  std::vector<PathInstance> FindPaths(int32_t user, int32_t item) const;

  /// User-side state of FindPaths, reusable across candidate items. The
  /// shared-attribute template spends its time probing which history
  /// items reach each attribute; that index depends only on the user.
  struct UserPathContext {
    int32_t user = -1;
    EntityId user_entity = -1;
    /// Per attribute entity: the user's history items that reach it, with
    /// the connecting relation, in history order (one entry per item —
    /// parallel edges collapse to the last relation, mirroring the
    /// last-write-wins (item, attribute) index used by FindPaths).
    std::unordered_map<EntityId,
                       std::vector<std::pair<int32_t, RelationId>>>
        attr_items;
  };

  /// Builds the reusable user-side index (one pass over the history).
  UserPathContext BuildUserContext(int32_t user) const;

  /// Identical output to FindPaths(ctx.user, item) — same paths, same
  /// order — without re-probing the user's history per candidate.
  std::vector<PathInstance> FindPaths(const UserPathContext& ctx,
                                      int32_t item) const;

  const UserItemGraph& graph() const { return *graph_; }

 private:
  const UserItemGraph* graph_;
  const InteractionDataset* train_;
  size_t max_per_template_;
  RelationId interact_inv_ = -1;
  /// Attribute edges per item: (relation, attribute entity).
  std::vector<std::vector<Edge>> item_attrs_;
  /// (item, attribute entity) membership with the connecting relation.
  std::unordered_map<int64_t, RelationId> item_attr_relation_;
  /// Users per item (train interactions).
  std::vector<std::vector<int32_t>> item_users_;
  /// Per relation id: the id of "<name>^-1", or -1 when absent (resolved
  /// once here instead of a string lookup per emitted path).
  std::vector<RelationId> inverse_relation_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_PATH_FINDER_H_
