#ifndef KGREC_PATH_HEREC_H_
#define KGREC_PATH_HEREC_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for HERec.
struct HERecConfig {
  size_t dim = 16;
  /// Random-walk embedding parameters (per meta-path).
  size_t walks_per_item = 8;
  size_t walk_length = 10;
  size_t window = 2;
  int negatives = 4;
  int sgns_epochs = 2;
  /// MF + fusion training.
  int epochs = 25;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
};

/// HERec (Shi et al., TKDE'19): heterogeneous information network
/// embedding for recommendation. Meta-path constrained random walks
/// (item -r-> attribute -r^-1-> item, one walk corpus per meta-path)
/// produce skip-gram item embeddings; these per-path embeddings are
/// fused into an extended matrix factorization — here the user side
/// builds a per-path profile (mean embedding of the user's history) and
/// the final score is u.v plus learned per-path profile-item affinities.
class HERecRecommender : public Recommender {
 public:
  explicit HERecRecommender(HERecConfig config = {}) : config_(config) {}

  std::string name() const override { return "HERec"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: the MF term and each meta-path affinity term run
  /// through kernels::DotBatch, folded as score += w_l * f_l in the same
  /// ascending path order as Score(), so outputs are bitwise equal.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  std::vector<float> PairFeatures(int32_t user, int32_t item) const;

  HERecConfig config_;
  const InteractionDataset* train_ = nullptr;
  /// Per meta-path: item embeddings [n, dim] from SGNS.
  std::vector<Matrix> path_item_emb_;
  /// Per meta-path per user: history profile [dim].
  std::vector<Matrix> path_user_profile_;
  std::vector<float> path_weights_;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_HEREC_H_
