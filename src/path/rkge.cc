#include "path/rkge.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/check.h"
#include "core/model_state.h"
#include "core/thread_pool.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor RkgeRecommender::PairLogit(int32_t user, int32_t item) const {
  const std::vector<PathInstance> paths =
      static_cast<size_t>(user) < user_ctx_.size()
          ? finder_->FindPaths(user_ctx_[user], item)
          : finder_->FindPaths(user, item);
  if (paths.empty()) return no_path_bias_;
  // Encode all paths in one GRU batch: paths are padded to the longest
  // (<= 4 entities) by repeating the final entity (a no-op for the state
  // that reached it: negligible at these lengths).
  size_t max_len = 0;
  for (const PathInstance& p : paths) {
    max_len = std::max(max_len, p.entities.size());
  }
  const size_t batch = paths.size();
  nn::Tensor h = nn::Tensor::Zeros(batch, config_.hidden_dim);
  for (size_t step = 0; step < max_len; ++step) {
    std::vector<int32_t> ids(batch);
    for (size_t p = 0; p < batch; ++p) {
      const auto& entities = paths[p].entities;
      ids[p] = entities[std::min(step, entities.size() - 1)];
    }
    h = gru_.Step(nn::Gather(entity_emb_, ids), h);
  }
  // Average-pool the final states, then FC (Eq. 19-20).
  nn::Tensor pooled =
      nn::ScaleBy(nn::GroupSumRows(h, batch), 1.0f / batch);  // [1, hidden]
  return output_.Forward(pooled);  // [1,1]
}

void RkgeRecommender::BuildPathIndex(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  const InteractionDataset& train = *context.train;
  finder_ = std::make_unique<TemplatePathFinder>(
      *context.user_item_graph, train, config_.max_paths_per_template);
  // Precompute every user's path context in parallel (BuildUserContext is
  // const and RNG-free, so the contexts are identical at any thread
  // count); PairLogit then probes the index instead of rebuilding the
  // user's attribute map for every pair in every epoch.
  user_ctx_.resize(train.num_users());
  const Status ctx_status = ParallelFor(
      train.num_users(), config_.num_threads,
      [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          user_ctx_[u] = finder_->BuildUserContext(static_cast<int32_t>(u));
        }
        return Status::OK();
      });
  KGREC_CHECK(ctx_status.ok());
}

void RkgeRecommender::Fit(const RecContext& context) {
  BuildPathIndex(context);
  const InteractionDataset& train = *context.train;
  const UserItemGraph& graph = *context.user_item_graph;
  Rng rng(context.seed);

  entity_emb_ =
      nn::NormalInit(graph.kg.num_entities(), config_.dim, 0.1f, rng);
  gru_ = nn::GruCell(config_.dim, config_.hidden_dim, rng);
  output_ = nn::Linear(config_.hidden_dim, 1, rng);
  no_path_bias_ =
      nn::Tensor::FromData(1, 1, {-1.0f}, /*requires_grad=*/true);

  std::vector<nn::Tensor> params{entity_emb_, no_path_bias_};
  for (const auto& p : gru_.Params()) params.push_back(p);
  for (const auto& p : output_.Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      nn::Tensor logits;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        nn::Tensor pos = PairLogit(x.user, x.item);
        nn::Tensor neg = PairLogit(x.user, sampler.Sample(x.user, rng));
        logits = logits.defined() ? nn::Concat(nn::Concat(logits, pos), neg)
                                  : nn::Concat(pos, neg);
        labels.push_back(1.0f);
        labels.push_back(0.0f);
      }
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string RkgeRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("hidden_dim", static_cast<double>(config_.hidden_dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("max_paths", static_cast<double>(config_.max_paths_per_template))
      .str();
}

Status RkgeRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Params("gru", gru_.Params()));
  KGREC_RETURN_IF_ERROR(visitor->Params("output", output_.Params()));
  return visitor->Tensor("no_path_bias", &no_path_bias_);
}

Status RkgeRecommender::PrepareLoad(const RecContext& context) {
  BuildPathIndex(context);
  // The GRU and output layer only need their parameter tensors allocated
  // at the right shapes before the in-place restore; any seed works.
  Rng rng(context.seed);
  gru_ = nn::GruCell(config_.dim, config_.hidden_dim, rng);
  output_ = nn::Linear(config_.hidden_dim, 1, rng);
  return Status::OK();
}

float RkgeRecommender::Score(int32_t user, int32_t item) const {
  return PairLogit(user, item).value();
}

std::vector<float> RkgeRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size());
  const TemplatePathFinder::UserPathContext ctx =
      finder_->BuildUserContext(user);
  std::vector<std::vector<PathInstance>> per_item(items.size());
  // PairLogit pads every path to the pair's longest, so candidates are
  // grouped by their own max length to keep the GRU step count — and
  // therefore the floats — identical to the per-pair call. Template paths
  // all have 4 entities, so in practice this is one group.
  std::unordered_map<size_t, std::vector<size_t>> by_len;
  for (size_t i = 0; i < items.size(); ++i) {
    std::vector<PathInstance> paths = finder_->FindPaths(ctx, items[i]);
    if (paths.empty()) {
      out[i] = no_path_bias_.value();
      continue;
    }
    size_t max_len = 0;
    for (const PathInstance& p : paths) {
      max_len = std::max(max_len, p.entities.size());
    }
    by_len[max_len].push_back(i);
    per_item[i] = std::move(paths);
  }
  for (const auto& [len, group] : by_len) {
    // Chunked so the [P, hidden] GRU intermediates stay bounded.
    constexpr size_t kChunk = 512;
    for (size_t start = 0; start < group.size(); start += kChunk) {
      const size_t chunk_end = std::min(group.size(), start + kChunk);
      std::vector<const PathInstance*> batch_paths;
      for (size_t g = start; g < chunk_end; ++g) {
        for (const PathInstance& p : per_item[group[g]]) {
          batch_paths.push_back(&p);
        }
      }
      const size_t rows = batch_paths.size();
      nn::Tensor h = nn::Tensor::Zeros(rows, config_.hidden_dim);
      for (size_t step = 0; step < len; ++step) {
        std::vector<int32_t> ids(rows);
        for (size_t p = 0; p < rows; ++p) {
          const auto& entities = batch_paths[p]->entities;
          ids[p] = entities[std::min(step, entities.size() - 1)];
        }
        h = gru_.Step(nn::Gather(entity_emb_, ids), h);
      }
      size_t offset = 0;
      for (size_t g = start; g < chunk_end; ++g) {
        const size_t i = group[g];
        const size_t count = per_item[i].size();
        std::vector<int32_t> path_rows(count);
        std::iota(path_rows.begin(), path_rows.end(),
                  static_cast<int32_t>(offset));
        offset += count;
        nn::Tensor h_i = nn::Gather(h, path_rows);  // [P_i, hidden]
        // Same mean-pool + FC as PairLogit on the same floats.
        nn::Tensor pooled = nn::ScaleBy(nn::GroupSumRows(h_i, count),
                                        1.0f / count);
        out[i] = output_.Forward(pooled).value();
      }
    }
  }
  return out;
}

}  // namespace kgrec
