#include "path/kprn.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/check.h"
#include "core/model_state.h"
#include "core/thread_pool.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor KprnRecommender::PathScores(
    const std::vector<PathInstance>& paths) const {
  if (paths.empty()) return nn::Tensor();
  size_t max_len = 0;
  for (const PathInstance& p : paths) {
    max_len = std::max(max_len, p.entities.size());
  }
  const size_t batch = paths.size();
  nn::LstmCell::State state = lstm_.InitialState(batch);
  for (size_t step = 0; step < max_len; ++step) {
    std::vector<int32_t> ents(batch), rels(batch);
    for (size_t p = 0; p < batch; ++p) {
      const auto& entities = paths[p].entities;
      const auto& relations = paths[p].relations;
      const size_t at = std::min(step, entities.size() - 1);
      ents[p] = entities[at];
      rels[p] = at < relations.size() ? relations[at] : end_relation_;
    }
    nn::Tensor x = nn::Concat(nn::Gather(entity_emb_, ents),
                              nn::Gather(relation_emb_, rels));
    state = lstm_.Step(x, state);
  }
  return score_out_.Forward(
      nn::Relu(score_hidden_.Forward(state.h)));  // [P, 1]
}

nn::Tensor KprnRecommender::PairLogit(int32_t user, int32_t item) const {
  const std::vector<PathInstance> paths =
      static_cast<size_t>(user) < user_ctx_.size()
          ? finder_->FindPaths(user_ctx_[user], item)
          : finder_->FindPaths(user, item);
  nn::Tensor scores = PathScores(paths);
  if (!scores.defined()) return no_path_bias_;
  // Weighted pooling (KPRN Eq. 9): gamma * log sum exp(s_p / gamma).
  const float gamma = config_.pooling_gamma;
  nn::Tensor scaled = nn::ScaleBy(scores, 1.0f / gamma);
  nn::Tensor pooled = nn::ScaleBy(nn::Log(nn::Sum(nn::Exp(scaled))), gamma);
  return pooled;
}

void KprnRecommender::BuildPathIndex(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  const InteractionDataset& train = *context.train;
  finder_ = std::make_unique<TemplatePathFinder>(
      *context.user_item_graph, train, config_.max_paths_per_template);
  // Precompute every user's path context in parallel (BuildUserContext is
  // const and RNG-free, so the contexts are identical at any thread
  // count); PairLogit then probes the index instead of rebuilding the
  // user's attribute map for every pair in every epoch.
  user_ctx_.resize(train.num_users());
  const Status ctx_status = ParallelFor(
      train.num_users(), config_.num_threads,
      [&](size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          user_ctx_[u] = finder_->BuildUserContext(static_cast<int32_t>(u));
        }
        return Status::OK();
      });
  KGREC_CHECK(ctx_status.ok());
}

void KprnRecommender::Fit(const RecContext& context) {
  BuildPathIndex(context);
  const InteractionDataset& train = *context.train;
  const UserItemGraph& graph = *context.user_item_graph;
  Rng rng(context.seed);

  entity_emb_ =
      nn::NormalInit(graph.kg.num_entities(), config_.dim, 0.1f, rng);
  end_relation_ = static_cast<int32_t>(graph.kg.num_relations());
  relation_emb_ =
      nn::NormalInit(graph.kg.num_relations() + 1, config_.dim, 0.1f, rng);
  lstm_ = nn::LstmCell(2 * config_.dim, config_.hidden_dim, rng);
  score_hidden_ = nn::Linear(config_.hidden_dim, config_.hidden_dim, rng);
  score_out_ = nn::Linear(config_.hidden_dim, 1, rng);
  no_path_bias_ =
      nn::Tensor::FromData(1, 1, {-1.0f}, /*requires_grad=*/true);

  std::vector<nn::Tensor> params{entity_emb_, relation_emb_, no_path_bias_};
  for (const auto& p : lstm_.Params()) params.push_back(p);
  for (const auto& p : score_hidden_.Params()) params.push_back(p);
  for (const auto& p : score_out_.Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      nn::Tensor logits;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        nn::Tensor pos = PairLogit(x.user, x.item);
        nn::Tensor neg = PairLogit(x.user, sampler.Sample(x.user, rng));
        logits = logits.defined() ? nn::Concat(nn::Concat(logits, pos), neg)
                                  : nn::Concat(pos, neg);
        labels.push_back(1.0f);
        labels.push_back(0.0f);
      }
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string KprnRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("hidden_dim", static_cast<double>(config_.hidden_dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("max_paths", static_cast<double>(config_.max_paths_per_template))
      .Add("gamma", config_.pooling_gamma)
      .str();
}

Status KprnRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("relation_emb", &relation_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Params("lstm", lstm_.Params()));
  KGREC_RETURN_IF_ERROR(visitor->Params("score_hidden", score_hidden_.Params()));
  KGREC_RETURN_IF_ERROR(visitor->Params("score_out", score_out_.Params()));
  return visitor->Tensor("no_path_bias", &no_path_bias_);
}

Status KprnRecommender::PrepareLoad(const RecContext& context) {
  BuildPathIndex(context);
  end_relation_ =
      static_cast<int32_t>(context.user_item_graph->kg.num_relations());
  // Layers only need their parameter tensors allocated at the right
  // shapes before the in-place restore; any seed works.
  Rng rng(context.seed);
  lstm_ = nn::LstmCell(2 * config_.dim, config_.hidden_dim, rng);
  score_hidden_ = nn::Linear(config_.hidden_dim, config_.hidden_dim, rng);
  score_out_ = nn::Linear(config_.hidden_dim, 1, rng);
  return Status::OK();
}

float KprnRecommender::Score(int32_t user, int32_t item) const {
  return PairLogit(user, item).value();
}

std::vector<float> KprnRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size());
  const TemplatePathFinder::UserPathContext ctx =
      finder_->BuildUserContext(user);
  std::vector<std::vector<PathInstance>> per_item(items.size());
  // PathScores pads every path in a batch to the batch's longest path, so
  // candidates are grouped by their own max length to keep the LSTM step
  // count — and therefore the floats — identical to the per-pair call.
  // Template paths all have 4 entities, so in practice this is one group.
  std::unordered_map<size_t, std::vector<size_t>> by_len;
  for (size_t i = 0; i < items.size(); ++i) {
    std::vector<PathInstance> paths = finder_->FindPaths(ctx, items[i]);
    if (paths.empty()) {
      out[i] = no_path_bias_.value();
      continue;
    }
    size_t max_len = 0;
    for (const PathInstance& p : paths) {
      max_len = std::max(max_len, p.entities.size());
    }
    by_len[max_len].push_back(i);
    per_item[i] = std::move(paths);
  }
  const float gamma = config_.pooling_gamma;
  for (const auto& [len, group] : by_len) {
    // Chunked so the [P, hidden] LSTM intermediates stay bounded.
    constexpr size_t kChunk = 512;
    for (size_t start = 0; start < group.size(); start += kChunk) {
      const size_t chunk_end = std::min(group.size(), start + kChunk);
      std::vector<PathInstance> batch_paths;
      for (size_t g = start; g < chunk_end; ++g) {
        const auto& paths = per_item[group[g]];
        batch_paths.insert(batch_paths.end(), paths.begin(), paths.end());
      }
      nn::Tensor scores = PathScores(batch_paths);  // [P, 1]
      size_t offset = 0;
      for (size_t g = start; g < chunk_end; ++g) {
        const size_t i = group[g];
        std::vector<int32_t> rows(per_item[i].size());
        std::iota(rows.begin(), rows.end(), static_cast<int32_t>(offset));
        offset += rows.size();
        nn::Tensor s = nn::Gather(scores, rows);
        // Same pooling as PairLogit on the same floats in the same order.
        nn::Tensor pooled = nn::ScaleBy(
            nn::Log(nn::Sum(nn::Exp(nn::ScaleBy(s, 1.0f / gamma)))), gamma);
        out[i] = pooled.value();
      }
    }
  }
  return out;
}

std::string KprnRecommender::ExplainBestPath(int32_t user,
                                             int32_t item) const {
  const std::vector<PathInstance> paths = finder_->FindPaths(user, item);
  nn::Tensor scores = PathScores(paths);
  if (!scores.defined()) return "";
  size_t best = 0;
  for (size_t p = 1; p < scores.size(); ++p) {
    if (scores.data()[p] > scores.data()[best]) best = p;
  }
  return FormatPath(finder_->graph().kg, paths[best]);
}

}  // namespace kgrec
