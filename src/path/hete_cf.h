#ifndef KGREC_PATH_HETE_CF_H_
#define KGREC_PATH_HETE_CF_H_

#include "core/recommender.h"
#include "nn/tensor.h"
#include "retrieval/factors.h"

namespace kgrec {

/// Hyper-parameters for Hete-CF.
struct HeteCfConfig {
  size_t dim = 16;
  int epochs = 30;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weights of the three similarity regularizers (survey Eq. 13-15).
  float user_user_weight = 0.05f;
  float item_item_weight = 0.1f;
  float user_item_weight = 0.05f;
  size_t top_k = 10;
};

/// Hete-CF (Luo et al., ICDM'14; survey Eq. 13-15): matrix factorization
/// with *all three* meta-path similarity regularizers — user-user
/// (co-interaction PathSim), item-item (shared-attribute PathSim) and
/// user-item (diffused preference) — which is why it outperforms Hete-MF
/// (item-item only) in the survey's account.
class HeteCfRecommender : public Recommender, public DotProductFactors {
 public:
  explicit HeteCfRecommender(HeteCfConfig config = {}) : config_(config) {}

  std::string name() const override { return "Hete-CF"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path through kernels::DotBatch; bitwise equal to
  /// Score() since both follow the shared fixed-block dot contract.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

  // DotProductFactors: the score *is* the factor dot, so the export is
  // the raw factor tables.
  size_t factor_dim() const override { return config_.dim; }
  retrieval::ScoreKernel factor_kernel() const override {
    return retrieval::ScoreKernel::kDot;
  }
  retrieval::ItemFactors ExportItemFactors() const override;
  void FillUserQuery(int32_t user, std::span<float> out) const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;

 private:
  HeteCfConfig config_;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_HETE_CF_H_
