#include "path/hete_mf.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "math/dense.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "path/metapaths.h"

namespace kgrec {

void HeteMfRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  const size_t d = config_.dim;
  user_emb_ = nn::NormalInit(train.num_users(), d, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), d, 0.1f, rng);

  // Flatten all meta-path similarity entries into one weighted pair list.
  std::vector<ItemSimilarity> sims = ItemMetaPathSimilarities(
      *context.item_kg, train.num_items(), config_.top_k);
  struct SimPair {
    int32_t a, b;
    float s;
  };
  std::vector<SimPair> pairs;
  for (const ItemSimilarity& sim : sims) {
    for (size_t r = 0; r < sim.matrix.rows(); ++r) {
      const int32_t* cols = sim.matrix.RowCols(r);
      const float* vals = sim.matrix.RowVals(r);
      for (size_t i = 0; i < sim.matrix.RowNnz(r); ++i) {
        pairs.push_back({static_cast<int32_t>(r), cols[i], vals[i]});
      }
    }
  }

  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor v = nn::Gather(item_emb_, items);
      nn::Tensor loss = nn::BceWithLogits(nn::RowwiseDot(u, v), labels);
      if (!pairs.empty() && config_.similarity_weight > 0.0f) {
        // Sampled similarity regularizer (Eq. 14), one pair per example.
        std::vector<int32_t> left, right;
        std::vector<float> weights;
        for (size_t i = 0; i < users.size(); ++i) {
          const SimPair& p = pairs[rng.UniformInt(pairs.size())];
          left.push_back(p.a);
          right.push_back(p.b);
          weights.push_back(p.s);
        }
        nn::Tensor vi = nn::Gather(item_emb_, left);
        nn::Tensor vj = nn::Gather(item_emb_, right);
        const size_t num_weights = weights.size();
        nn::Tensor w =
            nn::Tensor::FromData(num_weights, 1, std::move(weights));
        nn::Tensor reg = nn::Mean(
            nn::Mul(nn::SumRows(nn::Square(nn::Sub(vi, vj))), w));
        loss = nn::Add(loss, nn::ScaleBy(reg, config_.similarity_weight));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string HeteMfRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("similarity_weight", config_.similarity_weight)
      .Add("top_k", static_cast<double>(config_.top_k))
      .str();
}

Status HeteMfRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  return visitor->Tensor("item_emb", &item_emb_);
}

float HeteMfRecommender::Score(int32_t user, int32_t item) const {
  const size_t d = user_emb_.cols();
  return dense::Dot(user_emb_.data() + user * d, item_emb_.data() + item * d,
                    d);
}

std::vector<float> HeteMfRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  const size_t d = user_emb_.cols();
  const float* u = user_emb_.data() + user * d;
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = item_emb_.data() + items[i] * d;
  }
  std::vector<float> out(items.size());
  kernels::DotBatch(u, rows.data(), rows.size(), d, out.data());
  return out;
}

retrieval::ItemFactors HeteMfRecommender::ExportItemFactors() const {
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = Matrix(item_emb_.rows(), item_emb_.cols());
  std::copy_n(item_emb_.data(), factors.items.size(), factors.items.data());
  return factors;
}

void HeteMfRecommender::FillUserQuery(int32_t user,
                                      std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), config_.dim);
  std::copy_n(user_emb_.data() + user * config_.dim, config_.dim, out.data());
}

}  // namespace kgrec
