#ifndef KGREC_PATH_FMG_H_
#define KGREC_PATH_FMG_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for FMG.
struct FmgConfig {
  size_t rank = 8;
  int nmf_iterations = 40;
  /// FM factor dimension over the concatenated latent features.
  size_t fm_dim = 8;
  int epochs = 15;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-4f;
  size_t top_k = 10;
};

/// FMG (Zhao et al., KDD'17): meta-graph based recommendation fusion.
/// Meta-graphs (combinations of meta-paths, here: pairs of attribute
/// round-trips plus the co-interaction path) produce similarity matrices;
/// each yields NMF latent factors; a factorization machine over the
/// concatenated user/item latent features fuses them (second-order
/// interactions across meta-graphs).
class FmgRecommender : public Recommender {
 public:
  explicit FmgRecommender(FmgConfig config = {}) : config_(config) {}

  std::string name() const override { return "FMG"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;

 private:
  /// Dense FM input: concatenated per-meta-graph user and item factors.
  std::vector<float> PairFeatures(int32_t user, int32_t item) const;

  FmgConfig config_;
  std::vector<Matrix> user_factors_;
  std::vector<Matrix> item_factors_;
  nn::Tensor fm_linear_;   // [1, F]
  nn::Tensor fm_factors_;  // [F, fm_dim]
  float bias_ = 0.0f;
};

}  // namespace kgrec

#endif  // KGREC_PATH_FMG_H_
