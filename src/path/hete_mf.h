#ifndef KGREC_PATH_HETE_MF_H_
#define KGREC_PATH_HETE_MF_H_

#include "core/recommender.h"
#include "nn/tensor.h"
#include "retrieval/factors.h"

namespace kgrec {

/// Hyper-parameters for Hete-MF.
struct HeteMfConfig {
  size_t dim = 16;
  int epochs = 30;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weight of the meta-path item-item similarity regularizer (Eq. 14).
  float similarity_weight = 0.1f;
  /// Strongest neighbors kept per item and meta-path.
  size_t top_k = 10;
};

/// Hete-MF (Yu et al., IJCAI-HINA'13; survey Eq. 14): matrix
/// factorization whose item factors are regularized to be close for items
/// with high meta-path (PathSim) similarity:
///   min L_mf + w * sum_l sum_{i,j} s^l_ij ||v_i - v_j||^2.
class HeteMfRecommender : public Recommender, public DotProductFactors {
 public:
  explicit HeteMfRecommender(HeteMfConfig config = {}) : config_(config) {}

  std::string name() const override { return "Hete-MF"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path through kernels::DotBatch; bitwise equal to
  /// Score() since both follow the shared fixed-block dot contract.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

  // DotProductFactors: the score *is* the factor dot, so the export is
  // the raw factor tables.
  size_t factor_dim() const override { return config_.dim; }
  retrieval::ScoreKernel factor_kernel() const override {
    return retrieval::ScoreKernel::kDot;
  }
  retrieval::ItemFactors ExportItemFactors() const override;
  void FillUserQuery(int32_t user, std::span<float> out) const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;

 private:
  HeteMfConfig config_;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_HETE_MF_H_
