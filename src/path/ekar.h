#ifndef KGREC_PATH_EKAR_H_
#define KGREC_PATH_EKAR_H_

#include "path/pgpr.h"

namespace kgrec {

/// Ekar (Song et al., arXiv'19): explainable knowledge-aware
/// recommendation via deep reinforcement learning. Like PGPR the agent
/// walks the user-item KG, but the reward design differs: reaching an
/// item the user is *known* to have interacted with yields the full
/// reward (+1) — the policy learns to navigate toward relevant regions
/// and generalizes to unconsumed items at inference time — while
/// unconsumed items receive only a small KGE-shaped reward.
class EkarRecommender : public PgprRecommender {
 public:
  explicit EkarRecommender(PgprConfig config = {}) : PgprRecommender(config) {}

  std::string name() const override { return "Ekar"; }

 protected:
  float Reward(int32_t user, EntityId entity) const override;
};

}  // namespace kgrec

#endif  // KGREC_PATH_EKAR_H_
