#include "path/rulerec.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "core/check.h"
#include "core/model_state.h"
#include "path/metapaths.h"

namespace kgrec {
namespace {

/// Rule activation: total similarity from the user's history to the item
/// under one rule matrix.
float RuleActivation(const CsrMatrix& rule, std::span<const int32_t> history,
                     int32_t item) {
  float acc = 0.0f;
  for (int32_t j : history) acc += rule.At(j, item);
  return acc;
}

}  // namespace

void RuleRecRecommender::MineRules(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  train_ = &train;
  kg_ = context.item_kg;

  // Rule mining: candidate rules are the item-association meta-paths of
  // the external KG (shared attribute per relation).
  rule_names_.clear();
  rule_matrices_.clear();
  for (ItemSimilarity& sim : ItemMetaPathSimilarities(
           *context.item_kg, train.num_items(), config_.top_k)) {
    rule_names_.push_back(sim.name);
    rule_matrices_.push_back(std::move(sim.matrix));
  }

  popularity_.assign(train.num_items(), 0.0f);
  for (const Interaction& x : train.interactions()) {
    popularity_[x.item] += 1.0f;
  }
  const float max_pop =
      std::max(1.0f, *std::max_element(popularity_.begin(),
                                       popularity_.end()));
  for (float& p : popularity_) p /= max_pop;
}

void RuleRecRecommender::Fit(const RecContext& context) {
  MineRules(context);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  rule_weights_.assign(rule_matrices_.size(), 0.1f);
  popularity_weight_ = 0.1f;

  // Learn rule weights with BPR over (history -> pos vs neg) activations.
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Interaction& x = train.interactions()[idx];
      const auto& history = train.UserItems(x.user);
      const int32_t neg = sampler.Sample(x.user, rng);
      std::vector<float> diff(rule_matrices_.size());
      float margin = 0.0f;
      for (size_t rule = 0; rule < rule_matrices_.size(); ++rule) {
        diff[rule] = RuleActivation(rule_matrices_[rule], history, x.item) -
                     RuleActivation(rule_matrices_[rule], history, neg);
        margin += rule_weights_[rule] * diff[rule];
      }
      const float pop_diff = popularity_[x.item] - popularity_[neg];
      margin += popularity_weight_ * pop_diff;
      const float sig = 1.0f / (1.0f + std::exp(margin));
      for (size_t rule = 0; rule < rule_matrices_.size(); ++rule) {
        rule_weights_[rule] +=
            config_.learning_rate *
            (sig * diff[rule] - config_.l2 * rule_weights_[rule]);
      }
      popularity_weight_ += config_.learning_rate *
                            (sig * pop_diff - config_.l2 * popularity_weight_);
    }
  }
}

std::string RuleRecRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("epochs", config_.epochs)
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("top_k", static_cast<double>(config_.top_k))
      .str();
}

Status RuleRecRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Floats("rule_weights", &rule_weights_));
  return visitor->Scalar("popularity_weight", &popularity_weight_);
}

Status RuleRecRecommender::PrepareLoad(const RecContext& context) {
  MineRules(context);
  return Status::OK();
}

float RuleRecRecommender::Score(int32_t user, int32_t item) const {
  const auto& history = train_->UserItems(user);
  float score = popularity_weight_ * popularity_[item];
  for (size_t rule = 0; rule < rule_matrices_.size(); ++rule) {
    score += rule_weights_[rule] *
             RuleActivation(rule_matrices_[rule], history, item);
  }
  return score;
}

std::vector<std::pair<std::string, float>> RuleRecRecommender::Rules() const {
  std::vector<std::pair<std::string, float>> out;
  for (size_t rule = 0; rule < rule_names_.size(); ++rule) {
    out.emplace_back(rule_names_[rule], rule_weights_[rule]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::fabs(a.second) > std::fabs(b.second);
  });
  return out;
}

std::string RuleRecRecommender::Explain(int32_t user, int32_t item) const {
  const auto& history = train_->UserItems(user);
  float best = 0.0f;
  size_t best_rule = 0;
  int32_t best_source = -1;
  for (size_t rule = 0; rule < rule_matrices_.size(); ++rule) {
    for (int32_t j : history) {
      const float contribution =
          rule_weights_[rule] * rule_matrices_[rule].At(j, item);
      if (contribution > best) {
        best = contribution;
        best_rule = rule;
        best_source = j;
      }
    }
  }
  if (best_source < 0) {
    return "recommended by popularity";
  }
  return "rule " + rule_names_[best_rule] + " links '" +
         kg_->entity_name(best_source) + "' from your history to '" +
         kg_->entity_name(item) + "'";
}

}  // namespace kgrec
