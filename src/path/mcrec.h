#ifndef KGREC_PATH_MCREC_H_
#define KGREC_PATH_MCREC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "nn/layers.h"
#include "nn/tensor.h"
#include "path/path_finder.h"

namespace kgrec {

/// Hyper-parameters for MCRec.
struct McRecConfig {
  size_t dim = 16;
  int epochs = 6;
  size_t batch_size = 64;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Path instances sampled per meta-path type (padded by repetition).
  size_t instances_per_type = 3;
  /// Threads for the per-user path-context precompute in Fit(). Context
  /// construction is RNG-free and FindPaths(ctx, item) is documented
  /// bitwise-identical to FindPaths(user, item), so any value >= 1 gives
  /// identical training — this is a pure speed knob.
  size_t num_threads = 1;
};

/// MCRec (Hu et al., KDD'18): meta-path based context for top-N
/// recommendation with a neural co-attention model. For each user-item
/// pair, path instances of every meta-path type are encoded with a CNN
/// (window-2 convolution over the entity sequence + max-pooling), pooled
/// into per-type context vectors, fused with user-conditioned attention
/// into a single interaction context, and the preference is an MLP over
/// [user ++ context ++ item].
class McRecRecommender : public Recommender {
 public:
  explicit McRecRecommender(McRecConfig config = {}) : config_(config) {}

  std::string name() const override { return "MCRec"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: one chunked Forward() with the user repeated,
  /// enumerating paths against a once-per-user TemplatePathFinder
  /// context. Every op in Forward() is row-independent per pair, so the
  /// batched rows are bitwise equal to per-item Score() calls.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

 protected:
  /// Stores all embedding tables and layer parameters; the path finder,
  /// per-user contexts and meta-path type keys are rebuilt on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Rebuilds the path finder, per-user path contexts and meta-path type
  /// keys (RNG-free).
  void BuildPathIndex(const RecContext& context);

  /// Logits [B,1] for user-item pairs (differentiable).
  nn::Tensor Forward(const std::vector<int32_t>& users,
                     const std::vector<int32_t>& items) const;

  /// Forward with path enumeration through a reusable user context (all
  /// users must equal ctx->user); ctx == nullptr probes per pair.
  nn::Tensor ForwardImpl(const std::vector<int32_t>& users,
                         const std::vector<int32_t>& items,
                         const TemplatePathFinder::UserPathContext* ctx) const;

  McRecConfig config_;
  std::unique_ptr<TemplatePathFinder> finder_;
  /// Per-user path contexts precomputed once in Fit(), so training
  /// enumerates paths against the index instead of re-probing the user's
  /// history for every pair in every epoch.
  std::vector<TemplatePathFinder::UserPathContext> user_ctx_;
  const UserItemGraph* graph_ = nullptr;
  /// Meta-path type signatures (relation-id sequences rendered to keys).
  std::vector<std::string> type_keys_;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
  nn::Tensor entity_emb_;
  nn::Linear conv_;         // window-2 convolution, 2*dim -> dim
  nn::Linear att_hidden_;   // attention over path types
  nn::Linear att_out_;
  nn::Linear score_hidden_;
  nn::Linear score_out_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_MCREC_H_
