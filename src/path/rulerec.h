#ifndef KGREC_PATH_RULEREC_H_
#define KGREC_PATH_RULEREC_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "math/sparse.h"

namespace kgrec {

/// Hyper-parameters for RuleRec.
struct RuleRecConfig {
  int epochs = 10;
  float learning_rate = 0.1f;
  float l2 = 1e-4f;
  size_t top_k = 10;
};

/// RuleRec (Ma et al., WWW'19): jointly learns *explainable rules* (item
/// association meta-paths in an external KG) and their weights, then
/// recommends by propagating the user's history through the weighted
/// rules:
///   score(u, i) = sum_{j in history(u)} sum_rules w_r * S_r(j, i) + b_pop.
/// The learned (rule name, weight) list is exposed so that a
/// recommendation can be explained by its strongest contributing rule.
class RuleRecRecommender : public Recommender {
 public:
  explicit RuleRecRecommender(RuleRecConfig config = {}) : config_(config) {}

  std::string name() const override { return "RuleRec"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// The learned rules, most important first.
  std::vector<std::pair<std::string, float>> Rules() const;

  /// Human-readable reason for recommending `item` to `user`: the rule
  /// and history item with the largest contribution ("because you liked
  /// item_12 which shares <genre> with it").
  std::string Explain(int32_t user, int32_t item) const;

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the learned rule weights; the mined rule matrices and
  /// popularity table are deterministic and rebuilt on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Mines the rule matrices and popularity priors from the context.
  void MineRules(const RecContext& context);

  RuleRecConfig config_;
  const InteractionDataset* train_ = nullptr;
  const KnowledgeGraph* kg_ = nullptr;
  std::vector<std::string> rule_names_;
  std::vector<CsrMatrix> rule_matrices_;
  std::vector<float> rule_weights_;
  std::vector<float> popularity_;
  float popularity_weight_ = 0.0f;
};

}  // namespace kgrec

#endif  // KGREC_PATH_RULEREC_H_
