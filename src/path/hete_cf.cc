#include "path/hete_cf.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "graph/pathsim.h"
#include "math/dense.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "path/metapaths.h"

namespace kgrec {
namespace {

struct WeightedPair {
  int32_t a, b;
  float s;
};

std::vector<WeightedPair> Flatten(const CsrMatrix& matrix) {
  std::vector<WeightedPair> out;
  for (size_t r = 0; r < matrix.rows(); ++r) {
    const int32_t* cols = matrix.RowCols(r);
    const float* vals = matrix.RowVals(r);
    for (size_t i = 0; i < matrix.RowNnz(r); ++i) {
      out.push_back({static_cast<int32_t>(r), cols[i], vals[i]});
    }
  }
  return out;
}

}  // namespace

void HeteCfRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  const size_t d = config_.dim;
  user_emb_ = nn::NormalInit(train.num_users(), d, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), d, 0.1f, rng);

  // Item-item pairs from the attribute meta-paths (Eq. 14).
  std::vector<WeightedPair> item_pairs;
  for (const ItemSimilarity& sim : ItemMetaPathSimilarities(
           *context.item_kg, train.num_items(), config_.top_k)) {
    std::vector<WeightedPair> flat = Flatten(sim.matrix);
    item_pairs.insert(item_pairs.end(), flat.begin(), flat.end());
  }
  // User-user pairs from the co-interaction meta-path U-I-U (Eq. 13).
  CsrMatrix r = train.ToCsr();
  CsrMatrix uu = PathSim(r.Multiply(r.Transpose()));
  std::vector<WeightedPair> user_pairs = Flatten(TopKPerRow(uu, config_.top_k));
  // User-item pairs from the one-hop diffused preference R S (Eq. 15).
  std::vector<WeightedPair> cross_pairs;
  {
    std::vector<ItemSimilarity> sims = ItemMetaPathSimilarities(
        *context.item_kg, train.num_items(), config_.top_k);
    if (!sims.empty()) {
      CsrMatrix diffused = r.Multiply(sims[0].matrix);
      // Normalize to [0, 1] so it is a similarity target for u . v.
      float max_val = 1e-6f;
      for (float v : diffused.values()) max_val = std::max(max_val, v);
      for (const WeightedPair& p : Flatten(TopKPerRow(diffused, config_.top_k))) {
        cross_pairs.push_back({p.a, p.b, p.s / max_val});
      }
    }
  }

  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});

  auto pair_regularizer = [&](const std::vector<WeightedPair>& pairs,
                              const nn::Tensor& table, size_t count) {
    std::vector<int32_t> left, right;
    std::vector<float> weights;
    for (size_t i = 0; i < count; ++i) {
      const WeightedPair& p = pairs[rng.UniformInt(pairs.size())];
      left.push_back(p.a);
      right.push_back(p.b);
      weights.push_back(p.s);
    }
    nn::Tensor vi = nn::Gather(table, left);
    nn::Tensor vj = nn::Gather(table, right);
    const size_t rows = weights.size();
    nn::Tensor w = nn::Tensor::FromData(rows, 1, std::move(weights));
    return nn::Mean(nn::Mul(nn::SumRows(nn::Square(nn::Sub(vi, vj))), w));
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor v = nn::Gather(item_emb_, items);
      nn::Tensor loss = nn::BceWithLogits(nn::RowwiseDot(u, v), labels);
      const size_t count = users.size();
      if (!item_pairs.empty() && config_.item_item_weight > 0.0f) {
        loss = nn::Add(loss,
                       nn::ScaleBy(pair_regularizer(item_pairs, item_emb_,
                                                    count),
                                   config_.item_item_weight));
      }
      if (!user_pairs.empty() && config_.user_user_weight > 0.0f) {
        loss = nn::Add(loss,
                       nn::ScaleBy(pair_regularizer(user_pairs, user_emb_,
                                                    count),
                                   config_.user_user_weight));
      }
      if (!cross_pairs.empty() && config_.user_item_weight > 0.0f) {
        // Eq. 15: (u . v - s)^2 on diffused user-item pairs.
        std::vector<int32_t> cu, ci;
        std::vector<float> targets;
        for (size_t i = 0; i < count; ++i) {
          const WeightedPair& p = cross_pairs[rng.UniformInt(cross_pairs.size())];
          cu.push_back(p.a);
          ci.push_back(p.b);
          targets.push_back(p.s);
        }
        nn::Tensor cu_emb = nn::Gather(user_emb_, cu);
        nn::Tensor ci_emb = nn::Gather(item_emb_, ci);
        nn::Tensor reg = nn::MseLoss(nn::RowwiseDot(cu_emb, ci_emb), targets);
        loss = nn::Add(loss, nn::ScaleBy(reg, config_.user_item_weight));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string HeteCfRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("user_user_weight", config_.user_user_weight)
      .Add("item_item_weight", config_.item_item_weight)
      .Add("user_item_weight", config_.user_item_weight)
      .Add("top_k", static_cast<double>(config_.top_k))
      .str();
}

Status HeteCfRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  return visitor->Tensor("item_emb", &item_emb_);
}

float HeteCfRecommender::Score(int32_t user, int32_t item) const {
  const size_t d = user_emb_.cols();
  return dense::Dot(user_emb_.data() + user * d, item_emb_.data() + item * d,
                    d);
}

std::vector<float> HeteCfRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  const size_t d = user_emb_.cols();
  const float* u = user_emb_.data() + user * d;
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = item_emb_.data() + items[i] * d;
  }
  std::vector<float> out(items.size());
  kernels::DotBatch(u, rows.data(), rows.size(), d, out.data());
  return out;
}

retrieval::ItemFactors HeteCfRecommender::ExportItemFactors() const {
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = Matrix(item_emb_.rows(), item_emb_.cols());
  std::copy_n(item_emb_.data(), factors.items.size(), factors.items.data());
  return factors;
}

void HeteCfRecommender::FillUserQuery(int32_t user,
                                      std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), config_.dim);
  std::copy_n(user_emb_.data() + user * config_.dim, config_.dim, out.data());
}

}  // namespace kgrec
