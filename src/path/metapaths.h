#ifndef KGREC_PATH_METAPATHS_H_
#define KGREC_PATH_METAPATHS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "graph/hin.h"
#include "graph/knowledge_graph.h"
#include "math/sparse.h"

namespace kgrec {

/// A named sparse item-item similarity matrix derived from one meta-path
/// (or meta-graph), e.g. "item-genre-item" PathSim.
struct ItemSimilarity {
  std::string name;
  CsrMatrix matrix;  ///< num_items x num_items (PathSim scores)
};

/// Builds, for every forward attribute relation r of the item KG, the
/// PathSim similarity of the round-trip meta-path item -r-> a -r^-1-> item,
/// truncated to the `top_k` strongest neighbors per item. These are the
/// "L meta-paths" of the traditional path-based methods (Hete-MF, HeteRec;
/// survey Eq. 13-16).
std::vector<ItemSimilarity> ItemMetaPathSimilarities(
    const KnowledgeGraph& item_kg, int32_t num_items, size_t top_k);

/// Relation-id sequences of user->item meta-paths in a user-item graph:
///   U -interact-> I                                (direct)
///   U -interact-> I -r-> A -r^-1-> I               (shared attribute)
///   U -interact-> I -interact^-1-> U -interact-> I (collaborative)
/// Used by MCRec-style path sampling and by PGPR's action space pruning.
std::vector<MetaPath> UserItemMetaPaths(const UserItemGraph& graph);

/// Restricts a full-entity commuting/similarity matrix to its item-item
/// block (entities [0, num_items) of an item KG).
CsrMatrix ItemBlock(const CsrMatrix& full, int32_t num_items);

/// Keeps only the `top_k` largest off-diagonal entries per row.
CsrMatrix TopKPerRow(const CsrMatrix& matrix, size_t top_k);

}  // namespace kgrec

#endif  // KGREC_PATH_METAPATHS_H_
