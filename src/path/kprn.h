#ifndef KGREC_PATH_KPRN_H_
#define KGREC_PATH_KPRN_H_

#include <memory>
#include <vector>

#include "core/recommender.h"
#include "nn/layers.h"
#include "nn/tensor.h"
#include "path/path_finder.h"

namespace kgrec {

/// Hyper-parameters for KPRN.
struct KprnConfig {
  size_t dim = 16;
  size_t hidden_dim = 16;
  int epochs = 6;
  size_t batch_size = 64;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  size_t max_paths_per_template = 3;
  /// Temperature gamma of the weighted pooling layer
  /// s = gamma * log sum exp(s_p / gamma).
  float pooling_gamma = 1.0f;
  /// Threads for the per-user path-context precompute in Fit(). Context
  /// construction is RNG-free and FindPaths(ctx, item) is documented
  /// bitwise-identical to FindPaths(user, item), so any value >= 1 gives
  /// identical training — this is a pure speed knob.
  size_t num_threads = 1;
};

/// KPRN (Wang et al., AAAI'19): knowledge-aware path recurrent network.
/// Each user->item path is a sequence of (entity embedding ++ relation
/// embedding) steps (the relation that leaves the entity; a special <end>
/// relation for the final entity), encoded by an LSTM; a two-layer MLP
/// scores each path and the path scores are fused with the paper's
/// weighted (log-sum-exp) pooling, which both smooths training and lets
/// the per-path scores rank explanations.
class KprnRecommender : public Recommender {
 public:
  explicit KprnRecommender(KprnConfig config = {}) : config_(config) {}

  std::string name() const override { return "KPRN"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: enumerates paths against a once-per-user
  /// TemplatePathFinder context, runs all candidates' paths through one
  /// LSTM pass (grouped by padded length so the step count matches the
  /// per-pair call), then pools each candidate's gathered score rows with
  /// the same op sequence as PairLogit — bitwise equal to Score().
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  /// The highest-scoring path for the pair rendered as text, or "" when
  /// no path connects them. This is the model's explanation (Figure 1).
  std::string ExplainBestPath(int32_t user, int32_t item) const;

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the entity/relation embeddings, LSTM and scorer parameters
  /// and the no-path bias; the path finder and per-user contexts are
  /// rebuilt on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Rebuilds the path finder and per-user path contexts (RNG-free).
  void BuildPathIndex(const RecContext& context);

  /// Per-path scores [P, 1] for the pair's paths (differentiable);
  /// undefined tensor when there are no paths.
  nn::Tensor PathScores(const std::vector<PathInstance>& paths) const;

  /// Pooled scalar logit for one pair.
  nn::Tensor PairLogit(int32_t user, int32_t item) const;

  KprnConfig config_;
  std::unique_ptr<TemplatePathFinder> finder_;
  /// Per-user path contexts precomputed once in Fit(), so training
  /// enumerates paths against the index instead of re-probing the user's
  /// history for every pair in every epoch.
  std::vector<TemplatePathFinder::UserPathContext> user_ctx_;
  nn::Tensor entity_emb_;
  nn::Tensor relation_emb_;  // num_relations + 1 rows (<end> sentinel)
  int32_t end_relation_ = 0;
  nn::LstmCell lstm_;
  nn::Linear score_hidden_;
  nn::Linear score_out_;
  nn::Tensor no_path_bias_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_KPRN_H_
