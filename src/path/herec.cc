#include "path/herec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {
namespace {

/// Skip-gram with negative sampling over item co-occurrences produced by
/// meta-path constrained random walks item -r-> a -r^-1-> item -r-> ...
Matrix MetaPathSgns(const KnowledgeGraph& kg, int32_t num_items,
                    RelationId forward, RelationId inverse,
                    const HERecConfig& config, Rng& rng) {
  const size_t d = config.dim;
  Matrix in_emb(num_items, d);
  Matrix out_emb(num_items, d);
  for (size_t i = 0; i < in_emb.size(); ++i) {
    in_emb.data()[i] = static_cast<float>(rng.Uniform(-0.5, 0.5)) / d;
  }
  auto step = [&](EntityId from, RelationId wanted) -> EntityId {
    const size_t degree = kg.OutDegree(from);
    const Edge* edges = kg.OutEdges(from);
    std::vector<EntityId> matching;
    for (size_t i = 0; i < degree; ++i) {
      if (edges[i].relation == wanted) matching.push_back(edges[i].target);
    }
    if (matching.empty()) return -1;
    return matching[rng.UniformInt(matching.size())];
  };
  std::vector<int32_t> walk;
  std::vector<float> grad_center(d);
  const float lr = config.learning_rate;
  for (int epoch = 0; epoch < config.sgns_epochs; ++epoch) {
    for (int32_t start = 0; start < num_items; ++start) {
      for (size_t w = 0; w < config.walks_per_item; ++w) {
        // Item-level walk: record only the item positions.
        walk.clear();
        EntityId current = start;
        walk.push_back(current);
        for (size_t hop = 1; hop < config.walk_length; ++hop) {
          const EntityId attr = step(current, forward);
          if (attr < 0) break;
          const EntityId next = step(attr, inverse);
          if (next < 0) break;
          current = next;
          walk.push_back(current);
        }
        for (size_t center = 0; center < walk.size(); ++center) {
          const size_t lo =
              center >= config.window ? center - config.window : 0;
          const size_t hi = std::min(walk.size(), center + config.window + 1);
          float* vc = in_emb.Row(walk[center]);
          for (size_t ctx = lo; ctx < hi; ++ctx) {
            if (ctx == center) continue;
            std::fill(grad_center.begin(), grad_center.end(), 0.0f);
            for (int neg = -1; neg < config.negatives; ++neg) {
              const int32_t target =
                  neg < 0 ? walk[ctx]
                          : static_cast<int32_t>(rng.UniformInt(num_items));
              const float label = neg < 0 ? 1.0f : 0.0f;
              float* vo = out_emb.Row(target);
              float dot = 0.0f;
              for (size_t c = 0; c < d; ++c) dot += vc[c] * vo[c];
              const float prob =
                  dot >= 0.0f ? 1.0f / (1.0f + std::exp(-dot))
                              : std::exp(dot) / (1.0f + std::exp(dot));
              const float g = lr * (label - prob);
              for (size_t c = 0; c < d; ++c) {
                grad_center[c] += g * vo[c];
                vo[c] += g * vc[c];
              }
            }
            for (size_t c = 0; c < d; ++c) vc[c] += grad_center[c];
          }
        }
      }
    }
  }
  return in_emb;
}

}  // namespace

void HERecRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  train_ = &train;
  const int32_t m = train.num_users();
  const int32_t n = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  // --- Per-meta-path SGNS item embeddings ------------------------------
  path_item_emb_.clear();
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    const std::string& name = kg.relation_name(static_cast<RelationId>(r));
    if (name.size() > 3 && name.substr(name.size() - 3) == "^-1") continue;
    RelationId inverse = -1;
    if (!kg.FindRelation(name + "^-1", &inverse).ok()) continue;
    path_item_emb_.push_back(MetaPathSgns(
        kg, n, static_cast<RelationId>(r), inverse, config_, rng));
  }
  KGREC_CHECK(!path_item_emb_.empty());
  const size_t num_paths = path_item_emb_.size();

  // --- Per-path user profiles (mean history embedding) -----------------
  path_user_profile_.assign(num_paths, Matrix(m, d));
  for (size_t l = 0; l < num_paths; ++l) {
    for (int32_t u = 0; u < m; ++u) {
      const auto& history = train.UserItems(u);
      if (history.empty()) continue;
      float* profile = path_user_profile_[l].Row(u);
      for (int32_t j : history) {
        dense::Axpy(1.0f / history.size(), path_item_emb_[l].Row(j), profile,
                    d);
      }
    }
  }

  // --- Extended MF: u.v + sum_l theta_l (profile_u^l . e_i^l) ----------
  user_emb_ = nn::NormalInit(m, d, 0.1f, rng);
  item_emb_ = nn::NormalInit(n, d, 0.1f, rng);
  path_weights_.assign(num_paths, 0.5f);
  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, pos_items, neg_items;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        pos_items.push_back(x.item);
        neg_items.push_back(sampler.Sample(x.user, rng));
      }
      // MF part with autodiff.
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor pos = nn::Gather(item_emb_, pos_items);
      nn::Tensor neg = nn::Gather(item_emb_, neg_items);
      nn::Tensor loss =
          nn::BprLoss(nn::RowwiseDot(u, pos), nn::RowwiseDot(u, neg));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
      // Fusion weights with a manual BPR step on the frozen features.
      for (size_t i = 0; i < users.size(); ++i) {
        const std::vector<float> fpos = PairFeatures(users[i], pos_items[i]);
        const std::vector<float> fneg = PairFeatures(users[i], neg_items[i]);
        float margin = 0.0f;
        for (size_t l = 0; l < num_paths; ++l) {
          margin += path_weights_[l] * (fpos[l] - fneg[l]);
        }
        const float sig = 1.0f / (1.0f + std::exp(margin));
        for (size_t l = 0; l < num_paths; ++l) {
          path_weights_[l] +=
              config_.learning_rate * sig * (fpos[l] - fneg[l]);
        }
      }
    }
  }
}

std::vector<float> HERecRecommender::PairFeatures(int32_t user,
                                                  int32_t item) const {
  std::vector<float> out(path_item_emb_.size());
  for (size_t l = 0; l < path_item_emb_.size(); ++l) {
    out[l] = dense::Dot(path_user_profile_[l].Row(user),
                        path_item_emb_[l].Row(item), config_.dim);
  }
  return out;
}

std::string HERecRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("walks_per_item", static_cast<double>(config_.walks_per_item))
      .Add("walk_length", static_cast<double>(config_.walk_length))
      .Add("window", static_cast<double>(config_.window))
      .Add("negatives", config_.negatives)
      .Add("sgns_epochs", config_.sgns_epochs)
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .str();
}

Status HERecRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->MatrixList("path_item_emb", &path_item_emb_));
  KGREC_RETURN_IF_ERROR(
      visitor->MatrixList("path_user_profile", &path_user_profile_));
  KGREC_RETURN_IF_ERROR(visitor->Floats("path_weights", &path_weights_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  return visitor->Tensor("item_emb", &item_emb_);
}

Status HERecRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  train_ = context.train;
  return Status::OK();
}

float HERecRecommender::Score(int32_t user, int32_t item) const {
  const size_t d = config_.dim;
  float score = dense::Dot(user_emb_.data() + user * d,
                           item_emb_.data() + item * d, d);
  const std::vector<float> features = PairFeatures(user, item);
  for (size_t l = 0; l < features.size(); ++l) {
    score += path_weights_[l] * features[l];
  }
  return score;
}

std::vector<float> HERecRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  const size_t d = config_.dim;
  const size_t count = items.size();
  std::vector<const float*> rows(count);
  // MF term.
  const float* u = user_emb_.data() + user * d;
  for (size_t i = 0; i < count; ++i) {
    rows[i] = item_emb_.data() + items[i] * d;
  }
  std::vector<float> out(count);
  kernels::DotBatch(u, rows.data(), count, d, out.data());
  // Per-path affinity terms, folded in the same ascending path order as
  // Score(): out[i] += w_l * f_l is exactly score += w_l * features[l].
  std::vector<float> features(count);
  for (size_t l = 0; l < path_item_emb_.size(); ++l) {
    const float* profile = path_user_profile_[l].Row(user);
    for (size_t i = 0; i < count; ++i) {
      rows[i] = path_item_emb_[l].Row(items[i]);
    }
    kernels::DotBatch(profile, rows.data(), count, d, features.data());
    kernels::Axpy(path_weights_[l], features.data(), out.data(), count);
  }
  return out;
}

}  // namespace kgrec
