#ifndef KGREC_PATH_PROPPR_H_
#define KGREC_PATH_PROPPR_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"

namespace kgrec {

/// Hyper-parameters for ProPPR-style recommendation.
struct ProPprConfig {
  /// Restart probability alpha of the personalized random walk.
  float restart = 0.2f;
  int iterations = 20;
};

/// ProPPR (Catherine & Cohen, RecSys'16): personalized recommendations
/// with a probabilistic logic system whose inference is a personalized
/// PageRank over the proof/knowledge graph. Here the logic program's
/// ground graph is the user-item KG itself, and the preference for an
/// item is its stationary personalized-PageRank mass when restarting at
/// the user — the standard random-walk reading of ProPPR's "sim(u, v)".
class ProPprRecommender : public Recommender {
 public:
  explicit ProPprRecommender(ProPprConfig config = {}) : config_(config) {}

  std::string name() const override { return "ProPPR"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// The PPR table is a deterministic fixed-point iteration over the
  /// graph, so Load recomputes it instead of storing m x n floats.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  ProPprConfig config_;
  /// ppr_.At(u, j): stationary mass of item j for user u.
  Matrix ppr_;
};

}  // namespace kgrec

#endif  // KGREC_PATH_PROPPR_H_
