#ifndef KGREC_PATH_RKGE_H_
#define KGREC_PATH_RKGE_H_

#include <memory>
#include <vector>

#include "core/recommender.h"
#include "nn/layers.h"
#include "nn/tensor.h"
#include "path/path_finder.h"

namespace kgrec {

/// Hyper-parameters for RKGE.
struct RkgeConfig {
  size_t dim = 16;
  size_t hidden_dim = 16;
  int epochs = 6;
  size_t batch_size = 64;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  size_t max_paths_per_template = 3;
  /// Threads for the per-user path-context precompute in Fit(). Context
  /// construction is RNG-free and FindPaths(ctx, item) is documented
  /// bitwise-identical to FindPaths(user, item), so any value >= 1 gives
  /// identical training — this is a pure speed knob.
  size_t num_threads = 1;
};

/// RKGE (Sun et al., RecSys'18; survey Eq. 19-20): recurrent knowledge
/// graph embedding. All (<= 3-edge) semantic paths connecting a user-item
/// pair are each encoded by a GRU over the path's entity embeddings; the
/// final hidden states are average-pooled and a fully-connected layer
/// yields the preference score. Pairs with no connecting path fall back
/// to a learned bias.
class RkgeRecommender : public Recommender {
 public:
  explicit RkgeRecommender(RkgeConfig config = {}) : config_(config) {}

  std::string name() const override { return "RKGE"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: enumerates paths against a once-per-user
  /// TemplatePathFinder context and encodes all candidates' paths in one
  /// GRU pass (grouped by padded length), then mean-pools each
  /// candidate's gathered hidden states with the same op sequence as
  /// PairLogit — bitwise equal to Score().
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

 protected:
  /// Stores the entity embeddings, GRU/output parameters and the no-path
  /// bias; the path finder and per-user contexts are rebuilt on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Rebuilds the path finder and per-user path contexts (RNG-free).
  void BuildPathIndex(const RecContext& context);

  /// Scalar logit [1,1] for one pair (differentiable).
  nn::Tensor PairLogit(int32_t user, int32_t item) const;

  RkgeConfig config_;
  std::unique_ptr<TemplatePathFinder> finder_;
  /// Per-user path contexts precomputed once in Fit(), so training
  /// enumerates paths against the index instead of re-probing the user's
  /// history for every pair in every epoch.
  std::vector<TemplatePathFinder::UserPathContext> user_ctx_;
  nn::Tensor entity_emb_;
  nn::GruCell gru_;
  nn::Linear output_;
  nn::Tensor no_path_bias_;  // [1,1]
};

}  // namespace kgrec

#endif  // KGREC_PATH_RKGE_H_
