#include "path/pgpr.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/model_state.h"
#include "kge/kge_trainer.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor PgprRecommender::ActionLogits(
    int32_t user, EntityId current, const std::vector<Edge>& actions) const {
  const size_t a = actions.size();
  std::vector<int32_t> user_ids(a, graph_->UserEntity(user));
  std::vector<int32_t> cur_ids(a, current);
  std::vector<int32_t> rel_ids(a), tgt_ids(a);
  for (size_t i = 0; i < a; ++i) {
    rel_ids[i] = actions[i].relation;
    tgt_ids[i] = actions[i].target;
  }
  const nn::Tensor& ent = kge_->entity_embeddings();
  const nn::Tensor& rel = kge_->relation_embeddings();
  nn::Tensor features = nn::Concat(
      nn::Concat(nn::Gather(ent, user_ids), nn::Gather(ent, cur_ids)),
      nn::Concat(nn::Gather(rel, rel_ids), nn::Gather(ent, tgt_ids)));
  return policy_out_.Forward(
      nn::Tanh(policy_hidden_.Forward(features)));  // [A, 1]
}

const std::vector<Edge>& PgprRecommender::Actions(EntityId entity) const {
  return pruned_actions_[entity];
}

float PgprRecommender::Reward(int32_t user, EntityId entity) const {
  const int32_t first_item = graph_->ItemEntity(0);
  const int32_t last_item = graph_->ItemEntity(train_->num_items() - 1);
  if (entity < first_item || entity > last_item) return 0.0f;
  const int32_t item = entity - first_item;
  if (train_->Contains(user, item)) return 0.0f;  // already consumed
  std::vector<int32_t> h{graph_->UserEntity(user)};
  std::vector<int32_t> r{graph_->interact_relation};
  std::vector<int32_t> t{entity};
  const float plausibility = kge_->ScoreBatch(h, r, t).value();
  return 1.0f / (1.0f + std::exp(-plausibility - 4.0f));
}

void PgprRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  train_ = context.train;
  const KnowledgeGraph& kg = graph_->kg;
  Rng rng(context.seed);

  // --- Stage 1: pretrain the KGE reward/embedding function -------------
  kge_ = MakeKgeModel("transe", kg.num_entities(), kg.num_relations(),
                      config_.dim, rng);
  KgeTrainConfig kge_config;
  kge_config.epochs = config_.kge_epochs;
  kge_config.seed = context.seed + 5;
  kge_config.num_threads = config_.num_threads;
  TrainKge(*kge_, kg, kge_config);

  // Freeze KGE parameters for the RL stage (the paper's two-stage setup).
  // Policy network over [user ++ current ++ relation ++ target].
  policy_hidden_ = nn::Linear(4 * config_.dim, config_.dim, rng);
  policy_out_ = nn::Linear(config_.dim, 1, rng);

  // Deterministic pruned action sets.
  pruned_actions_.assign(kg.num_entities(), {});
  for (size_t e = 0; e < kg.num_entities(); ++e) {
    const size_t degree = kg.OutDegree(static_cast<EntityId>(e));
    if (degree <= config_.max_actions) {
      pruned_actions_[e].assign(kg.OutEdges(static_cast<EntityId>(e)),
                                kg.OutEdges(static_cast<EntityId>(e)) +
                                    degree);
    } else {
      kg.SampleNeighbors(static_cast<EntityId>(e), config_.max_actions, rng,
                         &pruned_actions_[e]);
    }
  }

  // --- Stage 2: REINFORCE ----------------------------------------------
  std::vector<nn::Tensor> params;
  for (const auto& p : policy_hidden_.Params()) params.push_back(p);
  for (const auto& p : policy_out_.Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  float baseline = 0.0f;
  for (int epoch = 0; epoch < config_.rl_epochs; ++epoch) {
    for (int32_t user = 0; user < train_->num_users(); ++user) {
      if (train_->UserItems(user).empty()) continue;
      for (size_t ep = 0; ep < config_.episodes_per_user; ++ep) {
        EntityId current = graph_->UserEntity(user);
        std::vector<nn::Tensor> step_logprobs;
        for (size_t step = 0; step < config_.max_path_length; ++step) {
          const std::vector<Edge>& actions = Actions(current);
          if (actions.empty()) break;
          nn::Tensor logits = ActionLogits(user, current, actions);
          nn::Tensor probs = nn::Softmax(
              nn::Reshape(logits, 1, actions.size()));  // [1, A]
          // Sample an action from the current policy.
          std::vector<double> weights(actions.size());
          for (size_t i = 0; i < actions.size(); ++i) {
            weights[i] = probs.data()[i];
          }
          const size_t chosen = rng.Categorical(weights);
          step_logprobs.push_back(
              nn::Log(nn::SliceCols(probs, chosen, 1)));
          current = actions[chosen].target;
        }
        if (step_logprobs.empty()) continue;
        const float reward = Reward(user, current);
        baseline = 0.99f * baseline + 0.01f * reward;
        const float advantage = reward - baseline;
        if (std::fabs(advantage) < 1e-6f) continue;
        nn::Tensor logprob = step_logprobs[0];
        for (size_t i = 1; i < step_logprobs.size(); ++i) {
          logprob = nn::Add(logprob, step_logprobs[i]);
        }
        nn::Tensor loss = nn::ScaleBy(logprob, -advantage);
        optimizer.ZeroGrad();
        nn::Backward(loss);
        optimizer.Step();
      }
    }
  }

  RunBeamSearch();
}

void PgprRecommender::RunBeamSearch() {
  reached_.assign(train_->num_users(), {});
  const int32_t first_item = graph_->ItemEntity(0);
  const int32_t last_item = graph_->ItemEntity(train_->num_items() - 1);
  for (int32_t user = 0; user < train_->num_users(); ++user) {
    struct BeamState {
      EntityId entity;
      float logprob;
      PathInstance path;
    };
    std::vector<BeamState> beam{{graph_->UserEntity(user), 0.0f, {}}};
    beam[0].path.entities.push_back(graph_->UserEntity(user));
    for (size_t step = 0; step < config_.max_path_length; ++step) {
      std::vector<BeamState> expanded;
      for (const BeamState& state : beam) {
        const std::vector<Edge>& actions = Actions(state.entity);
        if (actions.empty()) continue;
        nn::Tensor logits = ActionLogits(user, state.entity, actions);
        // Log-softmax by hand from the raw logits.
        float max_logit = logits.data()[0];
        for (size_t i = 1; i < actions.size(); ++i) {
          max_logit = std::max(max_logit, logits.data()[i]);
        }
        float denom = 0.0f;
        for (size_t i = 0; i < actions.size(); ++i) {
          denom += std::exp(logits.data()[i] - max_logit);
        }
        for (size_t i = 0; i < actions.size(); ++i) {
          BeamState next = state;
          next.entity = actions[i].target;
          next.logprob += logits.data()[i] - max_logit - std::log(denom);
          next.path.entities.push_back(actions[i].target);
          next.path.relations.push_back(actions[i].relation);
          expanded.push_back(std::move(next));
        }
      }
      std::sort(expanded.begin(), expanded.end(),
                [](const BeamState& a, const BeamState& b) {
                  return a.logprob > b.logprob;
                });
      if (expanded.size() > config_.beam_width) {
        expanded.resize(config_.beam_width);
      }
      beam = std::move(expanded);
      // Register items reached at this depth.
      for (const BeamState& state : beam) {
        if (state.entity < first_item || state.entity > last_item) continue;
        const int32_t item = state.entity - first_item;
        if (train_->Contains(user, item)) continue;
        const float value = state.logprob + Reward(user, state.entity);
        auto it = reached_[user].find(item);
        if (it == reached_[user].end() || value > it->second.value) {
          reached_[user][item] = {value, state.path};
        }
      }
    }
  }
}

std::string PgprRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("kge_epochs", config_.kge_epochs)
      .Add("rl_epochs", config_.rl_epochs)
      .Add("episodes", static_cast<double>(config_.episodes_per_user))
      .Add("max_len", static_cast<double>(config_.max_path_length))
      .Add("max_actions", static_cast<double>(config_.max_actions))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("beam", static_cast<double>(config_.beam_width))
      .str();
}

Status PgprRecommender::VisitState(StateVisitor* visitor) {
  if (!visitor->loading() && kge_ == nullptr) {
    return Status::FailedPrecondition("PGPR: Save() before Fit()/Load()");
  }
  KGREC_RETURN_IF_ERROR(visitor->Params("kge", kge_->Params()));
  KGREC_RETURN_IF_ERROR(
      visitor->Params("policy_hidden", policy_hidden_.Params()));
  return visitor->Params("policy_out", policy_out_.Params());
}

Status PgprRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  train_ = context.train;
  const KnowledgeGraph& kg = graph_->kg;

  // Replay Fit's exact constructor/Rng prefix: the KGE backend and the
  // policy layers draw from `rng` first (their values are overwritten by
  // the restore), and only then does the action-pruning sampler draw —
  // so the pruned action sets match training bitwise.
  Rng rng(context.seed);
  kge_ = MakeKgeModel("transe", kg.num_entities(), kg.num_relations(),
                      config_.dim, rng);
  policy_hidden_ = nn::Linear(4 * config_.dim, config_.dim, rng);
  policy_out_ = nn::Linear(config_.dim, 1, rng);
  pruned_actions_.assign(kg.num_entities(), {});
  for (size_t e = 0; e < kg.num_entities(); ++e) {
    const size_t degree = kg.OutDegree(static_cast<EntityId>(e));
    if (degree <= config_.max_actions) {
      pruned_actions_[e].assign(kg.OutEdges(static_cast<EntityId>(e)),
                                kg.OutEdges(static_cast<EntityId>(e)) +
                                    degree);
    } else {
      kg.SampleNeighbors(static_cast<EntityId>(e), config_.max_actions, rng,
                         &pruned_actions_[e]);
    }
  }
  return Status::OK();
}

Status PgprRecommender::FinishLoad(const RecContext& context) {
  (void)context;
  // The beam search only reads the (restored) policy and KGE parameters
  // plus the deterministic pruned action sets, so re-running it
  // reproduces reached_ exactly.
  RunBeamSearch();
  return Status::OK();
}

float PgprRecommender::Score(int32_t user, int32_t item) const {
  auto it = reached_[user].find(item);
  if (it != reached_[user].end()) {
    // Reached items rank first, ordered by path value.
    return 100.0f + it->second.value;
  }
  // Fallback: the pretrained KGE plausibility (the reward function).
  std::vector<int32_t> h{graph_->UserEntity(user)};
  std::vector<int32_t> r{graph_->interact_relation};
  std::vector<int32_t> t{graph_->ItemEntity(item)};
  return kge_->ScoreBatch(h, r, t).value();
}

std::vector<float> PgprRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> out(items.size());
  const auto& reached = reached_[user];
  std::vector<size_t> misses;
  for (size_t i = 0; i < items.size(); ++i) {
    auto it = reached.find(items[i]);
    if (it != reached.end()) {
      out[i] = 100.0f + it->second.value;
    } else {
      misses.push_back(i);
    }
  }
  if (misses.empty()) return out;
  // One KGE forward for every beam miss instead of one per candidate.
  std::vector<int32_t> h(misses.size(), graph_->UserEntity(user));
  std::vector<int32_t> r(misses.size(), graph_->interact_relation);
  std::vector<int32_t> t;
  t.reserve(misses.size());
  for (size_t i : misses) t.push_back(graph_->ItemEntity(items[i]));
  nn::Tensor scores = kge_->ScoreBatch(h, r, t);  // [M, 1]
  for (size_t m = 0; m < misses.size(); ++m) {
    out[misses[m]] = scores.data()[m];
  }
  return out;
}

std::string PgprRecommender::ExplainPath(int32_t user, int32_t item) const {
  auto it = reached_[user].find(item);
  if (it == reached_[user].end()) return "";
  return FormatPath(graph_->kg, it->second.path);
}

}  // namespace kgrec
