#include "path/metapaths.h"

#include <algorithm>

#include "core/check.h"
#include "graph/pathsim.h"
#include "math/topk.h"

namespace kgrec {
namespace {

/// Adjacency of one relation as a sparse matrix over all entities.
CsrMatrix RelationMatrix(const KnowledgeGraph& kg, RelationId relation) {
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  for (const Triple& t : kg.triples()) {
    if (t.relation == relation) triplets.emplace_back(t.head, t.tail, 1.0f);
  }
  return CsrMatrix::FromTriplets(kg.num_entities(), kg.num_entities(),
                                 triplets);
}

bool IsInverseName(const std::string& name) {
  return name.size() > 3 && name.substr(name.size() - 3) == "^-1";
}

}  // namespace

CsrMatrix ItemBlock(const CsrMatrix& full, int32_t num_items) {
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  for (int32_t r = 0; r < num_items && static_cast<size_t>(r) < full.rows();
       ++r) {
    const int32_t* cols = full.RowCols(r);
    const float* vals = full.RowVals(r);
    for (size_t i = 0; i < full.RowNnz(r); ++i) {
      if (cols[i] < num_items) triplets.emplace_back(r, cols[i], vals[i]);
    }
  }
  return CsrMatrix::FromTriplets(num_items, num_items, triplets);
}

CsrMatrix TopKPerRow(const CsrMatrix& matrix, size_t top_k) {
  std::vector<std::tuple<int32_t, int32_t, float>> triplets;
  for (size_t r = 0; r < matrix.rows(); ++r) {
    const size_t nnz = matrix.RowNnz(r);
    const int32_t* cols = matrix.RowCols(r);
    const float* vals = matrix.RowVals(r);
    std::vector<float> scores;
    std::vector<int32_t> idx;
    for (size_t i = 0; i < nnz; ++i) {
      if (static_cast<size_t>(cols[i]) == r) continue;  // drop diagonal
      scores.push_back(vals[i]);
      idx.push_back(cols[i]);
    }
    for (int32_t pick : TopKIndices(scores, top_k)) {
      triplets.emplace_back(static_cast<int32_t>(r), idx[pick],
                            scores[pick]);
    }
  }
  return CsrMatrix::FromTriplets(matrix.rows(), matrix.cols(), triplets);
}

std::vector<ItemSimilarity> ItemMetaPathSimilarities(
    const KnowledgeGraph& item_kg, int32_t num_items, size_t top_k) {
  std::vector<ItemSimilarity> out;
  for (size_t r = 0; r < item_kg.num_relations(); ++r) {
    const std::string& name =
        item_kg.relation_name(static_cast<RelationId>(r));
    if (IsInverseName(name)) continue;
    RelationId inverse = -1;
    if (!item_kg.FindRelation(name + "^-1", &inverse).ok()) continue;
    CsrMatrix forward = RelationMatrix(item_kg, static_cast<RelationId>(r));
    CsrMatrix commuting = forward.Multiply(RelationMatrix(item_kg, inverse));
    CsrMatrix sim =
        TopKPerRow(ItemBlock(PathSim(commuting), num_items), top_k);
    out.push_back({"item-" + name + "-item", std::move(sim)});
  }
  return out;
}

std::vector<MetaPath> UserItemMetaPaths(const UserItemGraph& graph) {
  const KnowledgeGraph& kg = graph.kg;
  const RelationId interact = graph.interact_relation;
  RelationId interact_inv = -1;
  KGREC_CHECK(kg.FindRelation(kg.relation_name(interact) + "^-1",
                              &interact_inv)
                  .ok());
  std::vector<MetaPath> out;
  out.push_back({"U-I", {interact}});
  out.push_back({"U-I-U-I", {interact, interact_inv, interact}});
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    const std::string& name =
        kg.relation_name(static_cast<RelationId>(r));
    if (IsInverseName(name) || static_cast<RelationId>(r) == interact) {
      continue;
    }
    RelationId inverse = -1;
    if (!kg.FindRelation(name + "^-1", &inverse).ok()) continue;
    out.push_back({"U-I-" + name + "-I",
                   {interact, static_cast<RelationId>(r), inverse}});
  }
  return out;
}

}  // namespace kgrec
