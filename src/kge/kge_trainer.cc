#include "kge/kge_trainer.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "nn/optim.h"

namespace kgrec {
namespace {

/// Legacy serial loop: one sequential RNG stream for shuffling and
/// corruption, left-to-right gradient accumulation. Preserved verbatim
/// so num_threads = 0 reproduces the historical float sequence.
float TrainKgeSerial(KgeModel& model, const KnowledgeGraph& graph,
                     const KgeTrainConfig& config) {
  Rng rng(config.seed);
  const auto& triples = graph.triples();
  nn::Adagrad optimizer(model.Params(), config.learning_rate);

  std::vector<size_t> order(triples.size());
  std::iota(order.begin(), order.end(), size_t{0});

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end = std::min(order.size(), start + config.batch_size);
      std::vector<int32_t> heads, rels, tails;
      std::vector<int32_t> neg_heads, neg_tails;
      for (size_t i = start; i < end; ++i) {
        const Triple& t = triples[order[i]];
        heads.push_back(t.head);
        rels.push_back(t.relation);
        tails.push_back(t.tail);
        // Uniform head-or-tail corruption.
        int32_t nh = t.head, nt = t.tail;
        if (rng.Bernoulli(0.5)) {
          nh = static_cast<int32_t>(rng.UniformInt(graph.num_entities()));
        } else {
          nt = static_cast<int32_t>(rng.UniformInt(graph.num_entities()));
        }
        neg_heads.push_back(nh);
        neg_tails.push_back(nt);
      }
      nn::Tensor pos = model.ScoreBatch(heads, rels, tails);
      nn::Tensor neg = model.ScoreBatch(neg_heads, rels, neg_tails);
      // Hinge with "higher = plausible" scores:
      // mean [margin + neg - pos]_+  == MarginRankingLoss(neg, pos, margin).
      nn::Tensor loss = nn::MarginRankingLoss(neg, pos, config.margin);
      if (config.l2 > 0.0f) {
        nn::Tensor reg = nn::Add(nn::L2Norm(pos), nn::L2Norm(neg));
        loss = nn::Add(loss, nn::ScaleBy(reg, config.l2));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
      epoch_loss += loss.value();
      ++num_batches;
    }
    model.PostEpoch();
    last_epoch_loss =
        num_batches > 0 ? static_cast<float>(epoch_loss / num_batches) : 0.0f;
  }
  return last_epoch_loss;
}

/// Sharded deterministic loop: minibatch b splits into fixed-size
/// shards, shard s draws its corruption negatives from
/// rng.Fork(b).Fork(s), and MiniBatchTrainer reduces shard gradients in
/// shard order before a single Adagrad apply. The epoch RNG advances
/// only through Shuffle, so per-batch forks are reproducible; thread
/// count never enters the arithmetic.
float TrainKgeSharded(KgeModel& model, const KnowledgeGraph& graph,
                      const KgeTrainConfig& config) {
  Rng rng(config.seed);
  const auto& triples = graph.triples();
  nn::Adagrad optimizer(model.Params(), config.learning_rate);
  nn::MiniBatchTrainer trainer(optimizer, config.shard_size,
                               config.num_threads);

  std::vector<size_t> order(triples.size());
  std::iota(order.begin(), order.end(), size_t{0});

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      const size_t end = std::min(order.size(), start + config.batch_size);
      const size_t batch_count = end - start;
      const Rng batch_rng = rng.Fork(num_batches);
      epoch_loss += trainer.Step(
          batch_count, batch_rng,
          [&](size_t shard_begin, size_t shard_end, Rng& shard_rng) {
            std::vector<int32_t> heads, rels, tails;
            std::vector<int32_t> neg_heads, neg_tails;
            heads.reserve(shard_end - shard_begin);
            rels.reserve(shard_end - shard_begin);
            tails.reserve(shard_end - shard_begin);
            neg_heads.reserve(shard_end - shard_begin);
            neg_tails.reserve(shard_end - shard_begin);
            for (size_t i = shard_begin; i < shard_end; ++i) {
              const Triple& t = triples[order[start + i]];
              heads.push_back(t.head);
              rels.push_back(t.relation);
              tails.push_back(t.tail);
              int32_t nh = t.head, nt = t.tail;
              if (shard_rng.Bernoulli(0.5)) {
                nh = static_cast<int32_t>(
                    shard_rng.UniformInt(graph.num_entities()));
              } else {
                nt = static_cast<int32_t>(
                    shard_rng.UniformInt(graph.num_entities()));
              }
              neg_heads.push_back(nh);
              neg_tails.push_back(nt);
            }
            nn::Tensor pos = model.ScoreBatch(heads, rels, tails);
            nn::Tensor neg = model.ScoreBatch(neg_heads, rels, neg_tails);
            // Shard-decomposable form of the batch-mean hinge: each
            // shard contributes Sum(...)/batch_count, so the ordered
            // sum of shard gradients equals the whole-batch mean
            // gradient. The L2 term is already a per-element sum.
            nn::Tensor loss = nn::ScaleBy(
                nn::Sum(nn::Relu(
                    nn::AddConst(nn::Sub(neg, pos), config.margin))),
                1.0f / static_cast<float>(batch_count));
            if (config.l2 > 0.0f) {
              nn::Tensor reg = nn::Add(nn::L2Norm(pos), nn::L2Norm(neg));
              loss = nn::Add(loss, nn::ScaleBy(reg, config.l2));
            }
            return loss;
          });
      ++num_batches;
    }
    model.PostEpoch();
    last_epoch_loss =
        num_batches > 0 ? static_cast<float>(epoch_loss / num_batches) : 0.0f;
  }
  return last_epoch_loss;
}

}  // namespace

float TrainKge(KgeModel& model, const KnowledgeGraph& graph,
               const KgeTrainConfig& config) {
  KGREC_CHECK_GT(graph.num_triples(), 0u);
  return config.num_threads == 0 ? TrainKgeSerial(model, graph, config)
                                 : TrainKgeSharded(model, graph, config);
}

LinkPredictionMetrics EvaluateLinkPrediction(const KgeModel& model,
                                             const KnowledgeGraph& graph,
                                             size_t num_queries,
                                             size_t num_candidates,
                                             Rng& rng) {
  LinkPredictionMetrics out;
  const auto& triples = graph.triples();
  if (triples.empty()) return out;
  num_queries = std::min(num_queries, triples.size());
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(triples.size(), num_queries);
  for (size_t pick : picks) {
    const Triple& t = triples[pick];
    std::vector<int32_t> heads{t.head}, rels{t.relation}, tails{t.tail};
    size_t guard = 0;
    while (tails.size() < num_candidates + 1 &&
           guard++ < num_candidates * 20) {
      const int32_t cand =
          static_cast<int32_t>(rng.UniformInt(graph.num_entities()));
      if (cand == t.tail) continue;
      if (graph.HasTriple(t.head, t.relation, cand)) continue;  // filtered
      heads.push_back(t.head);
      rels.push_back(t.relation);
      tails.push_back(cand);
    }
    nn::Tensor scores = model.ScoreBatch(heads, rels, tails);
    const float true_score = scores.data()[0];
    size_t rank = 1;
    for (size_t i = 1; i < scores.size(); ++i) {
      if (scores.data()[i] > true_score) ++rank;
    }
    out.mrr += 1.0 / static_cast<double>(rank);
    out.hits_at_1 += rank <= 1 ? 1.0 : 0.0;
    out.hits_at_3 += rank <= 3 ? 1.0 : 0.0;
    out.hits_at_10 += rank <= 10 ? 1.0 : 0.0;
    ++out.num_queries;
  }
  if (out.num_queries > 0) {
    out.mrr /= out.num_queries;
    out.hits_at_1 /= out.num_queries;
    out.hits_at_3 /= out.num_queries;
    out.hits_at_10 /= out.num_queries;
  }
  return out;
}

}  // namespace kgrec
