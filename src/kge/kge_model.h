#ifndef KGREC_KGE_KGE_MODEL_H_
#define KGREC_KGE_KGE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/knowledge_graph.h"
#include "math/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "retrieval/factors.h"

namespace kgrec {

/// A knowledge-graph-embedding model (survey Section 4.1): entities and
/// relations are embedded in R^d, and a plausibility score g(e_h, r, e_t)
/// is defined so that observed triples score higher than corrupted ones.
///
/// Two families are implemented, as the survey classifies them:
/// translation-distance models (TransE/TransH/TransR/TransD) whose score
/// is the negative translated distance, and semantic matching models
/// (DistMult) whose score is a trilinear product. Scores are always
/// "higher = more plausible".
class KgeModel {
 public:
  virtual ~KgeModel() = default;

  virtual std::string name() const = 0;

  /// Batched plausibility scores -> [B, 1].
  virtual nn::Tensor ScoreBatch(const std::vector<int32_t>& heads,
                                const std::vector<int32_t>& relations,
                                const std::vector<int32_t>& tails) const = 0;

  /// All trainable parameters.
  virtual std::vector<nn::Tensor> Params() const = 0;

  /// Entity embedding table [num_entities, dim].
  virtual const nn::Tensor& entity_embeddings() const = 0;

  /// Relation embedding table [num_relations, dim].
  virtual const nn::Tensor& relation_embeddings() const = 0;

  /// Hook after each training epoch (e.g. TransE-family entity-norm
  /// projection). Default does nothing.
  virtual void PostEpoch() {}

  /// Fixed-relation factorization for the retrieval layer (DESIGN §10).
  /// For a *fixed* relation r, every backend's plausibility collapses to
  /// a kernel over two d-vectors:
  ///
  ///   g(h, r, t) ==
  ///     KernelScore(retrieval_kernel(), HeadQuery(h, r), TailFactor(t, r))
  ///
  /// because the relation-dependent projections (TransH's hyperplane,
  /// TransR's matrix, TransD's dynamic mapping, DistMult's elementwise
  /// product) apply to head and tail *independently* once r is pinned.
  /// FillHeadQuery writes the projected-and-translated head vector,
  /// FillTailFactor the projected tail vector, each of dim() floats.
  /// This is what lets CFKG-style rankers materialize an item matrix
  /// once and serve top-K through an index; CFKG's Score() is *defined*
  /// through this path, so index scans are bitwise exact.
  virtual retrieval::ScoreKernel retrieval_kernel() const = 0;
  virtual void FillHeadQuery(int32_t head, int32_t relation,
                             float* out) const = 0;
  virtual void FillTailFactor(int32_t tail, int32_t relation,
                              float* out) const = 0;

  /// Widens the entity table(s) to `new_total` rows for the online
  /// update path (DESIGN §13); no-op when already that tall. Existing
  /// rows are preserved bitwise. Every new row e draws from the
  /// counter-keyed stream base_rng.Fork(e) (per-table sub-forks for
  /// backends with several entity tables), so initialization depends
  /// only on the entity id — growing in two batches is bitwise
  /// identical to growing once by their union. Relation-side tables
  /// never grow.
  virtual void GrowEntities(size_t new_total, const Rng& base_rng) = 0;

  size_t dim() const { return dim_; }

 protected:
  explicit KgeModel(size_t dim) : dim_(dim) {}

  /// Normalizes every row of the tensor to (at most) unit L2 norm.
  static void NormalizeRows(nn::Tensor& table);

  /// Shared GrowEntities workhorse: replaces `table` with a
  /// [new_rows, cols] tensor, old rows copied bitwise, each new row r
  /// filled Uniform(-a, a) from base_rng.Fork(salt).Fork(r). The bound
  /// a = sqrt(6 / (2 * cols)) deliberately ignores the table's current
  /// height — a height-dependent Xavier bound would make a row's values
  /// depend on *when* the entity arrived.
  static void GrowTable(nn::Tensor& table, size_t new_rows,
                        const Rng& base_rng, uint64_t salt);

  size_t dim_;
};

/// Creates a model by name: "transe", "transh", "transr", "transd",
/// "distmult".
std::unique_ptr<KgeModel> MakeKgeModel(const std::string& name,
                                       size_t num_entities,
                                       size_t num_relations, size_t dim,
                                       Rng& rng);

/// The list of available backend names.
std::vector<std::string> KgeModelNames();

}  // namespace kgrec

#endif  // KGREC_KGE_KGE_MODEL_H_
