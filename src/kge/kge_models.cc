#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "kge/kge_model.h"
#include "math/kernels.h"
#include "nn/init.h"

namespace kgrec {

void KgeModel::GrowTable(nn::Tensor& table, size_t new_rows,
                         const Rng& base_rng, uint64_t salt) {
  const size_t old_rows = table.rows();
  KGREC_CHECK_GE(new_rows, old_rows);
  if (new_rows == old_rows) return;
  const size_t cols = table.cols();
  const float a = std::sqrt(6.0f / static_cast<float>(cols + cols));
  std::vector<float> data(new_rows * cols);
  std::copy_n(table.data(), old_rows * cols, data.begin());
  const Rng table_rng = base_rng.Fork(salt);
  for (size_t r = old_rows; r < new_rows; ++r) {
    Rng row_rng = table_rng.Fork(r);
    for (size_t c = 0; c < cols; ++c) {
      data[r * cols + c] = static_cast<float>(row_rng.Uniform(-a, a));
    }
  }
  table = nn::Tensor::FromData(new_rows, cols, std::move(data),
                               /*requires_grad=*/true);
}

void KgeModel::NormalizeRows(nn::Tensor& table) {
  const size_t rows = table.rows();
  const size_t cols = table.cols();
  for (size_t r = 0; r < rows; ++r) {
    float* row = table.data() + r * cols;
    float norm = 0.0f;
    for (size_t c = 0; c < cols; ++c) norm += row[c] * row[c];
    norm = std::sqrt(norm);
    if (norm > 1.0f) {
      for (size_t c = 0; c < cols; ++c) row[c] /= norm;
    }
  }
}

namespace {

/// TransE (Bordes et al.): g = -||h + r - t||^2.
class TransE : public KgeModel {
 public:
  TransE(size_t num_entities, size_t num_relations, size_t dim, Rng& rng)
      : KgeModel(dim),
        entities_(nn::XavierUniform(num_entities, dim, rng)),
        relations_(nn::XavierUniform(num_relations, dim, rng)) {}

  std::string name() const override { return "TransE"; }

  nn::Tensor ScoreBatch(const std::vector<int32_t>& heads,
                        const std::vector<int32_t>& relations,
                        const std::vector<int32_t>& tails) const override {
    nn::Tensor h = nn::Gather(entities_, heads);
    nn::Tensor r = nn::Gather(relations_, relations);
    nn::Tensor t = nn::Gather(entities_, tails);
    return nn::Neg(nn::SumRows(nn::Square(nn::Sub(nn::Add(h, r), t))));
  }

  std::vector<nn::Tensor> Params() const override {
    return {entities_, relations_};
  }
  const nn::Tensor& entity_embeddings() const override { return entities_; }
  const nn::Tensor& relation_embeddings() const override {
    return relations_;
  }
  void PostEpoch() override { NormalizeRows(entities_); }

  retrieval::ScoreKernel retrieval_kernel() const override {
    return retrieval::ScoreKernel::kNegSquaredL2;
  }
  void FillHeadQuery(int32_t head, int32_t relation,
                     float* out) const override {
    const float* h = entities_.data() + head * dim_;
    const float* r = relations_.data() + relation * dim_;
    for (size_t c = 0; c < dim_; ++c) out[c] = h[c] + r[c];
  }
  void FillTailFactor(int32_t tail, int32_t /*relation*/,
                      float* out) const override {
    const float* t = entities_.data() + tail * dim_;
    for (size_t c = 0; c < dim_; ++c) out[c] = t[c];
  }
  void GrowEntities(size_t new_total, const Rng& base_rng) override {
    GrowTable(entities_, new_total, base_rng, 0);
  }

 private:
  nn::Tensor entities_;
  nn::Tensor relations_;
};

/// TransH (Wang et al.): entities are projected onto the relation's
/// hyperplane (normal w_r) before translation.
class TransH : public KgeModel {
 public:
  TransH(size_t num_entities, size_t num_relations, size_t dim, Rng& rng)
      : KgeModel(dim),
        entities_(nn::XavierUniform(num_entities, dim, rng)),
        relations_(nn::XavierUniform(num_relations, dim, rng)),
        normals_(nn::XavierUniform(num_relations, dim, rng)) {}

  std::string name() const override { return "TransH"; }

  nn::Tensor ScoreBatch(const std::vector<int32_t>& heads,
                        const std::vector<int32_t>& relations,
                        const std::vector<int32_t>& tails) const override {
    nn::Tensor h = nn::Gather(entities_, heads);
    nn::Tensor r = nn::Gather(relations_, relations);
    nn::Tensor w = nn::Gather(normals_, relations);
    nn::Tensor t = nn::Gather(entities_, tails);
    nn::Tensor h_perp = nn::Sub(h, nn::Mul(w, nn::RowwiseDot(w, h)));
    nn::Tensor t_perp = nn::Sub(t, nn::Mul(w, nn::RowwiseDot(w, t)));
    return nn::Neg(
        nn::SumRows(nn::Square(nn::Sub(nn::Add(h_perp, r), t_perp))));
  }

  std::vector<nn::Tensor> Params() const override {
    return {entities_, relations_, normals_};
  }
  const nn::Tensor& entity_embeddings() const override { return entities_; }
  const nn::Tensor& relation_embeddings() const override {
    return relations_;
  }
  void PostEpoch() override {
    NormalizeRows(entities_);
    NormalizeRows(normals_);
  }

  retrieval::ScoreKernel retrieval_kernel() const override {
    return retrieval::ScoreKernel::kNegSquaredL2;
  }
  void FillHeadQuery(int32_t head, int32_t relation,
                     float* out) const override {
    const float* h = entities_.data() + head * dim_;
    const float* r = relations_.data() + relation * dim_;
    const float* w = normals_.data() + relation * dim_;
    const float wh = kernels::Dot(w, h, dim_);
    for (size_t c = 0; c < dim_; ++c) out[c] = (h[c] - w[c] * wh) + r[c];
  }
  void FillTailFactor(int32_t tail, int32_t relation,
                      float* out) const override {
    const float* t = entities_.data() + tail * dim_;
    const float* w = normals_.data() + relation * dim_;
    const float wt = kernels::Dot(w, t, dim_);
    for (size_t c = 0; c < dim_; ++c) out[c] = t[c] - w[c] * wt;
  }
  void GrowEntities(size_t new_total, const Rng& base_rng) override {
    GrowTable(entities_, new_total, base_rng, 0);  // normals_ is per-relation
  }

 private:
  nn::Tensor entities_;
  nn::Tensor relations_;
  nn::Tensor normals_;
};

/// TransR (Lin et al.): a per-relation d x d projection matrix maps
/// entities into the relation space (used by CKE, KGAT, AKUPM).
class TransR : public KgeModel {
 public:
  TransR(size_t num_entities, size_t num_relations, size_t dim, Rng& rng)
      : KgeModel(dim),
        entities_(nn::XavierUniform(num_entities, dim, rng)),
        relations_(nn::XavierUniform(num_relations, dim, rng)),
        projections_(nn::XavierUniform(num_relations, dim * dim, rng)) {
    // Bias the projections toward identity so training starts near TransE.
    for (size_t r = 0; r < num_relations; ++r) {
      for (size_t i = 0; i < dim; ++i) {
        projections_.data()[r * dim * dim + i * dim + i] += 1.0f;
      }
    }
  }

  std::string name() const override { return "TransR"; }

  nn::Tensor ScoreBatch(const std::vector<int32_t>& heads,
                        const std::vector<int32_t>& relations,
                        const std::vector<int32_t>& tails) const override {
    nn::Tensor h = nn::Gather(entities_, heads);
    nn::Tensor r = nn::Gather(relations_, relations);
    nn::Tensor m = nn::Gather(projections_, relations);
    nn::Tensor t = nn::Gather(entities_, tails);
    nn::Tensor h_r = nn::RowwiseVecMat(h, m);
    nn::Tensor t_r = nn::RowwiseVecMat(t, m);
    return nn::Neg(nn::SumRows(nn::Square(nn::Sub(nn::Add(h_r, r), t_r))));
  }

  std::vector<nn::Tensor> Params() const override {
    return {entities_, relations_, projections_};
  }
  const nn::Tensor& entity_embeddings() const override { return entities_; }
  const nn::Tensor& relation_embeddings() const override {
    return relations_;
  }
  void PostEpoch() override { NormalizeRows(entities_); }

  retrieval::ScoreKernel retrieval_kernel() const override {
    return retrieval::ScoreKernel::kNegSquaredL2;
  }
  void FillHeadQuery(int32_t head, int32_t relation,
                     float* out) const override {
    const float* r = relations_.data() + relation * dim_;
    Project(entities_.data() + head * dim_, relation, out);
    for (size_t c = 0; c < dim_; ++c) out[c] += r[c];
  }
  void FillTailFactor(int32_t tail, int32_t relation,
                      float* out) const override {
    Project(entities_.data() + tail * dim_, relation, out);
  }
  void GrowEntities(size_t new_total, const Rng& base_rng) override {
    GrowTable(entities_, new_total, base_rng, 0);  // projections_ is per-relation
  }

 private:
  /// out = e * M_r (vector-matrix, ascending-i accumulation).
  void Project(const float* e, int32_t relation, float* out) const {
    const float* m = projections_.data() + relation * dim_ * dim_;
    for (size_t j = 0; j < dim_; ++j) out[j] = 0.0f;
    for (size_t i = 0; i < dim_; ++i) {
      kernels::Axpy(e[i], m + i * dim_, out, dim_);
    }
  }

  nn::Tensor entities_;
  nn::Tensor relations_;
  nn::Tensor projections_;
};

/// TransD (Ji et al.): dynamic per-pair mapping h_proj = h + (h_p . h) r_p
/// built from entity and relation projection vectors (used by DKN).
class TransD : public KgeModel {
 public:
  TransD(size_t num_entities, size_t num_relations, size_t dim, Rng& rng)
      : KgeModel(dim),
        entities_(nn::XavierUniform(num_entities, dim, rng)),
        relations_(nn::XavierUniform(num_relations, dim, rng)),
        entity_proj_(nn::XavierUniform(num_entities, dim, rng)),
        relation_proj_(nn::XavierUniform(num_relations, dim, rng)) {}

  std::string name() const override { return "TransD"; }

  nn::Tensor ScoreBatch(const std::vector<int32_t>& heads,
                        const std::vector<int32_t>& relations,
                        const std::vector<int32_t>& tails) const override {
    nn::Tensor h = nn::Gather(entities_, heads);
    nn::Tensor hp = nn::Gather(entity_proj_, heads);
    nn::Tensor r = nn::Gather(relations_, relations);
    nn::Tensor rp = nn::Gather(relation_proj_, relations);
    nn::Tensor t = nn::Gather(entities_, tails);
    nn::Tensor tp = nn::Gather(entity_proj_, tails);
    nn::Tensor h_proj = nn::Add(h, nn::Mul(rp, nn::RowwiseDot(hp, h)));
    nn::Tensor t_proj = nn::Add(t, nn::Mul(rp, nn::RowwiseDot(tp, t)));
    return nn::Neg(
        nn::SumRows(nn::Square(nn::Sub(nn::Add(h_proj, r), t_proj))));
  }

  std::vector<nn::Tensor> Params() const override {
    return {entities_, relations_, entity_proj_, relation_proj_};
  }
  const nn::Tensor& entity_embeddings() const override { return entities_; }
  const nn::Tensor& relation_embeddings() const override {
    return relations_;
  }
  void PostEpoch() override { NormalizeRows(entities_); }

  retrieval::ScoreKernel retrieval_kernel() const override {
    return retrieval::ScoreKernel::kNegSquaredL2;
  }
  void FillHeadQuery(int32_t head, int32_t relation,
                     float* out) const override {
    const float* h = entities_.data() + head * dim_;
    const float* hp = entity_proj_.data() + head * dim_;
    const float* r = relations_.data() + relation * dim_;
    const float* rp = relation_proj_.data() + relation * dim_;
    const float hph = kernels::Dot(hp, h, dim_);
    for (size_t c = 0; c < dim_; ++c) {
      out[c] = (h[c] + rp[c] * hph) + r[c];
    }
  }
  void FillTailFactor(int32_t tail, int32_t relation,
                      float* out) const override {
    const float* t = entities_.data() + tail * dim_;
    const float* tp = entity_proj_.data() + tail * dim_;
    const float* rp = relation_proj_.data() + relation * dim_;
    const float tpt = kernels::Dot(tp, t, dim_);
    for (size_t c = 0; c < dim_; ++c) out[c] = t[c] + rp[c] * tpt;
  }
  void GrowEntities(size_t new_total, const Rng& base_rng) override {
    // Two per-entity tables -> two per-table streams, keyed so a row's
    // init never depends on which batch grew it.
    GrowTable(entities_, new_total, base_rng, 0);
    GrowTable(entity_proj_, new_total, base_rng, 1);
  }

 private:
  nn::Tensor entities_;
  nn::Tensor relations_;
  nn::Tensor entity_proj_;
  nn::Tensor relation_proj_;
};

/// DistMult (Yang et al.): semantic matching g = sum(h * r * t), used by
/// MKR and RCF in the survey.
class DistMult : public KgeModel {
 public:
  DistMult(size_t num_entities, size_t num_relations, size_t dim, Rng& rng)
      : KgeModel(dim),
        entities_(nn::XavierUniform(num_entities, dim, rng)),
        relations_(nn::XavierUniform(num_relations, dim, rng)) {}

  std::string name() const override { return "DistMult"; }

  nn::Tensor ScoreBatch(const std::vector<int32_t>& heads,
                        const std::vector<int32_t>& relations,
                        const std::vector<int32_t>& tails) const override {
    nn::Tensor h = nn::Gather(entities_, heads);
    nn::Tensor r = nn::Gather(relations_, relations);
    nn::Tensor t = nn::Gather(entities_, tails);
    return nn::SumRows(nn::Mul(nn::Mul(h, r), t));
  }

  std::vector<nn::Tensor> Params() const override {
    return {entities_, relations_};
  }
  const nn::Tensor& entity_embeddings() const override { return entities_; }
  const nn::Tensor& relation_embeddings() const override {
    return relations_;
  }

  retrieval::ScoreKernel retrieval_kernel() const override {
    return retrieval::ScoreKernel::kDot;
  }
  void FillHeadQuery(int32_t head, int32_t relation,
                     float* out) const override {
    const float* h = entities_.data() + head * dim_;
    const float* r = relations_.data() + relation * dim_;
    for (size_t c = 0; c < dim_; ++c) out[c] = h[c] * r[c];
  }
  void FillTailFactor(int32_t tail, int32_t /*relation*/,
                      float* out) const override {
    const float* t = entities_.data() + tail * dim_;
    for (size_t c = 0; c < dim_; ++c) out[c] = t[c];
  }
  void GrowEntities(size_t new_total, const Rng& base_rng) override {
    GrowTable(entities_, new_total, base_rng, 0);
  }

 private:
  nn::Tensor entities_;
  nn::Tensor relations_;
};

}  // namespace

std::unique_ptr<KgeModel> MakeKgeModel(const std::string& name,
                                       size_t num_entities,
                                       size_t num_relations, size_t dim,
                                       Rng& rng) {
  if (name == "transe") {
    return std::make_unique<TransE>(num_entities, num_relations, dim, rng);
  }
  if (name == "transh") {
    return std::make_unique<TransH>(num_entities, num_relations, dim, rng);
  }
  if (name == "transr") {
    return std::make_unique<TransR>(num_entities, num_relations, dim, rng);
  }
  if (name == "transd") {
    return std::make_unique<TransD>(num_entities, num_relations, dim, rng);
  }
  if (name == "distmult") {
    return std::make_unique<DistMult>(num_entities, num_relations, dim, rng);
  }
  KGREC_CHECK(false);  // unknown KGE backend
  return nullptr;
}

std::vector<std::string> KgeModelNames() {
  return {"transe", "transh", "transr", "transd", "distmult"};
}

}  // namespace kgrec
