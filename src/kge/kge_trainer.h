#ifndef KGREC_KGE_KGE_TRAINER_H_
#define KGREC_KGE_KGE_TRAINER_H_

#include <cstdint>

#include "graph/knowledge_graph.h"
#include "kge/kge_model.h"
#include "math/rng.h"

namespace kgrec {

/// Hyper-parameters for margin-ranking KGE training (survey Eq. 11).
struct KgeTrainConfig {
  int epochs = 20;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float margin = 1.0f;
  float l2 = 1e-5f;
  uint64_t seed = 11;
  /// Training threads. 0 (default) keeps the legacy serial loop, which
  /// draws all corruption negatives from one sequential RNG stream and
  /// reproduces the historical float sequence exactly. >= 1 switches to
  /// the sharded MiniBatchTrainer: each minibatch splits into fixed
  /// `shard_size` shards, shard s of batch b draws its negatives from
  /// the counter-forked stream Fork(b).Fork(s), and shard gradients are
  /// reduced in shard order — so trained parameters depend only on
  /// (seed, batch_size, shard_size) and are bitwise-identical for any
  /// num_threads >= 1.
  size_t num_threads = 0;
  /// Examples per gradient shard in the sharded mode.
  size_t shard_size = 64;
};

/// Trains a KGE model on the graph's triples with uniform head-or-tail
/// corruption negatives and the hinge loss
///   [margin - g(h,r,t) + g(h',r,t')]_+   (scores: higher = plausible).
/// Returns the final mean epoch loss.
float TrainKge(KgeModel& model, const KnowledgeGraph& graph,
               const KgeTrainConfig& config);

/// Link-prediction quality on a sample of the graph's triples: each test
/// triple's tail is ranked against `num_candidates` random corrupted
/// tails (filtered: corruptions that form true triples are skipped).
struct LinkPredictionMetrics {
  double mrr = 0.0;
  double hits_at_1 = 0.0;
  double hits_at_3 = 0.0;
  double hits_at_10 = 0.0;
  size_t num_queries = 0;
};

LinkPredictionMetrics EvaluateLinkPrediction(const KgeModel& model,
                                             const KnowledgeGraph& graph,
                                             size_t num_queries,
                                             size_t num_candidates, Rng& rng);

}  // namespace kgrec

#endif  // KGREC_KGE_KGE_TRAINER_H_
