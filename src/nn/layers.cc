#include "nn/layers.h"

#include "nn/init.h"

namespace kgrec::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(XavierUniform(in_dim, out_dim, rng)),
      bias_(Tensor::Zeros(1, out_dim, /*requires_grad=*/true)) {}

Tensor Linear::Forward(const Tensor& x) const {
  return Add(MatMul(x, weight_), bias_);
}

GruCell::GruCell(size_t input_dim, size_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      xz_(input_dim, hidden_dim, rng),
      hz_(hidden_dim, hidden_dim, rng),
      xr_(input_dim, hidden_dim, rng),
      hr_(hidden_dim, hidden_dim, rng),
      xn_(input_dim, hidden_dim, rng),
      hn_(hidden_dim, hidden_dim, rng) {}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  Tensor z = Sigmoid(Add(xz_.Forward(x), hz_.Forward(h)));
  Tensor r = Sigmoid(Add(xr_.Forward(x), hr_.Forward(h)));
  Tensor n = Tanh(Add(xn_.Forward(x), hn_.Forward(Mul(r, h))));
  // h' = (1 - z) * n + z * h.
  Tensor one_minus_z = AddConst(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

std::vector<Tensor> GruCell::Params() const {
  std::vector<Tensor> out;
  for (const Linear* l : {&xz_, &hz_, &xr_, &hr_, &xn_, &hn_}) {
    for (const auto& p : l->Params()) out.push_back(p);
  }
  return out;
}

LstmCell::LstmCell(size_t input_dim, size_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      xi_(input_dim, hidden_dim, rng),
      hi_(hidden_dim, hidden_dim, rng),
      xf_(input_dim, hidden_dim, rng),
      hf_(hidden_dim, hidden_dim, rng),
      xo_(input_dim, hidden_dim, rng),
      ho_(hidden_dim, hidden_dim, rng),
      xg_(input_dim, hidden_dim, rng),
      hg_(hidden_dim, hidden_dim, rng) {}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  Tensor i = Sigmoid(Add(xi_.Forward(x), hi_.Forward(state.h)));
  Tensor f = Sigmoid(Add(xf_.Forward(x), hf_.Forward(state.h)));
  Tensor o = Sigmoid(Add(xo_.Forward(x), ho_.Forward(state.h)));
  Tensor g = Tanh(Add(xg_.Forward(x), hg_.Forward(state.h)));
  Tensor c = Add(Mul(f, state.c), Mul(i, g));
  Tensor h = Mul(o, Tanh(c));
  return {h, c};
}

LstmCell::State LstmCell::InitialState(size_t batch) const {
  return {Tensor::Zeros(batch, hidden_dim_), Tensor::Zeros(batch, hidden_dim_)};
}

std::vector<Tensor> LstmCell::Params() const {
  std::vector<Tensor> out;
  for (const Linear* l : {&xi_, &hi_, &xf_, &hf_, &xo_, &ho_, &xg_, &hg_}) {
    for (const auto& p : l->Params()) out.push_back(p);
  }
  return out;
}

}  // namespace kgrec::nn
