#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "math/kernels.h"

namespace kgrec::nn {
namespace {

using internal::Node;

std::shared_ptr<Node> MakeNode(size_t rows, size_t cols,
                               std::vector<std::shared_ptr<Node>> parents) {
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->data.resize(rows * cols);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) node->requires_grad = true;
  }
  if (node->requires_grad) node->grad.assign(rows * cols, 0.0f);
  return node;
}

enum class Broadcast { kSame, kScalar, kRow, kCol };

Broadcast BroadcastKind(const Node& a, const Node& b) {
  if (a.rows == b.rows && a.cols == b.cols) return Broadcast::kSame;
  if (b.rows == 1 && b.cols == 1) return Broadcast::kScalar;
  if (b.rows == 1 && b.cols == a.cols) return Broadcast::kRow;
  if (b.cols == 1 && b.rows == a.rows) return Broadcast::kCol;
  KGREC_CHECK(false);  // incompatible shapes
  return Broadcast::kSame;
}

/// Index of the b element matched with a's flat index i.
size_t BIndex(Broadcast kind, const Node& a, size_t i) {
  switch (kind) {
    case Broadcast::kSame:
      return i;
    case Broadcast::kScalar:
      return 0;
    case Broadcast::kRow:
      return i % a.cols;
    case Broadcast::kCol:
      return i / a.cols;
  }
  return 0;
}

template <typename Fwd, typename BwdA, typename BwdB>
Tensor BinaryBroadcastOp(const Tensor& a, const Tensor& b, Fwd fwd, BwdA bwd_a,
                         BwdB bwd_b) {
  Node& an = *a.node();
  Node& bn = *b.node();
  const Broadcast kind = BroadcastKind(an, bn);
  auto node = MakeNode(an.rows, an.cols, {a.node(), b.node()});
  for (size_t i = 0; i < node->size(); ++i) {
    node->data[i] = fwd(an.data[i], bn.data[BIndex(kind, an, i)]);
  }
  if (node->requires_grad) {
    node->backward = [kind, bwd_a, bwd_b](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      float* ga = internal::GradBuf(pa);
      float* gb = internal::GradBuf(pb);
      for (size_t i = 0; i < self.size(); ++i) {
        const size_t j = BIndex(kind, pa, i);
        const float g = self.grad[i];
        const float av = pa.data[i];
        const float bv = pb.data[j];
        if (pa.requires_grad) ga[i] += g * bwd_a(av, bv);
        if (pb.requires_grad) gb[j] += g * bwd_b(av, bv);
      }
    };
  }
  return Tensor::Wrap(node);
}

template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  Node& an = *a.node();
  auto node = MakeNode(an.rows, an.cols, {a.node()});
  for (size_t i = 0; i < node->size(); ++i) node->data[i] = fwd(an.data[i]);
  if (node->requires_grad) {
    node->backward = [bwd](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < self.size(); ++i) {
        // bwd receives (input, output) so ops like sigmoid can reuse the
        // forward value.
        ga[i] += self.grad[i] * bwd(pa.data[i], self.data[i]);
      }
    };
  }
  return Tensor::Wrap(node);
}

/// UnaryOp whose forward pass is one of the shared elementwise map
/// kernels (sigmoid/tanh/exp/softplus); the backward derivative stays a
/// per-element lambda over (input, output).
template <typename Bwd>
Tensor MapOp(const Tensor& a, void (*map)(const float*, float*, size_t),
             Bwd bwd) {
  Node& an = *a.node();
  auto node = MakeNode(an.rows, an.cols, {a.node()});
  map(an.data.data(), node->data.data(), node->size());
  if (node->requires_grad) {
    node->backward = [bwd](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < self.size(); ++i) {
        ga[i] += self.grad[i] * bwd(pa.data[i], self.data[i]);
      }
    };
  }
  return Tensor::Wrap(node);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Max(const Tensor& a, const Tensor& b) {
  return BinaryBroadcastOp(
      a, b, [](float x, float y) { return x >= y ? x : y; },
      [](float x, float y) { return x >= y ? 1.0f : 0.0f; },
      [](float x, float y) { return x >= y ? 0.0f : 1.0f; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Node& an = *a.node();
  Node& bn = *b.node();
  KGREC_CHECK_EQ(an.cols, bn.rows);
  const size_t m = an.rows, k = an.cols, n = bn.cols;
  auto node = MakeNode(m, n, {a.node(), b.node()});
  kernels::MatMul(an.data.data(), bn.data.data(), node->data.data(), m, k, n);
  if (node->requires_grad) {
    node->backward = [m, k, n](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      if (pa.requires_grad) {
        // dA += dC * B^T: each dA[i,p] is a fixed-block dot of dC row i
        // with B row p, accumulated into the (possibly shadowed) buffer.
        kernels::MatMulTransposeB(self.grad.data(), pb.data.data(),
                                  internal::GradBuf(pa), m, n, k,
                                  /*accumulate=*/true);
      }
      if (pb.requires_grad) {
        // dB += A^T * dC, element-wise in ascending i.
        kernels::MatMulTransposeAAcc(pa.data.data(), self.grad.data(),
                                     internal::GradBuf(pb), m, k, n);
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor Transpose(const Tensor& a) {
  Node& an = *a.node();
  auto node = MakeNode(an.cols, an.rows, {a.node()});
  for (size_t i = 0; i < an.rows; ++i) {
    for (size_t j = 0; j < an.cols; ++j) {
      node->data[j * an.rows + i] = an.data[i * an.cols + j];
    }
  }
  if (node->requires_grad) {
    node->backward = [](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < pa.rows; ++i) {
        for (size_t j = 0; j < pa.cols; ++j) {
          ga[i * pa.cols + j] += self.grad[j * pa.rows + i];
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor ScaleBy(const Tensor& a, float c) {
  return UnaryOp(
      a, [c](float x) { return c * x; }, [c](float, float) { return c; });
}

Tensor AddConst(const Tensor& a, float c) {
  return UnaryOp(
      a, [c](float x) { return x + c; }, [](float, float) { return 1.0f; });
}

Tensor Neg(const Tensor& a) { return ScaleBy(a, -1.0f); }

Tensor Sigmoid(const Tensor& a) {
  return MapOp(a, kernels::SigmoidMap,
               [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return MapOp(a, kernels::TanhMap,
               [](float, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return MapOp(a, kernels::ExpMap, [](float, float y) { return y; });
}

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(x + eps); },
      [eps](float x, float) { return 1.0f / (x + eps); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Softplus(const Tensor& a) {
  return MapOp(a, kernels::SoftplusMap, [](float x, float) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  });
}

Tensor Sum(const Tensor& a) {
  Node& an = *a.node();
  auto node = MakeNode(1, 1, {a.node()});
  float acc = 0.0f;
  for (float v : an.data) acc += v;
  node->data[0] = acc;
  if (node->requires_grad) {
    node->backward = [](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      const float g = self.grad[0];
      for (size_t i = 0; i < pa.size(); ++i) ga[i] += g;
    };
  }
  return Tensor::Wrap(node);
}

Tensor Mean(const Tensor& a) {
  return ScaleBy(Sum(a), 1.0f / static_cast<float>(a.size()));
}

Tensor SumRows(const Tensor& a) {
  Node& an = *a.node();
  auto node = MakeNode(an.rows, 1, {a.node()});
  for (size_t i = 0; i < an.rows; ++i) {
    float acc = 0.0f;
    for (size_t j = 0; j < an.cols; ++j) acc += an.data[i * an.cols + j];
    node->data[i] = acc;
  }
  if (node->requires_grad) {
    node->backward = [](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < pa.rows; ++i) {
        const float g = self.grad[i];
        for (size_t j = 0; j < pa.cols; ++j) ga[i * pa.cols + j] += g;
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor MeanRows(const Tensor& a) {
  return ScaleBy(SumRows(a), 1.0f / static_cast<float>(a.cols()));
}

Tensor SumCols(const Tensor& a) {
  Node& an = *a.node();
  auto node = MakeNode(1, an.cols, {a.node()});
  std::fill(node->data.begin(), node->data.end(), 0.0f);
  for (size_t i = 0; i < an.rows; ++i) {
    for (size_t j = 0; j < an.cols; ++j) {
      node->data[j] += an.data[i * an.cols + j];
    }
  }
  if (node->requires_grad) {
    node->backward = [](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < pa.rows; ++i) {
        for (size_t j = 0; j < pa.cols; ++j) {
          ga[i * pa.cols + j] += self.grad[j];
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor Softmax(const Tensor& a) {
  Node& an = *a.node();
  auto node = MakeNode(an.rows, an.cols, {a.node()});
  kernels::SoftmaxRows(an.data.data(), node->data.data(), an.rows, an.cols);
  if (node->requires_grad) {
    node->backward = [](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < self.rows; ++i) {
        const float* y = self.data.data() + i * self.cols;
        const float* dy = self.grad.data() + i * self.cols;
        const float dot = kernels::Dot(y, dy, self.cols);
        float* dx = ga + i * self.cols;
        for (size_t j = 0; j < self.cols; ++j) dx[j] += y[j] * (dy[j] - dot);
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor Concat(const Tensor& a, const Tensor& b) {
  Node& an = *a.node();
  Node& bn = *b.node();
  KGREC_CHECK_EQ(an.rows, bn.rows);
  const size_t na = an.cols, nb = bn.cols;
  auto node = MakeNode(an.rows, na + nb, {a.node(), b.node()});
  for (size_t i = 0; i < an.rows; ++i) {
    std::copy_n(an.data.data() + i * na, na,
                node->data.data() + i * (na + nb));
    std::copy_n(bn.data.data() + i * nb, nb,
                node->data.data() + i * (na + nb) + na);
  }
  if (node->requires_grad) {
    node->backward = [na, nb](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      float* ga = internal::GradBuf(pa);
      float* gb = internal::GradBuf(pb);
      for (size_t i = 0; i < self.rows; ++i) {
        const float* grow = self.grad.data() + i * (na + nb);
        if (pa.requires_grad) {
          for (size_t j = 0; j < na; ++j) ga[i * na + j] += grow[j];
        }
        if (pb.requires_grad) {
          for (size_t j = 0; j < nb; ++j) gb[i * nb + j] += grow[na + j];
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor Gather(const Tensor& table, const std::vector<int32_t>& indices) {
  Node& tn = *table.node();
  const size_t d = tn.cols;
  auto node = MakeNode(indices.size(), d, {table.node()});
  for (size_t i = 0; i < indices.size(); ++i) {
    KGREC_CHECK(indices[i] >= 0 && static_cast<size_t>(indices[i]) < tn.rows);
    std::copy_n(tn.data.data() + indices[i] * d, d, node->data.data() + i * d);
  }
  if (node->requires_grad) {
    node->backward = [indices, d](Node& self) {
      Node& pt = *self.parents[0];
      float* gt = internal::GradBuf(pt);
      for (size_t i = 0; i < indices.size(); ++i) {
        kernels::Axpy(1.0f, self.grad.data() + i * d, gt + indices[i] * d, d);
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor RowwiseDot(const Tensor& a, const Tensor& b) {
  // First-class fused op (previously SumRows(Mul(a, b))): one fixed-block
  // dot per row forward, two rank-1 Axpy updates per row backward, and no
  // intermediate [rows, cols] product node.
  Node& an = *a.node();
  Node& bn = *b.node();
  KGREC_CHECK_EQ(an.rows, bn.rows);
  KGREC_CHECK_EQ(an.cols, bn.cols);
  const size_t d = an.cols;
  auto node = MakeNode(an.rows, 1, {a.node(), b.node()});
  for (size_t i = 0; i < an.rows; ++i) {
    node->data[i] =
        kernels::Dot(an.data.data() + i * d, bn.data.data() + i * d, d);
  }
  if (node->requires_grad) {
    node->backward = [d](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      float* ga = internal::GradBuf(pa);
      float* gb = internal::GradBuf(pb);
      for (size_t i = 0; i < self.rows; ++i) {
        const float g = self.grad[i];
        if (pa.requires_grad) {
          kernels::Axpy(g, pb.data.data() + i * d, ga + i * d, d);
        }
        if (pb.requires_grad) {
          kernels::Axpy(g, pa.data.data() + i * d, gb + i * d, d);
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor RowwiseVecMat(const Tensor& x, const Tensor& w) {
  Node& xn = *x.node();
  Node& wn = *w.node();
  const size_t batch = xn.rows, d = xn.cols;
  KGREC_CHECK_EQ(wn.rows, batch);
  KGREC_CHECK_EQ(wn.cols, d * d);
  auto node = MakeNode(batch, d, {x.node(), w.node()});
  for (size_t b = 0; b < batch; ++b) {
    // Row b: out = xv . mat, one (1 x d) x (d x d) product.
    kernels::MatMul(xn.data.data() + b * d, wn.data.data() + b * d * d,
                    node->data.data() + b * d, 1, d, d);
  }
  if (node->requires_grad) {
    node->backward = [batch, d](Node& self) {
      Node& px = *self.parents[0];
      Node& pw = *self.parents[1];
      float* gx = internal::GradBuf(px);
      float* gw = internal::GradBuf(pw);
      for (size_t b = 0; b < batch; ++b) {
        const float* dout = self.grad.data() + b * d;
        const float* xv = px.data.data() + b * d;
        const float* mat = pw.data.data() + b * d * d;
        if (px.requires_grad) {
          // dx = dout . mat^T, one fixed-block dot per coordinate.
          kernels::MatMulTransposeB(dout, mat, gx + b * d, 1, d, d,
                                    /*accumulate=*/true);
        }
        if (pw.requires_grad) {
          // dmat[i,:] += xv[i] * dout (rank-1 update).
          for (size_t i = 0; i < d; ++i) {
            kernels::Axpy(xv[i], dout, gw + b * d * d + i * d, d);
          }
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor Reshape(const Tensor& a, size_t rows, size_t cols) {
  Node& an = *a.node();
  KGREC_CHECK_EQ(an.size(), rows * cols);
  auto node = MakeNode(rows, cols, {a.node()});
  node->data = an.data;
  if (node->requires_grad) {
    node->backward = [](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t i = 0; i < self.size(); ++i) ga[i] += self.grad[i];
    };
  }
  return Tensor::Wrap(node);
}

Tensor GroupSumRows(const Tensor& a, size_t group_size) {
  Node& an = *a.node();
  KGREC_CHECK_GT(group_size, 0u);
  KGREC_CHECK_EQ(an.rows % group_size, 0u);
  const size_t groups = an.rows / group_size;
  const size_t d = an.cols;
  auto node = MakeNode(groups, d, {a.node()});
  std::fill(node->data.begin(), node->data.end(), 0.0f);
  for (size_t r = 0; r < an.rows; ++r) {
    const size_t g = r / group_size;
    for (size_t c = 0; c < d; ++c) {
      node->data[g * d + c] += an.data[r * d + c];
    }
  }
  if (node->requires_grad) {
    node->backward = [group_size, d](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t r = 0; r < pa.rows; ++r) {
        const size_t g = r / group_size;
        for (size_t c = 0; c < d; ++c) {
          ga[r * d + c] += self.grad[g * d + c];
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor IndexedSumRows(const Tensor& values,
                      const std::vector<int32_t>& indices, size_t num_rows) {
  Node& vn = *values.node();
  KGREC_CHECK_EQ(vn.rows, indices.size());
  const size_t d = vn.cols;
  auto node = MakeNode(num_rows, d, {values.node()});
  std::fill(node->data.begin(), node->data.end(), 0.0f);
  for (size_t i = 0; i < indices.size(); ++i) {
    KGREC_CHECK(indices[i] >= 0 &&
                static_cast<size_t>(indices[i]) < num_rows);
    const float* src = vn.data.data() + i * d;
    float* dst = node->data.data() + indices[i] * d;
    for (size_t c = 0; c < d; ++c) dst[c] += src[c];
  }
  if (node->requires_grad) {
    node->backward = [indices, d](Node& self) {
      Node& pv = *self.parents[0];
      float* gv = internal::GradBuf(pv);
      for (size_t i = 0; i < indices.size(); ++i) {
        const float* g = self.grad.data() + indices[i] * d;
        float* dst = gv + i * d;
        for (size_t c = 0; c < d; ++c) dst[c] += g[c];
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor SliceCols(const Tensor& a, size_t start, size_t len) {
  Node& an = *a.node();
  KGREC_CHECK_LE(start + len, an.cols);
  auto node = MakeNode(an.rows, len, {a.node()});
  for (size_t r = 0; r < an.rows; ++r) {
    std::copy_n(an.data.data() + r * an.cols + start, len,
                node->data.data() + r * len);
  }
  if (node->requires_grad) {
    node->backward = [start, len](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      for (size_t r = 0; r < self.rows; ++r) {
        for (size_t c = 0; c < len; ++c) {
          ga[r * pa.cols + start + c] += self.grad[r * len + c];
        }
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor L2Norm(const Tensor& a) { return Sum(Square(a)); }

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets) {
  Node& ln = *logits.node();
  KGREC_CHECK_EQ(ln.size(), targets.size());
  auto node = MakeNode(1, 1, {logits.node()});
  double acc = 0.0;
  for (size_t i = 0; i < ln.size(); ++i) {
    const float z = ln.data[i];
    const float t = targets[i];
    // Numerically stable: max(z,0) - z*t + log(1 + exp(-|z|)).
    acc += std::max(z, 0.0f) - z * t + std::log1p(std::exp(-std::fabs(z)));
  }
  node->data[0] = static_cast<float>(acc / ln.size());
  if (node->requires_grad) {
    node->backward = [targets](Node& self) {
      Node& pl = *self.parents[0];
      float* gl = internal::GradBuf(pl);
      const float g = self.grad[0] / pl.size();
      for (size_t i = 0; i < pl.size(); ++i) {
        const float z = pl.data[i];
        const float s = z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                                  : std::exp(z) / (1.0f + std::exp(z));
        gl[i] += g * (s - targets[i]);
      }
    };
  }
  return Tensor::Wrap(node);
}

Tensor BprLoss(const Tensor& pos_scores, const Tensor& neg_scores) {
  return Mean(Softplus(Sub(neg_scores, pos_scores)));
}

Tensor MarginRankingLoss(const Tensor& pos, const Tensor& neg, float margin) {
  return Mean(Relu(AddConst(Sub(pos, neg), margin)));
}

Tensor MseLoss(const Tensor& a, const std::vector<float>& targets) {
  Node& an = *a.node();
  KGREC_CHECK_EQ(an.size(), targets.size());
  auto node = MakeNode(1, 1, {a.node()});
  double acc = 0.0;
  for (size_t i = 0; i < an.size(); ++i) {
    const double diff = an.data[i] - targets[i];
    acc += diff * diff;
  }
  node->data[0] = static_cast<float>(acc / an.size());
  if (node->requires_grad) {
    node->backward = [targets](Node& self) {
      Node& pa = *self.parents[0];
      float* ga = internal::GradBuf(pa);
      const float g = 2.0f * self.grad[0] / pa.size();
      for (size_t i = 0; i < pa.size(); ++i) {
        ga[i] += g * (pa.data[i] - targets[i]);
      }
    };
  }
  return Tensor::Wrap(node);
}

}  // namespace kgrec::nn
