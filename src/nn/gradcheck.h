#ifndef KGREC_NN_GRADCHECK_H_
#define KGREC_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/tensor.h"

namespace kgrec::nn {

/// Verifies the analytic gradient of a scalar-valued function against
/// central finite differences.
///
/// `loss_fn` must rebuild the computation graph from the current contents
/// of `params` and return a [1,1] loss. Returns the maximum relative error
/// max |analytic - numeric| / max(1, |analytic| + |numeric|) observed over
/// all parameter elements.
double GradCheck(const std::function<Tensor()>& loss_fn,
                 const std::vector<Tensor>& params, double epsilon = 1e-3);

}  // namespace kgrec::nn

#endif  // KGREC_NN_GRADCHECK_H_
