#ifndef KGREC_NN_OPS_H_
#define KGREC_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace kgrec::nn {

/// Elementwise addition with broadcasting. Shapes must be equal, or b must
/// be [1,1] (scalar), [1,N] (row broadcast over a [M,N] a), or [M,1]
/// (column broadcast).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise subtraction, broadcasting as Add.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) product, broadcasting as Add.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Elementwise maximum, broadcasting as Add; the gradient flows to the
/// winning operand (ties favor a). Used for CNN max-pooling (MCRec).
Tensor Max(const Tensor& a, const Tensor& b);

/// Matrix product of a [M,K] and b [K,N].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose, [M,N] -> [N,M].
Tensor Transpose(const Tensor& a);

/// Multiplies every element by a compile-time constant.
Tensor ScaleBy(const Tensor& a, float c);

/// Adds a constant to every element.
Tensor AddConst(const Tensor& a, float c);

/// Elementwise negation.
Tensor Neg(const Tensor& a);

/// Elementwise sigmoid.
Tensor Sigmoid(const Tensor& a);

/// Elementwise hyperbolic tangent.
Tensor Tanh(const Tensor& a);

/// Elementwise rectified linear unit.
Tensor Relu(const Tensor& a);

/// Elementwise exponential.
Tensor Exp(const Tensor& a);

/// Elementwise natural logarithm of (a + eps) for numerical safety.
Tensor Log(const Tensor& a, float eps = 1e-12f);

/// Elementwise square.
Tensor Square(const Tensor& a);

/// Elementwise softplus log(1 + e^x), computed stably.
Tensor Softplus(const Tensor& a);

/// Sum of all elements -> [1,1].
Tensor Sum(const Tensor& a);

/// Mean of all elements -> [1,1].
Tensor Mean(const Tensor& a);

/// Per-row sum, [M,N] -> [M,1].
Tensor SumRows(const Tensor& a);

/// Per-row mean, [M,N] -> [M,1].
Tensor MeanRows(const Tensor& a);

/// Sum over rows, [M,N] -> [1,N].
Tensor SumCols(const Tensor& a);

/// Row-wise softmax, [M,N] -> [M,N]; each row sums to 1.
Tensor Softmax(const Tensor& a);

/// Horizontal concatenation of [M,Na] and [M,Nb] -> [M,Na+Nb].
Tensor Concat(const Tensor& a, const Tensor& b);

/// Gathers rows of an embedding table: table [V,D], indices of length B
/// -> [B,D]. The backward pass scatter-adds into the table's gradient.
Tensor Gather(const Tensor& table, const std::vector<int32_t>& indices);

/// Per-row dot product of equal-shaped tensors: [M,N] x [M,N] -> [M,1].
/// A first-class fused op: one fixed-block kernel dot per row forward
/// (math/kernels.h contract), rank-1 Axpy updates backward — no
/// intermediate elementwise-product node.
Tensor RowwiseDot(const Tensor& a, const Tensor& b);

/// Batched vector-matrix product: for each row b of x [B,D] and the D x D
/// matrix block r of w [B,D*D], computes x_b^T * R_b -> [B,D]. Used by
/// RippleNet's relation-space attention (Eq. 24) and TransR projections.
Tensor RowwiseVecMat(const Tensor& x, const Tensor& w);

/// Reinterprets the tensor with a new shape of equal element count
/// (row-major layout is preserved); gradient passes through unchanged.
Tensor Reshape(const Tensor& a, size_t rows, size_t cols);

/// Sums consecutive groups of `group_size` rows:
/// [G*group_size, D] -> [G, D]. Used to pool per-example neighbor or
/// history rows after flat batched processing.
Tensor GroupSumRows(const Tensor& a, size_t group_size);

/// Scatter-add of rows: out[indices[i], :] += values[i, :], with `out`
/// having `num_rows` rows. The reverse of Gather; used for full-graph
/// message passing (KGAT) where each edge's message is summed into its
/// head entity.
Tensor IndexedSumRows(const Tensor& values, const std::vector<int32_t>& indices,
                      size_t num_rows);

/// Column slice: [M, N] -> [M, len], columns [start, start+len).
Tensor SliceCols(const Tensor& a, size_t start, size_t len);

/// Sum of squared elements -> [1,1]; the usual L2 regularization term.
Tensor L2Norm(const Tensor& a);

/// Mean binary cross-entropy between sigmoid(logits) and targets in {0,1}.
/// logits has any shape; targets must have logits.size() elements.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets);

/// Mean BPR loss -log sigmoid(pos - neg); pos/neg must be equal shape.
Tensor BprLoss(const Tensor& pos_scores, const Tensor& neg_scores);

/// Mean margin ranking (hinge) loss max(0, margin + pos - neg); used with
/// distance scores where smaller pos is better (TransE-family, Eq. 11).
Tensor MarginRankingLoss(const Tensor& pos, const Tensor& neg, float margin);

/// Mean squared error between a and constant targets.
Tensor MseLoss(const Tensor& a, const std::vector<float>& targets);

}  // namespace kgrec::nn

#endif  // KGREC_NN_OPS_H_
