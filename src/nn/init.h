#ifndef KGREC_NN_INIT_H_
#define KGREC_NN_INIT_H_

#include "math/rng.h"
#include "nn/tensor.h"

namespace kgrec::nn {

/// Creates a [rows, cols] parameter with Xavier/Glorot uniform
/// initialization: U(-a, a), a = sqrt(6 / (rows + cols)).
Tensor XavierUniform(size_t rows, size_t cols, Rng& rng);

/// Creates a [rows, cols] parameter with N(0, stddev^2) entries.
Tensor NormalInit(size_t rows, size_t cols, float stddev, Rng& rng);

/// Creates a [rows, cols] parameter with U(lo, hi) entries.
Tensor UniformInit(size_t rows, size_t cols, float lo, float hi, Rng& rng);

}  // namespace kgrec::nn

#endif  // KGREC_NN_INIT_H_
