#ifndef KGREC_NN_INIT_H_
#define KGREC_NN_INIT_H_

#include "math/rng.h"
#include "nn/tensor.h"

namespace kgrec::nn {

/// Creates a [rows, cols] parameter with Xavier/Glorot uniform
/// initialization: U(-a, a), a = sqrt(6 / (rows + cols)).
Tensor XavierUniform(size_t rows, size_t cols, Rng& rng);

/// Creates a [rows, cols] parameter with N(0, stddev^2) entries.
Tensor NormalInit(size_t rows, size_t cols, float stddev, Rng& rng);

/// Creates a [rows, cols] parameter with U(lo, hi) entries.
Tensor UniformInit(size_t rows, size_t cols, float lo, float hi, Rng& rng);

/// Widens `table` to `new_rows` rows for the online-update path: old
/// rows preserved bitwise, each new row r filled N(0, stddev^2) from
/// the counter-keyed stream base_rng.Fork(r) — so a row's values depend
/// only on its id, never on which batch grew it. `base_rng` is not
/// advanced (Fork is const).
Tensor GrowRowsNormal(const Tensor& table, size_t new_rows,
                      const Rng& base_rng, float stddev);

}  // namespace kgrec::nn

#endif  // KGREC_NN_INIT_H_
