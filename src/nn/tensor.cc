#include "nn/tensor.h"

#include <algorithm>
#include <unordered_set>

#include "core/check.h"
#include "math/kernels.h"

namespace kgrec::nn {

namespace internal {
namespace {

/// The shadow currently installed on this thread, if any. Plain reads
/// on the hot path: null means "no redirect" and GradBuf falls through
/// to the node's own buffer.
thread_local GradShadow* g_active_shadow = nullptr;

}  // namespace

void GradShadow::Attach(const std::vector<std::shared_ptr<Node>>& leaves) {
  leaves_.clear();
  buffers_.clear();
  index_.clear();
  leaves_.reserve(leaves.size());
  buffers_.reserve(leaves.size());
  for (const auto& leaf : leaves) {
    KGREC_CHECK(leaf != nullptr);
    KGREC_CHECK(leaf->requires_grad);
    // Leaves only: a node with a backward closure propagates gradients
    // itself and must not be redirected.
    KGREC_CHECK(!leaf->backward);
    // The real buffer must exist up front so AddTo() never allocates
    // and Backward()'s lazy allocation never touches a shadowed leaf.
    KGREC_CHECK_EQ(leaf->grad.size(), leaf->size());
    index_.emplace(leaf.get(), leaves_.size());
    leaves_.push_back(leaf);
    buffers_.emplace_back(leaf->size(), 0.0f);
  }
}

void GradShadow::Clear() {
  for (auto& buffer : buffers_) {
    std::fill(buffer.begin(), buffer.end(), 0.0f);
  }
}

void GradShadow::AddTo() {
  for (size_t i = 0; i < leaves_.size(); ++i) {
    // dst[j] += 1.0f * src[j] is bitwise dst[j] += src[j], so the shard
    // fold may use the shared Axpy kernel.
    kernels::Axpy(1.0f, buffers_[i].data(), leaves_[i]->grad.data(),
                  buffers_[i].size());
  }
}

GradShadow::ThreadScope::ThreadScope(GradShadow& shadow)
    : previous_(g_active_shadow) {
  g_active_shadow = &shadow;
}

GradShadow::ThreadScope::~ThreadScope() { g_active_shadow = previous_; }

float* GradBuf(Node& node) {
  GradShadow* shadow = g_active_shadow;
  if (shadow != nullptr) {
    auto it = shadow->index_.find(&node);
    if (it != shadow->index_.end()) return shadow->buffers_[it->second].data();
  }
  return node.grad.data();
}

}  // namespace internal

Tensor Tensor::Zeros(size_t rows, size_t cols, bool requires_grad) {
  auto node = std::make_shared<internal::Node>();
  node->rows = rows;
  node->cols = cols;
  node->data.assign(rows * cols, 0.0f);
  node->requires_grad = requires_grad;
  if (requires_grad) node->grad.assign(rows * cols, 0.0f);
  return Wrap(std::move(node));
}

Tensor Tensor::FromData(size_t rows, size_t cols, std::vector<float> data,
                        bool requires_grad) {
  KGREC_CHECK_EQ(data.size(), rows * cols);
  auto node = std::make_shared<internal::Node>();
  node->rows = rows;
  node->cols = cols;
  // Copy into the node's aligned store (the incoming vector's heap block
  // has no alignment guarantee, so it cannot be adopted).
  node->data.assign(data.begin(), data.end());
  node->requires_grad = requires_grad;
  if (requires_grad) node->grad.assign(rows * cols, 0.0f);
  return Wrap(std::move(node));
}

Tensor Tensor::Scalar(float value) { return FromData(1, 1, {value}); }

float Tensor::value() const {
  KGREC_CHECK_EQ(size(), 1u);
  return node_->data[0];
}

void Tensor::ZeroGrad() {
  if (node_->requires_grad) {
    node_->grad.assign(node_->size(), 0.0f);
  }
}

Tensor Tensor::Wrap(std::shared_ptr<internal::Node> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

void Backward(const Tensor& loss) {
  KGREC_CHECK(loss.defined());
  KGREC_CHECK_EQ(loss.size(), 1u);
  using internal::Node;
  // Iterative post-order DFS to topologically sort the graph.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.node().get(), 0);
  visited.insert(loss.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  Node* root = loss.node().get();
  if (root->grad.size() != root->size()) root->grad.assign(root->size(), 0.0f);
  root->grad[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward) {
      for (auto& parent : node->parents) {
        if (parent->requires_grad && parent->grad.size() != parent->size()) {
          parent->grad.assign(parent->size(), 0.0f);
        }
      }
      node->backward(*node);
    }
  }
}

}  // namespace kgrec::nn
