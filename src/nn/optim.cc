#include "nn/optim.h"

#include <cmath>

namespace kgrec::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

void Sgd::Step() {
  for (auto& p : params_) {
    float* w = p.data();
    const float* g = p.grad();
    for (size_t i = 0; i < p.size(); ++i) {
      w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
    }
  }
}

Adagrad::Adagrad(std::vector<Tensor> params, float lr, float weight_decay,
                 float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      weight_decay_(weight_decay),
      eps_(eps) {
  for (const auto& p : params_) accum_.emplace_back(p.size(), 0.0f);
}

void Adagrad::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    float* w = p.data();
    const float* g = p.grad();
    std::vector<float>& acc = accum_[k];
    for (size_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      acc[i] += grad * grad;
      w[i] -= lr_ * grad / (std::sqrt(acc[i]) + eps_);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  for (const auto& p : params_) {
    m_.emplace_back(p.size(), 0.0f);
    v_.emplace_back(p.size(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    float* w = p.data();
    const float* g = p.grad();
    std::vector<float>& m = m_[k];
    std::vector<float>& v = v_[k];
    for (size_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[i] / bias1;
      const float vhat = v[i] / bias2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace kgrec::nn
