#include "nn/optim.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace kgrec::nn {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

void Sgd::Step() {
  for (auto& p : params_) {
    float* w = p.data();
    const float* g = p.grad();
    for (size_t i = 0; i < p.size(); ++i) {
      w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
    }
  }
}

Adagrad::Adagrad(std::vector<Tensor> params, float lr, float weight_decay,
                 float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      weight_decay_(weight_decay),
      eps_(eps) {
  for (const auto& p : params_) accum_.emplace_back(p.size(), 0.0f);
}

void Adagrad::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    float* w = p.data();
    const float* g = p.grad();
    std::vector<float>& acc = accum_[k];
    for (size_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      acc[i] += grad * grad;
      w[i] -= lr_ * grad / (std::sqrt(acc[i]) + eps_);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  for (const auto& p : params_) {
    m_.emplace_back(p.size(), 0.0f);
    v_.emplace_back(p.size(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    float* w = p.data();
    const float* g = p.grad();
    std::vector<float>& m = m_[k];
    std::vector<float>& v = v_[k];
    for (size_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[i] / bias1;
      const float vhat = v[i] / bias2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

MiniBatchTrainer::MiniBatchTrainer(Optimizer& optimizer, size_t shard_size,
                                   size_t num_threads)
    : optimizer_(&optimizer),
      shard_size_(shard_size),
      num_threads_(num_threads) {
  KGREC_CHECK_GT(shard_size_, 0u);
  if (num_threads_ > 1) pool_ = std::make_unique<ThreadPool>(num_threads_);
}

double MiniBatchTrainer::Step(size_t num_examples, const Rng& batch_rng,
                              const ShardFn& shard_fn) {
  if (num_examples == 0) return 0.0;
  const size_t num_shards = (num_examples + shard_size_ - 1) / shard_size_;
  // Attach newly needed shadows on the calling thread; buffers are
  // reused (and re-zeroed inside the shard tasks) across steps.
  if (shadows_.size() < num_shards) {
    std::vector<std::shared_ptr<internal::Node>> leaves;
    for (const Tensor& p : optimizer_->params()) leaves.push_back(p.node());
    const size_t old_size = shadows_.size();
    shadows_.resize(num_shards);
    for (size_t s = old_size; s < num_shards; ++s) shadows_[s].Attach(leaves);
  }
  std::vector<double> losses(num_shards, 0.0);
  auto run_shards = [&](size_t begin, size_t end) -> Status {
    for (size_t s = begin; s < end; ++s) {
      internal::GradShadow& shadow = shadows_[s];
      shadow.Clear();
      Rng shard_rng = batch_rng.Fork(s);
      internal::GradShadow::ThreadScope scope(shadow);
      Tensor loss = shard_fn(
          s * shard_size_, std::min(num_examples, (s + 1) * shard_size_),
          shard_rng);
      Backward(loss);
      losses[s] = loss.value();
    }
    return Status::OK();
  };
  const Status status =
      pool_ != nullptr ? ParallelFor(*pool_, num_shards, run_shards)
                       : ParallelFor(num_shards, 1, run_shards);
  KGREC_CHECK(status.ok());
  // Ordered reduction: shard order, never thread order.
  optimizer_->ZeroGrad();
  for (size_t s = 0; s < num_shards; ++s) shadows_[s].AddTo();
  optimizer_->Step();
  double total = 0.0;
  for (double loss : losses) total += loss;
  return total;
}

}  // namespace kgrec::nn
