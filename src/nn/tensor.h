#ifndef KGREC_NN_TENSOR_H_
#define KGREC_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace kgrec::nn {

namespace internal {

/// A node in the dynamically-built computation graph. Holds the forward
/// value, the (lazily used) gradient buffer, the parent edges and the
/// function that pushes this node's gradient into its parents.
struct Node {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;

  size_t size() const { return rows * cols; }
};

}  // namespace internal

/// A 2-D float tensor participating in reverse-mode automatic
/// differentiation.
///
/// Tensor is a cheap value type (a shared handle to a graph node). All
/// tensors are matrices of shape [rows, cols]; vectors are represented as
/// [1, n] or [n, 1] and scalars as [1, 1]. Operations (see ops.h) build the
/// computation graph eagerly; Backward() then accumulates gradients into
/// every tensor created with requires_grad = true.
///
/// This engine is the library's substitute for libtorch: every surveyed
/// model is expressed in a handful of dense ops, and the engine is verified
/// against finite differences (see nn/gradcheck.h).
class Tensor {
 public:
  /// Creates a null tensor handle.
  Tensor() = default;

  /// Creates a zero-filled tensor.
  static Tensor Zeros(size_t rows, size_t cols, bool requires_grad = false);

  /// Creates a tensor taking ownership of the given row-major data
  /// (data.size() must equal rows * cols).
  static Tensor FromData(size_t rows, size_t cols, std::vector<float> data,
                         bool requires_grad = false);

  /// Creates a 1x1 constant.
  static Tensor Scalar(float value);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->rows; }
  size_t cols() const { return node_->cols; }
  size_t size() const { return node_->size(); }
  bool requires_grad() const { return node_->requires_grad; }

  float* data() { return node_->data.data(); }
  const float* data() const { return node_->data.data(); }

  /// Gradient buffer; valid after Backward() for requires_grad tensors.
  float* grad() { return node_->grad.data(); }
  const float* grad() const { return node_->grad.data(); }

  /// Value of a 1x1 tensor.
  float value() const;

  /// Fills the gradient buffer with zeros.
  void ZeroGrad();

  /// Internal node accessor (used by ops.cc and the optimizers).
  const std::shared_ptr<internal::Node>& node() const { return node_; }

  /// Wraps an existing node.
  static Tensor Wrap(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Runs reverse-mode differentiation from the given scalar (1x1) loss,
/// accumulating into the grad buffers of all reachable requires_grad
/// tensors. Gradients accumulate across calls until ZeroGrad().
void Backward(const Tensor& loss);

}  // namespace kgrec::nn

#endif  // KGREC_NN_TENSOR_H_
