#ifndef KGREC_NN_TENSOR_H_
#define KGREC_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aligned.h"

namespace kgrec::nn {

namespace internal {

/// A node in the dynamically-built computation graph. Holds the forward
/// value, the (lazily used) gradient buffer, the parent edges and the
/// function that pushes this node's gradient into its parents. Both
/// buffers are 64-byte aligned (core/aligned.h) so the kernel layer
/// sweeps cache-line-aligned memory.
struct Node {
  size_t rows = 0;
  size_t cols = 0;
  AlignedVector<float> data;
  AlignedVector<float> grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;

  size_t size() const { return rows * cols; }
};

/// Redirects gradient accumulation for a fixed set of *leaf* nodes (the
/// optimizer parameters) into buffers private to one shard of a
/// minibatch, so several shards can run Backward() concurrently over
/// graphs that share the same parameter leaves.
///
/// Per-shard intermediates are never shared between threads; the only
/// state two concurrent Backward() calls both touch is the grad buffer
/// of a shared leaf. While a ThreadScope is installed, every backward
/// closure routes its writes through GradBuf(), which substitutes the
/// shard-private buffer for registered leaves; AddTo() then folds each
/// shard's buffer into the real grads in whatever (fixed) order the
/// caller chooses, making the reduction independent of thread count.
///
/// Only leaves may be registered: a registered node must have no
/// backward closure of its own (its gradient is only ever *written* by
/// its consumers), and its grad buffer must already be allocated.
class GradShadow {
 public:
  GradShadow() = default;

  /// Registers the leaves whose gradients this shadow captures and
  /// allocates one zero-filled private buffer per leaf. May be called
  /// again to re-attach to a different parameter set.
  void Attach(const std::vector<std::shared_ptr<Node>>& leaves);

  bool attached() const { return !leaves_.empty(); }

  /// Zero-fills every private buffer (cheap re-use between steps).
  void Clear();

  /// Adds every private buffer into its leaf's real grad buffer. Must
  /// not run while any thread still has a scope on this shadow; the
  /// call order across shadows defines the reduction order.
  void AddTo();

  /// While alive, Backward() on the constructing thread accumulates
  /// registered leaves' gradients into this shadow instead of the
  /// leaves' own grad buffers. Scopes nest (the previous redirect is
  /// restored on destruction).
  class ThreadScope {
   public:
    explicit ThreadScope(GradShadow& shadow);
    ~ThreadScope();
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    GradShadow* previous_;
  };

 private:
  friend float* GradBuf(Node& node);

  std::vector<std::shared_ptr<Node>> leaves_;
  std::vector<AlignedVector<float>> buffers_;
  std::unordered_map<const Node*, size_t> index_;
};

/// The gradient accumulation buffer for `node` on the calling thread:
/// the active shadow's private buffer when a GradShadow::ThreadScope is
/// installed and `node` is registered with it, otherwise the node's own
/// grad buffer. Every backward closure obtains its parents' (and its
/// own) grad pointers through this helper.
float* GradBuf(Node& node);

}  // namespace internal

/// A 2-D float tensor participating in reverse-mode automatic
/// differentiation.
///
/// Tensor is a cheap value type (a shared handle to a graph node). All
/// tensors are matrices of shape [rows, cols]; vectors are represented as
/// [1, n] or [n, 1] and scalars as [1, 1]. Operations (see ops.h) build the
/// computation graph eagerly; Backward() then accumulates gradients into
/// every tensor created with requires_grad = true.
///
/// This engine is the library's substitute for libtorch: every surveyed
/// model is expressed in a handful of dense ops, and the engine is verified
/// against finite differences (see nn/gradcheck.h).
class Tensor {
 public:
  /// Creates a null tensor handle.
  Tensor() = default;

  /// Creates a zero-filled tensor.
  static Tensor Zeros(size_t rows, size_t cols, bool requires_grad = false);

  /// Creates a tensor taking ownership of the given row-major data
  /// (data.size() must equal rows * cols).
  static Tensor FromData(size_t rows, size_t cols, std::vector<float> data,
                         bool requires_grad = false);

  /// Creates a 1x1 constant.
  static Tensor Scalar(float value);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->rows; }
  size_t cols() const { return node_->cols; }
  size_t size() const { return node_->size(); }
  bool requires_grad() const { return node_->requires_grad; }

  float* data() { return node_->data.data(); }
  const float* data() const { return node_->data.data(); }

  /// Gradient buffer; valid after Backward() for requires_grad tensors.
  float* grad() { return node_->grad.data(); }
  const float* grad() const { return node_->grad.data(); }

  /// Value of a 1x1 tensor.
  float value() const;

  /// Fills the gradient buffer with zeros.
  void ZeroGrad();

  /// Internal node accessor (used by ops.cc and the optimizers).
  const std::shared_ptr<internal::Node>& node() const { return node_; }

  /// Wraps an existing node.
  static Tensor Wrap(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Runs reverse-mode differentiation from the given scalar (1x1) loss,
/// accumulating into the grad buffers of all reachable requires_grad
/// tensors. Gradients accumulate across calls until ZeroGrad().
void Backward(const Tensor& loss);

}  // namespace kgrec::nn

#endif  // KGREC_NN_TENSOR_H_
