#ifndef KGREC_NN_LAYERS_H_
#define KGREC_NN_LAYERS_H_

#include <vector>

#include "math/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace kgrec::nn {

/// Fully-connected layer y = x W + b with x [B, in], W [in, out], b [1, out].
class Linear {
 public:
  Linear() = default;
  Linear(size_t in_dim, size_t out_dim, Rng& rng);

  /// Applies the affine map (no activation).
  Tensor Forward(const Tensor& x) const;

  /// The trainable parameters {W, b}.
  std::vector<Tensor> Params() const { return {weight_, bias_}; }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
};

/// Gated recurrent unit cell (Cho et al.); one step of
///   z = sigmoid(x Wz + h Uz + bz), r = sigmoid(x Wr + h Ur + br),
///   n = tanh(x Wn + (r * h) Un + bn), h' = (1 - z) * n + z * h.
/// Used by RKGE's recurrent path encoder.
class GruCell {
 public:
  GruCell() = default;
  GruCell(size_t input_dim, size_t hidden_dim, Rng& rng);

  /// One recurrence step; x [B, input_dim], h [B, hidden_dim].
  Tensor Step(const Tensor& x, const Tensor& h) const;

  std::vector<Tensor> Params() const;

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t hidden_dim_ = 0;
  Linear xz_, hz_, xr_, hr_, xn_, hn_;
};

/// Long short-term memory cell; one step of the standard LSTM equations.
/// Used by KPRN's path encoder.
class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(size_t input_dim, size_t hidden_dim, Rng& rng);

  struct State {
    Tensor h;
    Tensor c;
  };

  /// One recurrence step; x [B, input_dim].
  State Step(const Tensor& x, const State& state) const;

  /// Zero-filled initial state for a batch.
  State InitialState(size_t batch) const;

  std::vector<Tensor> Params() const;

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t hidden_dim_ = 0;
  Linear xi_, hi_, xf_, hf_, xo_, ho_, xg_, hg_;
};

}  // namespace kgrec::nn

#endif  // KGREC_NN_LAYERS_H_
