#include "nn/init.h"

#include <algorithm>
#include <cmath>

namespace kgrec::nn {

Tensor XavierUniform(size_t rows, size_t cols, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return UniformInit(rows, cols, -a, a, rng);
}

Tensor NormalInit(size_t rows, size_t cols, float stddev, Rng& rng) {
  std::vector<float> data(rows * cols);
  for (auto& v : data) v = static_cast<float>(rng.Normal(0.0, stddev));
  return Tensor::FromData(rows, cols, std::move(data), /*requires_grad=*/true);
}

Tensor UniformInit(size_t rows, size_t cols, float lo, float hi, Rng& rng) {
  std::vector<float> data(rows * cols);
  for (auto& v : data) v = static_cast<float>(rng.Uniform(lo, hi));
  return Tensor::FromData(rows, cols, std::move(data), /*requires_grad=*/true);
}

Tensor GrowRowsNormal(const Tensor& table, size_t new_rows,
                      const Rng& base_rng, float stddev) {
  const size_t cols = table.cols();
  std::vector<float> data(new_rows * cols);
  std::copy_n(table.data(), table.rows() * cols, data.begin());
  for (size_t r = table.rows(); r < new_rows; ++r) {
    Rng row_rng = base_rng.Fork(r);
    for (size_t c = 0; c < cols; ++c) {
      data[r * cols + c] = static_cast<float>(row_rng.Normal(0.0, stddev));
    }
  }
  return Tensor::FromData(new_rows, cols, std::move(data),
                          /*requires_grad=*/true);
}

}  // namespace kgrec::nn
