#include "nn/init.h"

#include <cmath>

namespace kgrec::nn {

Tensor XavierUniform(size_t rows, size_t cols, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return UniformInit(rows, cols, -a, a, rng);
}

Tensor NormalInit(size_t rows, size_t cols, float stddev, Rng& rng) {
  std::vector<float> data(rows * cols);
  for (auto& v : data) v = static_cast<float>(rng.Normal(0.0, stddev));
  return Tensor::FromData(rows, cols, std::move(data), /*requires_grad=*/true);
}

Tensor UniformInit(size_t rows, size_t cols, float lo, float hi, Rng& rng) {
  std::vector<float> data(rows * cols);
  for (auto& v : data) v = static_cast<float>(rng.Uniform(lo, hi));
  return Tensor::FromData(rows, cols, std::move(data), /*requires_grad=*/true);
}

}  // namespace kgrec::nn
