#ifndef KGREC_NN_OPTIM_H_
#define KGREC_NN_OPTIM_H_

#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace kgrec::nn {

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears the gradients of all managed parameters.
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}
  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// Adagrad with per-element accumulated squared gradients.
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Tensor> params, float lr, float weight_decay = 0.0f,
          float eps = 1e-8f);
  void Step() override;

 private:
  float lr_;
  float weight_decay_;
  float eps_;
  std::vector<std::vector<float>> accum_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace kgrec::nn

#endif  // KGREC_NN_OPTIM_H_
