#ifndef KGREC_NN_OPTIM_H_
#define KGREC_NN_OPTIM_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/thread_pool.h"
#include "math/rng.h"
#include "nn/tensor.h"

namespace kgrec::nn {

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears the gradients of all managed parameters.
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}
  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// Adagrad with per-element accumulated squared gradients.
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Tensor> params, float lr, float weight_decay = 0.0f,
          float eps = 1e-8f);
  void Step() override;

 private:
  float lr_;
  float weight_decay_;
  float eps_;
  std::vector<std::vector<float>> accum_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Deterministic data-parallel minibatch SGD: shard → accumulate →
/// ordered-reduce → apply.
///
/// Each minibatch is split into fixed-size shards (the shard layout
/// depends only on `shard_size`, never on the thread count). Every shard
/// builds its own forward graph over the shared optimizer parameters,
/// draws any randomness from its own counter-forked RNG stream
/// (`batch_rng.Fork(shard_index)`), and runs Backward() with a
/// GradShadow scope installed, so its gradient contributions land in a
/// shard-private buffer. Once all shards finish, the shadows are folded
/// into the real grad buffers in ascending shard order and the optimizer
/// applies a single update.
///
/// Because shard boundaries, per-shard RNG streams, and the reduction
/// order are all functions of (num_examples, shard_size) alone, training
/// with num_threads = 1 and num_threads = N produces bitwise-identical
/// parameters.
class MiniBatchTrainer {
 public:
  /// `optimizer` must outlive the trainer; its parameter list is the set
  /// of leaves whose gradients are shadowed. `shard_size` is the fixed
  /// number of examples per shard (> 0). `num_threads <= 1` runs shards
  /// inline on the calling thread (same results, no pool).
  MiniBatchTrainer(Optimizer& optimizer, size_t shard_size,
                   size_t num_threads);

  /// Builds the scalar loss for examples [begin, end) of the current
  /// minibatch, drawing any randomness from `rng` only. The loss must be
  /// decomposable across shards: summing every shard's gradient must
  /// equal the intended whole-batch gradient (e.g. scale per-shard sums
  /// by 1/batch_size rather than using a per-shard mean).
  using ShardFn = std::function<Tensor(size_t begin, size_t end, Rng& rng)>;

  /// Runs one optimizer step over a minibatch of `num_examples` examples
  /// and returns the sum of the shard losses (accumulated in shard
  /// order). No-op returning 0 when `num_examples` is 0.
  double Step(size_t num_examples, const Rng& batch_rng,
              const ShardFn& shard_fn);

 private:
  Optimizer* optimizer_;
  size_t shard_size_;
  size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;         // only when num_threads_ > 1
  std::vector<internal::GradShadow> shadows_;  // one per shard, reused
};

}  // namespace kgrec::nn

#endif  // KGREC_NN_OPTIM_H_
