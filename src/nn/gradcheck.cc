#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace kgrec::nn {

double GradCheck(const std::function<Tensor()>& loss_fn,
                 const std::vector<Tensor>& params, double epsilon) {
  // Analytic pass.
  for (auto p : params) p.ZeroGrad();
  Tensor loss = loss_fn();
  Backward(loss);
  std::vector<std::vector<float>> analytic;
  for (const auto& p : params) {
    analytic.emplace_back(p.grad(), p.grad() + p.size());
  }

  double max_err = 0.0;
  for (size_t k = 0; k < params.size(); ++k) {
    Tensor p = params[k];
    for (size_t i = 0; i < p.size(); ++i) {
      const float original = p.data()[i];
      p.data()[i] = original + static_cast<float>(epsilon);
      const double loss_plus = loss_fn().value();
      p.data()[i] = original - static_cast<float>(epsilon);
      const double loss_minus = loss_fn().value();
      p.data()[i] = original;
      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      const double a = analytic[k][i];
      const double denom = std::max(1.0, std::fabs(a) + std::fabs(numeric));
      max_err = std::max(max_err, std::fabs(a - numeric) / denom);
    }
  }
  return max_err;
}

}  // namespace kgrec::nn
