#include "cf/mf.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "math/dense.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

void MfRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  user_emb_ = nn::NormalInit(train.num_users(), config_.dim, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), config_.dim, 0.1f, rng);
  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        for (int k = 0; k < config_.negatives_per_positive; ++k) {
          users.push_back(x.user);
          items.push_back(sampler.Sample(x.user, rng));
          labels.push_back(0.0f);
        }
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor v = nn::Gather(item_emb_, items);
      nn::Tensor logits = nn::RowwiseDot(u, v);
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

float MfRecommender::Score(int32_t user, int32_t item) const {
  return dense::Dot(user_emb_.data() + user * config_.dim,
                    item_emb_.data() + item * config_.dim, config_.dim);
}

std::vector<float> MfRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  const size_t d = config_.dim;
  const float* u = user_emb_.data() + user * d;
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = item_emb_.data() + items[i] * d;
  }
  std::vector<float> out(items.size());
  kernels::DotBatch(u, rows.data(), rows.size(), d, out.data());
  return out;
}

retrieval::ItemFactors MfRecommender::ExportItemFactors() const {
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = Matrix(item_emb_.rows(), item_emb_.cols());
  std::copy_n(item_emb_.data(), factors.items.size(), factors.items.data());
  return factors;
}

void MfRecommender::FillUserQuery(int32_t user, std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), config_.dim);
  std::copy_n(user_emb_.data() + user * config_.dim, config_.dim, out.data());
}

std::string MfRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("negatives", config_.negatives_per_positive)
      .str();
}

Status MfRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  return visitor->Tensor("item_emb", &item_emb_);
}

void BprMfRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  user_emb_ = nn::NormalInit(train.num_users(), config_.dim, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), config_.dim, 0.1f, rng);
  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, pos_items, neg_items;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        pos_items.push_back(x.item);
        neg_items.push_back(sampler.Sample(x.user, rng));
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor pos = nn::Gather(item_emb_, pos_items);
      nn::Tensor neg = nn::Gather(item_emb_, neg_items);
      nn::Tensor loss =
          nn::BprLoss(nn::RowwiseDot(u, pos), nn::RowwiseDot(u, neg));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

}  // namespace kgrec
