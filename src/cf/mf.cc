#include "cf/mf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "data/event_stream.h"
#include "math/dense.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

namespace {

// Update-path RNG streams: disjoint counter-keyed forks of
// Rng(context.seed), so row initialization depends only on the row id
// and fold draws only on the event timestamp.
constexpr uint64_t kGrowStream = 101;
constexpr uint64_t kFoldStream = 102;
// SGD passes folded per kNewInteraction event.
constexpr int kFoldPasses = 3;

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void MfRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  user_emb_ = nn::NormalInit(train.num_users(), config_.dim, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), config_.dim, 0.1f, rng);
  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        for (int k = 0; k < config_.negatives_per_positive; ++k) {
          users.push_back(x.user);
          items.push_back(sampler.Sample(x.user, rng));
          labels.push_back(0.0f);
        }
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor v = nn::Gather(item_emb_, items);
      nn::Tensor logits = nn::RowwiseDot(u, v);
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

float MfRecommender::Score(int32_t user, int32_t item) const {
  return dense::Dot(user_emb_.data() + user * config_.dim,
                    item_emb_.data() + item * config_.dim, config_.dim);
}

std::vector<float> MfRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  const size_t d = config_.dim;
  const float* u = user_emb_.data() + user * d;
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = item_emb_.data() + items[i] * d;
  }
  std::vector<float> out(items.size());
  kernels::DotBatch(u, rows.data(), rows.size(), d, out.data());
  return out;
}

retrieval::ItemFactors MfRecommender::ExportItemFactors() const {
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = Matrix(item_emb_.rows(), item_emb_.cols());
  std::copy_n(item_emb_.data(), factors.items.size(), factors.items.data());
  return factors;
}

void MfRecommender::FillUserQuery(int32_t user, std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), config_.dim);
  std::copy_n(user_emb_.data() + user * config_.dim, config_.dim, out.data());
}

std::string MfRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("negatives", config_.negatives_per_positive)
      .str();
}

Status MfRecommender::Update(const RecContext& context,
                             const EventBatch& batch) {
  KGREC_CHECK(context.train != nullptr);
  // defined() first: rows() dereferences the tensor node, and a
  // never-fitted model has no node at all.
  if (!user_emb_.defined() || user_emb_.rows() == 0) {
    return Status::FailedPrecondition(
        "MF Update() requires a fitted (or loaded) model");
  }
  const InteractionDataset& train = *context.train;
  const Rng base_rng(context.seed);
  if (static_cast<size_t>(train.num_users()) > user_emb_.rows()) {
    user_emb_ = nn::GrowRowsNormal(user_emb_, train.num_users(),
                                   base_rng.Fork(kGrowStream), 0.1f);
  }
  NegativeSampler sampler(train);
  for (const Event& e : batch.events) {
    if (e.kind != EventKind::kNewInteraction) continue;  // KG events: no-op
    Rng rng =
        base_rng.Fork(kFoldStream).Fork(static_cast<uint64_t>(e.timestamp));
    FoldInteraction(e.user, e.item, sampler, rng);
  }
  return Status::OK();
}

void MfRecommender::FoldInteraction(int32_t user, int32_t item,
                                    const NegativeSampler& sampler,
                                    Rng& rng) {
  const size_t d = config_.dim;
  const float lr = config_.learning_rate;
  const float l2 = config_.l2;
  float* u = user_emb_.data() + user * d;
  for (int pass = 0; pass < kFoldPasses; ++pass) {
    // Positive then sampled negatives, each a pointwise BCE step — the
    // same loss Fit() minimizes, folded with plain SGD.
    {
      float* v = item_emb_.data() + item * d;
      const float g = Sigmoid(dense::Dot(u, v, d)) - 1.0f;
      for (size_t c = 0; c < d; ++c) {
        const float uc = u[c];
        u[c] -= lr * (g * v[c] + l2 * uc);
        v[c] -= lr * (g * uc + l2 * v[c]);
      }
    }
    for (int k = 0; k < config_.negatives_per_positive; ++k) {
      float* v = item_emb_.data() + sampler.Sample(user, rng) * d;
      const float g = Sigmoid(dense::Dot(u, v, d));
      for (size_t c = 0; c < d; ++c) {
        const float uc = u[c];
        u[c] -= lr * (g * v[c] + l2 * uc);
        v[c] -= lr * (g * uc + l2 * v[c]);
      }
    }
  }
}

Status MfRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  return visitor->Tensor("item_emb", &item_emb_);
}

void BprMfRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  user_emb_ = nn::NormalInit(train.num_users(), config_.dim, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), config_.dim, 0.1f, rng);
  nn::Adagrad optimizer({user_emb_, item_emb_}, config_.learning_rate,
                        config_.l2);
  NegativeSampler sampler(train);

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, pos_items, neg_items;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        pos_items.push_back(x.item);
        neg_items.push_back(sampler.Sample(x.user, rng));
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor pos = nn::Gather(item_emb_, pos_items);
      nn::Tensor neg = nn::Gather(item_emb_, neg_items);
      nn::Tensor loss =
          nn::BprLoss(nn::RowwiseDot(u, pos), nn::RowwiseDot(u, neg));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

void BprMfRecommender::FoldInteraction(int32_t user, int32_t item,
                                       const NegativeSampler& sampler,
                                       Rng& rng) {
  const size_t d = config_.dim;
  const float lr = config_.learning_rate;
  const float l2 = config_.l2;
  float* u = user_emb_.data() + user * d;
  float* pos = item_emb_.data() + item * d;
  for (int pass = 0; pass < kFoldPasses; ++pass) {
    float* neg = item_emb_.data() + sampler.Sample(user, rng) * d;
    const float margin = dense::Dot(u, pos, d) - dense::Dot(u, neg, d);
    // d(-log sigmoid(margin)) / d margin.
    const float g = -Sigmoid(-margin);
    for (size_t c = 0; c < d; ++c) {
      const float uc = u[c];
      u[c] -= lr * (g * (pos[c] - neg[c]) + l2 * uc);
      pos[c] -= lr * (g * uc + l2 * pos[c]);
      neg[c] -= lr * (-g * uc + l2 * neg[c]);
    }
  }
}

}  // namespace kgrec
