#ifndef KGREC_CF_POPULARITY_H_
#define KGREC_CF_POPULARITY_H_

#include <vector>

#include "core/recommender.h"

namespace kgrec {

/// Non-personalized most-popular baseline: scores items by training
/// interaction count. The floor every personalized model must beat.
class PopularityRecommender : public Recommender {
 public:
  std::string name() const override { return "Popularity"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

 protected:
  /// Nothing is stored: the counts are recomputed from the training set.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  std::vector<float> counts_;
};

}  // namespace kgrec

#endif  // KGREC_CF_POPULARITY_H_
