#include "cf/popularity.h"

#include "core/check.h"
#include "core/model_state.h"

namespace kgrec {

void PopularityRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  counts_.assign(context.train->num_items(), 0.0f);
  for (const Interaction& x : context.train->interactions()) {
    counts_[x.item] += 1.0f;
  }
}

float PopularityRecommender::Score(int32_t /*user*/, int32_t item) const {
  return counts_[item];
}

Status PopularityRecommender::VisitState(StateVisitor* /*visitor*/) {
  return Status::OK();
}

Status PopularityRecommender::PrepareLoad(const RecContext& context) {
  Fit(context);
  return Status::OK();
}

}  // namespace kgrec
