#ifndef KGREC_CF_KNN_H_
#define KGREC_CF_KNN_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"

namespace kgrec {

/// Memory-based item-item collaborative filtering (survey Section 2.2):
/// item similarity is the cosine of interaction columns; a user's score
/// for an item is the summed similarity to the user's history, truncated
/// to each item's top-k neighbors.
class ItemKnnRecommender : public Recommender {
 public:
  explicit ItemKnnRecommender(size_t num_neighbors = 20)
      : num_neighbors_(num_neighbors) {}

  std::string name() const override { return "ItemKNN"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// The similarity lists are deterministic in the training set, so the
  /// checkpoint stores nothing and Load recomputes them.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  size_t num_neighbors_;
  const InteractionDataset* train_ = nullptr;
  /// similarity_[i] holds (other item, cosine) of item i's top neighbors.
  std::vector<std::vector<std::pair<int32_t, float>>> similarity_;
};

/// Memory-based user-user collaborative filtering: score(u, i) is the
/// similarity-weighted count of similar users who interacted with i.
class UserKnnRecommender : public Recommender {
 public:
  explicit UserKnnRecommender(size_t num_neighbors = 20)
      : num_neighbors_(num_neighbors) {}

  std::string name() const override { return "UserKNN"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  size_t num_neighbors_;
  const InteractionDataset* train_ = nullptr;
  std::vector<std::vector<std::pair<int32_t, float>>> similarity_;
};

}  // namespace kgrec

#endif  // KGREC_CF_KNN_H_
