#include "cf/fm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"

namespace kgrec {

size_t FmRecommender::BuildFeatureSpace(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  const InteractionDataset& train = *context.train;
  num_users_ = train.num_users();
  num_items_ = train.num_items();

  item_attributes_.assign(num_items_, {});
  size_t num_features = num_users_ + num_items_;
  if (context.item_kg != nullptr) {
    const KnowledgeGraph& kg = *context.item_kg;
    num_features = num_users_ + kg.num_entities();
    for (int32_t j = 0; j < num_items_; ++j) {
      const size_t degree = kg.OutDegree(j);
      const Edge* edges = kg.OutEdges(j);
      for (size_t e = 0; e < degree; ++e) {
        // Only attribute entities (id >= num items) are item features.
        if (edges[e].target >= num_items_) {
          item_attributes_[j].push_back(num_users_ + edges[e].target);
        }
      }
    }
  }
  return num_features;
}

void FmRecommender::Fit(const RecContext& context) {
  const size_t num_features = BuildFeatureSpace(context);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);

  bias_ = 0.0f;
  linear_.assign(num_features, 0.0f);
  factors_ = Matrix(num_features, config_.dim);
  for (size_t i = 0; i < factors_.size(); ++i) {
    factors_.data()[i] = static_cast<float>(rng.Normal(0.0, 0.05));
  }

  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<float> sum_v(config_.dim);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Interaction& x = train.interactions()[idx];
      for (int k = 0; k < 1 + config_.negatives_per_positive; ++k) {
        int32_t item = x.item;
        float label = 1.0f;
        if (k > 0) {
          item = sampler.Sample(x.user, rng);
          label = 0.0f;
        }
        const std::vector<int32_t> features = Features(x.user, item);
        // Forward with the sum-square trick; cache sum_v for gradients.
        std::fill(sum_v.begin(), sum_v.end(), 0.0f);
        float linear_term = bias_;
        float sum_sq = 0.0f;
        for (int32_t f : features) {
          linear_term += linear_[f];
          const float* v = factors_.Row(f);
          for (size_t d = 0; d < config_.dim; ++d) {
            sum_v[d] += v[d];
            sum_sq += v[d] * v[d];
          }
        }
        float pair_term = 0.0f;
        for (size_t d = 0; d < config_.dim; ++d) {
          pair_term += sum_v[d] * sum_v[d];
        }
        const float score = linear_term + 0.5f * (pair_term - sum_sq);
        const float prob =
            score >= 0.0f ? 1.0f / (1.0f + std::exp(-score))
                          : std::exp(score) / (1.0f + std::exp(score));
        const float dloss = prob - label;
        const float lr = config_.learning_rate;
        bias_ -= lr * dloss;
        for (int32_t f : features) {
          linear_[f] -= lr * (dloss + config_.l2 * linear_[f]);
          float* v = factors_.Row(f);
          for (size_t d = 0; d < config_.dim; ++d) {
            const float grad = dloss * (sum_v[d] - v[d]);
            v[d] -= lr * (grad + config_.l2 * v[d]);
          }
        }
      }
    }
  }
}

std::vector<int32_t> FmRecommender::Features(int32_t user,
                                             int32_t item) const {
  std::vector<int32_t> out{user, num_users_ + item};
  const auto& attrs = item_attributes_[item];
  out.insert(out.end(), attrs.begin(), attrs.end());
  return out;
}

float FmRecommender::ScoreFeatures(
    const std::vector<int32_t>& features) const {
  std::vector<float> sum_v(config_.dim, 0.0f);
  float linear_term = bias_;
  float sum_sq = 0.0f;
  for (int32_t f : features) {
    linear_term += linear_[f];
    const float* v = factors_.Row(f);
    for (size_t d = 0; d < config_.dim; ++d) {
      sum_v[d] += v[d];
      sum_sq += v[d] * v[d];
    }
  }
  float pair_term = 0.0f;
  for (size_t d = 0; d < config_.dim; ++d) pair_term += sum_v[d] * sum_v[d];
  return linear_term + 0.5f * (pair_term - sum_sq);
}

float FmRecommender::Score(int32_t user, int32_t item) const {
  return ScoreFeatures(Features(user, item));
}

std::string FmRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("negatives", config_.negatives_per_positive)
      .str();
}

Status FmRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Scalar("bias", &bias_));
  KGREC_RETURN_IF_ERROR(visitor->Floats("linear", &linear_));
  return visitor->Matrix("factors", &factors_);
}

Status FmRecommender::PrepareLoad(const RecContext& context) {
  BuildFeatureSpace(context);
  return Status::OK();
}

}  // namespace kgrec
