#ifndef KGREC_CF_MF_H_
#define KGREC_CF_MF_H_

#include "core/recommender.h"
#include "nn/tensor.h"
#include "retrieval/factors.h"

namespace kgrec {

/// Shared hyper-parameters of the latent-factor baselines.
struct MfConfig {
  size_t dim = 16;
  int epochs = 30;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Pointwise MF: negatives per positive.
  int negatives_per_positive = 1;
};

/// Pointwise matrix factorization (the model-based CF latent factor model
/// of survey Section 2.2): y_hat = u . v, trained with binary
/// cross-entropy on observed pairs vs sampled negatives.
class MfRecommender : public Recommender, public DotProductFactors {
 public:
  explicit MfRecommender(MfConfig config = {}) : config_(config) {}

  std::string name() const override { return "MF"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Online update (DESIGN §13): grows the user table for kNewUser
  /// events (each new row drawn from a counter-keyed fork, so growing in
  /// two batches == growing once) and folds every kNewInteraction with a
  /// few plain-SGD passes of the model's own loss. KG events are no-ops
  /// for a pure-CF model. Inherited by BPR-MF, which swaps the fold
  /// gradient via FoldInteraction().
  Status Update(const RecContext& context, const EventBatch& batch) override;
  bool SupportsUpdate() const override { return true; }

  /// Batched fast path through kernels::DotBatch; bitwise equal to
  /// Score() since both follow the shared fixed-block dot contract.
  /// Inherited by BPR-MF, which shares the factor layout.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  std::string HyperFingerprint() const override;

  // DotProductFactors: the score *is* the factor dot, so the export is
  // the raw factor tables (inherited by BPR-MF).
  size_t factor_dim() const override { return config_.dim; }
  retrieval::ScoreKernel factor_kernel() const override {
    return retrieval::ScoreKernel::kDot;
  }
  retrieval::ItemFactors ExportItemFactors() const override;
  void FillUserQuery(int32_t user, std::span<float> out) const override;

 protected:
  /// Both factor tensors are stored; BPR-MF inherits the same layout.
  Status VisitState(StateVisitor* visitor) override;

  /// One event's SGD fold: a few passes of this model's loss on the
  /// (user, item) positive with negatives drawn from `rng` (the event's
  /// counter-keyed stream). MF folds pointwise BCE; BPR-MF overrides
  /// with the pairwise BPR gradient.
  virtual void FoldInteraction(int32_t user, int32_t item,
                               const NegativeSampler& sampler, Rng& rng);

  MfConfig config_;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
};

/// Bayesian personalized ranking MF (Rendle et al.): pairwise loss
/// -log sigmoid(y_hat_pos - y_hat_neg), the standard implicit-feedback
/// CF baseline the surveyed papers compare against.
class BprMfRecommender : public MfRecommender {
 public:
  explicit BprMfRecommender(MfConfig config = {}) : MfRecommender(config) {}

  std::string name() const override { return "BPR-MF"; }
  void Fit(const RecContext& context) override;

 protected:
  void FoldInteraction(int32_t user, int32_t item,
                       const NegativeSampler& sampler, Rng& rng) override;
};

}  // namespace kgrec

#endif  // KGREC_CF_MF_H_
