#ifndef KGREC_CF_FM_H_
#define KGREC_CF_FM_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"

namespace kgrec {

/// Factorization-machine hyper-parameters.
struct FmConfig {
  size_t dim = 16;
  int epochs = 25;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  int negatives_per_positive = 1;
};

/// Second-order factorization machine (Rendle) over sparse features
///   {user id} ∪ {item id} ∪ {the item's KG attribute entities},
/// the fusion model of FMG (survey Section 4.2) and the hybrid baseline
/// of Section 2.2. Trained pointwise with logistic loss and hand-derived
/// gradients (FM gradients are closed-form; no autodiff needed).
class FmRecommender : public Recommender {
 public:
  explicit FmRecommender(FmConfig config = {}) : config_(config) {}

  std::string name() const override { return "FM"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// Stores bias/linear/factors; the feature map (item attribute lists)
  /// is rebuilt from the context on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Derives num_users_/num_items_/item_attributes_ from the context and
  /// returns the feature-space size. Shared by Fit and PrepareLoad.
  size_t BuildFeatureSpace(const RecContext& context);
  /// Feature ids of (user, item): user -> user, item -> m + item,
  /// attribute entity a (>= num items in the item KG) -> m + a.
  std::vector<int32_t> Features(int32_t user, int32_t item) const;

  float ScoreFeatures(const std::vector<int32_t>& features) const;

  FmConfig config_;
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  /// Attribute entity ids per item, from the item KG (empty without one).
  std::vector<std::vector<int32_t>> item_attributes_;
  float bias_ = 0.0f;
  std::vector<float> linear_;
  Matrix factors_;
};

}  // namespace kgrec

#endif  // KGREC_CF_FM_H_
