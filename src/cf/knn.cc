#include "cf/knn.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/model_state.h"
#include "math/sparse.h"
#include "math/topk.h"

namespace kgrec {

void ItemKnnRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  train_ = context.train;
  const CsrMatrix user_item = train_->ToCsr();
  const CsrMatrix item_user = user_item.Transpose();
  const size_t n = item_user.rows();
  std::vector<float> norms(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    norms[i] = std::sqrt(static_cast<float>(item_user.RowNnz(i)));
  }
  similarity_.assign(n, {});
  std::vector<float> dots(n);
  for (size_t i = 0; i < n; ++i) {
    if (norms[i] == 0.0f) continue;
    std::fill(dots.begin(), dots.end(), 0.0f);
    // For each user of item i, bump all of that user's items.
    const int32_t* users = item_user.RowCols(i);
    for (size_t a = 0; a < item_user.RowNnz(i); ++a) {
      const int32_t u = users[a];
      const int32_t* items = user_item.RowCols(u);
      for (size_t b = 0; b < user_item.RowNnz(u); ++b) {
        dots[items[b]] += 1.0f;
      }
    }
    std::vector<float> cosines(n, 0.0f);
    for (size_t j = 0; j < n; ++j) {
      if (j != i && norms[j] > 0.0f && dots[j] > 0.0f) {
        cosines[j] = dots[j] / (norms[i] * norms[j]);
      }
    }
    for (int32_t j : TopKIndices(cosines, num_neighbors_)) {
      if (cosines[j] > 0.0f) similarity_[i].emplace_back(j, cosines[j]);
    }
  }
}

float ItemKnnRecommender::Score(int32_t user, int32_t item) const {
  const auto& history = train_->UserItems(user);
  float score = 0.0f;
  for (const auto& [neighbor, sim] : similarity_[item]) {
    if (std::find(history.begin(), history.end(), neighbor) !=
        history.end()) {
      score += sim;
    }
  }
  return score;
}

std::string ItemKnnRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("num_neighbors", static_cast<double>(num_neighbors_))
      .str();
}

Status ItemKnnRecommender::VisitState(StateVisitor* /*visitor*/) {
  return Status::OK();
}

Status ItemKnnRecommender::PrepareLoad(const RecContext& context) {
  Fit(context);
  return Status::OK();
}

void UserKnnRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  train_ = context.train;
  const CsrMatrix user_item = train_->ToCsr();
  const CsrMatrix item_user = user_item.Transpose();
  const size_t m = user_item.rows();
  std::vector<float> norms(m, 0.0f);
  for (size_t u = 0; u < m; ++u) {
    norms[u] = std::sqrt(static_cast<float>(user_item.RowNnz(u)));
  }
  similarity_.assign(m, {});
  std::vector<float> dots(m);
  for (size_t u = 0; u < m; ++u) {
    if (norms[u] == 0.0f) continue;
    std::fill(dots.begin(), dots.end(), 0.0f);
    const int32_t* items = user_item.RowCols(u);
    for (size_t a = 0; a < user_item.RowNnz(u); ++a) {
      const int32_t i = items[a];
      const int32_t* users = item_user.RowCols(i);
      for (size_t b = 0; b < item_user.RowNnz(i); ++b) {
        dots[users[b]] += 1.0f;
      }
    }
    std::vector<float> cosines(m, 0.0f);
    for (size_t v = 0; v < m; ++v) {
      if (v != u && norms[v] > 0.0f && dots[v] > 0.0f) {
        cosines[v] = dots[v] / (norms[u] * norms[v]);
      }
    }
    for (int32_t v : TopKIndices(cosines, num_neighbors_)) {
      if (cosines[v] > 0.0f) similarity_[u].emplace_back(v, cosines[v]);
    }
  }
}

float UserKnnRecommender::Score(int32_t user, int32_t item) const {
  float score = 0.0f;
  for (const auto& [neighbor, sim] : similarity_[user]) {
    if (train_->Contains(neighbor, item)) score += sim;
  }
  return score;
}

std::string UserKnnRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("num_neighbors", static_cast<double>(num_neighbors_))
      .str();
}

Status UserKnnRecommender::VisitState(StateVisitor* /*visitor*/) {
  return Status::OK();
}

Status UserKnnRecommender::PrepareLoad(const RecContext& context) {
  Fit(context);
  return Status::OK();
}

}  // namespace kgrec
