#ifndef KGREC_EMBED_MKR_H_
#define KGREC_EMBED_MKR_H_

#include <vector>

#include "core/recommender.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for MKR.
struct MkrConfig {
  size_t dim = 16;
  int epochs = 20;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weight of the KGE task in the alternating objective (Eq. 9 lambda).
  float kg_weight = 0.5f;
  /// Number of stacked cross&compress units.
  int num_cross_layers = 1;
};

/// MKR (Wang et al., WWW'19): multi-task feature learning. The
/// recommendation module and a KGE module share item/entity features
/// through cross&compress units
///   v' = v (e . w_vv) + e (v . w_ev) + b_v,
///   e' = v (e . w_ve) + e (v . w_ee) + b_e,
/// i.e. every pairwise feature interaction of the item vector and its
/// aligned entity vector, compressed back to R^d. The KGE module predicts
/// tail embeddings from (head, relation) with an MLP.
class MkrRecommender : public Recommender {
 public:
  explicit MkrRecommender(MkrConfig config = {}) : config_(config) {}

  std::string name() const override { return "MKR"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  struct CrossUnit {
    nn::Tensor w_vv, w_ev, w_ve, w_ee;  // each [1, dim]
    nn::Tensor b_v, b_e;                // each [1, dim]
    std::vector<nn::Tensor> Params() const {
      return {w_vv, w_ev, w_ve, w_ee, b_v, b_e};
    }
  };

  /// Runs the cross&compress stack; items/entities are [B, d]; returns
  /// the item-side output (and, via out_entity, the entity side).
  nn::Tensor Cross(const nn::Tensor& item_vecs, const nn::Tensor& entity_vecs,
                   nn::Tensor* out_entity) const;

  MkrConfig config_;
  int32_t num_items_ = 0;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
  nn::Tensor entity_emb_;
  nn::Tensor relation_emb_;
  std::vector<CrossUnit> cross_units_;
  nn::Linear kge_hidden_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_MKR_H_
