#include "embed/ksr.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "kge/kge_trainer.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor KsrRecommender::MemoryReadout(const std::vector<int32_t>& users,
                                         const nn::Tensor& hidden) const {
  const size_t batch = users.size();
  const size_t r = num_relations_;
  const size_t d = config_.dim;
  // Attention over relation keys: [B, R].
  nn::Tensor logits = nn::MatMul(hidden, nn::Transpose(key_emb_));
  nn::Tensor att = nn::Softmax(logits);
  // Gather the users' memory slots: [B*R, d] (constant values).
  std::vector<float> slots(batch * r * d);
  for (size_t b = 0; b < batch; ++b) {
    std::copy_n(memory_.Row(users[b] * r), r * d,
                slots.data() + b * r * d);
  }
  nn::Tensor mem = nn::Tensor::FromData(batch * r, d, std::move(slots));
  nn::Tensor att_flat = nn::Reshape(att, batch * r, 1);
  return nn::GroupSumRows(nn::Mul(mem, att_flat), r);  // [B, d]
}

nn::Tensor KsrRecommender::ItemReps(const std::vector<int32_t>& items) const {
  return nn::Concat(nn::Gather(item_emb_, items),
                    nn::Gather(entity_emb_, items));
}

void KsrRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  KGREC_CHECK_EQ(config_.hidden_dim, config_.dim);  // shared query space
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t m = train.num_users();
  num_items_ = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  // --- Pretrain TransE; count forward relations ------------------------
  std::unique_ptr<KgeModel> transe =
      MakeKgeModel("transe", kg.num_entities(), kg.num_relations(), d, rng);
  KgeTrainConfig kge_config;
  kge_config.epochs = config_.kge_epochs;
  kge_config.seed = context.seed + 2;
  kge_config.num_threads = config_.num_threads;
  TrainKge(*transe, kg, kge_config);
  std::vector<RelationId> forward_relations;
  for (size_t rel = 0; rel < kg.num_relations(); ++rel) {
    const std::string& name = kg.relation_name(static_cast<RelationId>(rel));
    if (name.size() > 3 && name.substr(name.size() - 3) == "^-1") continue;
    forward_relations.push_back(static_cast<RelationId>(rel));
  }
  num_relations_ = forward_relations.size();
  KGREC_CHECK_GT(num_relations_, 0u);

  // --- Memory write phase: per user x relation mean attribute vector ---
  const float* pretrained = transe->entity_embeddings().data();
  memory_ = Matrix(m * num_relations_, d);
  std::vector<int> counts(m * num_relations_, 0);
  for (const Interaction& x : train.interactions()) {
    const size_t degree = kg.OutDegree(x.item);
    const Edge* edges = kg.OutEdges(x.item);
    for (size_t e = 0; e < degree; ++e) {
      for (size_t rel = 0; rel < num_relations_; ++rel) {
        if (edges[e].relation == forward_relations[rel]) {
          float* slot = memory_.Row(x.user * num_relations_ + rel);
          const float* value = pretrained + edges[e].target * d;
          for (size_t c = 0; c < d; ++c) slot[c] += value[c];
          ++counts[x.user * num_relations_ + rel];
        }
      }
    }
  }
  for (size_t slot = 0; slot < static_cast<size_t>(m) * num_relations_;
       ++slot) {
    if (counts[slot] > 0) {
      dense::Scale(memory_.Row(slot), d, 1.0f / counts[slot]);
    }
  }

  // --- Sequences and trainable modules ----------------------------------
  sequences_.assign(m, {});
  for (int32_t u = 0; u < m; ++u) {
    const auto& items = train.UserItems(u);
    const size_t take = std::min(items.size(), config_.max_sequence);
    sequences_[u].assign(items.end() - take, items.end());
  }
  item_emb_ = nn::NormalInit(num_items_, d, 0.1f, rng);
  entity_emb_ = nn::Tensor::FromData(
      kg.num_entities(), d,
      std::vector<float>(pretrained,
                         pretrained + transe->entity_embeddings().size()),
      /*requires_grad=*/true);
  key_emb_ = nn::NormalInit(num_relations_, d, 0.1f, rng);
  gru_ = nn::GruCell(d, config_.hidden_dim, rng);
  user_proj_ = nn::Linear(config_.hidden_dim + d, 2 * d, rng);

  std::vector<nn::Tensor> params{item_emb_, entity_emb_, key_emb_};
  for (const auto& p : gru_.Params()) params.push_back(p);
  for (const auto& p : user_proj_.Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);

  // Users with >= 2 items (need a prefix and a target).
  std::vector<int32_t> trainable_users;
  for (int32_t u = 0; u < m; ++u) {
    if (sequences_[u].size() >= 2) trainable_users.push_back(u);
  }

  // Encodes, for each user, the prefix of the first `prefix_len[b]`
  // sequence items (front-padded with the first item).
  auto user_reps = [&](const std::vector<int32_t>& users,
                       const std::vector<size_t>& prefix_len) {
    const size_t batch = users.size();
    const size_t steps = config_.max_sequence;
    nn::Tensor h = nn::Tensor::Zeros(batch, config_.hidden_dim);
    for (size_t t = 0; t < steps; ++t) {
      std::vector<int32_t> step_items(batch);
      for (size_t b = 0; b < batch; ++b) {
        const auto& seq = sequences_[users[b]];
        const size_t len = std::min(prefix_len[b], seq.size());
        const size_t at = t + len >= steps ? t + len - steps : 0;
        step_items[b] = seq[std::min(at, len - 1)];
      }
      h = gru_.Step(nn::Gather(item_emb_, step_items), h);
    }
    nn::Tensor memory = MemoryReadout(users, h);
    return user_proj_.Forward(nn::Concat(h, memory));  // [B, 2d]
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(trainable_users);
    for (size_t start = 0; start < trainable_users.size();
         start += config_.batch_size) {
      const size_t end =
          std::min(trainable_users.size(), start + config_.batch_size);
      std::vector<int32_t> users(trainable_users.begin() + start,
                                 trainable_users.begin() + end);
      if (users.empty()) continue;
      // A random (prefix -> next item) pair per user per step, so every
      // position of the sequence contributes training signal.
      std::vector<size_t> prefix_len;
      std::vector<int32_t> targets, negatives;
      for (int32_t u : users) {
        const auto& seq = sequences_[u];
        const size_t target_at = 1 + rng.UniformInt(seq.size() - 1);
        prefix_len.push_back(target_at);
        targets.push_back(seq[target_at]);
        negatives.push_back(sampler.Sample(u, rng));
      }
      nn::Tensor u_rep = user_reps(users, prefix_len);
      nn::Tensor pos = ItemReps(targets);
      nn::Tensor neg = ItemReps(negatives);
      nn::Tensor loss = nn::BprLoss(nn::RowwiseDot(u_rep, pos),
                                    nn::RowwiseDot(u_rep, neg));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }

  // Cache final user representations over the full sequence.
  user_reps_ = Matrix(m, 2 * d);
  for (int32_t u = 0; u < m; ++u) {
    if (sequences_[u].empty()) continue;
    nn::Tensor rep = user_reps({u}, {sequences_[u].size()});
    std::copy_n(rep.data(), 2 * d, user_reps_.Row(u));
  }
}

std::string KsrRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("hidden_dim", static_cast<double>(config_.hidden_dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("max_sequence", static_cast<double>(config_.max_sequence))
      .Add("kge_epochs", config_.kge_epochs)
      .str();
}

Status KsrRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("item_emb", &item_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  return visitor->Matrix("user_reps", &user_reps_);
}

float KsrRecommender::Score(int32_t user, int32_t item) const {
  const size_t d = config_.dim;
  const float* u = user_reps_.Row(user);
  float acc = 0.0f;
  const float* q = item_emb_.data() + item * d;
  const float* e = entity_emb_.data() + item * d;
  for (size_t c = 0; c < d; ++c) acc += u[c] * q[c];
  for (size_t c = 0; c < d; ++c) acc += u[d + c] * e[c];
  return acc;
}

}  // namespace kgrec
