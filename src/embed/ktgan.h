#ifndef KGREC_EMBED_KTGAN_H_
#define KGREC_EMBED_KTGAN_H_

#include "core/recommender.h"
#include "math/dense.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for KTGAN.
struct KtganConfig {
  size_t dim = 16;
  int epochs = 15;
  /// Items the generator proposes per user per epoch.
  size_t samples_per_user = 5;
  float g_learning_rate = 0.05f;
  float d_learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Metapath2vec-style initialization walks.
  size_t init_walks_per_node = 4;
  size_t init_walk_length = 6;
};

/// KTGAN (Yang et al., ICDM'18): knowledge-enhanced adversarial
/// recommendation. Initial user/item representations come from
/// Metapath2Vec-style walks over the user-item KG (the knowledge
/// embedding) combined with attribute-tag embeddings; a generator G then
/// learns to propose relevant items per user (softmax over its scores,
/// trained by policy gradient against the discriminator's signal) while
/// the discriminator D learns to tell true interactions from G's
/// proposals (survey Eq. 8). Recommendation uses G's refined scores.
class KtganRecommender : public Recommender {
 public:
  explicit KtganRecommender(KtganConfig config = {}) : config_(config) {}

  std::string name() const override { return "KTGAN"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;

 private:
  KtganConfig config_;
  nn::Tensor g_user_emb_, g_item_emb_;  // generator
  nn::Tensor d_user_emb_, d_item_emb_;  // discriminator
};

}  // namespace kgrec

#endif  // KGREC_EMBED_KTGAN_H_
