#ifndef KGREC_EMBED_CFKG_H_
#define KGREC_EMBED_CFKG_H_

#include <memory>

#include "core/recommender.h"
#include "kge/kge_model.h"
#include "math/dense.h"
#include "retrieval/factors.h"

namespace kgrec {

/// Hyper-parameters for CFKG.
struct CfkgConfig {
  size_t dim = 16;
  int epochs = 20;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float margin = 1.0f;
  float l2 = 1e-5f;
  /// KGE backend name ("transe" in the paper; any backend works).
  std::string kge = "transe";
  /// KGE training threads (KgeTrainConfig::num_threads): 0 = legacy
  /// serial loop, >= 1 = deterministic sharded trainer whose parameters
  /// are bitwise-identical at any thread count.
  size_t num_threads = 0;
};

/// CFKG (Zhang et al., survey Eq. 7): user behaviour becomes a relation
/// in a single user-item knowledge graph, a translation model is trained
/// over all its triples, and candidates are ranked by ascending
/// d(u + r_interact, v) — i.e. the KGE plausibility of the "interact"
/// fact itself.
///
/// Serving computes that plausibility through the backend's
/// fixed-relation factorization (KgeModel::FillHeadQuery /
/// FillTailFactor, DESIGN §10): the "interact"-projected item vectors are
/// materialized once after Fit/Load, a per-user query vector is built per
/// call, and the score is the backend's retrieval kernel over the two —
/// which makes CFKG a DotProductFactors exporter whose index scans are
/// bitwise Score().
class CfkgRecommender : public Recommender, public DotProductFactors {
 public:
  explicit CfkgRecommender(CfkgConfig config = {}) : config_(config) {}

  std::string name() const override { return "CFKG"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path: hoists the per-user query vector out of the
  /// candidate loop and evaluates the retrieval kernel over the
  /// materialized item factors; bitwise equal to Score().
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  /// Online update (DESIGN §13): every event kind is a KG fact in the
  /// unified user-item graph, so the fold is uniform — the backend's
  /// entity tables grow to the post-batch graph (counter-keyed rows),
  /// each kNewInteraction / kNewFact triple takes a few margin-ranking
  /// SGD steps against a corrupted negative, and the projected item
  /// factor matrix is rebuilt once at the end. kNewUser / kNewEntity
  /// are growth-only.
  Status Update(const RecContext& context, const EventBatch& batch) override;
  bool SupportsUpdate() const override { return true; }

  std::string HyperFingerprint() const override;

  // DotProductFactors (retrieval/factors.h).
  size_t factor_dim() const override { return config_.dim; }
  retrieval::ScoreKernel factor_kernel() const override;
  retrieval::ItemFactors ExportItemFactors() const override;
  void FillUserQuery(int32_t user, std::span<float> out) const override;

 protected:
  /// The KGE backend is reconstructed by PrepareLoad and its parameters
  /// restored in place; ECFKG layers its path finder on top. The
  /// materialized item factors are derived state — rebuilt by
  /// FinishLoad, never stored.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;
  Status FinishLoad(const RecContext& context) override;

  CfkgConfig config_;
  std::unique_ptr<KgeModel> model_;
  const UserItemGraph* graph_ = nullptr;

 private:
  /// A few plain-SGD margin-ranking steps on one triple (the event's
  /// counter-keyed rng draws the corruptions). Weight decay is omitted:
  /// a dense L2 step would perturb every entity row, defeating the
  /// locality of an online fold.
  void FoldTriple(int32_t head, int32_t relation, int32_t tail, Rng& rng);

  /// Projects every item entity through the fixed "interact" relation.
  void BuildItemFactors();

  /// [num_items, dim]: FillTailFactor of each item entity under the
  /// interact relation.
  Matrix item_factors_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_CFKG_H_
