#ifndef KGREC_EMBED_CFKG_H_
#define KGREC_EMBED_CFKG_H_

#include <memory>

#include "core/recommender.h"
#include "kge/kge_model.h"

namespace kgrec {

/// Hyper-parameters for CFKG.
struct CfkgConfig {
  size_t dim = 16;
  int epochs = 20;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float margin = 1.0f;
  float l2 = 1e-5f;
  /// KGE backend name ("transe" in the paper; any backend works).
  std::string kge = "transe";
  /// KGE training threads (KgeTrainConfig::num_threads): 0 = legacy
  /// serial loop, >= 1 = deterministic sharded trainer whose parameters
  /// are bitwise-identical at any thread count.
  size_t num_threads = 0;
};

/// CFKG (Zhang et al., survey Eq. 7): user behaviour becomes a relation
/// in a single user-item knowledge graph, a translation model is trained
/// over all its triples, and candidates are ranked by ascending
/// d(u + r_interact, v) — i.e. the KGE plausibility of the "interact"
/// fact itself.
class CfkgRecommender : public Recommender {
 public:
  explicit CfkgRecommender(CfkgConfig config = {}) : config_(config) {}

  std::string name() const override { return "CFKG"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// The KGE backend is reconstructed by PrepareLoad and its parameters
  /// restored in place; ECFKG layers its path finder on top.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

  CfkgConfig config_;
  std::unique_ptr<KgeModel> model_;
  const UserItemGraph* graph_ = nullptr;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_CFKG_H_
