#include "embed/mkr.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "math/dense.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor MkrRecommender::Cross(const nn::Tensor& item_vecs,
                                 const nn::Tensor& entity_vecs,
                                 nn::Tensor* out_entity) const {
  nn::Tensor v = item_vecs;
  nn::Tensor e = entity_vecs;
  for (const CrossUnit& unit : cross_units_) {
    // Row-broadcast weights compress the cross features C = v e^T:
    // C w == v (e . w); C^T w == e (v . w).
    nn::Tensor ew_vv = nn::SumRows(nn::Mul(e, unit.w_vv));  // [B,1]
    nn::Tensor vw_ev = nn::SumRows(nn::Mul(v, unit.w_ev));
    nn::Tensor ew_ve = nn::SumRows(nn::Mul(e, unit.w_ve));
    nn::Tensor vw_ee = nn::SumRows(nn::Mul(v, unit.w_ee));
    // Residual keeps v' well-scaled at initialization (the compressed
    // cross term starts near zero at our small embedding scale).
    nn::Tensor v_next = nn::Add(
        v, nn::Add(nn::Add(nn::Mul(v, ew_vv), nn::Mul(e, vw_ev)), unit.b_v));
    nn::Tensor e_next = nn::Add(
        e, nn::Add(nn::Add(nn::Mul(v, ew_ve), nn::Mul(e, vw_ee)), unit.b_e));
    v = v_next;
    e = e_next;
  }
  if (out_entity != nullptr) *out_entity = e;
  return v;
}

void MkrRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t m = train.num_users();
  num_items_ = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  user_emb_ = nn::NormalInit(m, d, 0.1f, rng);
  item_emb_ = nn::NormalInit(num_items_, d, 0.1f, rng);
  entity_emb_ = nn::NormalInit(kg.num_entities(), d, 0.1f, rng);
  relation_emb_ = nn::NormalInit(kg.num_relations(), d, 0.1f, rng);
  cross_units_.clear();
  for (int l = 0; l < config_.num_cross_layers; ++l) {
    CrossUnit unit;
    unit.w_vv = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.w_ev = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.w_ve = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.w_ee = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.b_v = nn::Tensor::Zeros(1, d, /*requires_grad=*/true);
    unit.b_e = nn::Tensor::Zeros(1, d, /*requires_grad=*/true);
    cross_units_.push_back(unit);
  }
  kge_hidden_ = nn::Linear(2 * d, d, rng);

  std::vector<nn::Tensor> params{user_emb_, item_emb_, entity_emb_,
                                 relation_emb_};
  for (const CrossUnit& unit : cross_units_) {
    for (const auto& p : unit.Params()) params.push_back(p);
  }
  for (const auto& p : kge_hidden_.Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  const auto& triples = kg.triples();

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      // --- Recommendation task -------------------------------------
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor u = nn::Gather(user_emb_, users);
      nn::Tensor v = Cross(nn::Gather(item_emb_, items),
                           nn::Gather(entity_emb_, items), nullptr);
      nn::Tensor rec_loss = nn::BceWithLogits(nn::RowwiseDot(u, v), labels);
      // --- KGE task: predict tail from (head, relation) -------------
      std::vector<int32_t> heads, rels, tails;
      std::vector<float> kge_labels;
      const size_t kg_batch = end - start;
      for (size_t i = 0; i < kg_batch; ++i) {
        const Triple& t = triples[rng.UniformInt(triples.size())];
        heads.push_back(t.head);
        rels.push_back(t.relation);
        tails.push_back(t.tail);
        kge_labels.push_back(1.0f);
        heads.push_back(t.head);
        rels.push_back(t.relation);
        tails.push_back(
            static_cast<int32_t>(rng.UniformInt(kg.num_entities())));
        kge_labels.push_back(0.0f);
      }
      // Heads that are items pass through cross&compress with the item
      // table; attribute entities use their embeddings directly. For
      // batching simplicity all heads cross with an item-or-self vector.
      std::vector<int32_t> head_item_ids;
      for (int32_t hd : heads) {
        head_item_ids.push_back(hd < num_items_ ? hd : 0);
      }
      std::vector<float> head_is_item;
      for (int32_t hd : heads) {
        head_is_item.push_back(hd < num_items_ ? 1.0f : 0.0f);
      }
      nn::Tensor h_plain = nn::Gather(entity_emb_, heads);
      nn::Tensor crossed_entity;
      Cross(nn::Gather(item_emb_, head_item_ids), h_plain, &crossed_entity);
      nn::Tensor gate = nn::Tensor::FromData(heads.size(), 1,
                                             std::move(head_is_item));
      nn::Tensor inv_gate = nn::AddConst(nn::Neg(gate), 1.0f);
      nn::Tensor h = nn::Add(nn::Mul(crossed_entity, gate),
                             nn::Mul(h_plain, inv_gate));
      nn::Tensor r = nn::Gather(relation_emb_, rels);
      nn::Tensor t_pred = nn::Tanh(kge_hidden_.Forward(nn::Concat(h, r)));
      nn::Tensor t_true = nn::Gather(entity_emb_, tails);
      nn::Tensor kge_loss =
          nn::BceWithLogits(nn::RowwiseDot(t_pred, t_true), kge_labels);
      nn::Tensor loss =
          nn::Add(rec_loss, nn::ScaleBy(kge_loss, config_.kg_weight));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string MkrRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("kg_weight", config_.kg_weight)
      .Add("num_cross_layers", config_.num_cross_layers)
      .str();
}

Status MkrRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("item_emb", &item_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("relation_emb", &relation_emb_));
  for (size_t l = 0; l < cross_units_.size(); ++l) {
    KGREC_RETURN_IF_ERROR(visitor->Params(
        "cross." + std::to_string(l), cross_units_[l].Params()));
  }
  return visitor->Params("kge_hidden", kge_hidden_.Params());
}

Status MkrRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  num_items_ = context.train->num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);
  cross_units_.clear();
  for (int l = 0; l < config_.num_cross_layers; ++l) {
    CrossUnit unit;
    unit.w_vv = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.w_ev = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.w_ve = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.w_ee = nn::UniformInit(1, d, -0.5f, 0.5f, rng);
    unit.b_v = nn::Tensor::Zeros(1, d, /*requires_grad=*/true);
    unit.b_e = nn::Tensor::Zeros(1, d, /*requires_grad=*/true);
    cross_units_.push_back(unit);
  }
  kge_hidden_ = nn::Linear(2 * d, d, rng);
  return Status::OK();
}

float MkrRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> items{item};
  nn::Tensor v = Cross(nn::Gather(item_emb_, items),
                       nn::Gather(entity_emb_, items), nullptr);
  const size_t d = config_.dim;
  return dense::Dot(user_emb_.data() + user * d, v.data(), d);
}

}  // namespace kgrec
