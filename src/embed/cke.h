#ifndef KGREC_EMBED_CKE_H_
#define KGREC_EMBED_CKE_H_

#include <memory>
#include <vector>

#include "core/recommender.h"
#include "kge/kge_model.h"
#include "math/dense.h"
#include "nn/tensor.h"
#include "retrieval/factors.h"

namespace kgrec {

/// Hyper-parameters for CKE.
struct CkeConfig {
  size_t dim = 16;
  int epochs = 25;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weight of the structural-knowledge (TransR) loss in the joint
  /// objective L = L_rec + lambda * L_KG (survey Eq. 9).
  float kg_weight = 0.5f;
  float margin = 1.0f;
};

/// Collaborative Knowledge-base Embedding (Zhang et al., KDD'16; survey
/// Eq. 2-3). The item representation aggregates
///   v_j = eta_j + x_j + z_j
/// where eta_j is the collaborative offset, x_j the TransR structural
/// embedding of the item's KG entity, and z_j a content embedding — here
/// the mean of the item's attribute-entity content vectors, standing in
/// for the paper's autoencoder text/image codes (see DESIGN.md
/// substitutions). Trained jointly: BPR pairwise loss + TransR hinge loss.
class CkeRecommender : public Recommender, public DotProductFactors {
 public:
  explicit CkeRecommender(CkeConfig config = {}) : config_(config) {}

  std::string name() const override { return "CKE"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;

  /// Batched fast path through kernels::DotBatch; bitwise equal to
  /// Score() since both follow the shared fixed-block dot contract.
  std::vector<float> ScoreItems(int32_t user,
                                std::span<const int32_t> items) const override;

  /// Online update (DESIGN §13): CKE serves from its cached final
  /// user/item vectors, so the fold operates directly on them — new
  /// users get counter-keyed rows and each kNewInteraction folds a few
  /// BPR-SGD passes on the caches. KG events are no-ops here: the
  /// TransR and content channels are collapsed into item_vecs_ once at
  /// fit time.
  Status Update(const RecContext& context, const EventBatch& batch) override;
  bool SupportsUpdate() const override { return true; }

  std::string HyperFingerprint() const override;

  // DotProductFactors: the cached final user/item vectors are already
  // the factorization Score() dots.
  size_t factor_dim() const override { return config_.dim; }
  retrieval::ScoreKernel factor_kernel() const override {
    return retrieval::ScoreKernel::kDot;
  }
  retrieval::ItemFactors ExportItemFactors() const override;
  void FillUserQuery(int32_t user, std::span<float> out) const override;

 protected:
  /// The cached final user/item vectors are the whole serving state.
  Status VisitState(StateVisitor* visitor) override;

 private:
  CkeConfig config_;
  Matrix user_vecs_;
  Matrix item_vecs_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_CKE_H_
