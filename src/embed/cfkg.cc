#include "embed/cfkg.h"

#include "core/check.h"
#include "core/model_state.h"
#include "kge/kge_trainer.h"

namespace kgrec {

void CfkgRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  const KnowledgeGraph& kg = graph_->kg;
  Rng rng(context.seed);
  model_ = MakeKgeModel(config_.kge, kg.num_entities(), kg.num_relations(),
                        config_.dim, rng);
  KgeTrainConfig train_config;
  train_config.epochs = config_.epochs;
  train_config.batch_size = config_.batch_size;
  train_config.learning_rate = config_.learning_rate;
  train_config.margin = config_.margin;
  train_config.l2 = config_.l2;
  train_config.seed = context.seed + 1;
  train_config.num_threads = config_.num_threads;
  TrainKge(*model_, kg, train_config);
}

std::string CfkgRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("margin", config_.margin)
      .Add("l2", config_.l2)
      .Add("kge", config_.kge)
      .str();
}

Status CfkgRecommender::VisitState(StateVisitor* visitor) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("CFKG has no KGE backend (not fitted)");
  }
  return visitor->Params("kge", model_->Params());
}

Status CfkgRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  // Any seed works here: the backend only needs its parameter tensors
  // allocated at the right shapes before the in-place restore.
  Rng rng(context.seed);
  model_ = MakeKgeModel(config_.kge, graph_->kg.num_entities(),
                        graph_->kg.num_relations(), config_.dim, rng);
  return Status::OK();
}

float CfkgRecommender::Score(int32_t user, int32_t item) const {
  // KGE plausibility of <user, interact, item>; higher = preferred
  // (equivalently: ascending distance order, survey Eq. 7).
  std::vector<int32_t> h{graph_->UserEntity(user)};
  std::vector<int32_t> r{graph_->interact_relation};
  std::vector<int32_t> t{graph_->ItemEntity(item)};
  return model_->ScoreBatch(h, r, t).value();
}

}  // namespace kgrec
