#include "embed/cfkg.h"

#include "core/check.h"
#include "kge/kge_trainer.h"

namespace kgrec {

void CfkgRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  const KnowledgeGraph& kg = graph_->kg;
  Rng rng(context.seed);
  model_ = MakeKgeModel(config_.kge, kg.num_entities(), kg.num_relations(),
                        config_.dim, rng);
  KgeTrainConfig train_config;
  train_config.epochs = config_.epochs;
  train_config.batch_size = config_.batch_size;
  train_config.learning_rate = config_.learning_rate;
  train_config.margin = config_.margin;
  train_config.l2 = config_.l2;
  train_config.seed = context.seed + 1;
  train_config.num_threads = config_.num_threads;
  TrainKge(*model_, kg, train_config);
}

float CfkgRecommender::Score(int32_t user, int32_t item) const {
  // KGE plausibility of <user, interact, item>; higher = preferred
  // (equivalently: ascending distance order, survey Eq. 7).
  std::vector<int32_t> h{graph_->UserEntity(user)};
  std::vector<int32_t> r{graph_->interact_relation};
  std::vector<int32_t> t{graph_->ItemEntity(item)};
  return model_->ScoreBatch(h, r, t).value();
}

}  // namespace kgrec
