#include "embed/cfkg.h"

#include "core/check.h"
#include "core/model_state.h"
#include "data/event_stream.h"
#include "kge/kge_trainer.h"
#include "nn/ops.h"

namespace kgrec {

namespace {

// Update-path RNG streams (counter-keyed forks of Rng(context.seed)).
constexpr uint64_t kGrowStream = 101;
constexpr uint64_t kFoldStream = 102;
constexpr int kFoldPasses = 3;

}  // namespace

void CfkgRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  const KnowledgeGraph& kg = graph_->kg;
  Rng rng(context.seed);
  model_ = MakeKgeModel(config_.kge, kg.num_entities(), kg.num_relations(),
                        config_.dim, rng);
  KgeTrainConfig train_config;
  train_config.epochs = config_.epochs;
  train_config.batch_size = config_.batch_size;
  train_config.learning_rate = config_.learning_rate;
  train_config.margin = config_.margin;
  train_config.l2 = config_.l2;
  train_config.seed = context.seed + 1;
  train_config.num_threads = config_.num_threads;
  TrainKge(*model_, kg, train_config);
  BuildItemFactors();
}

Status CfkgRecommender::Update(const RecContext& context,
                               const EventBatch& batch) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  if (model_ == nullptr) {
    return Status::FailedPrecondition(
        "CFKG Update() requires a fitted (or loaded) model");
  }
  graph_ = context.user_item_graph;  // the post-batch world
  const KnowledgeGraph& kg = graph_->kg;
  const Rng base_rng(context.seed);
  model_->GrowEntities(kg.num_entities(), base_rng.Fork(kGrowStream));
  for (const Event& e : batch.events) {
    int32_t head, relation, tail;
    switch (e.kind) {
      case EventKind::kNewUser:
      case EventKind::kNewEntity:
        continue;  // growth-only: the table rows above are their fold
      case EventKind::kNewInteraction:
        head = graph_->UserEntity(e.user);
        relation = graph_->interact_relation;
        tail = graph_->ItemEntity(e.item);
        break;
      case EventKind::kNewFact:
        // Item-KG coordinates -> unified-graph coordinates: entities
        // shift past the user block; forward relation k was added right
        // after "interact" in spec order (MakeUserItemGraph), so it
        // lands at interact_relation + 1 + k.
        head = static_cast<int32_t>(graph_->ItemEntity(0) + e.head);
        relation = graph_->interact_relation + 1 + e.relation;
        tail = static_cast<int32_t>(graph_->ItemEntity(0) + e.tail);
        break;
    }
    Rng rng =
        base_rng.Fork(kFoldStream).Fork(static_cast<uint64_t>(e.timestamp));
    FoldTriple(head, relation, tail, rng);
  }
  // Derived state, rebuilt exactly as FinishLoad does.
  BuildItemFactors();
  return Status::OK();
}

void CfkgRecommender::FoldTriple(int32_t head, int32_t relation, int32_t tail,
                                 Rng& rng) {
  const size_t num_entities = graph_->kg.num_entities();
  const float lr = config_.learning_rate;
  std::vector<nn::Tensor> params = model_->Params();
  for (int pass = 0; pass < kFoldPasses; ++pass) {
    int32_t nh = head, nt = tail;
    if (rng.Bernoulli(0.5)) {
      nh = static_cast<int32_t>(rng.UniformInt(num_entities));
    } else {
      nt = static_cast<int32_t>(rng.UniformInt(num_entities));
    }
    for (nn::Tensor& p : params) p.ZeroGrad();
    nn::Tensor pos = model_->ScoreBatch({head}, {relation}, {tail});
    nn::Tensor neg = model_->ScoreBatch({nh}, {relation}, {nt});
    nn::Tensor loss = nn::MarginRankingLoss(neg, pos, config_.margin);
    nn::Backward(loss);
    for (nn::Tensor& p : params) {
      float* d = p.data();
      const float* g = p.grad();
      for (size_t i = 0; i < p.size(); ++i) d[i] -= lr * g[i];
    }
  }
}

std::string CfkgRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("margin", config_.margin)
      .Add("l2", config_.l2)
      .Add("kge", config_.kge)
      .str();
}

Status CfkgRecommender::VisitState(StateVisitor* visitor) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("CFKG has no KGE backend (not fitted)");
  }
  return visitor->Params("kge", model_->Params());
}

Status CfkgRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  // Any seed works here: the backend only needs its parameter tensors
  // allocated at the right shapes before the in-place restore.
  Rng rng(context.seed);
  model_ = MakeKgeModel(config_.kge, graph_->kg.num_entities(),
                        graph_->kg.num_relations(), config_.dim, rng);
  return Status::OK();
}

Status CfkgRecommender::FinishLoad(const RecContext& /*context*/) {
  // Derived, not stored: the projected item matrix is a pure function of
  // the restored backend parameters, so the rebuild is bitwise the
  // fitted one.
  BuildItemFactors();
  return Status::OK();
}

void CfkgRecommender::BuildItemFactors() {
  KGREC_CHECK(graph_ != nullptr);
  item_factors_ = Matrix(graph_->num_items, config_.dim);
  for (int32_t item = 0; item < graph_->num_items; ++item) {
    model_->FillTailFactor(graph_->ItemEntity(item),
                           graph_->interact_relation,
                           item_factors_.Row(item));
  }
}

retrieval::ScoreKernel CfkgRecommender::factor_kernel() const {
  KGREC_CHECK(model_ != nullptr);
  return model_->retrieval_kernel();
}

retrieval::ItemFactors CfkgRecommender::ExportItemFactors() const {
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = item_factors_;
  return factors;
}

void CfkgRecommender::FillUserQuery(int32_t user,
                                    std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), config_.dim);
  model_->FillHeadQuery(graph_->UserEntity(user), graph_->interact_relation,
                        out.data());
}

float CfkgRecommender::Score(int32_t user, int32_t item) const {
  // KGE plausibility of <user, interact, item> (higher = preferred,
  // survey Eq. 7), computed through the fixed-relation factorization so
  // Score, ScoreItems and index scans share one float sequence.
  std::vector<float> query(config_.dim);
  FillUserQuery(user, query);
  return retrieval::KernelScore(factor_kernel(), query.data(),
                                item_factors_.Row(item), config_.dim);
}

std::vector<float> CfkgRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  std::vector<float> query(config_.dim);
  FillUserQuery(user, query);
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = item_factors_.Row(items[i]);
  }
  std::vector<float> out(items.size());
  retrieval::KernelScoreBatch(factor_kernel(), query.data(), rows.data(),
                              rows.size(), config_.dim, out.data());
  return out;
}

}  // namespace kgrec
