#ifndef KGREC_EMBED_SED_H_
#define KGREC_EMBED_SED_H_

#include "core/recommender.h"
#include "math/dense.h"

namespace kgrec {

/// Hyper-parameters for SED.
struct SedConfig {
  /// BFS cutoff when computing entity distances in the item KG.
  int32_t max_depth = 6;
  /// How many most-recent history items are averaged.
  size_t max_history = 20;
};

/// SED (Joseph & Jiang, WWW'19 companion): content-based news
/// recommendation via Shortest Entity Distance over knowledge graphs.
/// The preference for a candidate is the (negated) average shortest KG
/// distance between the candidate and the user's clicked items — a
/// training-free, purely structural recommender that showcases how much
/// signal the raw KG topology carries.
class SedRecommender : public Recommender {
 public:
  explicit SedRecommender(SedConfig config = {}) : config_(config) {}

  std::string name() const override { return "SED"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// Training-free model: the BFS distance table is recomputed on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  SedConfig config_;
  const InteractionDataset* train_ = nullptr;
  /// distance_.At(a, b): hop distance between items a and b (capped).
  Matrix distance_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_SED_H_
