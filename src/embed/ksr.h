#ifndef KGREC_EMBED_KSR_H_
#define KGREC_EMBED_KSR_H_

#include <memory>
#include <vector>

#include "core/recommender.h"
#include "kge/kge_model.h"
#include "math/dense.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for KSR.
struct KsrConfig {
  size_t dim = 16;
  size_t hidden_dim = 16;
  int epochs = 30;
  size_t batch_size = 32;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Maximum sequence length fed to the GRU.
  size_t max_sequence = 10;
  int kge_epochs = 8;
  /// Threads for the TransE pretraining stage
  /// (KgeTrainConfig::num_threads): 0 = legacy serial loop, >= 1 =
  /// deterministic sharded trainer.
  size_t num_threads = 0;
};

/// KSR (Huang et al., SIGIR'18): knowledge-enhanced sequential
/// recommendation. A GRU encodes the user's interaction sequence
/// (interaction-level preference h_t); a key-value memory whose keys are
/// the KG relation types and whose values accumulate the TransE
/// embeddings of consumed items' attribute entities encodes the
/// attribute-level preference m_t; the user representation is
/// u_t = h_t ++ m_t and the item representation is q_j ++ e_j
/// (survey Section 4.1).
class KsrRecommender : public Recommender {
 public:
  explicit KsrRecommender(KsrConfig config = {}) : config_(config) {}

  std::string name() const override { return "KSR"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// Serving reads only the cached user reps and the item/entity tables;
  /// the GRU, memory and projection are training-time modules whose
  /// effect is baked into user_reps_, so they are not stored.
  Status VisitState(StateVisitor* visitor) override;

 private:
  /// Attribute-level memory readout for a batch of users conditioned on
  /// nothing (the survey's m_t; attention over relation-keyed slots).
  nn::Tensor MemoryReadout(const std::vector<int32_t>& users,
                           const nn::Tensor& hidden) const;

  /// Item representation q_j ++ e_j for a batch.
  nn::Tensor ItemReps(const std::vector<int32_t>& items) const;

  KsrConfig config_;
  int32_t num_items_ = 0;
  size_t num_relations_ = 0;
  std::vector<std::vector<int32_t>> sequences_;
  /// Per-user, per-relation memory value (mean attribute embedding),
  /// fixed from the pretrained KGE (the survey's memory write phase).
  Matrix memory_;  // [num_users * num_relations, dim]
  nn::Tensor item_emb_;    // GRU-space item embeddings q
  nn::Tensor entity_emb_;  // KGE entity embeddings e (fine-tuned)
  nn::Tensor key_emb_;     // relation keys for memory attention
  nn::GruCell gru_;
  nn::Linear user_proj_;   // (hidden + dim) -> 2*dim to match item reps
  /// Cached final user representations after Fit.
  Matrix user_reps_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_KSR_H_
