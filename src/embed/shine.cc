#include "embed/shine.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/check.h"
#include "core/model_state.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor ShineRecommender::UserCodes(
    const std::vector<int32_t>& users) const {
  nn::Tensor sent = nn::Tanh(sent_enc_.Forward(nn::Gather(sentiment_rows_, users)));
  nn::Tensor social =
      nn::Tanh(social_enc_.Forward(nn::Gather(social_rows_, users)));
  nn::Tensor profile =
      nn::Tanh(profile_enc_.Forward(nn::Gather(profile_rows_, users)));
  return nn::Concat(nn::Concat(sent, social), profile);
}

nn::Tensor ShineRecommender::ItemCodes(
    const std::vector<int32_t>& items) const {
  return nn::Tanh(item_enc_.Forward(nn::Gather(item_rows_, items)));
}

void ShineRecommender::BuildInputs(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  num_users_ = train.num_users();
  num_items_ = train.num_items();

  // --- Build the three dense networks ----------------------------------
  // Sentiment: the user-item interaction matrix (and its transpose for
  // the item encoder).
  std::vector<float> sent(num_users_ * num_items_, 0.0f);
  std::vector<float> item_side(num_items_ * num_users_, 0.0f);
  for (const Interaction& x : train.interactions()) {
    sent[x.user * num_items_ + x.item] = 1.0f;
    item_side[x.item * num_users_ + x.user] = 1.0f;
  }
  sentiment_rows_ = nn::Tensor::FromData(num_users_, num_items_, std::move(sent));
  item_rows_ = nn::Tensor::FromData(num_items_, num_users_, std::move(item_side));
  // Social: users connected when they share >= 2 items (co-interaction).
  std::vector<float> social(num_users_ * num_users_, 0.0f);
  {
    std::vector<std::vector<int32_t>> users_of_item(num_items_);
    for (const Interaction& x : train.interactions()) {
      users_of_item[x.item].push_back(x.user);
    }
    std::unordered_map<int64_t, int> co_count;
    for (const auto& users : users_of_item) {
      for (size_t a = 0; a < users.size(); ++a) {
        for (size_t b = a + 1; b < users.size(); ++b) {
          ++co_count[(static_cast<int64_t>(users[a]) << 32) | users[b]];
        }
      }
    }
    for (const auto& [key, count] : co_count) {
      if (count >= 2) {
        const int32_t a = static_cast<int32_t>(key >> 32);
        const int32_t b = static_cast<int32_t>(key & 0xffffffff);
        social[a * num_users_ + b] = 1.0f;
        social[b * num_users_ + a] = 1.0f;
      }
    }
  }
  social_rows_ = nn::Tensor::FromData(num_users_, num_users_, std::move(social));
  // Profile: per-user counts of attribute entities of consumed items.
  num_attributes_ = kg.num_entities() - num_items_;
  std::vector<float> profile(num_users_ * num_attributes_, 0.0f);
  for (const Interaction& x : train.interactions()) {
    const size_t degree = kg.OutDegree(x.item);
    const Edge* edges = kg.OutEdges(x.item);
    for (size_t e = 0; e < degree; ++e) {
      if (edges[e].target >= num_items_) {
        profile[x.user * num_attributes_ + (edges[e].target - num_items_)] +=
            1.0f;
      }
    }
  }
  // Row-normalize the profile counts.
  for (int32_t u = 0; u < num_users_; ++u) {
    float total = 0.0f;
    for (size_t a = 0; a < num_attributes_; ++a) {
      total += profile[u * num_attributes_ + a];
    }
    if (total > 0.0f) {
      for (size_t a = 0; a < num_attributes_; ++a) {
        profile[u * num_attributes_ + a] /= total;
      }
    }
  }
  profile_rows_ =
      nn::Tensor::FromData(num_users_, num_attributes_, std::move(profile));
}

void ShineRecommender::InitLayers(Rng& rng) {
  const size_t d = config_.dim;
  // --- Autoencoders + scoring head -------------------------------------
  sent_enc_ = nn::Linear(num_items_, d, rng);
  sent_dec_ = nn::Linear(d, num_items_, rng);
  social_enc_ = nn::Linear(num_users_, d, rng);
  social_dec_ = nn::Linear(d, num_users_, rng);
  profile_enc_ = nn::Linear(num_attributes_, d, rng);
  profile_dec_ = nn::Linear(d, num_attributes_, rng);
  item_enc_ = nn::Linear(num_users_, d, rng);
  item_dec_ = nn::Linear(d, num_users_, rng);
  score_layer_ = nn::Linear(4 * d, 1, rng);
}

void ShineRecommender::Fit(const RecContext& context) {
  BuildInputs(context);
  const InteractionDataset& train = *context.train;
  Rng rng(context.seed);
  InitLayers(rng);

  std::vector<nn::Tensor> params;
  for (const nn::Linear* l :
       {&sent_enc_, &sent_dec_, &social_enc_, &social_dec_, &profile_enc_,
        &profile_dec_, &item_enc_, &item_dec_, &score_layer_}) {
    for (const auto& p : l->Params()) params.push_back(p);
  }
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor ucode = UserCodes(users);        // [B, 3d]
      nn::Tensor vcode = ItemCodes(items);        // [B, d]
      // MLP on the fused codes plus an explicit sentiment-code x item
      // interaction (SHINE aggregates embeddings by inner product).
      nn::Tensor interaction =
          nn::RowwiseDot(nn::SliceCols(ucode, 0, config_.dim), vcode);
      nn::Tensor logits = nn::Add(
          score_layer_.Forward(nn::Concat(ucode, vcode)),
          nn::ScaleBy(interaction, 4.0f));  // [B, 1]
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      // Reconstruction losses tie the codes to the original networks.
      if (config_.reconstruction_weight > 0.0f) {
        nn::Tensor s_in = nn::Gather(sentiment_rows_, users);
        nn::Tensor s_code = nn::Tanh(sent_enc_.Forward(s_in));
        nn::Tensor s_rec =
            nn::Mean(nn::Square(nn::Sub(sent_dec_.Forward(s_code), s_in)));
        nn::Tensor p_in = nn::Gather(profile_rows_, users);
        nn::Tensor p_code = nn::Tanh(profile_enc_.Forward(p_in));
        nn::Tensor p_rec = nn::Mean(
            nn::Square(nn::Sub(profile_dec_.Forward(p_code), p_in)));
        nn::Tensor v_in = nn::Gather(item_rows_, items);
        nn::Tensor v_code = nn::Tanh(item_enc_.Forward(v_in));
        nn::Tensor v_rec =
            nn::Mean(nn::Square(nn::Sub(item_dec_.Forward(v_code), v_in)));
        nn::Tensor rec = nn::Add(nn::Add(s_rec, p_rec), v_rec);
        loss = nn::Add(loss, nn::ScaleBy(rec, config_.reconstruction_weight));
      }
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string ShineRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("reconstruction_weight", config_.reconstruction_weight)
      .str();
}

Status ShineRecommender::VisitState(StateVisitor* visitor) {
  const std::pair<const char*, nn::Linear*> layers[] = {
      {"sent_enc", &sent_enc_},       {"sent_dec", &sent_dec_},
      {"social_enc", &social_enc_},   {"social_dec", &social_dec_},
      {"profile_enc", &profile_enc_}, {"profile_dec", &profile_dec_},
      {"item_enc", &item_enc_},       {"item_dec", &item_dec_},
      {"score_layer", &score_layer_}};
  for (const auto& [prefix, layer] : layers) {
    KGREC_RETURN_IF_ERROR(visitor->Params(prefix, layer->Params()));
  }
  return Status::OK();
}

Status ShineRecommender::PrepareLoad(const RecContext& context) {
  BuildInputs(context);
  Rng rng(context.seed);
  InitLayers(rng);
  return Status::OK();
}

float ShineRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> users{user}, items{item};
  nn::Tensor ucode = UserCodes(users);
  nn::Tensor vcode = ItemCodes(items);
  nn::Tensor interaction =
      nn::RowwiseDot(nn::SliceCols(ucode, 0, config_.dim), vcode);
  nn::Tensor logits =
      nn::Add(score_layer_.Forward(nn::Concat(ucode, vcode)),
              nn::ScaleBy(interaction, 4.0f));
  return logits.value();
}

}  // namespace kgrec
