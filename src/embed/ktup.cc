#include "embed/ktup.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "kge/kge_model.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {
namespace {

/// Soft TUP preference: p_uv = softmax_k((u + v) . p_k)-weighted sum of
/// the preference table rows. u, v are [B, d]; returns [B, d].
nn::Tensor SoftPreference(const nn::Tensor& u, const nn::Tensor& v,
                          const nn::Tensor& preferences) {
  nn::Tensor context = nn::Add(u, v);                       // [B, d]
  nn::Tensor logits =
      nn::MatMul(context, nn::Transpose(preferences));      // [B, P]
  nn::Tensor attn = nn::Softmax(logits);                    // [B, P]
  return nn::MatMul(attn, preferences);                     // [B, d]
}

/// TUP distance f(u, v, p) = ||u + p - v||^2 per row -> [B, 1].
nn::Tensor TupDistance(const nn::Tensor& u, const nn::Tensor& v,
                       const nn::Tensor& p) {
  return nn::SumRows(nn::Square(nn::Sub(nn::Add(u, p), v)));
}

}  // namespace

void KtupRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t m = train.num_users();
  const int32_t n = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  nn::Tensor user_emb = nn::NormalInit(m, d, 0.1f, rng);
  nn::Tensor item_emb = nn::NormalInit(n, d, 0.1f, rng);
  nn::Tensor pref_emb = nn::NormalInit(config_.num_preferences, d, 0.1f, rng);
  std::unique_ptr<KgeModel> transh =
      MakeKgeModel("transh", kg.num_entities(), kg.num_relations(), d, rng);

  std::vector<nn::Tensor> params{user_emb, item_emb, pref_emb};
  for (const auto& p : transh->Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  const auto& triples = kg.triples();

  // Item vectors enhanced by aligned entities: v + e_v (entity j == item j).
  auto enhanced_items = [&](const std::vector<int32_t>& items) {
    return nn::Add(nn::Gather(item_emb, items),
                   nn::Gather(transh->entity_embeddings(), items));
  };

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, pos_items, neg_items;
      std::vector<int32_t> heads, rels, tails, neg_heads, neg_tails;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        pos_items.push_back(x.item);
        neg_items.push_back(sampler.Sample(x.user, rng));
        const Triple& t = triples[rng.UniformInt(triples.size())];
        heads.push_back(t.head);
        rels.push_back(t.relation);
        tails.push_back(t.tail);
        int32_t nh = t.head, nt = t.tail;
        if (rng.Bernoulli(0.5)) {
          nh = static_cast<int32_t>(rng.UniformInt(kg.num_entities()));
        } else {
          nt = static_cast<int32_t>(rng.UniformInt(kg.num_entities()));
        }
        neg_heads.push_back(nh);
        neg_tails.push_back(nt);
      }
      nn::Tensor u = nn::Gather(user_emb, users);
      nn::Tensor pos = enhanced_items(pos_items);
      nn::Tensor neg = enhanced_items(neg_items);
      nn::Tensor p_pos = SoftPreference(u, pos, pref_emb);
      nn::Tensor p_neg = SoftPreference(u, neg, pref_emb);
      // Eq. 10: -log sigmoid(f(u,v',p') - f(u,v,p)) with f a distance.
      nn::Tensor rec_loss = nn::Mean(nn::Softplus(
          nn::Sub(TupDistance(u, pos, p_pos), TupDistance(u, neg, p_neg))));
      // Eq. 11: TransH hinge on the item KG.
      nn::Tensor kg_pos = transh->ScoreBatch(heads, rels, tails);
      nn::Tensor kg_neg = transh->ScoreBatch(neg_heads, rels, neg_tails);
      nn::Tensor kg_loss =
          nn::MarginRankingLoss(kg_neg, kg_pos, config_.margin);
      nn::Tensor loss =
          nn::Add(rec_loss, nn::ScaleBy(kg_loss, config_.kg_weight));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
    transh->PostEpoch();
  }

  user_vecs_ = Matrix(m, d);
  std::copy_n(user_emb.data(), user_vecs_.size(), user_vecs_.data());
  item_vecs_ = Matrix(n, d);
  const float* entity = transh->entity_embeddings().data();
  for (int32_t j = 0; j < n; ++j) {
    const float* iv = item_emb.data() + j * d;
    const float* ev = entity + j * d;
    for (size_t c = 0; c < d; ++c) item_vecs_.At(j, c) = iv[c] + ev[c];
  }
  preference_vecs_ = Matrix(config_.num_preferences, d);
  std::copy_n(pref_emb.data(), preference_vecs_.size(),
              preference_vecs_.data());
}

std::string KtupRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("num_preferences", static_cast<double>(config_.num_preferences))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("kg_weight", config_.kg_weight)
      .Add("margin", config_.margin)
      .str();
}

Status KtupRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Matrix("user_vecs", &user_vecs_));
  KGREC_RETURN_IF_ERROR(visitor->Matrix("item_vecs", &item_vecs_));
  return visitor->Matrix("preference_vecs", &preference_vecs_);
}

float KtupRecommender::Score(int32_t user, int32_t item) const {
  const size_t d = user_vecs_.cols();
  const float* u = user_vecs_.Row(user);
  const float* v = item_vecs_.Row(item);
  // Soft preference attention, then negative TUP distance.
  const size_t num_prefs = preference_vecs_.rows();
  std::vector<float> logits(num_prefs);
  for (size_t k = 0; k < num_prefs; ++k) {
    const float* p = preference_vecs_.Row(k);
    float acc = 0.0f;
    for (size_t c = 0; c < d; ++c) acc += (u[c] + v[c]) * p[c];
    logits[k] = acc;
  }
  float max_logit = logits[0];
  for (float l : logits) max_logit = std::max(max_logit, l);
  float total = 0.0f;
  for (float& l : logits) {
    l = std::exp(l - max_logit);
    total += l;
  }
  float distance = 0.0f;
  for (size_t c = 0; c < d; ++c) {
    float p_c = 0.0f;
    for (size_t k = 0; k < num_prefs; ++k) {
      p_c += logits[k] / total * preference_vecs_.At(k, c);
    }
    const float diff = u[c] + p_c - v[c];
    distance += diff * diff;
  }
  return -distance;
}

}  // namespace kgrec
