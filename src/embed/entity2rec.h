#ifndef KGREC_EMBED_ENTITY2REC_H_
#define KGREC_EMBED_ENTITY2REC_H_

#include "core/recommender.h"
#include "math/dense.h"

namespace kgrec {

/// Hyper-parameters for entity2rec.
struct Entity2RecConfig {
  size_t dim = 16;
  size_t walks_per_node = 6;
  size_t walk_length = 8;
  size_t window = 3;
  int negatives = 4;
  int epochs = 3;
  float learning_rate = 0.05f;
};

/// entity2rec (Palumbo et al., RecSys'17): property-specific random walks
/// over the user-item knowledge graph, embedded with skip-gram +
/// negative sampling (node2vec style); user-item relatedness is the
/// similarity of the learned entity vectors. Here walks mix all
/// relations (the collaborative "feedback" property plus the content
/// properties), which matches the paper's combined relatedness score.
class Entity2RecRecommender : public Recommender {
 public:
  explicit Entity2RecRecommender(Entity2RecConfig config = {})
      : config_(config) {}

  std::string name() const override { return "entity2rec"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// Stores the input embeddings (out_emb_ is SGNS training state that
  /// scoring never reads); the graph pointer is rebound on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  Entity2RecConfig config_;
  const UserItemGraph* graph_ = nullptr;
  Matrix in_emb_;
  Matrix out_emb_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_ENTITY2REC_H_
