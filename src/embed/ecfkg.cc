#include "embed/ecfkg.h"

#include <limits>

#include "core/check.h"

namespace kgrec {

void EcfkgRecommender::Fit(const RecContext& context) {
  CfkgRecommender::Fit(context);
  KGREC_CHECK(context.train != nullptr);
  finder_ = std::make_unique<TemplatePathFinder>(*graph_, *context.train,
                                                 /*max_paths_per_template=*/4);
}

Status EcfkgRecommender::Update(const RecContext& context,
                                const EventBatch& batch) {
  KGREC_RETURN_IF_ERROR(CfkgRecommender::Update(context, batch));
  KGREC_CHECK(context.train != nullptr);
  finder_ = std::make_unique<TemplatePathFinder>(*graph_, *context.train,
                                                 /*max_paths_per_template=*/4);
  return Status::OK();
}

Status EcfkgRecommender::PrepareLoad(const RecContext& context) {
  KGREC_RETURN_IF_ERROR(CfkgRecommender::PrepareLoad(context));
  KGREC_CHECK(context.train != nullptr);
  finder_ = std::make_unique<TemplatePathFinder>(*graph_, *context.train,
                                                 /*max_paths_per_template=*/4);
  return Status::OK();
}

std::string EcfkgRecommender::Explain(int32_t user, int32_t item) const {
  const std::vector<PathInstance> paths = finder_->FindPaths(user, item);
  if (paths.empty()) return "";
  // Rank paths by the mean KGE plausibility of their edges: the path the
  // learned embeddings themselves consider most credible.
  float best_score = -std::numeric_limits<float>::infinity();
  const PathInstance* best = nullptr;
  for (const PathInstance& path : paths) {
    float total = 0.0f;
    for (size_t i = 0; i < path.relations.size(); ++i) {
      std::vector<int32_t> h{path.entities[i]};
      std::vector<int32_t> r{path.relations[i]};
      std::vector<int32_t> t{path.entities[i + 1]};
      total += model_->ScoreBatch(h, r, t).value();
    }
    const float mean = total / path.relations.size();
    if (mean > best_score) {
      best_score = mean;
      best = &path;
    }
  }
  return FormatPath(graph_->kg, *best);
}

}  // namespace kgrec
