#ifndef KGREC_EMBED_DKFM_H_
#define KGREC_EMBED_DKFM_H_

#include "core/recommender.h"
#include "math/dense.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for DKFM.
struct DkfmConfig {
  size_t dim = 16;
  int epochs = 35;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  int kge_epochs = 10;
  /// Threads for the TransE pretraining stage
  /// (KgeTrainConfig::num_threads): 0 = legacy serial loop, >= 1 =
  /// deterministic sharded trainer.
  size_t num_threads = 0;
};

/// DKFM (Dadoun et al., WWW'19 companion): deep knowledge factorization
/// machine for next-trip/POI recommendation. A TransE embedding of the
/// destination (item) KG enriches the item representation, which a
/// DeepFM-style model consumes: a factorization term u . v plus a deep
/// tower over [user ++ item ++ KG-entity] features.
class DkfmRecommender : public Recommender {
 public:
  explicit DkfmRecommender(DkfmConfig config = {}) : config_(config) {}

  std::string name() const override { return "DKFM"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// All three embedding tables (including the frozen TransE entities)
  /// plus the deep-tower layers are stored.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  nn::Tensor Logits(const std::vector<int32_t>& users,
                    const std::vector<int32_t>& items) const;

  DkfmConfig config_;
  nn::Tensor user_emb_;
  nn::Tensor item_emb_;
  nn::Tensor entity_emb_;  // frozen TransE city/destination embeddings
  nn::Linear deep_hidden_;
  nn::Linear deep_out_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_DKFM_H_
