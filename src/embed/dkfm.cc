#include "embed/dkfm.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "kge/kge_model.h"
#include "kge/kge_trainer.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor DkfmRecommender::Logits(const std::vector<int32_t>& users,
                                   const std::vector<int32_t>& items) const {
  nn::Tensor u = nn::Gather(user_emb_, users);
  nn::Tensor v = nn::Gather(item_emb_, items);
  nn::Tensor e = nn::Gather(entity_emb_, items);
  nn::Tensor fm_term = nn::RowwiseDot(u, v);
  nn::Tensor deep_in = nn::Concat(nn::Concat(u, v), e);
  nn::Tensor deep_term =
      deep_out_.Forward(nn::Relu(deep_hidden_.Forward(deep_in)));
  return nn::Add(fm_term, deep_term);
}

void DkfmRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const size_t d = config_.dim;
  Rng rng(context.seed);

  // Frozen TransE destination embeddings (the paper pretrains location
  // embeddings on the city KG and feeds them to DeepFM).
  std::unique_ptr<KgeModel> transe =
      MakeKgeModel("transe", kg.num_entities(), kg.num_relations(), d, rng);
  KgeTrainConfig kge_config;
  kge_config.epochs = config_.kge_epochs;
  kge_config.seed = context.seed + 4;
  kge_config.num_threads = config_.num_threads;
  TrainKge(*transe, kg, kge_config);
  entity_emb_ = nn::Tensor::FromData(
      kg.num_entities(), d,
      std::vector<float>(
          transe->entity_embeddings().data(),
          transe->entity_embeddings().data() +
              transe->entity_embeddings().size()));  // no grad: frozen

  user_emb_ = nn::NormalInit(train.num_users(), d, 0.1f, rng);
  item_emb_ = nn::NormalInit(train.num_items(), d, 0.1f, rng);
  deep_hidden_ = nn::Linear(3 * d, d, rng);
  deep_out_ = nn::Linear(d, 1, rng);

  std::vector<nn::Tensor> params{user_emb_, item_emb_};
  for (const auto& p : deep_hidden_.Params()) params.push_back(p);
  for (const auto& p : deep_out_.Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, items;
      std::vector<float> labels;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        items.push_back(x.item);
        labels.push_back(1.0f);
        users.push_back(x.user);
        items.push_back(sampler.Sample(x.user, rng));
        labels.push_back(0.0f);
      }
      nn::Tensor loss = nn::BceWithLogits(Logits(users, items), labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string DkfmRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("kge_epochs", config_.kge_epochs)
      .str();
}

Status DkfmRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("user_emb", &user_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("item_emb", &item_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Params("deep_hidden", deep_hidden_.Params()));
  return visitor->Params("deep_out", deep_out_.Params());
}

Status DkfmRecommender::PrepareLoad(const RecContext& context) {
  const size_t d = config_.dim;
  Rng rng(context.seed);
  deep_hidden_ = nn::Linear(3 * d, d, rng);
  deep_out_ = nn::Linear(d, 1, rng);
  return Status::OK();
}

float DkfmRecommender::Score(int32_t user, int32_t item) const {
  std::vector<int32_t> users{user}, items{item};
  return Logits(users, items).value();
}

}  // namespace kgrec
