#ifndef KGREC_EMBED_KTUP_H_
#define KGREC_EMBED_KTUP_H_

#include "core/recommender.h"
#include "math/dense.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for KTUP.
struct KtupConfig {
  size_t dim = 16;
  /// Number of latent preference vectors in the TUP module.
  size_t num_preferences = 4;
  int epochs = 25;
  size_t batch_size = 256;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// lambda of the joint objective L = L_rec + lambda * L_KG (Eq. 9).
  float kg_weight = 0.5f;
  float margin = 1.0f;
};

/// KTUP (Cao et al., WWW'19; survey Eq. 10-11): jointly learns
/// recommendation (TUP — translation-based user preference: the user
/// reaches the item through a soft-attended latent preference vector
/// p_uv, f = ||u + p - v||^2) and KG completion (TransH hinge loss on
/// the item graph). Item embeddings are enhanced by their aligned KG
/// entities: v_used = v + e_v.
class KtupRecommender : public Recommender {
 public:
  explicit KtupRecommender(KtupConfig config = {}) : config_(config) {}

  std::string name() const override { return "KTUP"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  Status VisitState(StateVisitor* visitor) override;

 private:
  KtupConfig config_;
  Matrix user_vecs_;
  Matrix item_vecs_;
  Matrix preference_vecs_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_KTUP_H_
