#include "embed/ktgan.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/model_state.h"
#include "data/synthetic.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {
namespace {

/// Metapath2Vec-style initialization: random walks over the user-item KG
/// feed a light SGNS whose user/item rows become the initial latent
/// vectors of both players.
void WalkInitialize(const UserItemGraph& graph, const KtganConfig& config,
                    Rng& rng, Matrix* user_init, Matrix* item_init) {
  const KnowledgeGraph& kg = graph.kg;
  const size_t n_entities = kg.num_entities();
  const size_t d = config.dim;
  Matrix in_emb(n_entities, d), out_emb(n_entities, d);
  for (size_t i = 0; i < in_emb.size(); ++i) {
    in_emb.data()[i] = static_cast<float>(rng.Uniform(-0.5, 0.5)) / d;
  }
  std::vector<EntityId> walk;
  std::vector<float> grad_center(d);
  const float lr = 0.05f;
  for (size_t start = 0; start < n_entities; ++start) {
    for (size_t w = 0; w < config.init_walks_per_node; ++w) {
      walk.clear();
      EntityId current = static_cast<EntityId>(start);
      walk.push_back(current);
      for (size_t hop = 1; hop < config.init_walk_length; ++hop) {
        const size_t degree = kg.OutDegree(current);
        if (degree == 0) break;
        current = kg.OutEdges(current)[rng.UniformInt(degree)].target;
        walk.push_back(current);
      }
      for (size_t center = 0; center < walk.size(); ++center) {
        const size_t lo = center >= 2 ? center - 2 : 0;
        const size_t hi = std::min(walk.size(), center + 3);
        float* vc = in_emb.Row(walk[center]);
        for (size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == center) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          for (int neg = -1; neg < 3; ++neg) {
            const EntityId target =
                neg < 0 ? walk[ctx]
                        : static_cast<EntityId>(rng.UniformInt(n_entities));
            const float label = neg < 0 ? 1.0f : 0.0f;
            float* vo = out_emb.Row(target);
            float dot = 0.0f;
            for (size_t c = 0; c < d; ++c) dot += vc[c] * vo[c];
            const float prob =
                dot >= 0.0f ? 1.0f / (1.0f + std::exp(-dot))
                            : std::exp(dot) / (1.0f + std::exp(dot));
            const float g = lr * (label - prob);
            for (size_t c = 0; c < d; ++c) {
              grad_center[c] += g * vo[c];
              vo[c] += g * vc[c];
            }
          }
          for (size_t c = 0; c < d; ++c) vc[c] += grad_center[c];
        }
      }
    }
  }
  for (int32_t u = 0; u < graph.num_users; ++u) {
    std::copy_n(in_emb.Row(graph.UserEntity(u)), d, user_init->Row(u));
  }
  for (int32_t j = 0; j < graph.num_items; ++j) {
    std::copy_n(in_emb.Row(graph.ItemEntity(j)), d, item_init->Row(j));
  }
}

nn::Tensor FromMatrix(const Matrix& m, bool requires_grad) {
  return nn::Tensor::FromData(
      m.rows(), m.cols(),
      std::vector<float>(m.data(), m.data() + m.size()), requires_grad);
}

}  // namespace

void KtganRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.user_item_graph != nullptr);
  const InteractionDataset& train = *context.train;
  const UserItemGraph& graph = *context.user_item_graph;
  const int32_t m = train.num_users();
  const int32_t n = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  // Phase 1: knowledge/tag initialization (Metapath2Vec over the KG).
  Matrix user_init(m, d), item_init(n, d);
  WalkInitialize(graph, config_, rng, &user_init, &item_init);
  g_user_emb_ = FromMatrix(user_init, /*requires_grad=*/true);
  g_item_emb_ = FromMatrix(item_init, /*requires_grad=*/true);
  d_user_emb_ = FromMatrix(user_init, /*requires_grad=*/true);
  d_item_emb_ = FromMatrix(item_init, /*requires_grad=*/true);

  nn::Adagrad g_optimizer({g_user_emb_, g_item_emb_},
                          config_.g_learning_rate, config_.l2);
  nn::Adagrad d_optimizer({d_user_emb_, d_item_emb_},
                          config_.d_learning_rate, config_.l2);

  // Phase 1b: pretrain the generator on the observed interactions (BPR),
  // as adversarial training only refines an already-sensible sampler.
  {
    NegativeSampler sampler(train);
    std::vector<size_t> order(train.num_interactions());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int epoch = 0; epoch < 15; ++epoch) {
      rng.Shuffle(order);
      for (size_t start = 0; start < order.size(); start += 256) {
        const size_t end = std::min(order.size(), start + 256);
        std::vector<int32_t> users, pos_items, neg_items;
        for (size_t i = start; i < end; ++i) {
          const Interaction& x = train.interactions()[order[i]];
          users.push_back(x.user);
          pos_items.push_back(x.item);
          neg_items.push_back(sampler.Sample(x.user, rng));
        }
        nn::Tensor gu = nn::Gather(g_user_emb_, users);
        nn::Tensor pos = nn::Gather(g_item_emb_, pos_items);
        nn::Tensor neg = nn::Gather(g_item_emb_, neg_items);
        nn::Tensor loss =
            nn::BprLoss(nn::RowwiseDot(gu, pos), nn::RowwiseDot(gu, neg));
        g_optimizer.ZeroGrad();
        nn::Backward(loss);
        g_optimizer.Step();
      }
    }
  }

  // Phase 2: adversarial training (survey Eq. 8), IRGAN-style.
  float baseline = 0.5f;
  std::vector<int32_t> user_order(m);
  for (int32_t u = 0; u < m; ++u) user_order[u] = u;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(user_order);
    for (int32_t u : user_order) {
      const auto& truth = train.UserItems(u);
      if (truth.empty()) continue;
      // --- Generator proposes items from softmax of its scores --------
      std::vector<int32_t> user_rep(1, u);
      nn::Tensor gu = nn::Gather(g_user_emb_, user_rep);          // [1, d]
      nn::Tensor g_scores =
          nn::MatMul(gu, nn::Transpose(g_item_emb_));             // [1, n]
      nn::Tensor g_probs = nn::Softmax(g_scores);
      std::vector<double> weights(n);
      for (int32_t j = 0; j < n; ++j) weights[j] = g_probs.data()[j];
      std::vector<int32_t> fake_items;
      for (size_t k = 0; k < config_.samples_per_user; ++k) {
        fake_items.push_back(static_cast<int32_t>(rng.Categorical(weights)));
      }
      // --- Discriminator: true pairs vs generated pairs ----------------
      std::vector<int32_t> d_users, d_items;
      std::vector<float> d_labels;
      for (size_t k = 0; k < config_.samples_per_user; ++k) {
        d_users.push_back(u);
        d_items.push_back(truth[rng.UniformInt(truth.size())]);
        d_labels.push_back(1.0f);
        d_users.push_back(u);
        d_items.push_back(fake_items[k]);
        d_labels.push_back(0.0f);
      }
      nn::Tensor du = nn::Gather(d_user_emb_, d_users);
      nn::Tensor dv = nn::Gather(d_item_emb_, d_items);
      nn::Tensor d_logits = nn::RowwiseDot(du, dv);
      nn::Tensor d_loss = nn::BceWithLogits(d_logits, d_labels);
      d_optimizer.ZeroGrad();
      nn::Backward(d_loss);
      d_optimizer.Step();
      // --- Generator: policy gradient with D's signal as reward --------
      nn::Tensor g_loss;
      for (size_t k = 0; k < config_.samples_per_user; ++k) {
        std::vector<int32_t> uu{u}, jj{fake_items[k]};
        const float d_score =
            nn::RowwiseDot(nn::Gather(d_user_emb_, uu),
                           nn::Gather(d_item_emb_, jj))
                .value();
        const float reward =
            d_score >= 0.0f ? 1.0f / (1.0f + std::exp(-d_score))
                            : std::exp(d_score) / (1.0f + std::exp(d_score));
        baseline = 0.99f * baseline + 0.01f * reward;
        const float advantage = reward - baseline;
        if (std::fabs(advantage) < 1e-6f) continue;
        nn::Tensor logp =
            nn::Log(nn::SliceCols(g_probs, fake_items[k], 1));
        nn::Tensor term = nn::ScaleBy(logp, -advantage);
        g_loss = g_loss.defined() ? nn::Add(g_loss, term) : term;
      }
      if (g_loss.defined()) {
        g_optimizer.ZeroGrad();
        nn::Backward(g_loss);
        g_optimizer.Step();
      }
    }
  }
}

std::string KtganRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("samples_per_user", static_cast<double>(config_.samples_per_user))
      .Add("g_lr", config_.g_learning_rate)
      .Add("d_lr", config_.d_learning_rate)
      .Add("l2", config_.l2)
      .Add("init_walks_per_node",
           static_cast<double>(config_.init_walks_per_node))
      .Add("init_walk_length", static_cast<double>(config_.init_walk_length))
      .str();
}

Status KtganRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("g_user_emb", &g_user_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("g_item_emb", &g_item_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("d_user_emb", &d_user_emb_));
  return visitor->Tensor("d_item_emb", &d_item_emb_);
}

float KtganRecommender::Score(int32_t user, int32_t item) const {
  const size_t d = config_.dim;
  // G's refined score function ranks the recommendations (the paper's
  // prediction stage uses p_theta).
  return dense::Dot(g_user_emb_.data() + user * d,
                    g_item_emb_.data() + item * d, d);
}

}  // namespace kgrec
