#ifndef KGREC_EMBED_DKN_H_
#define KGREC_EMBED_DKN_H_

#include <vector>

#include "core/recommender.h"
#include "math/dense.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for DKN.
struct DknConfig {
  size_t dim = 16;
  int epochs = 12;
  size_t batch_size = 64;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Maximum number of clicked items in the attention history.
  size_t max_history = 10;
  /// Pseudo-words per item beyond its KG entities (title noise words).
  size_t noise_words_per_item = 2;
  /// Threads for the TransD pretraining stage
  /// (KgeTrainConfig::num_threads): 0 = legacy serial loop, >= 1 =
  /// deterministic sharded trainer.
  size_t num_threads = 0;
};

/// DKN (Wang et al., WWW'18; survey Eq. 4-5): each news item is encoded
/// by a knowledge channel (mean of its KG-entity embeddings, pretrained
/// with TransD) concatenated with a word channel (mean of title-word
/// embeddings — here the item's attribute mentions plus noise words,
/// substituting for Kim-CNN over raw text). The user embedding is a
/// candidate-conditioned attention sum over clicked items (Eq. 4-5), and
/// a DNN produces the click probability.
class DknRecommender : public Recommender {
 public:
  explicit DknRecommender(DknConfig config = {}) : config_(config) {}

  std::string name() const override { return "DKN"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// Stores both embedding tables and the four layers; item content
  /// lists and clipped histories are RNG-free functions of the data and
  /// are rebuilt on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Rebuilds item_entities_/item_words_/histories_ from the context.
  void BuildContent(const RecContext& context);

  /// Item channel vectors [B, 2*dim] for the given items (differentiable).
  nn::Tensor ItemVectors(const std::vector<int32_t>& items) const;

  DknConfig config_;
  std::vector<std::vector<int32_t>> item_entities_;
  std::vector<std::vector<int32_t>> item_words_;
  std::vector<std::vector<int32_t>> histories_;
  nn::Tensor entity_emb_;
  nn::Tensor word_emb_;
  nn::Linear attention_hidden_;
  nn::Linear attention_out_;
  nn::Linear score_hidden_;
  nn::Linear score_out_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_DKN_H_
