#ifndef KGREC_EMBED_ECFKG_H_
#define KGREC_EMBED_ECFKG_H_

#include <memory>
#include <string>

#include "embed/cfkg.h"
#include "path/path_finder.h"

namespace kgrec {

/// ECFKG (Ai et al., Algorithms 2018): "Learning heterogeneous knowledge
/// base embeddings for explainable recommendation". The recommender is
/// the CFKG translation model over the user-item KG; its contribution is
/// *explainability*: a recommendation is explained by the KG path whose
/// every edge is most plausible under the learned embeddings (the
/// soft-matching explanation scheme of the paper).
class EcfkgRecommender : public CfkgRecommender {
 public:
  explicit EcfkgRecommender(CfkgConfig config = {})
      : CfkgRecommender(config) {}

  std::string name() const override { return "ECFKG"; }
  void Fit(const RecContext& context) override;

  /// CFKG's fold, then the path finder is rebuilt over the grown graph
  /// so Explain() sees the new users, entities and facts.
  Status Update(const RecContext& context, const EventBatch& batch) override;

  /// The most KGE-plausible path from the user to the item, rendered as
  /// text, with its average edge plausibility; "" when no path exists.
  std::string Explain(int32_t user, int32_t item) const;

 protected:
  /// CFKG state plus a rebuilt path finder (pure function of the data).
  Status PrepareLoad(const RecContext& context) override;

 private:
  std::unique_ptr<TemplatePathFinder> finder_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_ECFKG_H_
