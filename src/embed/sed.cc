#include "embed/sed.h"

#include <algorithm>

#include "core/check.h"
#include "core/model_state.h"
#include "graph/bfs.h"

namespace kgrec {

void SedRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  train_ = context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t n = train_->num_items();
  // All-pairs item distances by BFS from every item (items are entities
  // [0, n) of the item graph; unreachable pairs get the cap + 1).
  const float cap = static_cast<float>(config_.max_depth + 1);
  distance_ = Matrix(n, n, cap);
  for (int32_t j = 0; j < n; ++j) {
    const std::vector<int32_t> dist =
        BfsDistances(kg, j, config_.max_depth);
    for (int32_t other = 0; other < n; ++other) {
      if (dist[other] >= 0) {
        distance_.At(j, other) = static_cast<float>(dist[other]);
      }
    }
  }
}

std::string SedRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("max_depth", config_.max_depth)
      .Add("max_history", static_cast<double>(config_.max_history))
      .str();
}

Status SedRecommender::VisitState(StateVisitor* /*visitor*/) {
  return Status::OK();
}

Status SedRecommender::PrepareLoad(const RecContext& context) {
  Fit(context);
  return Status::OK();
}

float SedRecommender::Score(int32_t user, int32_t item) const {
  const auto& history = train_->UserItems(user);
  if (history.empty()) return 0.0f;
  const size_t take = std::min(history.size(), config_.max_history);
  float total = 0.0f;
  for (size_t i = history.size() - take; i < history.size(); ++i) {
    total += distance_.At(history[i], item);
  }
  return -total / static_cast<float>(take);
}

}  // namespace kgrec
