#include "embed/entity2rec.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/model_state.h"

namespace kgrec {

void Entity2RecRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  const KnowledgeGraph& kg = graph_->kg;
  const size_t n = kg.num_entities();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  in_emb_ = Matrix(n, d);
  out_emb_ = Matrix(n, d);
  for (size_t i = 0; i < in_emb_.size(); ++i) {
    in_emb_.data()[i] = static_cast<float>(rng.Uniform(-0.5, 0.5)) / d;
  }

  std::vector<EntityId> walk;
  walk.reserve(config_.walk_length);
  const float lr = config_.learning_rate;
  std::vector<float> grad_center(d);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t start_node = 0; start_node < n; ++start_node) {
      for (size_t w = 0; w < config_.walks_per_node; ++w) {
        // Uniform random walk over out-edges.
        walk.clear();
        EntityId current = static_cast<EntityId>(start_node);
        walk.push_back(current);
        for (size_t step = 1; step < config_.walk_length; ++step) {
          const size_t degree = kg.OutDegree(current);
          if (degree == 0) break;
          current = kg.OutEdges(current)[rng.UniformInt(degree)].target;
          walk.push_back(current);
        }
        // Skip-gram with negative sampling over the window.
        for (size_t center = 0; center < walk.size(); ++center) {
          const size_t lo =
              center >= config_.window ? center - config_.window : 0;
          const size_t hi =
              std::min(walk.size(), center + config_.window + 1);
          float* vc = in_emb_.Row(walk[center]);
          for (size_t ctx = lo; ctx < hi; ++ctx) {
            if (ctx == center) continue;
            std::fill(grad_center.begin(), grad_center.end(), 0.0f);
            // Positive pair + sampled negatives.
            for (int neg = -1; neg < config_.negatives; ++neg) {
              const EntityId target =
                  neg < 0 ? walk[ctx]
                          : static_cast<EntityId>(rng.UniformInt(n));
              const float label = neg < 0 ? 1.0f : 0.0f;
              float* vo = out_emb_.Row(target);
              float dot = 0.0f;
              for (size_t c = 0; c < d; ++c) dot += vc[c] * vo[c];
              const float prob =
                  dot >= 0.0f ? 1.0f / (1.0f + std::exp(-dot))
                              : std::exp(dot) / (1.0f + std::exp(dot));
              const float g = lr * (label - prob);
              for (size_t c = 0; c < d; ++c) {
                grad_center[c] += g * vo[c];
                vo[c] += g * vc[c];
              }
            }
            for (size_t c = 0; c < d; ++c) vc[c] += grad_center[c];
          }
        }
      }
    }
  }
}

float Entity2RecRecommender::Score(int32_t user, int32_t item) const {
  return dense::CosineSimilarity(in_emb_.Row(graph_->UserEntity(user)),
                                 in_emb_.Row(graph_->ItemEntity(item)),
                                 in_emb_.cols());
}

std::string Entity2RecRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("walks_per_node", static_cast<double>(config_.walks_per_node))
      .Add("walk_length", static_cast<double>(config_.walk_length))
      .Add("window", static_cast<double>(config_.window))
      .Add("negatives", config_.negatives)
      .Add("epochs", config_.epochs)
      .Add("lr", config_.learning_rate)
      .str();
}

Status Entity2RecRecommender::VisitState(StateVisitor* visitor) {
  return visitor->Matrix("in_emb", &in_emb_);
}

Status Entity2RecRecommender::PrepareLoad(const RecContext& context) {
  KGREC_CHECK(context.user_item_graph != nullptr);
  graph_ = context.user_item_graph;
  return Status::OK();
}

}  // namespace kgrec
