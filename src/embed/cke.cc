#include "embed/cke.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "data/event_stream.h"
#include "math/kernels.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

namespace {

// Update-path RNG streams (counter-keyed forks of Rng(context.seed)).
constexpr uint64_t kGrowStream = 101;
constexpr uint64_t kFoldStream = 102;
constexpr int kFoldPasses = 3;

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void CkeRecommender::Fit(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t m = train.num_users();
  const int32_t n = train.num_items();
  const size_t d = config_.dim;
  Rng rng(context.seed);

  // Attribute lists per item (content channel).
  std::vector<std::vector<int32_t>> item_attrs(n);
  for (int32_t j = 0; j < n; ++j) {
    const size_t degree = kg.OutDegree(j);
    const Edge* edges = kg.OutEdges(j);
    for (size_t e = 0; e < degree; ++e) {
      if (edges[e].target >= n) item_attrs[j].push_back(edges[e].target);
    }
  }

  nn::Tensor user_emb = nn::NormalInit(m, d, 0.1f, rng);
  nn::Tensor offset_emb = nn::NormalInit(n, d, 0.1f, rng);
  std::unique_ptr<KgeModel> transr =
      MakeKgeModel("transr", kg.num_entities(), kg.num_relations(), d, rng);
  nn::Tensor content_emb = nn::NormalInit(kg.num_entities(), d, 0.1f, rng);

  std::vector<nn::Tensor> params{user_emb, offset_emb, content_emb};
  for (const auto& p : transr->Params()) params.push_back(p);
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);
  const auto& triples = kg.triples();

  // Builds v = offset + entity + mean(content[attrs]) for an item batch.
  auto item_vectors = [&](const std::vector<int32_t>& items) {
    nn::Tensor v = nn::Add(nn::Gather(offset_emb, items),
                           nn::Gather(transr->entity_embeddings(), items));
    // Content channel: one attribute content vector sampled per item per
    // batch — an unbiased estimate of the full attribute mean, so over
    // training it converges to the mean used at inference time below.
    std::vector<int32_t> sampled(items.size(), 0);
    std::vector<float> scale(items.size(), 1.0f);
    for (size_t i = 0; i < items.size(); ++i) {
      const auto& attrs = item_attrs[items[i]];
      if (!attrs.empty()) {
        sampled[i] = attrs[rng.UniformInt(attrs.size())];
      } else {
        sampled[i] = items[i];
        scale[i] = 0.0f;
      }
    }
    nn::Tensor z = nn::Gather(content_emb, sampled);
    nn::Tensor mask = nn::Tensor::FromData(items.size(), 1, std::move(scale));
    return nn::Add(v, nn::Mul(z, mask));
  };

  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> users, pos_items, neg_items;
      std::vector<int32_t> heads, rels, tails, neg_heads, neg_tails;
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        users.push_back(x.user);
        pos_items.push_back(x.item);
        neg_items.push_back(sampler.Sample(x.user, rng));
        // One KG triple per interaction keeps the two losses balanced.
        const Triple& t = triples[rng.UniformInt(triples.size())];
        heads.push_back(t.head);
        rels.push_back(t.relation);
        tails.push_back(t.tail);
        int32_t nh = t.head, nt = t.tail;
        if (rng.Bernoulli(0.5)) {
          nh = static_cast<int32_t>(rng.UniformInt(kg.num_entities()));
        } else {
          nt = static_cast<int32_t>(rng.UniformInt(kg.num_entities()));
        }
        neg_heads.push_back(nh);
        neg_tails.push_back(nt);
      }
      nn::Tensor u = nn::Gather(user_emb, users);
      nn::Tensor pos = item_vectors(pos_items);
      nn::Tensor neg = item_vectors(neg_items);
      nn::Tensor rec_loss =
          nn::BprLoss(nn::RowwiseDot(u, pos), nn::RowwiseDot(u, neg));
      nn::Tensor kg_pos = transr->ScoreBatch(heads, rels, tails);
      nn::Tensor kg_neg = transr->ScoreBatch(neg_heads, rels, neg_tails);
      nn::Tensor kg_loss =
          nn::MarginRankingLoss(kg_neg, kg_pos, config_.margin);
      nn::Tensor loss =
          nn::Add(rec_loss, nn::ScaleBy(kg_loss, config_.kg_weight));
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
    transr->PostEpoch();
  }

  // Cache final vectors; content uses the full attribute mean.
  user_vecs_ = Matrix(m, d);
  std::copy_n(user_emb.data(), user_vecs_.size(), user_vecs_.data());
  item_vecs_ = Matrix(n, d);
  const float* entity = transr->entity_embeddings().data();
  for (int32_t j = 0; j < n; ++j) {
    float* row = item_vecs_.Row(j);
    const float* off = offset_emb.data() + j * d;
    const float* ent = entity + j * d;
    for (size_t c = 0; c < d; ++c) row[c] = off[c] + ent[c];
    if (!item_attrs[j].empty()) {
      const float inv = 1.0f / item_attrs[j].size();
      for (int32_t a : item_attrs[j]) {
        const float* content = content_emb.data() + a * d;
        for (size_t c = 0; c < d; ++c) row[c] += inv * content[c];
      }
    }
  }
}

Status CkeRecommender::Update(const RecContext& context,
                              const EventBatch& batch) {
  KGREC_CHECK(context.train != nullptr);
  if (user_vecs_.rows() == 0) {
    return Status::FailedPrecondition(
        "CKE Update() requires a fitted (or loaded) model");
  }
  const InteractionDataset& train = *context.train;
  const size_t d = config_.dim;
  const Rng base_rng(context.seed);
  if (static_cast<size_t>(train.num_users()) > user_vecs_.rows()) {
    Matrix grown(train.num_users(), d);
    std::copy_n(user_vecs_.data(), user_vecs_.size(), grown.data());
    const Rng grow_rng = base_rng.Fork(kGrowStream);
    for (size_t r = user_vecs_.rows(); r < grown.rows(); ++r) {
      Rng row_rng = grow_rng.Fork(r);
      float* row = grown.Row(r);
      for (size_t c = 0; c < d; ++c) {
        row[c] = static_cast<float>(row_rng.Normal(0.0, 0.1));
      }
    }
    user_vecs_ = std::move(grown);
  }
  NegativeSampler sampler(train);
  for (const Event& e : batch.events) {
    if (e.kind != EventKind::kNewInteraction) continue;  // KG events: no-op
    Rng rng =
        base_rng.Fork(kFoldStream).Fork(static_cast<uint64_t>(e.timestamp));
    const float lr = config_.learning_rate;
    const float l2 = config_.l2;
    float* u = user_vecs_.Row(e.user);
    float* pos = item_vecs_.Row(e.item);
    for (int pass = 0; pass < kFoldPasses; ++pass) {
      float* neg = item_vecs_.Row(sampler.Sample(e.user, rng));
      const float margin =
          dense::Dot(u, pos, d) - dense::Dot(u, neg, d);
      const float g = -Sigmoid(-margin);  // BPR gradient, as in Fit()
      for (size_t c = 0; c < d; ++c) {
        const float uc = u[c];
        u[c] -= lr * (g * (pos[c] - neg[c]) + l2 * uc);
        pos[c] -= lr * (g * uc + l2 * pos[c]);
        neg[c] -= lr * (-g * uc + l2 * neg[c]);
      }
    }
  }
  return Status::OK();
}

std::string CkeRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("kg_weight", config_.kg_weight)
      .Add("margin", config_.margin)
      .str();
}

Status CkeRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Matrix("user_vecs", &user_vecs_));
  return visitor->Matrix("item_vecs", &item_vecs_);
}

float CkeRecommender::Score(int32_t user, int32_t item) const {
  return dense::Dot(user_vecs_.Row(user), item_vecs_.Row(item),
                    user_vecs_.cols());
}

std::vector<float> CkeRecommender::ScoreItems(
    int32_t user, std::span<const int32_t> items) const {
  const float* u = user_vecs_.Row(user);
  std::vector<const float*> rows(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    rows[i] = item_vecs_.Row(items[i]);
  }
  std::vector<float> out(items.size());
  kernels::DotBatch(u, rows.data(), rows.size(), user_vecs_.cols(),
                    out.data());
  return out;
}

retrieval::ItemFactors CkeRecommender::ExportItemFactors() const {
  retrieval::ItemFactors factors;
  factors.kernel = factor_kernel();
  factors.items = item_vecs_;
  return factors;
}

void CkeRecommender::FillUserQuery(int32_t user, std::span<float> out) const {
  KGREC_CHECK_EQ(out.size(), user_vecs_.cols());
  std::copy_n(user_vecs_.Row(user), user_vecs_.cols(), out.data());
}

}  // namespace kgrec
