#ifndef KGREC_EMBED_SHINE_H_
#define KGREC_EMBED_SHINE_H_

#include "core/recommender.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace kgrec {

/// Hyper-parameters for SHINE.
struct ShineConfig {
  size_t dim = 16;
  int epochs = 20;
  size_t batch_size = 128;
  float learning_rate = 0.05f;
  float l2 = 1e-5f;
  /// Weight of the autoencoder reconstruction losses.
  float reconstruction_weight = 0.3f;
};

/// SHINE (Wang et al., WSDM'18): celebrity recommendation as sentiment
/// link prediction. Three networks are embedded with autoencoders and
/// fused: the sentiment network (user-item interactions), the social
/// network (user-user co-interaction) and the profile network
/// (user-attribute counts derived from the KG attributes of consumed
/// items). The fused user and item codes are compared for the final
/// preference score, trained jointly with the reconstruction losses.
class ShineRecommender : public Recommender {
 public:
  explicit ShineRecommender(ShineConfig config = {}) : config_(config) {}

  std::string name() const override { return "SHINE"; }
  void Fit(const RecContext& context) override;
  float Score(int32_t user, int32_t item) const override;
  std::string HyperFingerprint() const override;

 protected:
  /// Stores the nine layers; the dense network rows are pure functions
  /// of the training data and are rebuilt on load.
  Status VisitState(StateVisitor* visitor) override;
  Status PrepareLoad(const RecContext& context) override;

 private:
  /// Builds the sentiment/social/profile/item input rows from the data.
  void BuildInputs(const RecContext& context);
  /// Allocates the autoencoder + scoring layers at the right shapes.
  void InitLayers(Rng& rng);

  /// Fused user code [B, 3*dim] (differentiable).
  nn::Tensor UserCodes(const std::vector<int32_t>& users) const;
  /// Item code [B, dim] from the sentiment-network item side.
  nn::Tensor ItemCodes(const std::vector<int32_t>& items) const;

  ShineConfig config_;
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  size_t num_attributes_ = 0;
  /// Dense network rows (inputs to the encoders).
  nn::Tensor sentiment_rows_;  // [m, n]
  nn::Tensor social_rows_;     // [m, m]
  nn::Tensor profile_rows_;    // [m, A]
  nn::Tensor item_rows_;       // [n, m] (sentiment network, item side)
  nn::Linear sent_enc_, sent_dec_;
  nn::Linear social_enc_, social_dec_;
  nn::Linear profile_enc_, profile_dec_;
  nn::Linear item_enc_, item_dec_;
  nn::Linear score_layer_;
};

}  // namespace kgrec

#endif  // KGREC_EMBED_SHINE_H_
