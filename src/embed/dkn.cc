#include "embed/dkn.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/model_state.h"
#include "kge/kge_model.h"
#include "kge/kge_trainer.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace kgrec {

nn::Tensor DknRecommender::ItemVectors(
    const std::vector<int32_t>& items) const {
  // Knowledge channel: one entity sampled deterministically per position
  // would lose information; instead average via flat gather + group sum.
  // All items here have >= 1 entity and >= 1 word by construction.
  std::vector<int32_t> flat_entities;
  std::vector<float> entity_weights;
  std::vector<int32_t> flat_words;
  std::vector<float> word_weights;
  size_t max_entities = 1, max_words = 1;
  for (int32_t j : items) {
    max_entities = std::max(max_entities, item_entities_[j].size());
    max_words = std::max(max_words, item_words_[j].size());
  }
  for (int32_t j : items) {
    const auto& ents = item_entities_[j];
    for (size_t k = 0; k < max_entities; ++k) {
      flat_entities.push_back(ents[k % ents.size()]);
      entity_weights.push_back(k < ents.size() ? 1.0f / ents.size() : 0.0f);
    }
    const auto& words = item_words_[j];
    for (size_t k = 0; k < max_words; ++k) {
      flat_words.push_back(words[k % words.size()]);
      word_weights.push_back(k < words.size() ? 1.0f / words.size() : 0.0f);
    }
  }
  nn::Tensor ent = nn::Gather(entity_emb_, flat_entities);
  nn::Tensor ent_w =
      nn::Tensor::FromData(flat_entities.size(), 1, std::move(entity_weights));
  nn::Tensor knowledge =
      nn::GroupSumRows(nn::Mul(ent, ent_w), max_entities);  // [B, d]
  nn::Tensor words = nn::Gather(word_emb_, flat_words);
  nn::Tensor word_w =
      nn::Tensor::FromData(flat_words.size(), 1, std::move(word_weights));
  nn::Tensor text = nn::GroupSumRows(nn::Mul(words, word_w), max_words);
  return nn::Concat(knowledge, text);  // [B, 2d]
}

void DknRecommender::BuildContent(const RecContext& context) {
  KGREC_CHECK(context.train != nullptr);
  KGREC_CHECK(context.item_kg != nullptr);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const int32_t n = train.num_items();

  // Item "content": KG entities mentioned by the item (itself + its
  // attribute targets) and pseudo title words (attribute mentions + noise
  // words hashed from the item id).
  item_entities_.assign(n, {});
  item_words_.assign(n, {});
  for (int32_t j = 0; j < n; ++j) {
    item_entities_[j].push_back(j);
    const size_t degree = kg.OutDegree(j);
    const Edge* edges = kg.OutEdges(j);
    for (size_t e = 0; e < degree; ++e) {
      if (edges[e].target >= n) {
        item_entities_[j].push_back(edges[e].target);
        item_words_[j].push_back(edges[e].target);
      }
    }
    if (item_words_[j].empty()) item_words_[j].push_back(j);
    for (size_t w = 0; w < config_.noise_words_per_item; ++w) {
      item_words_[j].push_back(static_cast<int32_t>(
          kg.num_entities() + (j * 31 + w * 17) % 97));
    }
  }

  // Clip histories to the most recent max_history items.
  histories_.assign(train.num_users(), {});
  for (int32_t u = 0; u < train.num_users(); ++u) {
    const auto& items = train.UserItems(u);
    const size_t take = std::min(items.size(), config_.max_history);
    histories_[u].assign(items.end() - take, items.end());
  }
}

void DknRecommender::Fit(const RecContext& context) {
  BuildContent(context);
  const InteractionDataset& train = *context.train;
  const KnowledgeGraph& kg = *context.item_kg;
  const size_t d = config_.dim;
  const size_t vocab = kg.num_entities() + 97;
  Rng rng(context.seed);

  // Pretrain the knowledge channel with TransD (as the paper does).
  std::unique_ptr<KgeModel> transd =
      MakeKgeModel("transd", kg.num_entities(), kg.num_relations(), d, rng);
  KgeTrainConfig kge_config;
  kge_config.epochs = 8;
  kge_config.seed = context.seed + 3;
  kge_config.num_threads = config_.num_threads;
  TrainKge(*transd, kg, kge_config);
  entity_emb_ = nn::Tensor::FromData(
      kg.num_entities(), d,
      std::vector<float>(transd->entity_embeddings().data(),
                         transd->entity_embeddings().data() +
                             transd->entity_embeddings().size()),
      /*requires_grad=*/true);
  word_emb_ = nn::NormalInit(vocab, d, 0.1f, rng);

  attention_hidden_ = nn::Linear(4 * d, d, rng);
  attention_out_ = nn::Linear(d, 1, rng);
  score_hidden_ = nn::Linear(4 * d, d, rng);
  score_out_ = nn::Linear(d, 1, rng);

  std::vector<nn::Tensor> params{entity_emb_, word_emb_};
  for (const nn::Linear* l :
       {&attention_hidden_, &attention_out_, &score_hidden_, &score_out_}) {
    for (const auto& p : l->Params()) params.push_back(p);
  }
  nn::Adagrad optimizer(params, config_.learning_rate, config_.l2);
  NegativeSampler sampler(train);

  const size_t h = config_.max_history;
  std::vector<size_t> order(train.num_interactions());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<int32_t> cands;
      std::vector<int32_t> hist_flat;
      std::vector<float> hist_mask;
      std::vector<int32_t> repeat_index;
      std::vector<float> labels;
      auto push_example = [&](int32_t user, int32_t item, float label) {
        const auto& hist = histories_[user];
        if (hist.empty()) return;
        const int32_t row = static_cast<int32_t>(cands.size());
        cands.push_back(item);
        labels.push_back(label);
        for (size_t k = 0; k < h; ++k) {
          hist_flat.push_back(hist[k % hist.size()]);
          hist_mask.push_back(k < hist.size() ? 0.0f : -1e9f);
          repeat_index.push_back(row);
        }
      };
      for (size_t i = start; i < end; ++i) {
        const Interaction& x = train.interactions()[order[i]];
        push_example(x.user, x.item, 1.0f);
        push_example(x.user, sampler.Sample(x.user, rng), 0.0f);
      }
      if (cands.empty()) continue;
      const size_t batch = cands.size();
      nn::Tensor cand_vecs = ItemVectors(cands);          // [B, 2d]
      nn::Tensor hist_vecs = ItemVectors(hist_flat);      // [B*h, 2d]
      nn::Tensor cand_rep = nn::Gather(cand_vecs, repeat_index);
      nn::Tensor att_in = nn::Concat(hist_vecs, cand_rep);  // [B*h, 4d]
      nn::Tensor att_logit = attention_out_.Forward(
          nn::Tanh(attention_hidden_.Forward(att_in)));     // [B*h, 1]
      nn::Tensor mask =
          nn::Tensor::FromData(batch * h, 1,
                               std::vector<float>(hist_mask));
      nn::Tensor att = nn::Softmax(
          nn::Reshape(nn::Add(att_logit, mask), batch, h));  // [B, h]
      nn::Tensor att_flat = nn::Reshape(att, batch * h, 1);
      nn::Tensor user_vec =
          nn::GroupSumRows(nn::Mul(hist_vecs, att_flat), h);  // [B, 2d]
      nn::Tensor features = nn::Concat(user_vec, cand_vecs);  // [B, 4d]
      nn::Tensor logits =
          score_out_.Forward(nn::Relu(score_hidden_.Forward(features)));
      nn::Tensor loss = nn::BceWithLogits(logits, labels);
      optimizer.ZeroGrad();
      nn::Backward(loss);
      optimizer.Step();
    }
  }
}

std::string DknRecommender::HyperFingerprint() const {
  return FingerprintBuilder()
      .Add("dim", static_cast<double>(config_.dim))
      .Add("epochs", config_.epochs)
      .Add("batch_size", static_cast<double>(config_.batch_size))
      .Add("lr", config_.learning_rate)
      .Add("l2", config_.l2)
      .Add("max_history", static_cast<double>(config_.max_history))
      .Add("noise_words_per_item",
           static_cast<double>(config_.noise_words_per_item))
      .str();
}

Status DknRecommender::VisitState(StateVisitor* visitor) {
  KGREC_RETURN_IF_ERROR(visitor->Tensor("entity_emb", &entity_emb_));
  KGREC_RETURN_IF_ERROR(visitor->Tensor("word_emb", &word_emb_));
  KGREC_RETURN_IF_ERROR(
      visitor->Params("attention_hidden", attention_hidden_.Params()));
  KGREC_RETURN_IF_ERROR(
      visitor->Params("attention_out", attention_out_.Params()));
  KGREC_RETURN_IF_ERROR(
      visitor->Params("score_hidden", score_hidden_.Params()));
  return visitor->Params("score_out", score_out_.Params());
}

Status DknRecommender::PrepareLoad(const RecContext& context) {
  BuildContent(context);
  const size_t d = config_.dim;
  Rng rng(context.seed);
  attention_hidden_ = nn::Linear(4 * d, d, rng);
  attention_out_ = nn::Linear(d, 1, rng);
  score_hidden_ = nn::Linear(4 * d, d, rng);
  score_out_ = nn::Linear(d, 1, rng);
  return Status::OK();
}

float DknRecommender::Score(int32_t user, int32_t item) const {
  const auto& hist = histories_[user];
  const size_t h = std::max<size_t>(1, hist.size());
  std::vector<int32_t> cand{item};
  std::vector<int32_t> hist_items;
  std::vector<int32_t> repeat_index(h, 0);
  for (size_t k = 0; k < h; ++k) {
    hist_items.push_back(hist.empty() ? item : hist[k]);
  }
  nn::Tensor cand_vecs = ItemVectors(cand);
  nn::Tensor hist_vecs = ItemVectors(hist_items);
  nn::Tensor cand_rep = nn::Gather(cand_vecs, repeat_index);
  nn::Tensor att_logit = attention_out_.Forward(
      nn::Tanh(attention_hidden_.Forward(nn::Concat(hist_vecs, cand_rep))));
  nn::Tensor att = nn::Softmax(nn::Reshape(att_logit, 1, h));
  nn::Tensor user_vec =
      nn::GroupSumRows(nn::Mul(hist_vecs, nn::Reshape(att, h, 1)), h);
  nn::Tensor logits = score_out_.Forward(
      nn::Relu(score_hidden_.Forward(nn::Concat(user_vec, cand_vecs))));
  return logits.value();
}

}  // namespace kgrec
