#include "explain/explainer.h"

#include <algorithm>

namespace kgrec {
namespace {

/// Renders one template path as a human-readable reason.
std::string Verbalize(const KnowledgeGraph& kg, const PathInstance& path) {
  // Shared-attribute template: U -I-> j -r-> a -r^-1-> v.
  if (path.entities.size() == 4 && path.relations.size() == 3 &&
      kg.relation_name(path.relations[1]) + "^-1" ==
          kg.relation_name(path.relations[2])) {
    return "it shares " + kg.relation_name(path.relations[1]) + " '" +
           kg.entity_name(path.entities[2]) + "' with '" +
           kg.entity_name(path.entities[1]) +
           "', which you interacted with";
  }
  // Collaborative template: U -I-> j -I^-1-> u' -I-> v.
  if (path.entities.size() == 4 && path.relations.size() == 3) {
    return "'" + kg.entity_name(path.entities[2]) + "', who also liked '" +
           kg.entity_name(path.entities[1]) + "', interacted with it";
  }
  return FormatPath(kg, path);
}

}  // namespace

Explainer::Explainer(const UserItemGraph& graph,
                     const InteractionDataset& train)
    : graph_(&graph), finder_(graph, train, /*max_paths_per_template=*/4) {}

std::vector<Explanation> Explainer::Explain(int32_t user, int32_t item,
                                            size_t max_explanations) const {
  std::vector<PathInstance> paths = finder_.FindPaths(user, item);
  // Shared-attribute paths first (they name the reason most directly).
  std::stable_sort(paths.begin(), paths.end(),
                   [this](const PathInstance& a, const PathInstance& b) {
                     auto is_attr = [this](const PathInstance& p) {
                       return p.relations.size() == 3 &&
                              p.relations[1] != graph_->interact_relation;
                     };
                     return is_attr(a) > is_attr(b);
                   });
  if (paths.size() > max_explanations) paths.resize(max_explanations);
  std::vector<Explanation> out;
  for (PathInstance& path : paths) {
    Explanation e;
    e.text = Verbalize(graph_->kg, path);
    e.path = std::move(path);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace kgrec
