#ifndef KGREC_EXPLAIN_EXPLAINER_H_
#define KGREC_EXPLAIN_EXPLAINER_H_

#include <string>
#include <vector>

#include "data/interactions.h"
#include "data/synthetic.h"
#include "path/path_finder.h"

namespace kgrec {

/// One explanation for a recommendation: a KG path from the user to the
/// item plus a natural-language rendering ("... because it shares genre_3
/// with item_17, which you interacted with").
struct Explanation {
  PathInstance path;
  std::string text;
};

/// Model-agnostic path-based explanation engine (the survey's second
/// headline benefit, Figure 1): given any recommended item, enumerate the
/// KG paths connecting the user to it and verbalize them. Models with
/// intrinsic explanations (KPRN path scores, PGPR beams, RuleRec rules)
/// can rank these paths; this engine provides the fallback for
/// embedding-based models whose reasoning is latent.
class Explainer {
 public:
  /// `graph` and `train` must outlive the explainer.
  Explainer(const UserItemGraph& graph, const InteractionDataset& train);

  /// Up to `max_explanations` explanations for recommending `item` to
  /// `user`, ordered shared-attribute paths first.
  std::vector<Explanation> Explain(int32_t user, int32_t item,
                                   size_t max_explanations = 3) const;

 private:
  const UserItemGraph* graph_;
  TemplatePathFinder finder_;
};

}  // namespace kgrec

#endif  // KGREC_EXPLAIN_EXPLAINER_H_
