#ifndef KGREC_GRAPH_PATHSIM_H_
#define KGREC_GRAPH_PATHSIM_H_

#include "graph/hin.h"
#include "math/sparse.h"

namespace kgrec {

/// PathSim meta-path-based similarity (Sun et al., survey Eq. 12):
///   s(x, y) = 2 |paths x~>y| / (|paths x~>x| + |paths y~>y|)
/// computed from the commuting matrix M of a (round-trip) meta-path.
/// Returns a sparse matrix with the same sparsity pattern as M.
CsrMatrix PathSim(const CsrMatrix& commuting);

/// Convenience: commuting matrix of the meta-path, then PathSim.
/// The meta-path should be symmetric (end where it starts, e.g.
/// item -genre-> g -genre^-1-> item) for the measure to be meaningful.
CsrMatrix PathSim(const Hin& hin, const MetaPath& path);

}  // namespace kgrec

#endif  // KGREC_GRAPH_PATHSIM_H_
