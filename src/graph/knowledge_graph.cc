#include "graph/knowledge_graph.h"

#include <algorithm>

#include "core/check.h"

namespace kgrec {

KnowledgeGraph::KnowledgeGraph(const KnowledgeGraph& other) { *this = other; }

KnowledgeGraph& KnowledgeGraph::operator=(const KnowledgeGraph& other) {
  if (this == &other) return *this;
  num_entities_ = other.num_entities_;
  names_dropped_ = other.names_dropped_;
  entity_names_ = other.entity_names_;
  relation_names_ = other.relation_names_;
  triples_ = other.triples_;
  num_triples_ = other.num_triples_;
  max_triples_ = other.max_triples_;
  triples_released_ = other.triples_released_;
  finalized_ = other.finalized_;
  in_incremental_batch_ = other.in_incremental_batch_;
  adj_ptr_ = other.adj_ptr_;
  adj_edges_ = other.adj_edges_;
  // The lookup maps key on views into *this* graph's pools, so they are
  // rebuilt rather than copied (copied views would point into `other`).
  RebuildNameIndices();
  return *this;
}

void KnowledgeGraph::RebuildNameIndices() {
  entity_index_.clear();
  relation_index_.clear();
  entity_index_.reserve(entity_names_.size());
  for (uint32_t i = 0; i < entity_names_.size(); ++i) {
    entity_index_.emplace(entity_names_.Get(i), static_cast<EntityId>(i));
  }
  relation_index_.reserve(relation_names_.size());
  for (uint32_t i = 0; i < relation_names_.size(); ++i) {
    relation_index_.emplace(relation_names_.Get(i),
                            static_cast<RelationId>(i));
  }
}

EntityId KnowledgeGraph::AddEntity(std::string_view name) {
  KGREC_CHECK(!finalized_);
  KGREC_CHECK(!names_dropped_);  // named and anonymous modes don't mix
  auto it = entity_index_.find(name);
  if (it != entity_index_.end()) return it->second;
  const EntityId id = static_cast<EntityId>(num_entities_);
  const uint32_t pooled = entity_names_.Append(name);
  KGREC_CHECK_EQ(static_cast<size_t>(pooled), num_entities_);
  // The map key is the pooled copy — the one and only stored copy.
  entity_index_.emplace(entity_names_.Get(pooled), id);
  ++num_entities_;
  return id;
}

EntityId KnowledgeGraph::AddEntities(size_t count) {
  KGREC_CHECK(!finalized_);
  KGREC_CHECK(entity_names_.empty());  // named and anonymous modes don't mix
  names_dropped_ = true;
  const EntityId first = static_cast<EntityId>(num_entities_);
  num_entities_ += count;
  return first;
}

RelationId KnowledgeGraph::AddRelation(std::string_view name) {
  KGREC_CHECK(!finalized_);
  auto it = relation_index_.find(name);
  if (it != relation_index_.end()) return it->second;
  const RelationId id = static_cast<RelationId>(relation_names_.size());
  const uint32_t pooled = relation_names_.Append(name);
  relation_index_.emplace(relation_names_.Get(pooled), id);
  return id;
}

Status KnowledgeGraph::AddTriple(EntityId head, RelationId relation,
                                 EntityId tail) {
  if (triples_released_) {
    return Status::FailedPrecondition(
        "triples released; the graph can no longer grow");
  }
  if (finalized_) {
    return Status::FailedPrecondition(
        "graph is finalized; open an incremental batch to grow it");
  }
  if (head < 0 || static_cast<size_t>(head) >= num_entities()) {
    return Status::InvalidArgument("head entity out of range");
  }
  if (tail < 0 || static_cast<size_t>(tail) >= num_entities()) {
    return Status::InvalidArgument("tail entity out of range");
  }
  if (relation < 0 || static_cast<size_t>(relation) >= num_relations()) {
    return Status::InvalidArgument("relation out of range");
  }
  if (triples_.size() >= max_triples_) {
    return Status::InvalidArgument(
        "triple count exceeds 32-bit CSR offset capacity");
  }
  triples_.push_back({head, relation, tail});
  num_triples_ = triples_.size();
  return Status::OK();
}

Status KnowledgeGraph::AddInverseRelations() {
  KGREC_CHECK(!finalized_);
  const size_t original_triples = triples_.size();
  if (original_triples * 2 > max_triples_) {
    return Status::InvalidArgument(
        "inverse triples would exceed 32-bit CSR offset capacity");
  }
  const size_t original_relations = relation_names_.size();
  std::vector<RelationId> inverse(original_relations);
  for (size_t r = 0; r < original_relations; ++r) {
    inverse[r] =
        AddRelation(std::string(relation_names_.Get(r)) + "^-1");
  }
  triples_.reserve(original_triples * 2);
  for (size_t i = 0; i < original_triples; ++i) {
    const Triple& t = triples_[i];
    triples_.push_back({t.tail, inverse[t.relation], t.head});
  }
  num_triples_ = triples_.size();
  return Status::OK();
}

void KnowledgeGraph::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  const size_t n = num_entities();
  adj_ptr_.assign(n + 1, 0);
  for (const Triple& t : triples_) ++adj_ptr_[t.head + 1];
  for (size_t i = 0; i < n; ++i) adj_ptr_[i + 1] += adj_ptr_[i];
  adj_edges_.resize(triples_.size());
  std::vector<AdjOffset> cursor(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (const Triple& t : triples_) {
    adj_edges_[cursor[t.head]++] = {t.relation, t.tail};
  }
  // Deterministic edge order within each entity.
  for (size_t e = 0; e < n; ++e) {
    std::sort(adj_edges_.begin() + adj_ptr_[e],
              adj_edges_.begin() + adj_ptr_[e + 1],
              [](const Edge& a, const Edge& b) {
                if (a.relation != b.relation) return a.relation < b.relation;
                return a.target < b.target;
              });
  }
  // The build phase is over: return push_back growth slack to the OS.
  triples_.shrink_to_fit();
}

Status KnowledgeGraph::BeginIncrementalBatch() {
  if (!finalized_) {
    return Status::FailedPrecondition(
        "graph is not finalized; use the normal build path");
  }
  if (triples_released_) {
    return Status::FailedPrecondition(
        "triples released; an incremental rebuild needs the triple list");
  }
  if (in_incremental_batch_) {
    return Status::FailedPrecondition("incremental batch already open");
  }
  in_incremental_batch_ = true;
  finalized_ = false;  // reopen the build phase for Add{Entity,Relation,Triple}
  return Status::OK();
}

Status KnowledgeGraph::FinalizeIncrementalBatch() {
  if (!in_incremental_batch_) {
    return Status::FailedPrecondition("no incremental batch open");
  }
  in_incremental_batch_ = false;
  // Full CSR rebuild; row sorting makes the result insertion-order
  // independent, so this equals a from-scratch build of the grown graph.
  Finalize();
  return Status::OK();
}

void KnowledgeGraph::ReleaseTriples() {
  KGREC_CHECK(finalized_);
  triples_released_ = true;
  std::vector<Triple>().swap(triples_);
}

const std::vector<Triple>& KnowledgeGraph::triples() const {
  KGREC_CHECK(!triples_released_);
  return triples_;
}

std::string KnowledgeGraph::entity_name(EntityId id) const {
  KGREC_CHECK(!names_dropped_);
  return std::string(entity_names_.Get(static_cast<uint32_t>(id)));
}

std::string KnowledgeGraph::relation_name(RelationId id) const {
  return std::string(relation_names_.Get(static_cast<uint32_t>(id)));
}

Status KnowledgeGraph::FindEntity(std::string_view name,
                                  EntityId* out) const {
  auto it = entity_index_.find(name);
  if (it == entity_index_.end()) {
    return Status::NotFound("entity: " + std::string(name));
  }
  *out = it->second;
  return Status::OK();
}

Status KnowledgeGraph::FindRelation(std::string_view name,
                                    RelationId* out) const {
  auto it = relation_index_.find(name);
  if (it == relation_index_.end()) {
    return Status::NotFound("relation: " + std::string(name));
  }
  *out = it->second;
  return Status::OK();
}

size_t KnowledgeGraph::OutDegree(EntityId entity) const {
  KGREC_CHECK(finalized_);
  KGREC_CHECK(entity >= 0 && static_cast<size_t>(entity) < num_entities());
  return adj_ptr_[entity + 1] - adj_ptr_[entity];
}

const Edge* KnowledgeGraph::OutEdges(EntityId entity) const {
  KGREC_CHECK(finalized_);
  return adj_edges_.data() + adj_ptr_[entity];
}

std::vector<Edge> KnowledgeGraph::SampleNeighbors(EntityId entity,
                                                  size_t count,
                                                  Rng& rng) const {
  std::vector<Edge> out;
  SampleNeighbors(entity, count, rng, &out);
  return out;
}

void KnowledgeGraph::SampleNeighbors(EntityId entity, size_t count, Rng& rng,
                                     std::vector<Edge>* out) const {
  out->clear();
  const size_t degree = OutDegree(entity);
  if (degree == 0 || count == 0) return;
  const Edge* edges = OutEdges(entity);
  out->reserve(count);
  if (degree <= count) {
    // Take all, then pad with uniform resamples to reach the fixed size.
    out->assign(edges, edges + degree);
    while (out->size() < count) {
      out->push_back(edges[rng.UniformInt(degree)]);
    }
  } else {
    for (size_t i : rng.SampleWithoutReplacement(degree, count)) {
      out->push_back(edges[i]);
    }
  }
}

bool KnowledgeGraph::HasTriple(EntityId head, RelationId relation,
                               EntityId tail) const {
  // Finalize() sorts each entity's edges by (relation, target), so
  // membership is a binary search instead of a degree-linear scan.
  const Edge* begin = OutEdges(head);
  const Edge* end = begin + OutDegree(head);
  return std::binary_search(begin, end, Edge{relation, tail},
                            [](const Edge& a, const Edge& b) {
                              if (a.relation != b.relation) {
                                return a.relation < b.relation;
                              }
                              return a.target < b.target;
                            });
}

void KnowledgeGraph::MemoryUse(MemoryVisitor& visitor) const {
  visitor.Add("kg.triples", VectorBytes(triples_));
  visitor.Add("kg.adj_ptr", VectorBytes(adj_ptr_));
  visitor.Add("kg.adj_edges", VectorBytes(adj_edges_));
  entity_names_.MemoryUse(visitor, "kg.entity_names");
  relation_names_.MemoryUse(visitor, "kg.relation_names");
  // Hash-map logical payload: one (view, id) node per name. Bucket-array
  // and allocator overhead belong to RSS, not logical bytes.
  visitor.Add("kg.entity_index",
              entity_index_.size() *
                  (sizeof(std::string_view) + sizeof(EntityId)));
  visitor.Add("kg.relation_index",
              relation_index_.size() *
                  (sizeof(std::string_view) + sizeof(RelationId)));
}

}  // namespace kgrec
